"""Quickstart: plan, simulate, and numerically execute a KARMA schedule.

Builds a residual CNN, derives a KARMA plan for a batch that exceeds a
(deliberately small) device capacity, prices the plan with the event
simulator, and then trains numerically under the capacity-enforced
out-of-core executor — verifying the loss matches vanilla training.

Run: python examples/quickstart.py
Set KARMA_EXAMPLES_TINY=1 for the reduced CI-smoke step count.
"""

import os

import numpy as np

from repro.core import plan
from repro.costs import profile_graph
from repro.data import SyntheticImages
from repro.hardware import (
    GiB,
    MemorySpace,
    TransferModel,
    abci_host,
    karma_swap_link,
    v100_sxm2_16gb,
)
from repro.models.builder import GraphBuilder
from repro.nn import SGD, ExecutableModel
from repro.runtime import OutOfCoreTrainer
from repro.sim import simulate_plan


def build_model():
    b = GraphBuilder("quickstart_cnn")
    b.input((3, 32, 32))
    b.conv(16, 3)
    b.bn()
    b.relu()
    for i in range(3):
        skip = b.cursor
        b.conv(16, 3)
        b.bn()
        b.relu()
        b.conv(16, 3)
        b.bn()
        b.add_residual(skip)
        b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(10)
    b.softmax()
    b.loss()
    return b.finish()


def main():
    graph = build_model()
    batch = 16
    steps = 3 if os.environ.get("KARMA_EXAMPLES_TINY", "0") == "1" else 12

    # 1) derive the KARMA plan against a tight capacity so swapping +
    #    recompute actually engage
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, batch)
    capacity = cost.persistent_bytes() \
        + int(0.9 * cost.total_activation_bytes)
    kp = plan(graph, batch_size=batch, capacity=capacity)
    print(kp.describe())

    # 2) price one iteration with the discrete-event simulator
    res = simulate_plan(kp.plan, kp.cost, kp.capacity)
    print(f"\nsimulated: {res.summary()}")

    # 3) train numerically under the same plan with enforced capacity
    model = ExecutableModel(graph, dtype=np.float64, seed=0)
    trainer = OutOfCoreTrainer(model, kp.plan,
                               MemorySpace(2 * GiB, 64 * GiB),
                               SGD(lr=0.1, momentum=0.9))
    data = SyntheticImages((3, 32, 32), 10, seed=0, dtype=np.float64)
    losses = trainer.train(data, steps=steps)
    print(f"\nout-of-core training loss: {losses[0]:.3f} -> {losses[-1]:.3f}")

    # 4) the reference: same seeds, vanilla in-core training
    ref = ExecutableModel(graph, dtype=np.float64, seed=0)
    opt = SGD(lr=0.1, momentum=0.9)
    ref_losses = [ref.train_step(*data.batch(batch, s), opt, step=s)
                  for s in range(steps)]
    drift = max(abs(a - b) for a, b in zip(losses, ref_losses))
    print(f"max loss drift vs in-core reference: {drift:.2e} "
          "(out-of-core execution is exact)")


if __name__ == "__main__":
    main()
