"""Async overlap demo: swaps hide behind compute, and the simulator's
stall predictions survive contact with the running system.

Builds a small CNN, constructs a deliberately swap-bound 3-tier plan
(every interior block swapped, the coldest routed through NVMe), paces
the modeled durations in real wall-clock, and then:

1. executes the plan synchronously (every transfer inline) and
   asynchronously (per-link streams + prefetch + fences) — printing both
   wall-clocks and the overlap speedup;
2. prints the predicted-vs-measured per-resource stall table, the
   ``python -m repro validate`` loop in miniature.

Gradients from the two executors are verified byte-identical.

Run: python examples/async_overlap.py
Set KARMA_EXAMPLES_TINY=1 for the reduced CI-smoke pacing.
"""

import os
import time

import numpy as np

from repro.core import BlockPolicy, make_plan
from repro.eval import render_table
from repro.hardware import GiB, TieredMemorySpace
from repro.models.builder import GraphBuilder
from repro.nn import ExecutableModel
from repro.runtime import (
    AsyncOutOfCoreExecutor,
    OutOfCoreExecutor,
    TransferPacer,
)
from repro.sim import compare_profiles, compile_plan, simulate, stall_profile
from repro.sim.trainer_sim import BlockCosts

TINY = os.environ.get("KARMA_EXAMPLES_TINY", "0") == "1"
S, R = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT


#  NOTE: this walkthrough inlines the swap-bound fixture that
#  benchmarks/bench_async_runtime.py gates (examples run with only
#  PYTHONPATH=src, so they cannot import the bench or tests.helpers);
#  when retuning the bench's modeled durations, mirror the change here.


def build_model():
    b = GraphBuilder("async_overlap_cnn")
    b.input((3, 16, 16))
    for width in (8, 8, 16, 16):
        b.conv(width, 3)
        b.relu()
    b.pool(2, 2)
    b.conv(16, 3)
    b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(5)
    b.softmax()
    b.loss()
    return b.finish()


def uniform_blocks(graph, k):
    n = len(graph)
    bounds = sorted({round((i + 1) * n / k) for i in range(k)} - {0})
    bounds[-1] = n
    return list(zip([0] + bounds[:-1], bounds))


def main():
    graph = build_model()
    blocks = uniform_blocks(graph, 6)
    n = len(blocks)
    placements = {0: 2}  # the coldest stash spills to NVMe
    plan = make_plan(graph.name, 4, blocks, [S] * (n - 1) + [R],
                     placements=placements)

    # modeled per-block durations (seconds): 20 ms of two-way swap per
    # block vs 8+16 ms of compute — a swap-bound regime where overlap
    # pays; TINY shrinks the emulated wall-clock for the CI smoke run
    scale = 0.35 if TINY else 1.0
    costs = BlockCosts(
        fw=(0.008,) * n, bw=(0.016,) * n,
        stash_bytes=(0,) * n, boundary_bytes=(0,) * n,
        weight_bytes=(0,) * n, swap_time=(0.020,) * n,
        grad_swap_time=(0.0,) * n,
        storage_out_time=tuple(0.012 if b in placements else 0.0
                               for b in range(n)),
        storage_in_time=tuple(0.012 if b in placements else 0.0
                              for b in range(n)))
    pacer = TransferPacer(time_scale=scale, costs=costs)

    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3, 16, 16))
    y = rng.integers(0, 5, 4)

    print(f"plan ({n} blocks, block 1 via NVMe):")
    print(f"  {plan.plan_string()}\n")

    # 1) sync vs async wall-clock, gradients verified identical
    results = {}
    for name, cls in (("sync", OutOfCoreExecutor),
                      ("async", AsyncOutOfCoreExecutor)):
        model = ExecutableModel(graph, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        executor = cls(model, plan, space, pacer=pacer)
        model.zero_grad()
        t0 = time.perf_counter()
        loss = executor.run_iteration(x, y, step=0)
        wall = time.perf_counter() - t0
        results[name] = (wall, loss, executor,
                         {(l, p): a.copy()
                          for l, p, a in model.gradients()})
        print(f"  {name:<5} {wall * 1e3:8.1f} ms   loss {loss:.6f}")

    sync_wall, _, _, sync_grads = results["sync"]
    async_wall, _, async_ex, async_grads = results["async"]
    for key, a in async_grads.items():
        assert np.array_equal(a, sync_grads[key]), key
    print(f"  -> overlap speedup {sync_wall / async_wall:.2f}x, "
          "gradients byte-identical\n")

    # 2) predicted vs measured stall profile
    ops = compile_plan(plan, costs)
    sim = simulate(ops)
    predicted = stall_profile(ops, sim)
    measured = async_ex.trace.stall_profile()
    print(render_table(compare_profiles(predicted, measured),
                       title="predicted vs measured stall fractions "
                             "(share of makespan)"))
    print(f"\npredicted makespan {sim.makespan * scale * 1e3:.1f} ms "
          f"(emulated) vs measured {measured.makespan * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
