"""Fig. 5-style study: ResNet-200 beyond the 16 GiB V100 limit.

Sweeps the paper's ResNet-200 batch sizes (only the first fits in-core)
across the method ladder — in-core, vDNN++, SuperNeurons, Checkmate,
KARMA, KARMA w/ recompute — and prints the throughput panel plus KARMA's
chosen blocking at the largest batch.

Run: python examples/resnet200_out_of_core.py
"""

from repro.core import plan
from repro.eval import render_series, run_method
from repro.models import resnet200
from repro.sim import simulate_plan

METHODS = ("in-core", "vdnn++", "superneurons", "checkmate",
           "karma", "karma+recompute")
BATCHES = (4, 8, 12, 16)


def main():
    graph = resnet200()
    series = {m: [] for m in METHODS}
    for bs in BATCHES:
        for method in METHODS:
            point = run_method(graph, method, bs)
            series[method].append(point.samples_per_sec
                                  if point.feasible else None)
    print(render_series("ResNet-200 on V100-16GiB (samples/s)",
                        BATCHES, series, x_label="batch"))

    kp = plan(graph, batch_size=BATCHES[-1])
    res = simulate_plan(kp.plan, kp.cost, kp.capacity)
    print(f"\nKARMA plan at batch {BATCHES[-1]}: {kp.plan.num_blocks} "
          f"blocks — {len(kp.plan.swapped)} swapped, "
          f"{len(kp.plan.recomputed)} recomputed, "
          f"{len(kp.plan.resident)} resident")
    print(f"simulated iteration: {res.summary()}")
    if kp.recompute is not None:
        print(f"Opt-2 stall reduction: {kp.recompute.improvement * 100:.1f}%")


if __name__ == "__main__":
    main()
