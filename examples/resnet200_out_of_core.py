"""Fig. 5-style study: ResNet-200 beyond the 16 GiB V100 limit.

Sweeps the paper's ResNet-200 batch sizes (only the first fits in-core)
across the method ladder — in-core, vDNN++, SuperNeurons, Checkmate,
KARMA, KARMA w/ recompute — and prints the throughput panel plus KARMA's
chosen blocking at the largest batch.

The final plan goes through the planning service's content-addressed
cache (`repro.cache`): rerunning this example replays the cached search
decisions and reports the hit.

Run: python examples/resnet200_out_of_core.py
Set KARMA_EXAMPLES_TINY=1 for the reduced CI-smoke grid.
"""

import os
import time

from repro.cache import PlanCache
from repro.core import plan
from repro.eval import render_series, run_method
from repro.models import resnet200
from repro.sim import simulate_plan

TINY = os.environ.get("KARMA_EXAMPLES_TINY", "0") == "1"

METHODS = ("in-core", "karma", "karma+recompute") if TINY else \
    ("in-core", "vdnn++", "superneurons", "checkmate",
     "karma", "karma+recompute")
BATCHES = (4, 16) if TINY else (4, 8, 12, 16)


def main():
    graph = resnet200()
    series = {m: [] for m in METHODS}
    for bs in BATCHES:
        for method in METHODS:
            point = run_method(graph, method, bs)
            series[method].append(point.samples_per_sec
                                  if point.feasible else None)
    print(render_series("ResNet-200 on V100-16GiB (samples/s)",
                        BATCHES, series, x_label="batch"))

    cache = PlanCache()
    t0 = time.perf_counter()
    kp = plan(graph, batch_size=BATCHES[-1], cache=cache)
    wall = time.perf_counter() - t0
    res = simulate_plan(kp.plan, kp.cost, kp.capacity)
    print(f"\nKARMA plan at batch {BATCHES[-1]}: {kp.plan.num_blocks} "
          f"blocks — {len(kp.plan.swapped)} swapped, "
          f"{len(kp.plan.recomputed)} recomputed, "
          f"{len(kp.plan.resident)} resident")
    print(f"plan cache {'hit' if kp.cache_hit else 'miss'} "
          f"({wall * 1e3:.0f} ms; cold search was "
          f"{kp.search_time * 1e3:.0f} ms)")
    print(f"simulated iteration: {res.summary()}")
    if kp.recompute is not None:
        print(f"Opt-2 stall reduction: {kp.recompute.improvement * 100:.1f}%")


if __name__ == "__main__":
    main()
