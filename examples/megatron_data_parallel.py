"""Table IV / Fig. 8-style study: data-parallel KARMA for billion-parameter
language models, against the Megatron-LM MP+DP hybrid and ZeRO.

Prints the Table IV comparison for the 2.5B and 8.3B configurations, the
Fig. 8 epoch-time parity curves, and the Turing-NLG ZeRO/KARMA/ZeRO+KARMA
comparison.

Run: python examples/megatron_data_parallel.py
"""

from repro.eval import render_series, render_table
from repro.models.transformer import MEGATRON_CONFIGS, TURING_NLG
from repro.sim import (
    hybrid_mp_dp_lm,
    karma_plus_zero_lm,
    simulate_dp_karma_lm,
    zero_hybrid_lm,
)

EPOCH = 7_200_000


def table_iv():
    rows = []
    for key, mp, hg, kg in (("megatron-2.5b", 4, 256, 128),
                            ("megatron-8.3b", 16, 1024, 512)):
        cfg = MEGATRON_CONFIGS[key]
        h = hybrid_mp_dp_lm(cfg, hg, mp, 8)
        k = simulate_dp_karma_lm(cfg, kg, 8 * mp)
        rows.append({
            "config": key,
            "params": f"{cfg.analytic_params / 1e9:.2f}B",
            "hybrid GPUs": hg,
            "hybrid iter/s": f"{1 / h.iteration_time:.3f}",
            "KARMA GPUs": kg,
            "KARMA iter/s": f"{1 / k.iteration_time:.3f}",
        })
    print(render_table(rows, title="Table IV — MP+DP hybrid vs DP-KARMA"))


def fig8():
    gpus = (256, 512, 1024, 2048)
    cfg = MEGATRON_CONFIGS["megatron-8.3b"]
    hybrid = [hybrid_mp_dp_lm(cfg, n, 16, 8).epoch_time(EPOCH) / 3600
              for n in gpus]
    karma = [simulate_dp_karma_lm(cfg, n, 128).epoch_time(EPOCH) / 3600
             for n in gpus]
    print()
    print(render_series("Fig. 8 — Megatron-8.3B time/epoch (hours)", gpus,
                        {"MP+DP hybrid": hybrid, "DP KARMA": karma},
                        x_label="GPUs"))

    zero = [zero_hybrid_lm(TURING_NLG, n, 16, 8).epoch_time(EPOCH) / 3600
            for n in gpus[1:]]
    karma_t = [simulate_dp_karma_lm(TURING_NLG, n, 128)
               .epoch_time(EPOCH) / 3600 for n in gpus[1:]]
    zk = [karma_plus_zero_lm(TURING_NLG, n, 128).epoch_time(EPOCH) / 3600
          for n in gpus[1:]]
    print()
    print(render_series("Fig. 8 — Turing-NLG 17B time/epoch (hours)",
                        gpus[1:], {"ZeRO": zero, "KARMA": karma_t,
                                   "ZeRO+KARMA": zk}, x_label="GPUs"))
    print(f"\nZeRO+KARMA over ZeRO at 2,048 GPUs: "
          f"{zero[-1] / zk[-1]:.2f}x (paper: 1.35x)")


if __name__ == "__main__":
    table_iv()
    fig8()
