"""§III-F.4 study: KARMA on non-linear models — U-Net's long skips.

Shows (1) the planner pinning/recomputing contracting-path blocks whose
activations feed the expansive path, and (2) numerically exact out-of-core
execution of a small U-Net under a tight capacity, verified against
vanilla training.

Run: python examples/unet_nonlinear.py
"""

import numpy as np

from repro.core import plan
from repro.graph import blocks_with_long_skips
from repro.hardware import GiB, MemorySpace
from repro.models.unet import unet
from repro.nn import ExecutableModel
from repro.runtime import OutOfCoreExecutor
from repro.sim import simulate_plan


def main():
    # paper-scale planning: the full 512x512 ssTEM U-Net
    graph = unet()
    kp = plan(graph, batch_size=16)
    res = simulate_plan(kp.plan, kp.cost, kp.capacity)
    flagged = blocks_with_long_skips(graph, [e for _, e in kp.plan.blocks])
    print(f"U-Net @ batch 16: {kp.plan.num_blocks} blocks, "
          f"{len(kp.plan.swapped)} swapped, "
          f"{len(kp.plan.recomputed)} recomputed")
    print(f"blocks with contracting->expansive skips: {flagged}")
    print(f"simulated iteration: {res.summary()}")

    # numeric exactness on a small U-Net with a mixed plan
    small = unet(image=32, in_channels=1, classes=2, base_width=4, depth=2)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 1, 32, 32))
    y = rng.integers(0, 32, (2, 2, 32))

    ref = ExecutableModel(small, dtype=np.float64, seed=9)
    ref.set_step(0)
    ref.zero_grad()
    ref.forward(x, y)
    ref.backward()
    ref_grads = {(l, p): a.copy() for l, p, a in ref.gradients()}

    small_kp = plan(small, batch_size=2,
                    capacity=None)  # plan on the default device
    model = ExecutableModel(small, dtype=np.float64, seed=9)
    executor = OutOfCoreExecutor(model, small_kp.plan,
                                 MemorySpace(2 * GiB, 64 * GiB))
    model.zero_grad()
    executor.run_iteration(x, y, step=0)
    worst = max(np.abs(a - ref_grads[(l, p)]).max()
                for l, p, a in model.gradients())
    print(f"\nsmall U-Net out-of-core vs in-core gradient difference: "
          f"{worst:.1e} (bit-exact)")


if __name__ == "__main__":
    main()
