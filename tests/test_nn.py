"""Numeric framework: per-kernel gradient checks, training, determinism."""

import numpy as np
import pytest

from repro.models import tiny_gpt
from repro.nn import SGD, Adam, ExecutableModel
from repro.nn import functional as F

from tests.helpers import build_small_cnn, build_small_unet


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check(analytic, numeric, tol=1e-5):
    diff = np.abs(analytic - numeric)
    scale = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    assert np.all((diff / scale < tol) | (diff < 1e-7)), \
        f"max rel err {np.max(diff / scale)}"


class TestKernelGradients:
    """Finite-difference checks of each forward/backward pair (float64)."""

    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def _loss_through(self, out):
        return float((out * self.w_out).sum())

    def _run(self, fwd, bwd, x, *params):
        """Generic check: d(sum(out * w))/dx and /dparams."""
        out, ctx = fwd()
        self.w_out = self.rng.standard_normal(out.shape)
        grads = bwd(self.w_out.copy(), ctx)
        num_dx = numeric_grad(lambda: self._loss_through(fwd()[0]), x)
        check(grads[0], num_dx)
        for p, g in zip(params, grads[1:]):
            num = numeric_grad(lambda: self._loss_through(fwd()[0]), p)
            check(g, num)

    def test_conv2d(self):
        x = self.rng.standard_normal((2, 3, 6, 6))
        w = self.rng.standard_normal((4, 3, 3, 3)) * 0.3
        b = self.rng.standard_normal(4) * 0.1
        self._run(lambda: F.conv2d_forward(x, w, b, 2, 1),
                  lambda d, c: F.conv2d_backward(d, c, w), x, w, b)

    def test_convtranspose2d(self):
        x = self.rng.standard_normal((2, 3, 4, 4))
        w = self.rng.standard_normal((3, 2, 2, 2)) * 0.3
        self._run(lambda: F.convtranspose2d_forward(x, w, 2),
                  lambda d, c: F.convtranspose2d_backward(d, c, w), x, w)

    def test_maxpool(self):
        x = self.rng.standard_normal((2, 3, 6, 6))
        self._run(lambda: F.maxpool_forward(x, 2, 2, 0),
                  lambda d, c: (F.maxpool_backward(d, c),), x)

    def test_avgpool(self):
        x = self.rng.standard_normal((2, 3, 6, 6))
        self._run(lambda: F.avgpool_forward(x, 3, 3, 0),
                  lambda d, c: (F.avgpool_backward(d, c),), x)

    def test_batchnorm(self):
        x = self.rng.standard_normal((4, 3, 4, 4))
        gamma = self.rng.standard_normal(3)
        beta = self.rng.standard_normal(3)
        rm, rv = np.zeros(3), np.ones(3)
        self._run(lambda: F.batchnorm_forward(x, gamma, beta, rm.copy(),
                                              rv.copy(), 0.1, 1e-5, True),
                  lambda d, c: F.batchnorm_backward(d, c, gamma),
                  x, gamma, beta)

    def test_layernorm(self):
        x = self.rng.standard_normal((3, 5, 8))
        gamma = self.rng.standard_normal(8)
        beta = self.rng.standard_normal(8)
        self._run(lambda: F.layernorm_forward(x, gamma, beta, 1e-5),
                  lambda d, c: F.layernorm_backward(d, c, gamma),
                  x, gamma, beta)

    def test_gelu(self):
        x = self.rng.standard_normal((4, 7))
        self._run(lambda: F.gelu_forward(x),
                  lambda d, c: (F.gelu_backward(d, c),), x)

    def test_softmax(self):
        x = self.rng.standard_normal((4, 7))
        self._run(lambda: F.softmax_forward(x),
                  lambda d, c: (F.softmax_backward(d, c),), x)

    def test_linear(self):
        x = self.rng.standard_normal((5, 6))
        w = self.rng.standard_normal((6, 4)) * 0.3
        b = self.rng.standard_normal(4) * 0.1
        self._run(lambda: F.linear_forward(x, w, b),
                  lambda d, c: F.linear_backward(d, c, w), x, w, b)

    def test_attention(self):
        d = 8
        x = self.rng.standard_normal((2, 5, d)) * 0.5
        ws = [self.rng.standard_normal((d, d)) * 0.3 for _ in range(4)]
        bs = [self.rng.standard_normal(d) * 0.05 for _ in range(4)]

        def fwd():
            return F.attention_forward(x, *ws, *bs, heads=2, causal=True)

        def bwd(dout, ctx):
            return F.attention_backward(dout, ctx, *ws)

        self._run(fwd, bwd, x, *ws)

    def test_embedding_backward_scatter(self):
        tokens = np.array([[0, 2, 1], [2, 2, 0]])
        w = self.rng.standard_normal((3, 4))
        out, ctx = F.embedding_forward(tokens, w)
        dout = np.ones_like(out)
        dw = F.embedding_backward(dout, ctx)
        # token 2 appears three times
        assert np.allclose(dw[2], 3.0)

    def test_cross_entropy_logits_matches_probs_path(self):
        logits = self.rng.standard_normal((6, 5))
        targets = self.rng.integers(0, 5, 6)
        l1, dl = F.cross_entropy_from_logits(logits, targets)
        probs, pctx = F.softmax_forward(logits)
        l2, dp = F.cross_entropy_from_probs(probs, targets)
        assert l1 == pytest.approx(l2, rel=1e-9)
        dlogits = F.softmax_backward(dp, pctx)
        check(dl, dlogits, tol=1e-6)


class TestDropoutDeterminism:
    def test_same_seed_step_same_mask(self):
        x = np.ones((4, 4))
        o1, _ = F.dropout_forward(x, 0.5, seed=3, step=9, training=True)
        o2, _ = F.dropout_forward(x, 0.5, seed=3, step=9, training=True)
        assert np.array_equal(o1, o2)

    def test_different_step_different_mask(self):
        x = np.ones((64, 64))
        o1, _ = F.dropout_forward(x, 0.5, seed=3, step=1, training=True)
        o2, _ = F.dropout_forward(x, 0.5, seed=3, step=2, training=True)
        assert not np.array_equal(o1, o2)

    def test_eval_mode_identity(self):
        x = np.ones((4, 4))
        o, _ = F.dropout_forward(x, 0.5, seed=3, step=0, training=False)
        assert np.array_equal(o, x)


class TestTraining:
    def test_cnn_converges(self, rng):
        g = build_small_cnn()
        m = ExecutableModel(g, dtype=np.float64, seed=1)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        opt = SGD(lr=0.1, momentum=0.9)
        losses = [m.train_step(x, y, opt, step=s) for s in range(25)]
        assert losses[-1] < 0.5 * losses[0]

    def test_gpt_converges(self, rng):
        g = tiny_gpt(hidden=32, heads=2, layers=2, seq_len=8, vocab=17)
        m = ExecutableModel(g, dtype=np.float64, seed=2)
        tok = rng.integers(0, 17, (4, 8))
        tgt = np.roll(tok, -1, axis=1)
        opt = Adam(lr=5e-3)
        losses = [m.train_step(tok, tgt, opt, step=s) for s in range(30)]
        assert losses[-1] < losses[0]

    def test_unet_forward_backward_mechanics(self, rng):
        """U-Net fw/bw runs through concat/upsample joins (mechanics only:
        the spec softmax normalizes the last axis, so targets index it)."""
        g = build_small_unet()
        m = ExecutableModel(g, dtype=np.float64, seed=3)
        x = rng.standard_normal((2, 1, 32, 32))
        targets = rng.integers(0, 32, (2, 2, 32))
        m.set_targets(targets)
        m.zero_grad()
        loss = m.forward(x, None)
        assert np.isfinite(loss)
        m.backward()
        grads = [a for _, _, a in m.gradients()]
        assert any(np.abs(a).max() > 0 for a in grads)

    def test_adam_state_bytes(self):
        g = build_small_cnn()
        m = ExecutableModel(g, seed=0)
        opt = Adam(lr=1e-3)
        x = np.random.default_rng(0).standard_normal((2, 3, 16, 16)) \
            .astype(np.float32)
        y = np.array([0, 1])
        m.train_step(x, y, opt, step=0)
        total = sum(a.nbytes for _, _, a in m.parameters())
        assert opt.state_bytes() == 2 * total

    def test_gradients_accumulate_until_zero_grad(self, rng):
        g = build_small_cnn()
        m = ExecutableModel(g, dtype=np.float64, seed=1)
        x = rng.standard_normal((2, 3, 16, 16))
        y = rng.integers(0, 5, 2)
        m.set_step(0)
        m.zero_grad()
        m.forward(x, y)
        m.backward()
        g1 = {(l, p): a.copy() for l, p, a in m.gradients()}
        m.forward(x, y)
        m.backward()
        for (l, p, a) in m.gradients():
            assert np.allclose(a, 2 * g1[(l, p)], rtol=1e-9, atol=1e-12)
