"""The CI benchmark regression gate must trip on injected regressions
and stay quiet on improvements or within-tolerance noise."""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

from check_regressions import (  # noqa: E402 - path set up above
    DEFAULT_TOLERANCE,
    compare_bench,
    regression_fraction,
    run_gate,
)


class TestRegressionFraction:
    def test_lower_is_better(self):
        assert regression_fraction(1.0, 1.2, "lower") == pytest.approx(0.2)
        assert regression_fraction(1.0, 0.8, "lower") == pytest.approx(-0.2)

    def test_higher_is_better(self):
        assert regression_fraction(2.0, 1.0, "higher") == pytest.approx(0.5)
        assert regression_fraction(2.0, 3.0, "higher") \
            == pytest.approx(-0.5)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            regression_fraction(1.0, 1.0, "sideways")


class TestCompareBench:
    KEYS = {"makespan_s": "lower", "occupancy": "higher"}
    BASE = {"makespan_s": 1.0, "occupancy": 0.9}

    def test_clean_run_passes(self):
        assert compare_bench("b", dict(self.BASE), self.BASE, self.KEYS) \
            == []

    def test_injected_regression_fails(self):
        current = {"makespan_s": 1.25, "occupancy": 0.9}
        findings = compare_bench("b", current, self.BASE, self.KEYS)
        assert len(findings) == 1
        assert findings[0].metric == "makespan_s"
        assert findings[0].change == pytest.approx(0.25)
        assert "regressed" in findings[0].describe()

    def test_within_tolerance_noise_passes(self):
        current = {"makespan_s": 1.0 + DEFAULT_TOLERANCE * 0.9,
                   "occupancy": 0.9 * (1 - DEFAULT_TOLERANCE * 0.9)}
        assert compare_bench("b", current, self.BASE, self.KEYS) == []

    def test_improvement_passes(self):
        current = {"makespan_s": 0.1, "occupancy": 1.0}
        assert compare_bench("b", current, self.BASE, self.KEYS) == []

    def test_missing_metric_fails(self):
        findings = compare_bench("b", {"occupancy": 0.9}, self.BASE,
                                 self.KEYS)
        assert [f.kind for f in findings] == ["missing"]

    def test_unbaselined_key_is_skipped(self):
        keys = {"brand_new_metric": "lower", **self.KEYS}
        assert compare_bench("b", dict(self.BASE), self.BASE, keys) == []

    def test_non_numeric_baseline_ignored(self):
        keys = {"outcome": "lower"}
        assert compare_bench("b", {"outcome": "trained"},
                             {"outcome": "OOM"}, keys) == []

    def test_nan_or_corrupt_current_fails(self):
        """A gated metric degrading to NaN/null/string must trip the
        gate, not slip through a silent NaN comparison."""
        for bad in (float("nan"), None, "broken"):
            findings = compare_bench(
                "b", {"makespan_s": bad, "occupancy": 0.9},
                self.BASE, self.KEYS)
            assert [f.kind for f in findings] == ["invalid"], bad
            assert "not a finite number" in findings[0].describe()


class TestRunGate:
    def _write(self, directory, bench, metrics):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{bench}.json").write_text(json.dumps(
            {"bench": bench, "metrics": metrics}))

    def test_end_to_end_pass_and_fail(self, tmp_path):
        baselines = tmp_path / "baselines"
        current = tmp_path / "current"
        self._write(baselines, "demo", {"makespan_s": 1.0})
        keys_path = baselines / "key_metrics.json"
        keys_path.write_text(json.dumps(
            {"demo": {"makespan_s": "lower"}}))

        self._write(current, "demo", {"makespan_s": 1.05})
        assert run_gate(current, baselines, keys_path) == []

        self._write(current, "demo", {"makespan_s": 1.5})
        findings = run_gate(current, baselines, keys_path)
        assert len(findings) == 1 and findings[0].kind == "regression"

    def test_missing_artifact_fails_unless_allowed(self, tmp_path):
        baselines = tmp_path / "baselines"
        self._write(baselines, "demo", {"makespan_s": 1.0})
        keys_path = baselines / "key_metrics.json"
        keys_path.write_text(json.dumps(
            {"demo": {"makespan_s": "lower"}}))
        empty = tmp_path / "current"
        empty.mkdir()
        findings = run_gate(empty, baselines, keys_path)
        assert len(findings) == 1 and findings[0].kind == "missing"
        assert run_gate(empty, baselines, keys_path,
                        allow_missing=True) == []

    def test_repo_baselines_are_self_consistent(self):
        """The committed baselines gate the committed artifacts cleanly."""
        baselines = BENCH_DIR / "baselines"
        keys_path = baselines / "key_metrics.json"
        keys = json.loads(keys_path.read_text())
        for bench, metrics_keys in keys.items():
            baseline_path = baselines / f"BENCH_{bench}.json"
            assert baseline_path.is_file(), f"no baseline for {bench}"
            metrics = json.loads(baseline_path.read_text())["metrics"]
            for metric, direction in metrics_keys.items():
                assert direction in ("lower", "higher")
                assert metric in metrics, f"{bench}: {metric} not pinned"
        findings = run_gate(baselines, baselines, keys_path)
        assert findings == []
