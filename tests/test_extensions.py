"""Extension features: numeric LSTM, checkpoint/restart, elastic workers,
reporting helpers."""

import numpy as np
import pytest

from repro.core import BlockPolicy, make_plan
from repro.distributed import DataParallelKarmaTrainer, HostSGD
from repro.eval import render_series, render_table
from repro.graph import LayerKind, LayerSpec, chain
from repro.hardware import GiB
from repro.nn import SGD, ExecutableModel
from repro.nn import functional as F
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint

from tests.helpers import build_small_cnn

S, C, R = BlockPolicy.SWAPPED, BlockPolicy.RECOMPUTED, BlockPolicy.RESIDENT


def lstm_graph(steps=6, d_in=4, hidden=8, classes=3):
    specs = [
        LayerSpec("input", LayerKind.INPUT, (steps, d_in), (steps, d_in)),
        LayerSpec("lstm", LayerKind.LSTM, (steps, d_in), (steps, hidden),
                  {"steps": steps, "input_dim": d_in, "hidden_dim": hidden}),
        LayerSpec("fc", LayerKind.LINEAR, (steps, hidden), (steps, classes),
                  {"in_features": hidden, "out_features": classes}),
        LayerSpec("softmax", LayerKind.SOFTMAX, (steps, classes),
                  (steps, classes)),
        LayerSpec("loss", LayerKind.LOSS, (steps, classes), (1,)),
    ]
    return chain("lstm_model", specs)


class TestLSTM:
    def test_forward_shapes_and_state(self, rng):
        x = rng.standard_normal((2, 5, 3))
        w_ih = rng.standard_normal((3, 16)) * 0.4
        w_hh = rng.standard_normal((4, 16)) * 0.4
        b = np.zeros(16)
        out, ctx = F.lstm_forward(x, w_ih, w_hh, b)
        assert out.shape == (2, 5, 4)
        # hidden states are bounded by tanh
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_gradcheck(self, rng):
        x = rng.standard_normal((2, 4, 3))
        w_ih = rng.standard_normal((3, 12)) * 0.4
        w_hh = rng.standard_normal((3, 12)) * 0.4
        b = rng.standard_normal(12) * 0.1
        out, ctx = F.lstm_forward(x, w_ih, w_hh, b)
        w_out = rng.standard_normal(out.shape)
        dx, dwi, dwh, db = F.lstm_backward(w_out.copy(), ctx, w_ih, w_hh)

        def loss():
            return float((F.lstm_forward(x, w_ih, w_hh, b)[0] * w_out).sum())

        eps = 1e-6
        for arr, grad in ((x, dx), (w_ih, dwi), (w_hh, dwh), (b, db)):
            flat, gflat = arr.reshape(-1), grad.reshape(-1)
            for i in rng.integers(0, flat.size, 5):
                old = flat[i]
                flat[i] = old + eps
                lp = loss()
                flat[i] = old - eps
                lm = loss()
                flat[i] = old
                num = (lp - lm) / (2 * eps)
                rel = abs(num - gflat[i]) / max(1e-8,
                                                abs(num) + abs(gflat[i]))
                assert rel < 1e-5 or abs(num - gflat[i]) < 1e-8

    def test_lstm_model_trains(self, rng):
        g = lstm_graph()
        m = ExecutableModel(g, dtype=np.float64, seed=4)
        x = rng.standard_normal((6, 6, 4))
        y = rng.integers(0, 3, (6, 6))
        opt = SGD(lr=0.5)
        losses = [m.train_step(x, y, opt, step=s) for s in range(25)]
        assert losses[-1] < losses[0]

    def test_lstm_under_ooc_executor(self, rng):
        """The sequence model runs bit-exactly out of core too."""
        from repro.hardware import MemorySpace
        from repro.runtime import OutOfCoreExecutor

        g = lstm_graph()
        x = rng.standard_normal((4, 6, 4))
        y = rng.integers(0, 3, (4, 6))
        ref = ExecutableModel(g, dtype=np.float64, seed=4)
        ref.set_step(0)
        ref.zero_grad()
        ref.forward(x, y)
        ref.backward()
        ref_grads = {(l, p): a.copy() for l, p, a in ref.gradients()}

        plan = make_plan(g.name, 4, [(0, 2), (2, 5)], [S, R])
        m = ExecutableModel(g, dtype=np.float64, seed=4)
        ex = OutOfCoreExecutor(m, plan, MemorySpace(1 * GiB, 8 * GiB))
        m.zero_grad()
        ex.run_iteration(x, y, step=0)
        for l, p, a in m.gradients():
            assert np.array_equal(a, ref_grads[(l, p)])


class TestCheckpointRestart:
    def test_roundtrip(self, tmp_path, rng):
        g = build_small_cnn(name="ckpt_cnn")
        m = ExecutableModel(g, dtype=np.float64, seed=1)
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 5, 4)
        opt = SGD(lr=0.1)
        for s in range(3):
            m.train_step(x, y, opt, step=s)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(m, path, step=3)

        fresh = ExecutableModel(g, dtype=np.float64, seed=99)
        step = load_checkpoint(fresh, path)
        assert step == 3
        ref = {(l, p): a for l, p, a in m.parameters()}
        for l, p, a in fresh.parameters():
            assert np.array_equal(a, ref[(l, p)])
        # BN running statistics restored too
        for spec in g:
            mod_a = m.modules[spec.name]
            mod_b = fresh.modules[spec.name]
            for bname, arr in mod_a.buffers.items():
                assert np.array_equal(arr, mod_b.buffers[bname])

    def test_restart_continues_identically(self, tmp_path, rng):
        g = build_small_cnn(with_bn=False, name="ckpt_nobn")
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 5, 4)
        a = ExecutableModel(g, dtype=np.float64, seed=1)
        opt_a = SGD(lr=0.1)
        for s in range(2):
            a.train_step(x, y, opt_a, step=s)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(a, path, step=2)
        la = a.train_step(x, y, opt_a, step=2)

        b = ExecutableModel(g, dtype=np.float64, seed=55)
        step = load_checkpoint(b, path)
        opt_b = SGD(lr=0.1)  # stateless SGD: restart is exact
        lb = b.train_step(x, y, opt_b, step=step)
        assert la == pytest.approx(lb, rel=1e-12)

    def test_shape_mismatch_rejected(self, tmp_path, rng):
        g1 = build_small_cnn(name="ck_a")
        g2 = lstm_graph()
        m1 = ExecutableModel(g1, dtype=np.float64, seed=1)
        m2 = ExecutableModel(g2, dtype=np.float64, seed=1)
        path = str(tmp_path / "a.npz")
        save_checkpoint(m1, path)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(m2, path)


class TestElasticWorkerPool:
    def _trainer(self, world):
        g = build_small_cnn(with_bn=False, name=f"elastic_{world}")
        blocks = [(0, len(g) // 2), (len(g) // 2, len(g))]
        plan = make_plan(g.name, 2, blocks, [S, R])
        return g, DataParallelKarmaTrainer(
            g, plan, world_size=world, near_capacity=2 * GiB,
            far_capacity=16 * GiB, optimizer=HostSGD(lr=0.1),
            dtype=np.float64, seed=5)

    def test_shrink_preserves_training(self, rng):
        """§II-B fault tolerance: losing workers mid-training keeps the
        surviving replicas consistent and training exact."""
        g, dp = self._trainer(4)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        dp.train_step(x, y)
        dp.shrink_world(2)  # two nodes "fail"
        loss = dp.train_step(x, y)
        assert np.isfinite(loss)
        assert dp.world_size == 2
        assert dp.parameters_equal_across_workers()

    def test_shrunk_pool_matches_native_pool(self, rng):
        """After shrinking 4 -> 2, training equals a 2-worker run that saw
        the same global batches (replicas are stateless beyond params)."""
        x = np.random.default_rng(0).standard_normal((8, 3, 16, 16))
        y = np.random.default_rng(1).integers(0, 5, 8)
        _, big = self._trainer(4)
        big.train_step(x, y)
        big.shrink_world(2)
        big.train_step(x, y)

        _, ref = self._trainer(2)
        ref.train_step(x, y)
        ref.train_step(x, y)
        pa = {(l, p): a for l, p, a in big.models[0].parameters()}
        for l, p, a in ref.models[0].parameters():
            assert np.allclose(a, pa[(l, p)], rtol=0, atol=1e-12)

    def test_invalid_shrink_rejected(self):
        _, dp = self._trainer(2)
        with pytest.raises(ValueError):
            dp.shrink_world(0)
        with pytest.raises(ValueError):
            dp.shrink_world(3)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len({len(l) for l in lines if l}) <= 2  # header + rows align

    def test_render_series_missing_values(self):
        text = render_series("s", [1, 2], {"m": [1.0, None]})
        assert "-" in text

    def test_render_empty(self):
        assert "(empty)" in render_table([])
