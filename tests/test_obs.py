"""Observability: the span recorder, metrics registry, Chrome-trace
exporter, cumulative cache counters, and stall-interval attribution.

The exporter contract is the load-bearing piece — the acceptance
criterion is a single command emitting Perfetto-loadable JSON — so the
schema checks here mirror what the viewers actually require
(``ph``/``ts``/``dur``/``pid``/``tid``), and a hypothesis round-trip
holds that every recorded span appears in the export exactly once.
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.plan_cache import PlanCache, STATS_FILENAME
from repro.core import BlockPolicy, make_plan
from repro.hardware import GiB, TieredMemorySpace
from repro.nn import ExecutableModel
from repro.obs.export import (
    chrome_trace,
    runtime_track_events,
    sim_track_events,
    span_track_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER, Tracer
from repro.runtime import AsyncOutOfCoreExecutor
from repro.sim import SimOp, simulate
from repro.sim.stall import stall_intervals, top_stall_intervals

from tests.helpers import build_small_cnn, uniform_blocks

R, S = BlockPolicy.RESIDENT, BlockPolicy.SWAPPED


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Every test starts and ends with the global tracer off and empty."""
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("work", "cat", arg=1) as sp:
            sp.set(more=2)
        t.record("post", start=0.0, end=1.0)
        assert len(t) == 0 and t.drain() == []

    def test_disabled_span_handle_is_shared(self):
        t = Tracer()
        assert t.span("a") is t.span("b")

    def test_span_context_manager_records(self):
        ticks = iter([1.0, 3.5])
        t = Tracer(clock=lambda: next(ticks))
        t.enable()
        with t.span("solve", "planner", method="dp") as sp:
            sp.set(evaluated=7)
        (span,) = t.drain()
        assert span.name == "solve" and span.category == "planner"
        assert span.start == 1.0 and span.end == 3.5
        assert span.duration == 2.5
        assert span.args == {"method": "dp", "evaluated": 7}
        assert span.track == "MainThread"

    def test_record_clamps_negative_duration(self):
        t = Tracer()
        t.enable()
        t.record("backwards", start=5.0, end=4.0, track="x")
        (span,) = t.drain()
        assert span.start == 5.0 and span.end == 5.0

    def test_drain_merges_threads_start_sorted(self):
        t = Tracer()
        t.enable()

        def worker(offset):
            t.record(f"w{offset}", start=float(offset),
                     end=float(offset) + 1, track=f"worker-{offset}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in (3, 1, 2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        t.record("main", start=0.0, end=0.5)
        spans = t.drain()
        assert [s.name for s in spans] == ["main", "w1", "w2", "w3"]
        assert len(t) == 0  # drained buffers are empty

    def test_clear_discards(self):
        t = Tracer()
        t.enable()
        t.record("x", start=0.0, end=1.0)
        t.clear()
        assert t.drain() == []


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        for v in (1.0, 3.0, 2.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7.0
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == 2.0
        json.dumps(snap, allow_nan=False)  # JSON-ready

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_snapshot_is_stamped_and_versioned(self):
        from repro.obs.metrics import SNAPSHOT_SCHEMA

        reg = MetricsRegistry()
        snap = reg.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert isinstance(snap["ts"], float) and snap["ts"] > 0

    def test_histogram_quantiles_exact_under_reservoir(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(100):
            h.observe(float(v))
        s = h.summary()
        assert s["p50"] == 50.0 and s["p95"] == 95.0 and s["p99"] == 99.0

    def test_histogram_quantiles_deterministic_past_reservoir(self):
        from repro.obs.metrics import RESERVOIR_SIZE, Histogram

        def run():
            h = Histogram()
            for v in range(RESERVOIR_SIZE * 4):
                h.observe(float(v))
            return h.summary()

        a, b = run(), run()
        assert a == b
        # sampled quantiles stay ordered and within the observed range
        assert 0.0 <= a["p50"] <= a["p95"] <= a["p99"] <= a["max"]

    def test_empty_histogram_quantiles_are_zero(self):
        from repro.obs.metrics import Histogram

        s = Histogram().summary()
        assert s["p50"] == s["p95"] == s["p99"] == 0.0

    def test_snapshot_never_torn_under_concurrent_observe(self):
        """count and sum always agree: snapshot holds the locks."""
        reg = MetricsRegistry()
        stop = threading.Event()

        def writer():
            h = reg.histogram("h")
            while not stop.is_set():
                h.observe(1.0)

        th = threading.Thread(target=writer)
        th.start()
        try:
            for _ in range(200):
                s = reg.snapshot()["histograms"].get("h")
                if s is None:
                    continue
                assert s["count"] == s["sum"]  # every observation is 1.0
        finally:
            stop.set()
            th.join()


# ---------------------------------------------------------------------------
# Exporter schema
# ---------------------------------------------------------------------------

def _x_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestExporter:
    def test_span_track_schema(self):
        t = Tracer()
        t.enable()
        t.record("a", "cat", start=10.0, end=10.5, track="gpu", block=3)
        t.record("b", "cat", start=10.2, end=10.3, track="stream-h2d",
                 weird=float("inf"))
        doc = chrome_trace(span_track_events(t.drain(), pid=1))
        assert validate_chrome_trace(doc) == []
        xs = _x_events(doc["traceEvents"])
        assert len(xs) == 2
        # timeline shifted to ts=0, microsecond units, non-negative
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["dur"] >= 0 for e in xs)
        a = next(e for e in xs if e["name"] == "a")
        assert a["dur"] == pytest.approx(0.5e6)
        # non-finite args are clamped so strict JSON round-trips
        b = next(e for e in xs if e["name"] == "b")
        assert b["args"]["weird"] is None
        json.dumps(doc, allow_nan=False)

    def test_track_metadata_and_ordering(self):
        t = Tracer()
        t.enable()
        t.record("x", start=0.0, end=1.0, track="stream-h2d")
        t.record("y", start=0.0, end=1.0, track="gpu")
        events = span_track_events(t.drain(), pid=4)
        names = {e["args"]["name"]: e["tid"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        # gpu sorts before the link streams
        assert names["gpu"] < names["stream-h2d"]
        procs = [e for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert procs[0]["args"]["name"] == "planner"
        assert all(e["pid"] == 4 for e in events)

    def test_write_rejects_malformed(self, tmp_path):
        bad = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                                "name": "n", "ts": -5.0, "dur": 1.0}]}
        assert validate_chrome_trace(bad)
        with pytest.raises(ValueError):
            write_chrome_trace(tmp_path / "bad.json", bad)

    def test_write_round_trips(self, tmp_path):
        t = Tracer()
        t.enable()
        t.record("a", start=0.0, end=1.0, track="gpu")
        doc = chrome_trace(span_track_events(t.drain(), pid=1))
        path = write_chrome_trace(tmp_path / "ok.json", doc)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e3),
                              st.floats(min_value=0, max_value=10),
                              st.sampled_from(["gpu", "stream-h2d",
                                               "stream-d2h", "cpu"])),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_every_span_exactly_once(self, raw):
        """Every recorded span appears in the export exactly once."""
        t = Tracer()
        t.enable()
        for i, (start, width, track) in enumerate(raw):
            t.record(f"s{i}", "cat", start=start, end=start + width,
                     track=track)
        spans = t.drain()
        doc = chrome_trace(span_track_events(spans, pid=1))
        assert validate_chrome_trace(doc) == []
        xs = _x_events(doc["traceEvents"])
        assert sorted(e["name"] for e in xs) == \
            sorted(s.name for s in spans)
        # durations survive the shift to ts=0 (to rounding)
        by_name = {e["name"]: e for e in xs}
        for s in spans:
            assert by_name[s.name]["dur"] == \
                pytest.approx(s.duration * 1e6, abs=1e-2)

    def test_empty_inputs_render_empty(self):
        assert span_track_events([], pid=1) == []
        doc = chrome_trace([])
        assert validate_chrome_trace(doc) == []


# ---------------------------------------------------------------------------
# Sim + runtime tracks: parity on a small plan
# ---------------------------------------------------------------------------

def _small_swapping_case():
    g = build_small_cnn()
    blocks = uniform_blocks(g, 4)
    policies = [R, S, S, R][:len(blocks)]
    plan = make_plan(g.name, 4, blocks, policies)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3, 16, 16))
    y = rng.integers(0, 5, 4)
    return g, plan, x, y


def _thread_names(events, pid):
    return {e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == pid}


class TestTimelineTracks:
    def test_sim_tracks_one_per_resource(self):
        ops = [
            SimOp(0, "gpu", 1.0, label="F1", mem_acquire=8),
            SimOp(1, "d2h", 2.0, deps=(0,), label="Sout1", mem_release=8),
            SimOp(2, "gpu", 1.0, deps=(1,), label="B1"),
        ]
        sim = simulate(ops, memory_capacity=16)
        events = sim_track_events(sim, pid=7)
        doc = chrome_trace(events)
        assert validate_chrome_trace(doc) == []
        assert _thread_names(events, 7) == {"gpu", "d2h"}
        xs = _x_events(events)
        assert {e["name"] for e in xs} == {"F1", "Sout1", "B1"}
        b1 = next(e for e in xs if e["name"] == "B1")
        assert b1["args"]["op_id"] == 2

    def test_runtime_and_sim_track_parity(self):
        """The measured iteration exposes the same resource rows the
        simulator predicts (gpu + the links the plan actually uses)."""
        from repro.sim.engine import simulate as sim_fn
        from repro.sim.trainer_sim import compile_plan

        g, plan, x, y = _small_swapping_case()
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 2 * GiB])
        ex = AsyncOutOfCoreExecutor(model, plan, space)
        model.zero_grad()
        ex.run_iteration(x, y, step=0)
        assert ex.trace is not None

        from repro.costs.profiler import profile_graph
        from repro.hardware.interconnect import TransferModel
        from repro.hardware.spec import abci_host, karma_swap_link, \
            tiny_test_device
        from repro.sim.trainer_sim import block_costs

        device = tiny_test_device()
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        cost = profile_graph(g, device, transfer, 4)
        costs = block_costs(plan.blocks, cost)
        sim = sim_fn(compile_plan(plan, costs))

        sim_events = sim_track_events(sim, pid=1)
        rt_events = runtime_track_events(ex.trace, pid=2)
        sim_tracks = _thread_names(sim_events, 1)
        rt_tracks = _thread_names(rt_events, 2)
        assert sim_tracks == rt_tracks == {"gpu", "h2d", "d2h"}

        doc = chrome_trace(sim_events + rt_events)
        assert validate_chrome_trace(doc) == []
        # both timelines are zero-based: the sim starts exactly at 0, the
        # runtime within scheduling noise of its wall_start
        sim_xs = [e for e in _x_events(doc["traceEvents"]) if e["pid"] == 1]
        assert min(e["ts"] for e in sim_xs) == 0.0
        rt_xs = [e for e in _x_events(doc["traceEvents"]) if e["pid"] == 2]
        assert min(e["ts"] for e in rt_xs) >= 0.0

    def test_traced_runtime_spans_cover_gpu_and_streams(self):
        """With the tracer on, the async iteration records GPU op spans
        and per-link transfer spans the exporter can render."""
        g, plan, x, y = _small_swapping_case()
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 2 * GiB])
        ex = AsyncOutOfCoreExecutor(model, plan, space)
        model.zero_grad()
        TRACER.enable()
        try:
            ex.run_iteration(x, y, step=0)
            spans = TRACER.drain()
        finally:
            TRACER.disable()
        tracks = {s.track for s in spans}
        assert "gpu" in tracks
        assert any(t.startswith("stream-") for t in tracks)
        names = {s.name for s in spans}
        assert any(n.startswith("B") for n in names)     # backward spans
        assert any(n.startswith("Sout") for n in names)  # transfers
        doc = chrome_trace(span_track_events(spans, pid=1))
        assert validate_chrome_trace(doc) == []


# ---------------------------------------------------------------------------
# Engine + planner instrumentation is observation-only
# ---------------------------------------------------------------------------

class TestInstrumentationNeutrality:
    def test_simulate_identical_with_tracing(self):
        ops = [
            SimOp(0, "gpu", 1.0, label="F1", mem_acquire=8),
            SimOp(1, "d2h", 2.0, deps=(0,), label="Sout1", mem_release=8),
            SimOp(2, "h2d", 2.0, deps=(1,), label="Sin1", mem_acquire=8),
            SimOp(3, "gpu", 1.5, deps=(2,), label="B1", mem_release=8),
        ]
        base = simulate(ops, memory_capacity=12)
        TRACER.enable()
        try:
            traced = simulate(ops, memory_capacity=12)
        finally:
            TRACER.disable()
        assert traced.makespan == base.makespan
        for op_id, t in base.timings.items():
            tt = traced.timings[op_id]
            assert (tt.start, tt.finish) == (t.start, t.finish)
        spans = TRACER.drain()
        sim_spans = [s for s in spans if s.name == "sim.simulate"]
        assert len(sim_spans) == 1
        assert sim_spans[0].args["events"] == len(ops)


# ---------------------------------------------------------------------------
# Cumulative plan-cache counters (the `cache info` sidecar)
# ---------------------------------------------------------------------------

class TestCumulativeCacheStats:
    def test_flush_and_accumulate_across_instances(self, tmp_path):
        c1 = PlanCache(cache_dir=tmp_path, capacity=4)
        assert c1.get("a" * 64) is None          # miss
        c1.put("a" * 64, {"p": 1})               # store
        assert c1.get("a" * 64) is not None      # memory hit
        c1.flush_session_stats()

        c2 = PlanCache(cache_dir=tmp_path, capacity=4)
        assert c2.get("a" * 64) is not None      # disk hit
        c2.get("b" * 64)                         # miss
        c2.flush_session_stats()

        cum = PlanCache(cache_dir=tmp_path).cumulative_stats()
        assert cum["hits"] == 2 and cum["misses"] == 2
        assert cum["memory_hits"] == 1 and cum["disk_hits"] == 1
        assert cum["stores"] == 1

    def test_flush_is_delta_not_absolute(self, tmp_path):
        c = PlanCache(cache_dir=tmp_path)
        c.get("a" * 64)
        c.flush_session_stats()
        c.flush_session_stats()  # nothing new: must not double-count
        c.get("b" * 64)
        c.flush_session_stats()
        assert c.cumulative_stats()["misses"] == 2

    def test_sidecar_never_a_cache_key(self, tmp_path):
        c = PlanCache(cache_dir=tmp_path)
        c.put("a" * 64, {"p": 1})
        c.flush_session_stats()
        assert (tmp_path / STATS_FILENAME).is_file()
        assert set(c.keys()) == {"a" * 64}

    def test_clear_resets_counters(self, tmp_path):
        c = PlanCache(cache_dir=tmp_path)
        c.put("a" * 64, {"p": 1})
        c.get("b" * 64)
        c.flush_session_stats()
        removed = c.clear()
        # memory copy + disk copy of the one entry; the sidecar is not
        # counted as a removed plan
        assert removed == 2
        assert PlanCache(cache_dir=tmp_path).cumulative_stats() == {
            "hits": 0, "misses": 0, "memory_hits": 0, "disk_hits": 0,
            "stores": 0, "evictions": 0, "invalidated": 0}

    def test_memory_only_cache_noops(self):
        c = PlanCache(persist=False)
        c.get("a" * 64)
        c.flush_session_stats()  # must not touch disk or raise
        assert c.cumulative_stats()["misses"] == 0


# ---------------------------------------------------------------------------
# Stall intervals (validation enrichment)
# ---------------------------------------------------------------------------

class TestStallIntervals:
    def _ops(self):
        # F1 [0,1] gpu; Sin2 on h2d [0,3]; B2 deps both -> waits 1..3 on
        # h2d; B1 dep B2 -> back-to-back, no gap
        return [
            SimOp(0, "gpu", 1.0, label="F1"),
            SimOp(1, "h2d", 3.0, label="Sin2"),
            SimOp(2, "gpu", 1.0, deps=(0, 1), label="B2"),
            SimOp(3, "gpu", 1.0, deps=(2,), label="B1"),
        ]

    def test_intervals_name_the_waiting_op(self):
        ops = self._ops()
        sim = simulate(ops)
        intervals = stall_intervals(ops, sim)
        assert set(intervals) == {"h2d"}
        (iv,) = intervals["h2d"]
        assert iv["op"] == "B2"
        assert iv["start"] == pytest.approx(1.0)
        assert iv["end"] == pytest.approx(3.0)
        assert iv["width"] == pytest.approx(2.0)

    def test_interval_sum_matches_profile(self):
        from repro.sim.stall import stall_profile

        ops = self._ops()
        sim = simulate(ops)
        profile = stall_profile(ops, sim)
        intervals = stall_intervals(ops, sim)
        for resource, total in profile.stalls.items():
            got = sum(iv["width"] for iv in intervals.get(resource, []))
            assert got == pytest.approx(total)

    def test_top_k_widest_first(self):
        ops = [SimOp(0, "gpu", 1.0, label="F1"),
               SimOp(1, "h2d", 2.0, label="Sin2"),
               SimOp(2, "gpu", 1.0, deps=(0, 1), label="B2"),
               SimOp(3, "h2d", 6.0, deps=(1,), label="Sin3"),
               SimOp(4, "gpu", 1.0, deps=(2, 3), label="B3"),
               SimOp(5, "gpu", 1.0, deps=(4,), label="B1")]
        sim = simulate(ops)
        top = top_stall_intervals(ops, sim, k=1)
        assert len(top["h2d"]) == 1
        assert top["h2d"][0]["op"] == "B3"  # the widest wins

    def test_validation_report_carries_top_stalls(self):
        from repro.eval.validation import validate_config

        report = validate_config("cnn", target_wall_s=0.05)
        assert report.top_stalls, "tight cnn config must stall somewhere"
        for intervals in report.top_stalls.values():
            assert len(intervals) <= 3
            widths = [iv["width"] for iv in intervals]
            assert widths == sorted(widths, reverse=True)
        detail = report.stall_detail()
        assert "widest predicted stall intervals" in detail
        as_json = report.to_dict()
        assert "top_stalls" in as_json
        json.dumps(as_json, allow_nan=False)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_plan_trace_writes_perfetto_json(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("KARMA_PLAN_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "plan_trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["plan", "--model", "resnet50", "--batch", "8",
                   "--trace", str(out), "--metrics", str(metrics)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "plan" in names              # planner summary span
        assert any(n.startswith("plan.") for n in names)  # phase spans
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["planner.plans"] >= 1

    def test_plan_trace_rejects_manifest(self, tmp_path):
        from repro.cli import main

        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([{"model": "resnet50", "batch": 8}]))
        rc = main(["plan", "--manifest", str(manifest),
                   "--trace", str(tmp_path / "t.json")])
        assert rc == 2

    def test_trace_subcommand_unknown_config(self, capsys):
        from repro.cli import main

        assert main(["trace", "nope"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_trace_subcommand_validation_config(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("KARMA_PLAN_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "cnn.json"
        rc = main(["trace", "cnn", "-o", str(out), "--target-wall", "0.05"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs == {"planner", "predicted (sim) [cnn]",
                         "measured (runtime) [cnn]"}

    def test_cache_info_reports_cumulative(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("KARMA_PLAN_CACHE_DIR", str(tmp_path / "cache"))
        for _ in range(2):
            rc = main(["plan", "--model", "resnet50", "--batch", "8"])
            assert rc == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        text = capsys.readouterr().out
        assert "session totals" in text
        assert "1 hit(s)" in text and "1 miss(es)" in text
