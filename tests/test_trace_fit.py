"""Trace-calibration fitter: round-trip property tests.

The contract under test: synthesizing a runtime trace from *known*
per-block compute scales and per-link latency/bandwidth, the fitter must
recover those parameters — exactly in the noise-free case, within the
noise bound otherwise — and a calibrated re-plan must never worsen the
sim-vs-real validation error beyond measurement jitter.
"""

import json
from dataclasses import dataclass
from typing import Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.trace_fit import (
    CALIBRATION_SCHEMA_VERSION,
    CalibrationArtifact,
    LinkFit,
    fit_link,
    fit_op_scales,
    fit_trace,
    fit_validation_report,
    merge_artifacts,
)
from repro.runtime.streams import OpRecord


@dataclass(frozen=True)
class FakeBlockCosts:
    """The slice of BlockCosts the compute fitter reads."""

    fw: Tuple[float, ...]
    bw: Tuple[float, ...]


def _gpu_record(kind: str, block: int, duration: float,
                at: float = 0.0) -> OpRecord:
    return OpRecord(label=f"{kind}{block + 1}", resource="gpu",
                    block=block, start=at, finish=at + duration,
                    ready=at)


def _link_record(resource: str, nbytes: int, duration: float) -> OpRecord:
    return OpRecord(label=f"X{nbytes}", resource=resource, block=0,
                    start=0.0, finish=duration, ready=0.0, nbytes=nbytes)


# ---------------------------------------------------------------------------
# Compute-scale recovery
# ---------------------------------------------------------------------------

@st.composite
def scale_cases(draw):
    """(costs, blocks, names, true scales, noise bound, records, scale)."""
    n_blocks = draw(st.integers(min_value=1, max_value=6))
    pos = st.floats(min_value=1e-4, max_value=2.0, allow_nan=False)
    fw = tuple(draw(pos) for _ in range(n_blocks))
    bw = tuple(draw(pos) for _ in range(n_blocks))
    true = [draw(st.floats(min_value=0.25, max_value=4.0,
                           allow_nan=False)) for _ in range(n_blocks)]
    noise = draw(st.sampled_from([0.0, 0.01, 0.05]))
    time_scale = draw(st.sampled_from([0.5, 1.0, 40.0]))
    blocks = tuple((b, b + 1) for b in range(n_blocks))
    names = [f"layer{b}" for b in range(n_blocks)]
    records = []
    for b in range(n_blocks):
        for kind, ref in (("F", fw[b]), ("R", fw[b]), ("B", bw[b])):
            reps = draw(st.integers(min_value=1, max_value=3))
            for j in range(reps):
                eps = draw(st.floats(min_value=-noise, max_value=noise,
                                     allow_nan=False))
                measured = true[b] * ref * (1.0 + eps) * time_scale
                records.append(_gpu_record(kind, b, measured))
    return (FakeBlockCosts(fw, bw), blocks, names, true, noise,
            records, time_scale)


class TestOpScaleRecovery:
    @given(scale_cases())
    @settings(deadline=None)
    def test_property_round_trip_within_noise(self, case):
        costs, blocks, names, true, noise, records, time_scale = case
        scales = fit_op_scales(records, costs, blocks, names,
                               time_scale=time_scale)
        assert set(scales) == set(names)
        for b, name in enumerate(names):
            # through-origin least squares: the relative error of the
            # recovered scale is bounded by the injected relative noise
            rel = abs(scales[name] - true[b]) / true[b]
            assert rel <= noise + 1e-9

    def test_multi_layer_blocks_broadcast_the_block_scale(self):
        costs = FakeBlockCosts(fw=(2.0,), bw=(3.0,))
        blocks = ((0, 3),)
        names = ["a", "b", "c"]
        records = [_gpu_record("F", 0, 2.0 * 1.5),
                   _gpu_record("B", 0, 3.0 * 1.5)]
        scales = fit_op_scales(records, costs, blocks, names,
                               time_scale=1.0)
        assert scales == {"a": 1.5, "b": 1.5, "c": 1.5}

    def test_unsampled_blocks_keep_unit_scale(self):
        costs = FakeBlockCosts(fw=(1.0, 1.0), bw=(1.0, 1.0))
        scales = fit_op_scales([_gpu_record("F", 0, 2.0)], costs,
                               ((0, 1), (1, 2)), ["a", "b"],
                               time_scale=1.0)
        assert scales == {"a": 2.0, "b": 1.0}

    def test_non_gpu_and_unparseable_records_ignored(self):
        costs = FakeBlockCosts(fw=(1.0,), bw=(1.0,))
        records = [_link_record("h2d", 100, 9.0),
                   OpRecord("U1", "gpu", 0, 0.0, 9.0, 0.0),
                   OpRecord("F99", "gpu", 98, 0.0, 9.0, 0.0),
                   _gpu_record("F", 0, 1.25)]
        scales = fit_op_scales(records, costs, ((0, 1),), ["a"],
                               time_scale=1.0)
        assert scales == {"a": 1.25}

    def test_zero_time_scale_rejected(self):
        with pytest.raises(ValueError, match="time_scale"):
            fit_op_scales([], FakeBlockCosts((1.0,), (1.0,)),
                          ((0, 1),), ["a"], time_scale=0.0)


# ---------------------------------------------------------------------------
# Link-fit recovery
# ---------------------------------------------------------------------------

@st.composite
def link_cases(draw):
    latency = draw(st.floats(min_value=0.0, max_value=1e-3,
                             allow_nan=False))
    bandwidth = draw(st.floats(min_value=1e6, max_value=1e12,
                               allow_nan=False))
    time_scale = draw(st.sampled_from([0.25, 1.0, 10.0]))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=1 << 30),
                          min_size=2, max_size=12, unique=True))
    records = [_link_record("h2d", nb,
                            (latency + nb / bandwidth) * time_scale)
               for nb in sizes]
    return latency, bandwidth, time_scale, records


class TestLinkFitRecovery:
    @given(link_cases())
    @settings(deadline=None)
    def test_property_noise_free_recovery(self, case):
        latency, bandwidth, time_scale, records = case
        fit = fit_link("h2d", records, time_scale=time_scale)
        assert fit.samples == len(records)
        assert fit.latency_s == pytest.approx(latency, rel=1e-6,
                                              abs=1e-12)
        assert fit.bandwidth_bytes_per_s == pytest.approx(bandwidth,
                                                          rel=1e-6)

    def test_degenerate_same_size_falls_back_to_throughput(self):
        records = [_link_record("d2h", 1000, 2.0),
                   _link_record("d2h", 1000, 2.0)]
        fit = fit_link("d2h", records, time_scale=1.0)
        assert fit.latency_s == 0.0
        assert fit.bandwidth_bytes_per_s == pytest.approx(500.0)

    def test_no_samples_is_unfit(self):
        fit = fit_link("d2s", [], time_scale=1.0)
        assert fit == LinkFit("d2s", 0.0, 0.0, 0, 0.0)


# ---------------------------------------------------------------------------
# Artifact serialization and merging
# ---------------------------------------------------------------------------

class TestArtifact:
    def _artifact(self):
        costs = FakeBlockCosts(fw=(1.0, 2.0), bw=(1.5, 2.5))
        records = [_gpu_record("F", 0, 1.1), _gpu_record("B", 1, 2.5),
                   _link_record("h2d", 1 << 20, 0.01),
                   _link_record("h2d", 1 << 22, 0.03)]
        return fit_trace(records, costs=costs, blocks=((0, 1), (1, 2)),
                         layer_names=["a", "b"], time_scale=1.0,
                         model="toy", meta={"seed": 0})

    def test_json_round_trip_is_lossless(self, tmp_path):
        art = self._artifact()
        path = tmp_path / "calib.json"
        art.save(path)
        loaded = CalibrationArtifact.load(path)
        assert loaded.to_json() == art.to_json()
        assert loaded.op_scales == art.op_scales
        assert loaded.links["h2d"] == art.links["h2d"]
        assert loaded.version == CALIBRATION_SCHEMA_VERSION

    def test_unknown_schema_version_rejected(self, tmp_path):
        payload = self._artifact().to_json()
        payload["schema_version"] = CALIBRATION_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            CalibrationArtifact.load(path)

    def test_merge_unions_scales_and_pools_links(self):
        a = self._artifact()
        b = CalibrationArtifact(
            model="other", time_scale=1.0, op_scales={"c": 2.0},
            links={"h2d": LinkFit("h2d", 0.0,
                                  a.links["h2d"].bandwidth_bytes_per_s,
                                  2, 0.0)})
        merged = merge_artifacts([a, b])
        assert merged.op_scales == {**a.op_scales, "c": 2.0}
        assert merged.links["h2d"].samples == a.links["h2d"].samples + 2
        assert merged.links["h2d"].bandwidth_bytes_per_s > 0
        assert merge_artifacts([a]) is a
        with pytest.raises(ValueError):
            merge_artifacts([])


# ---------------------------------------------------------------------------
# End to end: fit from a real validation run, re-plan calibrated
# ---------------------------------------------------------------------------

class TestCalibratedValidation:
    #: measurement jitter allowance — thread-scheduling noise between two
    #: paced runs; well below the uncalibrated errors the fit removes
    EPS = 0.02

    @pytest.mark.parametrize("name", ["cnn", "gpt"])
    def test_calibrated_replan_does_not_worsen_error(self, name):
        from repro.eval.validation import validate_config

        before = validate_config(name, target_wall_s=0.15)
        art = fit_validation_report(before)
        assert art.op_scales and all(s > 0 for s in
                                     art.op_scales.values())
        after = validate_config(name, target_wall_s=0.15,
                                calibration=art.op_scales)
        assert after.max_abs_error <= before.max_abs_error + self.EPS

    def test_report_without_artifacts_rejected(self):
        from repro.eval.validation import ValidationReport
        from repro.sim.stall import StallProfile

        empty = StallProfile(makespan=0.0, gpu_busy=0.0)
        report = ValidationReport(
            config="cnn", batch_size=1, num_blocks=1, plan_string="",
            time_scale=1.0, predicted=empty, measured=empty)
        with pytest.raises(ValueError, match="raw artifacts"):
            fit_validation_report(report)
