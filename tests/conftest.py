"""Shared fixtures: small graphs, the default platform, canned plans.

Also registers the deterministic hypothesis profiles:

* ``dev`` (default) — a modest example budget for fast local runs;
* ``ci`` — more examples and ``derandomize=True``, so a CI failure
  reproduces locally from the printed ``@reproduce_failure`` seed
  instead of depending on a random run-to-run state.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (the CI workflow does).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

settings.register_profile("dev", max_examples=50, deadline=None,
                          derandomize=True)
settings.register_profile("ci", max_examples=200, deadline=None,
                          derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _flight_dumps_to_tmp(tmp_path, monkeypatch):
    """Crash-path tests trigger flight-recorder dumps; keep them in tmp."""
    monkeypatch.setenv("KARMA_FLIGHT_DIR", str(tmp_path / "flight"))

from repro.costs.profiler import profile_graph
from repro.hardware import TransferModel, abci_host, karma_swap_link, v100_sxm2_16gb

from tests.helpers import build_small_cnn, build_small_unet


@pytest.fixture(scope="session")
def small_cnn():
    return build_small_cnn()


@pytest.fixture(scope="session")
def small_cnn_nobn():
    return build_small_cnn(with_bn=False, name="small_cnn_nobn")


@pytest.fixture(scope="session")
def small_unet():
    return build_small_unet()


@pytest.fixture(scope="session")
def platform():
    device = v100_sxm2_16gb()
    host = abci_host()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=host)
    return device, host, transfer


@pytest.fixture(scope="session")
def small_cnn_cost(small_cnn, platform):
    device, _, transfer = platform
    return profile_graph(small_cnn, device, transfer, batch_size=8)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
