"""Ring communicator, phased exchange, DP-KARMA equivalence (§IV-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPolicy, make_plan
from repro.distributed import (
    DataParallelKarmaTrainer,
    HostAdam,
    HostSGD,
    RingCommunicator,
    allreduce_traffic_per_rank,
)
from repro.hardware import GiB
from repro.nn import SGD, Adam, ExecutableModel
from repro.sim import phased_groups

from tests.helpers import build_small_cnn

R, S, C = BlockPolicy.RESIDENT, BlockPolicy.SWAPPED, BlockPolicy.RECOMPUTED


class TestRingAllreduce:
    @pytest.mark.parametrize("world", [2, 3, 4, 7])
    def test_sum_matches_numpy(self, world, rng):
        comm = RingCommunicator(world)
        bufs = [rng.standard_normal(37) for _ in range(world)]
        expected = np.sum(bufs, axis=0)
        comm.allreduce(bufs)
        for b in bufs:
            assert np.allclose(b, expected, rtol=1e-12)

    def test_average_mode(self, rng):
        comm = RingCommunicator(4)
        bufs = [rng.standard_normal(10) for _ in range(4)]
        expected = np.mean(bufs, axis=0)
        comm.allreduce(bufs, average=True)
        for b in bufs:
            assert np.allclose(b, expected, rtol=1e-12)

    def test_traffic_matches_alpha_beta_model(self, rng):
        world, size = 4, 1024
        comm = RingCommunicator(world)
        bufs = [rng.standard_normal(size) for _ in range(world)]
        comm.allreduce(bufs)
        per_rank = comm.stats[0].bytes_sent
        expected = allreduce_traffic_per_rank(size * 8, world)
        assert per_rank == pytest.approx(expected, rel=0.02)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_property_allreduce_correct(self, world, size):
        rng = np.random.default_rng(world * 1000 + size)
        comm = RingCommunicator(world)
        bufs = [rng.standard_normal(size) for _ in range(world)]
        expected = np.sum(bufs, axis=0)
        comm.allreduce(bufs)
        for b in bufs:
            assert np.allclose(b, expected, rtol=1e-9, atol=1e-9)

    def test_shape_mismatch_rejected(self):
        comm = RingCommunicator(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(3), np.zeros(4)])

    def test_broadcast(self, rng):
        comm = RingCommunicator(3)
        bufs = [rng.standard_normal(5) for _ in range(3)]
        src = bufs[1].copy()
        comm.broadcast(bufs, root=1)
        for b in bufs:
            assert np.array_equal(b, src)


class TestPhasedGroups:
    def test_tail_first_order(self):
        groups = phased_groups([100] * 6, target_group_bytes=200)
        assert groups[0] == [5, 4]
        flat = [b for g in groups for b in g]
        assert sorted(flat) == list(range(6))

    def test_single_group_when_target_large(self):
        groups = phased_groups([10, 10], target_group_bytes=10**9)
        assert len(groups) == 1

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            phased_groups([10], 0)


def _blocks(graph, k):
    n = len(graph)
    bounds = sorted({round((i + 1) * n / k) for i in range(k)})
    bounds[-1] = n
    return list(zip([0] + bounds[:-1], bounds))


class TestDataParallelEquivalence:
    def test_dp_karma_equals_single_worker_exactly(self):
        """4 OOC workers x batch 2 == 1 in-core worker x batch 8, bitwise
        (BN-free model: batch-norm statistics are per-shard by design)."""
        g = build_small_cnn(with_bn=False, name="dp_nobn")
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        blocks = _blocks(g, 3)
        plan = make_plan(g.name, 2, blocks, [S, C, R])
        dp = DataParallelKarmaTrainer(
            g, plan, world_size=4, near_capacity=2 * GiB,
            far_capacity=32 * GiB, optimizer=HostSGD(lr=0.1, momentum=0.9),
            dtype=np.float64, seed=7)
        single = ExecutableModel(g, dtype=np.float64, seed=7)
        opt = SGD(lr=0.1, momentum=0.9)
        for s in range(4):
            dp.train_step(x, y)
            single.train_step(x, y, opt, step=s)
            assert dp.parameters_equal_across_workers()
        ref = {(l, p): a for l, p, a in single.parameters()}
        for (l, p, a) in dp.models[0].parameters():
            assert np.allclose(a, ref[(l, p)], rtol=0, atol=1e-12), \
                f"param drift {l}.{p}"

    def test_dp_with_batchnorm_stays_close(self):
        """With BN, per-shard statistics make DP inexact but close — the
        realistic data-parallel regime the paper trains in."""
        g = build_small_cnn(name="dp_bn")
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        plan = make_plan(g.name, 4, _blocks(g, 3), [S, C, R])
        dp = DataParallelKarmaTrainer(
            g, plan, world_size=2, near_capacity=2 * GiB,
            far_capacity=32 * GiB, optimizer=HostSGD(lr=0.05),
            dtype=np.float64, seed=7)
        single = ExecutableModel(g, dtype=np.float64, seed=7)
        opt = SGD(lr=0.05)
        for s in range(3):
            l_dp = dp.train_step(x, y)
            l_s = single.train_step(x, y, opt, step=s)
        assert l_dp == pytest.approx(l_s, rel=0.05)

    def test_host_adam_matches_device_adam(self):
        """CPU-side Adam == device Adam (same kernels) on a 1-worker DP."""
        g = build_small_cnn(with_bn=False, name="adam_nobn")
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 5, 4)
        plan = make_plan(g.name, 4, _blocks(g, 3), [S, C, R])
        dp = DataParallelKarmaTrainer(
            g, plan, world_size=1, near_capacity=2 * GiB,
            far_capacity=32 * GiB, optimizer=HostAdam(lr=1e-3),
            dtype=np.float64, seed=7)
        single = ExecutableModel(g, dtype=np.float64, seed=7)
        opt = Adam(lr=1e-3)
        for s in range(3):
            dp.train_step(x, y)
            single.train_step(x, y, opt, step=s)
        ref = {(l, p): a for l, p, a in single.parameters()}
        for (l, p, a) in dp.models[0].parameters():
            assert np.allclose(a, ref[(l, p)], rtol=0, atol=1e-12)

    def test_indivisible_batch_rejected(self):
        g = build_small_cnn(with_bn=False, name="odd_nobn")
        plan = make_plan(g.name, 2, _blocks(g, 3), [S, C, R])
        dp = DataParallelKarmaTrainer(g, plan, world_size=2,
                                      near_capacity=2 * GiB,
                                      far_capacity=32 * GiB)
        with pytest.raises(ValueError):
            dp.train_step(np.zeros((3, 3, 16, 16), dtype=np.float32),
                          np.zeros(3, dtype=np.int64))

    def test_dp_convergence(self):
        """DP-KARMA drives the loss down on separable data (accuracy
        parity at tractable scale, §IV-D)."""
        from repro.data import SyntheticImages

        g = build_small_cnn(name="dp_conv")
        plan = make_plan(g.name, 2, _blocks(g, 3), [S, C, R])
        dp = DataParallelKarmaTrainer(
            g, plan, world_size=2, near_capacity=2 * GiB,
            far_capacity=32 * GiB,
            optimizer=HostSGD(lr=0.1, momentum=0.9), dtype=np.float64,
            seed=3)
        data = SyntheticImages((3, 16, 16), 5, seed=1, dtype=np.float64)
        losses = []
        for s in range(15):
            x, y = data.batch(4, s)
            losses.append(dp.train_step(x, y))
        assert losses[-1] < 0.7 * losses[0]
