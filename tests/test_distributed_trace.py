"""End-to-end distributed observability: trace propagation, flight
recorder, live telemetry.

Socket tests run a real ``PlannerServer`` over a unix socket with a
fast fake planner; the one real-planner test (``trace --server``) uses
the config proven to fan its portfolio sweep across >= 2 pool-worker
processes, so the stitched Chrome trace carries client, daemon, and
worker process rows under a single trace id.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List

import pytest

from repro.obs.export import (
    chrome_trace,
    stitched_trace_events,
    validate_chrome_trace,
)
from repro.obs.flight import DUMP_SCHEMA, FLIGHT, FlightRecorder
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER, Span, TraceContext, span_from_dict
from repro.service.client import PlannerClient, wait_for_server
from repro.service.daemon import PlannerDaemon, ServiceConfig
from repro.service.errors import BadRequest
from repro.service.server import PlannerServer


def _planner(gate: threading.Event):
    def plan(config: Dict[str, Any], n_workers: int) -> Dict[str, Any]:
        assert gate.wait(10), "test gate never opened"
        return {"cache": "miss", "model": config.get("model"),
                "batch": config.get("batch")}
    return plan


@pytest.fixture()
def traced_server(tmp_path):
    """Unix-socket server over a gate-controlled fake planner."""
    sock = str(tmp_path / "karma.sock")
    gate = threading.Event()
    gate.set()
    daemon = PlannerDaemon(ServiceConfig(pool_workers=2),
                           planner=_planner(gate))
    daemon.start()
    server = PlannerServer(daemon, sock).start()
    assert wait_for_server(sock, timeout=10)
    yield sock, daemon, gate
    server.stop()
    daemon.stop()


# ---------------------------------------------------------------------------
# trace propagation over the wire
# ---------------------------------------------------------------------------


class TestWireTracePropagation:
    def test_plan_reply_ships_spans_under_the_request_trace(
            self, traced_server):
        sock, _, _ = traced_server
        ctx = TraceContext.new()
        with PlannerClient(sock, timeout=30) as c:
            reply = c.plan({"model": "unet", "batch": 8}, trace=ctx,
                           collect_spans=True)
        spans = [span_from_dict(d) for d in reply["spans"]]
        assert spans, "traced reply must carry daemon spans"
        assert {s.trace_id for s in spans} == {ctx.trace_id}
        assert {s.proc for s in spans} == {"daemon"}
        assert {"service.request", "service.plan"} <= {s.name
                                                       for s in spans}

    def test_untraced_plan_ships_no_spans(self, traced_server):
        sock, _, _ = traced_server
        with PlannerClient(sock, timeout=30) as c:
            reply = c.plan({"model": "unet", "batch": 9})
        assert reply.get("spans") is None

    def test_k_parallel_clients_get_k_distinct_traces(self, traced_server):
        sock, _, _ = traced_server
        k = 4
        contexts = [TraceContext.new() for _ in range(k)]
        replies: List[Dict[str, Any]] = [{} for _ in range(k)]

        def go(i: int) -> None:
            with PlannerClient(sock, timeout=30) as c:
                replies[i] = c.plan({"model": "unet", "batch": 100 + i},
                                    trace=contexts[i], collect_spans=True)

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(k)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        ids = set()
        for i, reply in enumerate(replies):
            got = {span_from_dict(d).trace_id for d in reply["spans"]}
            assert got == {contexts[i].trace_id}, \
                "spans must not leak across concurrent traces"
            ids |= got
        assert len(ids) == k

    def test_singleflight_waiter_inherits_leader_spans(self, traced_server):
        sock, daemon, gate = traced_server
        gate.clear()
        leader_ctx, waiter_ctx = TraceContext.new(), TraceContext.new()
        config = {"model": "unet", "batch": 77}
        out: Dict[str, Dict[str, Any]] = {}

        def leader() -> None:
            with PlannerClient(sock, timeout=30) as c:
                out["leader"] = c.plan(config, trace=leader_ctx,
                                       collect_spans=True)

        merge_base = METRICS.snapshot()["counters"].get(
            "service.singleflight_merges", 0)
        t_leader = threading.Thread(target=leader)
        t_leader.start()
        # wait until the leader's flight is registered, then join it
        pause = threading.Event()
        for _ in range(500):
            with daemon._flights_lock:
                if daemon._flights:
                    break
            pause.wait(0.01)
        else:
            pytest.fail("leader flight never appeared")

        def waiter() -> None:
            with PlannerClient(sock, timeout=30) as c:
                out["waiter"] = c.plan(config, trace=waiter_ctx,
                                       collect_spans=True)

        t_waiter = threading.Thread(target=waiter)
        t_waiter.start()
        for _ in range(500):
            if METRICS.snapshot()["counters"].get(
                    "service.singleflight_merges", 0) > merge_base:
                break
            pause.wait(0.01)
        gate.set()
        t_leader.join(30)
        t_waiter.join(30)

        assert not out["leader"]["merged"]
        assert out["waiter"]["merged"]
        waiter_spans = [span_from_dict(d)
                        for d in out["waiter"]["spans"]]
        merged = [s for s in waiter_spans if s.name == "service.merged"]
        assert merged and merged[0].args["merged_into"] == \
            leader_ctx.trace_id
        # the leader's planning spans ride along under the leader's trace
        plan_spans = [s for s in waiter_spans if s.name == "service.plan"]
        assert plan_spans and plan_spans[0].trace_id == leader_ctx.trace_id


# ---------------------------------------------------------------------------
# stitched export
# ---------------------------------------------------------------------------


def _span(name: str, start: float, end: float, *, proc: str = "",
          trace_id: str = "t1", track: str = "svc",
          **args: Any) -> Span:
    return Span(name=name, category="service", start=start, end=end,
                track=track, args=dict(args), trace_id=trace_id, proc=proc)


class TestStitchedExport:
    def test_processes_ranked_client_daemon_workers(self):
        spans = [
            _span("client.plan", 0.0, 4.0),
            _span("service.request", 1.0, 3.0, proc="daemon"),
            _span("opt1.eval[0]", 1.5, 2.0, proc="worker-9"),
            _span("opt1.eval[1]", 1.5, 2.0, proc="worker-8"),
        ]
        events = stitched_trace_events(spans)
        names = {e["args"]["name"]: e["pid"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert names == {"client": 1, "daemon": 2, "worker-8": 3,
                         "worker-9": 4}

    def test_single_shared_t0_keeps_rows_aligned(self):
        spans = [_span("a", 10.0, 11.0),
                 _span("b", 10.5, 12.0, proc="daemon")]
        events = [e for e in stitched_trace_events(spans)
                  if e.get("ph") == "X"]
        by_name = {e["name"]: e for e in events}
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == pytest.approx(0.5e6)

    def test_trace_id_surfaces_in_event_args(self):
        events = stitched_trace_events([_span("a", 0.0, 1.0,
                                              trace_id="feed")])
        xs = [e for e in events if e.get("ph") == "X"]
        assert xs[0]["args"]["trace_id"] == "feed"

    def test_singleflight_merge_renders_flow_arrows(self):
        spans = [
            _span("service.plan", 0.0, 2.0, proc="daemon",
                  trace_id="leader"),
            _span("service.merged", 0.5, 2.1, proc="daemon",
                  trace_id="waiter", merged_into="leader"),
        ]
        events = stitched_trace_events(spans)
        flows = [e for e in events if e.get("ph") in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["ts"] == pytest.approx(2.0e6)
        assert finish["ts"] == pytest.approx(2.1e6)
        assert finish["bp"] == "e"
        assert start["id"] == finish["id"]
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_stitched_document_validates(self):
        spans = [_span("client.plan", 0.0, 3.0),
                 _span("service.request", 1.0, 2.0, proc="daemon"),
                 _span("opt1.eval[0]", 1.2, 1.8, proc="worker-1")]
        assert validate_chrome_trace(
            chrome_trace(stitched_trace_events(spans))) == []

    def test_empty_spans_render_nothing(self):
        assert stitched_trace_events([]) == []


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        fr = FlightRecorder(capacity=3, clock=lambda: 1.0)
        for i in range(5):
            fr.note("e", i=i)
        assert len(fr) == 3
        snap = fr.snapshot()
        assert snap["dropped"] == 2
        assert [e["i"] for e in snap["entries"]] == [2, 3, 4]

    def test_snapshot_shape(self):
        fr = FlightRecorder(capacity=4, clock=lambda: 7.5)
        fr.note("worker_crashed", worker="plan-worker-0")
        snap = fr.snapshot("worker_crashed", {"worker": "plan-worker-0"})
        assert snap["schema"] == DUMP_SCHEMA
        assert snap["reason"] == "worker_crashed"
        assert snap["detail"] == {"worker": "plan-worker-0"}
        assert snap["ts"] == 7.5
        assert snap["metrics"]["schema"] >= 2
        entry = snap["entries"][0]
        assert entry["kind"] == "event"
        assert entry["event"] == "worker_crashed"

    def test_dump_writes_atomic_artifact(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.note("boom")
        path = fr.dump("worker_crashed", detail={"worker": "w0"},
                       directory=str(tmp_path))
        assert path.name.startswith("flight_worker_crashed_")
        doc = json.loads(path.read_text())
        assert doc["schema"] == DUMP_SCHEMA
        assert doc["detail"] == {"worker": "w0"}
        assert not list(tmp_path.glob("*.tmp*")), "no torn temp files"

    def test_dump_rotation_keeps_newest(self, tmp_path):
        fr = FlightRecorder(capacity=4, keep=2)
        paths = [fr.dump("on_demand", directory=str(tmp_path))
                 for _ in range(5)]
        left = sorted(p.name for p in tmp_path.glob("flight_*.json"))
        assert len(left) == 2
        assert paths[-1].name in left

    def test_tracer_sink_feeds_the_ring(self):
        FLIGHT.clear()
        ctx = TraceContext.new()
        with TRACER.activate(ctx):
            with TRACER.span("probe.flight", "test", track="t"):
                pass
        snap = FLIGHT.snapshot()
        probes = [e for e in snap["entries"]
                  if e["kind"] == "span" and e["name"] == "probe.flight"]
        assert probes and probes[0]["trace_id"] == ctx.trace_id

    def test_worker_crash_dumps_and_names_the_worker(
            self, traced_server, tmp_path, monkeypatch):
        sock, daemon, _ = traced_server
        flight_dir = tmp_path / "crashdumps"
        monkeypatch.setenv("KARMA_FLIGHT_DIR", str(flight_dir))
        from repro.elastic.faults import ChaosMonkey

        daemon.chaos = ChaosMonkey(0.0, crash_first=1)
        with PlannerClient(sock, timeout=30) as c:
            reply = c.plan({"model": "unet", "batch": 55}, retries=2)
        assert reply["record"]["model"] == "unet"
        dumps = list(flight_dir.glob("flight_worker_crashed_*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert doc["reason"] == "worker_crashed"
        assert doc["detail"]["worker"].startswith("plan-worker")


# ---------------------------------------------------------------------------
# telemetry + dump protocol ops
# ---------------------------------------------------------------------------


class TestTelemetryOps:
    def test_telemetry_streams_count_frames(self, traced_server):
        sock, _, _ = traced_server
        with PlannerClient(sock, timeout=30) as c:
            frames = list(c.telemetry(count=3, interval_s=0.0))
        assert len(frames) == 3
        for frame in frames:
            assert frame["running"] is True
            assert frame["queue_capacity"] >= 1
            assert frame["metrics"]["schema"] >= 2
        assert frames[0]["ts"] <= frames[-1]["ts"]

    def test_telemetry_connection_usable_after_stream(self, traced_server):
        sock, _, _ = traced_server
        with PlannerClient(sock, timeout=30) as c:
            list(c.telemetry(count=2, interval_s=0.0))
            assert c.ping()   # same connection, next op still works

    def test_telemetry_validates_arguments(self, traced_server):
        sock, _, _ = traced_server
        # error replies are single-line, so the raw call op reads them
        with PlannerClient(sock, timeout=30) as c:
            with pytest.raises(BadRequest):
                c.call("telemetry", count=0)
            with pytest.raises(BadRequest):
                c.call("telemetry", count=1, interval_s=-1.0)

    def test_dump_op_returns_snapshot_and_artifact(self, traced_server,
                                                   tmp_path, monkeypatch):
        sock, _, _ = traced_server
        flight_dir = tmp_path / "ondemand"
        monkeypatch.setenv("KARMA_FLIGHT_DIR", str(flight_dir))
        with PlannerClient(sock, timeout=30) as c:
            plain = c.dump()
            assert plain["flight"]["schema"] == DUMP_SCHEMA
            assert "path" not in plain
            written = c.dump(write=True)
        path = written["path"]
        assert json.loads(open(path).read())["reason"] == "on_demand"

    def test_daemon_telemetry_gauges(self, traced_server):
        _, daemon, _ = traced_server
        frame = daemon.telemetry()
        assert frame["pool_workers"] == 2
        assert frame["hot_capacity"] >= 1
        assert frame["uptime_s"] >= 0.0


# ---------------------------------------------------------------------------
# CLI: trace --server and top
# ---------------------------------------------------------------------------


@pytest.fixture()
def real_planner_server(tmp_path):
    """A daemon running the *real* planner (no cache: plans stay cold)."""
    sock = str(tmp_path / "real.sock")
    daemon = PlannerDaemon(ServiceConfig(pool_workers=4,
                                         max_workers_per_request=2))
    daemon.start()
    server = PlannerServer(daemon, sock).start()
    assert wait_for_server(sock, timeout=10)
    yield sock
    server.stop()
    daemon.stop()


class TestCli:
    def test_trace_server_round_trip_stitches_worker_rows(
            self, real_planner_server, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "stitched.json"
        # unet/abci fans the portfolio sweep across 2 pool workers
        rc = main(["trace", "unet", "--hierarchy", "abci",
                   "--server", real_planner_server, "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        workers = {p for p in procs if p.startswith("worker-")}
        assert "client" in procs and "daemon" in procs
        assert len(workers) >= 2
        ids = {e["args"]["trace_id"] for e in doc["traceEvents"]
               if e.get("ph") == "X" and "trace_id" in e.get("args", {})}
        assert len(ids) == 1
        assert "distributed trace" in capsys.readouterr().out

    def test_trace_server_rejects_unknown_model(self, capsys):
        from repro.cli import main

        rc = main(["trace", "cnn", "--server", "/tmp/nowhere.sock"])
        assert rc == 2
        assert "registered models" in capsys.readouterr().err

    def test_top_json_emits_frames(self, traced_server, capsys):
        from repro.cli import main

        sock, _, _ = traced_server
        rc = main(["top", sock, "--count", "2", "--interval", "0",
                   "--json"])
        assert rc == 0
        lines = [line for line in
                 capsys.readouterr().out.strip().splitlines() if line]
        assert len(lines) == 2
        frame = json.loads(lines[0])
        assert "queue_depth" in frame and "metrics" in frame

    def test_top_screen_render_shows_percentiles(self):
        from repro.cli import _render_top

        METRICS.histogram("service.latency.plan").observe(0.05)
        frame = {"uptime_s": 3.0, "running": True, "queue_depth": 1,
                 "queue_capacity": 16, "workers_free": 2,
                 "pool_workers": 4, "hot_entries": 5, "hot_capacity": 128,
                 "metrics": METRICS.snapshot()}
        text = _render_top(frame, seq=0, addr="x.sock")
        assert "queue" in text and "p95=" in text and "p99=" in text

    def test_top_unreachable_daemon_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["top", str(tmp_path / "gone.sock"), "--count", "1"])
        assert rc == 2
        assert "cannot watch" in capsys.readouterr().err
