"""Hardware substrate: specs, memory pools (incl. property tests), links."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    GiB,
    MiB,
    Location,
    MemoryPool,
    MemorySpace,
    OutOfMemoryError,
    TransferModel,
    abci_cluster,
    abci_host,
    abci_node,
    karma_swap_link,
    nvlink2,
    pcie_gen3_x16,
    v100_sxm2_16gb,
)


class TestSpecs:
    def test_v100_capacity(self):
        dev = v100_sxm2_16gb()
        assert dev.memory == 16 * GiB
        assert 0 < dev.usable_memory < dev.memory

    def test_v100_effective_flops_below_peak(self):
        dev = v100_sxm2_16gb()
        assert dev.effective_flops < dev.flops

    def test_compute_time_roofline(self):
        dev = v100_sxm2_16gb()
        # bandwidth-bound op: tiny flops, bytes dominate (900 GB/s HBM)
        t_bw = dev.compute_time(flop_count=1.0, bytes_touched=9_000_000_000)
        assert t_bw == pytest.approx(9e9 / dev.mem_bandwidth, rel=0.01)
        # compute-bound op
        t_c = dev.compute_time(flop_count=dev.effective_flops, bytes_touched=8)
        assert t_c == pytest.approx(1.0, rel=0.01)

    def test_invalid_device_rejected(self):
        with pytest.raises(ValueError):
            v100_sxm2_16gb(reserved=0).__class__(
                name="bad", memory=-1, flops=1, mem_bandwidth=1)

    def test_link_transfer_time(self):
        link = pcie_gen3_x16()
        assert link.transfer_time(16e9) == pytest.approx(1.0, rel=0.01)
        assert link.transfer_time(0) == 0.0

    def test_cluster_scaling(self):
        c = abci_cluster(4)
        assert c.total_devices == 16
        assert c.with_devices(32).num_nodes == 8
        with pytest.raises(ValueError):
            c.with_devices(33)

    def test_node_links_bidirectional(self):
        node = abci_node()
        assert node.h2d.duplex and node.d2h.duplex

    def test_swap_link_is_calibrated(self):
        assert karma_swap_link().bandwidth > pcie_gen3_x16().bandwidth


class TestTransferModel:
    def test_effective_bandwidth_is_min(self):
        dev, host = v100_sxm2_16gb(), abci_host()
        tm = TransferModel(link=pcie_gen3_x16(), device=dev, host=host)
        assert tm.effective_bandwidth == pcie_gen3_x16().bandwidth

    def test_pageable_derate(self):
        dev, host = v100_sxm2_16gb(), abci_host()
        pinned = TransferModel(link=pcie_gen3_x16(), device=dev, host=host)
        pageable = TransferModel(link=pcie_gen3_x16(), device=dev, host=host,
                                 pinned=False)
        assert pageable.swap_time(1 * GiB) > pinned.swap_time(1 * GiB)

    def test_duplex_concurrency(self):
        dev, host = v100_sxm2_16gb(), abci_host()
        tm = TransferModel(link=pcie_gen3_x16(), device=dev, host=host)
        both = tm.concurrent_swap_time(1 * GiB, 1 * GiB)
        one = tm.swap_time(1 * GiB)
        assert both == pytest.approx(one, rel=1e-9)

    def test_swap_time_monotone(self):
        dev, host = v100_sxm2_16gb(), abci_host()
        tm = TransferModel(link=nvlink2(), device=dev, host=host)
        assert tm.swap_time(2 * GiB) > tm.swap_time(1 * GiB) > 0


class TestMemoryPool:
    def test_allocate_free_roundtrip(self):
        pool = MemoryPool("p", 1 * MiB)
        a = pool.allocate(1000)
        assert pool.bytes_in_use == a.nbytes >= 1000
        pool.free(a)
        assert pool.bytes_in_use == 0
        assert pool.bytes_cached == a.nbytes  # caching allocator retains

    def test_cache_reuse(self):
        pool = MemoryPool("p", 1 * MiB)
        a = pool.allocate(4096)
        pool.free(a)
        b = pool.allocate(4096)
        assert pool.cache_hits == 1
        assert pool.bytes_cached == 0
        pool.free(b)

    def test_oom_raises_with_context(self):
        pool = MemoryPool("p", 10_000)
        pool.allocate(8000)
        with pytest.raises(OutOfMemoryError) as exc:
            pool.allocate(8000)
        assert "out of memory" in str(exc.value)
        assert pool.oom_count == 1

    def test_oom_retries_after_cache_flush(self):
        pool = MemoryPool("p", 10_000)
        a = pool.allocate(4096)
        pool.free(a)  # cached
        b = pool.allocate(8192)  # only fits if cache flushed
        assert b.nbytes == 8192
        assert pool.bytes_cached == 0

    def test_double_free_rejected(self):
        pool = MemoryPool("p", 1 * MiB)
        a = pool.allocate(100)
        pool.free(a)
        with pytest.raises(ValueError):
            pool.free(a)

    def test_peak_tracking(self):
        pool = MemoryPool("p", 1 * MiB)
        a = pool.allocate(1000)
        b = pool.allocate(2000)
        pool.free(a)
        pool.free(b)
        assert pool.peak_in_use >= 3000
        assert pool.memory_stats()["allocated_bytes.peak"] == pool.peak_in_use

    def test_non_caching_pool_releases(self):
        pool = MemoryPool("p", 1 * MiB, caching=False)
        a = pool.allocate(1000)
        pool.free(a)
        assert pool.bytes_cached == 0
        assert pool.bytes_reserved == 0

    @given(st.lists(st.integers(min_value=1, max_value=50_000),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_accounting_never_exceeds_capacity(self, sizes):
        pool = MemoryPool("p", 256_000)
        live = []
        for s in sizes:
            try:
                live.append(pool.allocate(s))
            except OutOfMemoryError:
                if live:
                    pool.free(live.pop(0))
            assert pool.bytes_reserved <= pool.capacity
            assert pool.bytes_in_use == sum(a.nbytes for a in live)

    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_free_restores_all(self, sizes):
        pool = MemoryPool("p", 10**9)
        allocs = [pool.allocate(s) for s in sizes]
        for a in allocs:
            pool.free(a)
        assert pool.bytes_in_use == 0
        assert pool.bytes_cached == sum(a.nbytes for a in allocs)
        pool.empty_cache()
        assert pool.bytes_reserved == 0


class TestMemorySpace:
    def test_swap_accounting(self):
        space = MemorySpace(1 * MiB, 8 * MiB)
        space.record_swap(1000, Location.FAR)
        space.record_swap(1000, Location.NEAR)
        stats = space.stats()
        assert stats["swap.out_bytes"] == 1000
        assert stats["swap.in_bytes"] == 1000
        assert stats["swap.out_count"] == stats["swap.in_count"] == 1

    def test_pool_lookup(self):
        space = MemorySpace(1 * MiB, 8 * MiB)
        assert space.pool(Location.NEAR) is space.near
        assert space.pool(Location.FAR) is space.far
        with pytest.raises(ValueError):
            space.pool(Location.FREED)
