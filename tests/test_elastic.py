"""Elastic fault tolerance: traces, recovery control, hardened
checkpoints, churn scenarios, and service chaos mode."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core import BlockPolicy, make_plan
from repro.costs.profiler import profile_graph
from repro.distributed.cpu_update import HostAdam, HostSGD
from repro.distributed.dp_trainer import DataParallelKarmaTrainer
from repro.elastic import (
    ChaosMonkey,
    ChurnScenario,
    DegradeFailed,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultTrace,
    RecoveryController,
    RecoveryImpossible,
    RecoveryPolicy,
    ReplanFailed,
    ScenarioConfig,
    demote_plan,
    simulate_churn,
    synthetic_trace,
)
from repro.elastic.scenario import divisor_worlds
from repro.hardware import GiB, tiny_test_hierarchy
from repro.nn import ExecutableModel
from repro.runtime.checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    checkpoint_digest,
    load_checkpoint_full,
    save_checkpoint,
)

from tests.helpers import build_small_cnn, uniform_blocks as blocks_of

S, R, C = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT, BlockPolicy.RECOMPUTED


# --------------------------------------------------------------------------
# fault traces
# --------------------------------------------------------------------------

class TestFaultTraces:
    def test_synthetic_trace_deterministic(self):
        a = synthetic_trace(7, steps=20, world=4, preemptions=2, joins=1)
        b = synthetic_trace(7, steps=20, world=4, preemptions=2, joins=1)
        assert a.events == b.events
        c = synthetic_trace(0, steps=20, world=4, preemptions=2, joins=1)
        assert a.events != c.events

    def test_synthetic_trace_counts_and_legality(self):
        t = synthetic_trace(0, steps=30, world=3, preemptions=2, joins=2,
                            slowdowns=1)
        assert t.preemptions == 2 and t.joins == 2
        assert sum(1 for e in t if e.kind is FaultKind.SLOWDOWN) == 1
        t.validate(3)   # never drops below one worker

    def test_allowed_worlds_respected(self):
        worlds = divisor_worlds(12)
        assert worlds == (1, 2, 3, 4, 6, 12)
        t = synthetic_trace(5, steps=20, world=4, preemptions=3, joins=2,
                            allowed_worlds=worlds)
        fleet = 4
        for e in t:
            if e.kind is FaultKind.PREEMPT:
                fleet -= e.nodes
            elif e.kind is FaultKind.JOIN:
                fleet += e.nodes
            assert fleet in worlds

    def test_trace_json_roundtrip(self, tmp_path):
        t = synthetic_trace(1, steps=15, world=4, preemptions=2, joins=1,
                            slowdowns=1, dirty_rate=1.0)
        path = t.to_json(tmp_path / "trace.json")
        back = FaultTrace.from_json(path)
        assert back.events == t.events
        # dirty flag survives the round-trip
        assert any(e.dirty for e in back)

    def test_trace_validation_rejects_dead_fleet(self):
        t = FaultTrace.from_events([
            FaultEvent(step=1, kind=FaultKind.PREEMPT),
            FaultEvent(step=2, kind=FaultKind.PREEMPT)])
        with pytest.raises(ValueError, match="at least one survivor"):
            t.validate(2)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(step=-1, kind=FaultKind.PREEMPT)
        with pytest.raises(ValueError):
            FaultEvent(step=1, kind=FaultKind.JOIN, dirty=True)
        with pytest.raises(ValueError):
            FaultEvent(step=1, kind=FaultKind.SLOWDOWN, factor=0.5)

    def test_injector_delivers_each_event_once(self):
        t = FaultTrace.from_events([
            FaultEvent(step=2, kind=FaultKind.PREEMPT),
            FaultEvent(step=5, kind=FaultKind.JOIN)])
        inj = FaultInjector(t)
        assert inj.poll(0) == []
        fired = inj.poll(2)
        assert [e.kind for e in fired] == [FaultKind.PREEMPT]
        assert inj.poll(2) == []
        # a loop that jumped past step 5 still sees the join, once
        fired = inj.poll(9)
        assert [e.kind for e in fired] == [FaultKind.JOIN]
        assert inj.exhausted


# --------------------------------------------------------------------------
# recovery controller
# --------------------------------------------------------------------------

def _stub_controller(policy=None, *, replan_fails=0, degrade_fails=0,
                     restart_fails=0, have_checkpoint=True, seed=0):
    """A controller over counting stub actions; returns (ctl, calls)."""
    calls = {"resize": [], "replan": 0, "degrade": 0, "restart": 0,
             "sleeps": []}
    fails = {"replan": replan_fails, "degrade": degrade_fails,
             "restart": restart_fails}

    def action(name, result=None):
        def run(world):
            calls[name] += 1
            if fails[name]:
                fails[name] -= 1
                raise RuntimeError(f"{name} transient failure")
            return result
        return run

    ctl = RecoveryController(
        policy or RecoveryPolicy(max_attempts=3, backoff_base_s=0.01,
                                 backoff_jitter=0.0),
        resize=lambda w: calls["resize"].append(w),
        replan=action("replan"),
        degrade=action("degrade"),
        restart=action("restart", result=4),
        have_checkpoint=lambda: have_checkpoint,
        sleep=lambda s: calls["sleeps"].append(s),
        clock=time.perf_counter, seed=seed)
    return ctl, calls


class TestRecoveryPolicy:
    def test_decision_table(self):
        p = RecoveryPolicy()
        clean = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        dirty = FaultEvent(step=1, kind=FaultKind.PREEMPT, dirty=True)
        join = FaultEvent(step=1, kind=FaultKind.JOIN)
        slow = FaultEvent(step=1, kind=FaultKind.SLOWDOWN, factor=3.0)
        mild = FaultEvent(step=1, kind=FaultKind.SLOWDOWN, factor=1.2)
        kw = dict(survivors=3, est_replan_s=None, have_checkpoint=True)
        assert p.decide(clean, **kw) == "replan"
        assert p.decide(dirty, **kw) == "restart"
        assert p.decide(join, **kw) == "replan"
        assert p.decide(slow, **kw) == "degrade"
        assert p.decide(mild, **kw) == "ignore"

    def test_expensive_replan_degrades(self):
        p = RecoveryPolicy(replan_budget_s=1.0)
        clean = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        assert p.decide(clean, survivors=3, est_replan_s=5.0,
                        have_checkpoint=True) == "degrade"
        assert p.decide(clean, survivors=3, est_replan_s=0.5,
                        have_checkpoint=True) == "replan"

    def test_below_min_world_restarts(self):
        p = RecoveryPolicy(min_world=2)
        clean = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        assert p.decide(clean, survivors=1, est_replan_s=None,
                        have_checkpoint=True) == "restart"

    def test_forced_modes(self):
        clean = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        kw = dict(survivors=3, est_replan_s=None, have_checkpoint=True)
        assert RecoveryPolicy(mode="degrade").decide(clean, **kw) \
            == "degrade"
        assert RecoveryPolicy(mode="replan").decide(clean, **kw) \
            == "replan"
        with pytest.raises(ValueError):
            RecoveryPolicy(mode="panic")


class TestRecoveryController:
    def test_clean_preempt_resizes_then_replans(self):
        ctl, calls = _stub_controller()
        ev = FaultEvent(step=3, kind=FaultKind.PREEMPT)
        report = ctl.recover(ev, world=4, step=3)
        assert calls["resize"] == [3]
        assert calls["replan"] == 1 and calls["restart"] == 0
        assert report.decision == "replan"
        assert report.world_before == 4 and report.world_after == 3
        assert report.lost_steps == 0

    def test_retry_with_backoff_then_success(self):
        ctl, calls = _stub_controller(replan_fails=2)
        ev = FaultEvent(step=1, kind=FaultKind.JOIN)
        report = ctl.recover(ev, world=2, step=1)
        assert report.decision == "replan"
        assert report.attempts == 3
        assert calls["replan"] == 3
        # exponential: each delay strictly larger (jitter zeroed)
        assert len(calls["sleeps"]) == 2
        assert calls["sleeps"][1] > calls["sleeps"][0]

    def test_replan_exhausted_falls_back_to_degrade(self):
        ctl, calls = _stub_controller(replan_fails=99)
        ev = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        report = ctl.recover(ev, world=4, step=1)
        assert report.decision == "degrade"
        assert report.tried == ["replan", "degrade"]
        assert calls["replan"] == 3 and calls["degrade"] == 1

    def test_full_cascade_lands_on_restart(self):
        ctl, calls = _stub_controller(replan_fails=99, degrade_fails=99)
        ev = FaultEvent(step=6, kind=FaultKind.PREEMPT)
        report = ctl.recover(ev, world=4, step=6)
        assert report.decision == "restart"
        assert report.tried == ["replan", "degrade", "restart"]
        assert report.resumed_step == 4 and report.lost_steps == 2

    def test_everything_failing_is_typed_impossible(self):
        ctl, _ = _stub_controller(replan_fails=99, degrade_fails=99,
                                  restart_fails=99)
        ev = FaultEvent(step=1, kind=FaultKind.PREEMPT)
        with pytest.raises(RecoveryImpossible):
            ctl.recover(ev, world=4, step=1)

    def test_dirty_without_checkpoint_is_impossible(self):
        ctl, calls = _stub_controller(have_checkpoint=False)
        ev = FaultEvent(step=1, kind=FaultKind.PREEMPT, dirty=True)
        with pytest.raises(RecoveryImpossible, match="no checkpoint"):
            ctl.recover(ev, world=4, step=1)
        assert calls["restart"] == 0

    def test_mild_slowdown_ignored(self):
        ctl, calls = _stub_controller()
        ev = FaultEvent(step=1, kind=FaultKind.SLOWDOWN, factor=1.1)
        report = ctl.recover(ev, world=4, step=1)
        assert report.decision == "ignore"
        assert calls["resize"] == [] and calls["replan"] == 0

    def test_error_types_carry_codes(self):
        assert ReplanFailed.code == "replan_failed"
        assert DegradeFailed.code == "degrade_failed"
        assert RecoveryImpossible.code == "recovery_impossible"


class TestDemotePlan:
    def test_demotes_overflow_stashes_a_tier(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, batch_size=8)
        blocks = blocks_of(small_cnn, 4)
        policies = [S, S, S, R]
        plan = make_plan(small_cnn.name, 8, blocks, policies)
        assert all(t == 1 for t in plan.placements.values())
        from repro.tiering.placement import swapped_stash_bytes
        stash = swapped_stash_bytes(blocks, policies, cost)
        # DRAM sized so pressure=0.5 must push the coldest stash down
        hier = tiny_test_hierarchy(
            hbm=4 * (1 << 20), dram=int(sum(stash.values()) / 0.9) + 1,
            nvme=64 * (1 << 20))
        demoted = demote_plan(plan, cost, hier, pressure=0.5)
        assert demoted.blocks == plan.blocks
        assert demoted.policies == plan.policies
        assert max(demoted.placements.values()) == 2
        demoted.validate()

    def test_infeasible_degrade_is_typed(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, batch_size=8)
        blocks = blocks_of(small_cnn, 4)
        plan = make_plan(small_cnn.name, 8, blocks, [S, S, S, R])
        hier = tiny_test_hierarchy(hbm=4 * (1 << 20), dram=16, nvme=16)
        with pytest.raises(DegradeFailed):
            demote_plan(plan, cost, hier)


# --------------------------------------------------------------------------
# hardened checkpoints
# --------------------------------------------------------------------------

class TestCheckpointHardening:
    def _model(self, name="ckpt_h", with_bn=True, seed=3):
        g = build_small_cnn(with_bn=with_bn, name=name)
        return g, ExecutableModel(g, dtype=np.float64, seed=seed)

    def test_digest_roundtrip_and_extras(self, tmp_path):
        g, m = self._model()
        extra = {"opt/conv/weight/momentum": np.full((2, 2), 0.5)}
        path = str(tmp_path / "a.npz")
        save_checkpoint(m, path, step=7, extra=extra)
        g2, m2 = self._model(seed=99)
        step, extras = load_checkpoint_full(m2, path)
        assert step == 7
        np.testing.assert_array_equal(
            extras["opt/conv/weight/momentum"], extra["opt/conv/weight/momentum"])
        for (ln, pn, a), (_, _, b) in zip(m.parameters(), m2.parameters()):
            assert np.array_equal(a, b), f"{ln}/{pn}"

    def test_bn_buffers_bit_identical(self, tmp_path):
        g, m = self._model(name="ckpt_bn")
        # give the BN running stats non-trivial values
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 16, 16))
        m.set_targets(rng.integers(0, 5, 4))
        m.forward(x, training=True)
        path = str(tmp_path / "bn.npz")
        save_checkpoint(m, path, step=1)
        _, m2 = self._model(name="ckpt_bn", seed=42)
        load_checkpoint_full(m2, path)
        for spec in g:
            src = m.modules[spec.name]
            dst = m2.modules[spec.name]
            for bname, arr in src.buffers.items():
                assert np.array_equal(arr, dst.buffers[bname]), \
                    f"{spec.name}/{bname}"

    def test_corrupt_file_rejected_before_mutation(self, tmp_path):
        g, m = self._model()
        path = str(tmp_path / "c.npz")
        save_checkpoint(m, path, step=3)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF   # flip one byte mid-archive
        open(path, "wb").write(bytes(raw))
        _, m2 = self._model(seed=11)
        before = [a.copy() for _, _, a in m2.parameters()]
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint_full(m2, path)
        for (_, _, a), b in zip(m2.parameters(), before):
            assert np.array_equal(a, b)   # untouched on failure

    def test_truncated_file_rejected(self, tmp_path):
        g, m = self._model()
        path = str(tmp_path / "t.npz")
        save_checkpoint(m, path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 3])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint_full(self._model(seed=5)[1], path)

    def test_digest_is_content_addressed(self):
        payload = {"a": np.arange(4), "b": np.ones((2, 2))}
        d1 = checkpoint_digest(payload)
        assert d1 == checkpoint_digest(dict(reversed(payload.items())))
        payload["a"] = payload["a"] + 1
        assert checkpoint_digest(payload) != d1

    def test_optimizer_state_roundtrips_through_extras(self, tmp_path):
        g, m = self._model(with_bn=False, name="ckpt_opt")
        sgd = HostSGD(lr=0.1, momentum=0.9)
        sgd.update_block(m, range(len(g)))   # materialize momentum slots
        path = str(tmp_path / "o.npz")
        save_checkpoint(m, path, step=2, extra=sgd.state_dict())
        _, extras = load_checkpoint_full(
            self._model(with_bn=False, name="ckpt_opt", seed=9)[1], path)
        sgd2 = HostSGD(lr=0.1, momentum=0.9)
        sgd2.load_state_dict(extras)
        assert sgd2.state_dict().keys() == sgd.state_dict().keys()
        for key, arr in sgd.state_dict().items():
            assert np.array_equal(arr, sgd2.state_dict()[key])

    def test_adam_state_dict_roundtrip(self):
        g, m = self._model(with_bn=False, name="ckpt_adam")
        adam = HostAdam(lr=1e-3)
        adam.begin_step()
        adam.update_block(m, range(len(g)))
        state = adam.state_dict()
        adam2 = HostAdam(lr=1e-3)
        adam2.load_state_dict(state)
        assert adam2.t == adam.t == 1
        for key, arr in adam2.state_dict().items():
            assert np.array_equal(arr, state[key])
        with pytest.raises(KeyError):
            adam2.load_state_dict({"x/y/unknown_slot": np.zeros(1)})


class TestCheckpointManager:
    def _model(self, seed=0):
        g = build_small_cnn(with_bn=False, name="ckpt_mgr")
        return ExecutableModel(g, dtype=np.float64, seed=seed)

    def test_periodic_interval_and_rotation(self, tmp_path):
        m = self._model()
        with CheckpointManager(str(tmp_path), interval=2, keep=2) as mgr:
            saved = [s for s in range(1, 8)
                     if mgr.maybe_save(m, s) is not None]
            mgr.wait()
        assert saved == [2, 4, 6]
        names = sorted(p.name for p in tmp_path.glob("ckpt_*.npz"))
        assert names == ["ckpt_00000004.npz", "ckpt_00000006.npz"]
        assert mgr.last_good is not None and mgr.last_good[0] == 6

    def test_restore_latest_resumes_at_step(self, tmp_path):
        m = self._model()
        with CheckpointManager(str(tmp_path), interval=3) as mgr:
            for s in range(1, 10):
                for _, _, arr in m.parameters():
                    arr += 0.001    # training mutates weights
                mgr.maybe_save(m, s)
            mgr.wait()
            expect = [a.copy() for _, _, a in m.parameters()]
            # mid-epoch kill: a fresh process restores the newest archive
            m2 = self._model(seed=77)
            step, _ = mgr.restore_latest(m2)
        assert step == 9
        for (_, _, a), b in zip(m2.parameters(), expect):
            assert np.array_equal(a, b)

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        m = self._model()
        with CheckpointManager(str(tmp_path), interval=1, keep=3) as mgr:
            for s in range(1, 4):
                mgr.maybe_save(m, s)
            mgr.wait()
            newest = mgr.path_for(3)
            newest.write_bytes(newest.read_bytes()[:100])   # truncate
            step, _ = mgr.restore_latest(self._model(seed=5))
        assert step == 2

    def test_discover_after_cold_restart(self, tmp_path):
        m = self._model()
        with CheckpointManager(str(tmp_path), interval=1) as mgr:
            mgr.maybe_save(m, 5)
        fresh = CheckpointManager(str(tmp_path), asynchronous=False)
        assert fresh.discover() is not None
        step, _ = fresh.restore_latest(self._model(seed=9))
        assert step == 5

    def test_nothing_to_restore_is_typed(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), asynchronous=False)
        with pytest.raises(CheckpointCorruptError, match="no loadable"):
            mgr.restore_latest(self._model())


# --------------------------------------------------------------------------
# trainer elasticity
# --------------------------------------------------------------------------

class TestTrainerElasticity:
    def _trainer(self, world, momentum=0.9):
        g = build_small_cnn(with_bn=False, name=f"grow_{world}")
        blocks = [(0, len(g) // 2), (len(g) // 2, len(g))]
        plan = make_plan(g.name, 2, blocks, [S, R])
        return g, DataParallelKarmaTrainer(
            g, plan, world, near_capacity=2 * GiB, far_capacity=32 * GiB,
            optimizer=HostSGD(lr=0.05, momentum=momentum),
            dtype=np.float64, seed=11)

    def test_grow_world_is_bit_identical(self):
        g, dp = self._trainer(2)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        dp.train_step(x, y)          # momentum slots now non-trivial
        dp.grow_world(4)
        assert dp.world_size == 4
        dp.assert_replicas_identical()
        # the grown pool keeps training in lockstep
        for _ in range(2):
            dp.train_step(x, y)
            assert dp.parameters_equal_across_workers()

    def test_grow_matches_never_shrunk_run(self):
        # Cross-world-size equality is only numerical (reduction order
        # changes with the shard split); bit-identity is the *within*
        # world guarantee, asserted after every step below.
        rng = np.random.default_rng(1)
        x = rng.standard_normal((12, 3, 16, 16))
        y = rng.integers(0, 5, 12)
        _, elastic = self._trainer(4)
        _, steady = self._trainer(4)
        for resize in (None, lambda: elastic.shrink_world(2),
                       lambda: elastic.grow_world(4)):
            if resize is not None:
                resize()
            elastic.train_step(x, y)
            steady.train_step(x, y)
            elastic.assert_replicas_identical()
        for (ln, pn, a), (_, _, b) in zip(
                elastic.models[0].parameters(),
                steady.models[0].parameters()):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12,
                                       err_msg=f"{ln}/{pn}")

    def test_grow_rejects_shrinking(self):
        _, dp = self._trainer(3)
        with pytest.raises(ValueError):
            dp.grow_world(2)

    def test_apply_plan_keeps_replica_state(self):
        g, dp = self._trainer(2)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 5, 4)
        dp.train_step(x, y)
        before = [a.copy() for _, _, a in dp.models[0].parameters()]
        blocks = blocks_of(g, 3)
        dp.apply_plan(make_plan(g.name, 2, blocks, [S, C, R]))
        for (_, _, a), b in zip(dp.models[0].parameters(), before):
            assert np.array_equal(a, b)
        dp.train_step(x, y)          # new schedule still trains
        assert dp.parameters_equal_across_workers()

    def test_divergence_is_named(self):
        _, dp = self._trainer(2)
        lname, pname, arr = next(iter(dp.models[1].parameters()))
        arr[...] += 1.0
        with pytest.raises(RuntimeError, match=f"worker 1 {lname}/{pname}"):
            dp.assert_replicas_identical()


# --------------------------------------------------------------------------
# end-to-end churn scenarios
# --------------------------------------------------------------------------

class TestChurnScenario:
    def test_clean_churn_loses_zero_steps(self, tmp_path):
        cfg = ScenarioConfig(steps=10, world=4, global_batch=12, seed=0)
        result = ChurnScenario(cfg, str(tmp_path)).run()
        assert result.trace.preemptions >= 2 and result.trace.joins >= 1
        assert result.lost_steps == 0
        assert result.replayed_steps == 0
        assert len(result.losses) == 10
        assert all(r.decision == "replan" for r in result.reports)

    def test_dirty_churn_restarts_and_replays(self, tmp_path):
        cfg = ScenarioConfig(steps=10, world=4, global_batch=12, seed=3,
                             dirty_rate=1.0, checkpoint_interval=2)
        result = ChurnScenario(cfg, str(tmp_path)).run()
        restarts = [r for r in result.reports if r.decision == "restart"]
        assert restarts, "dirty preemptions must restart from checkpoint"
        # replay is bounded by the checkpoint cadence
        assert all(r.lost_steps < cfg.checkpoint_interval
                   for r in restarts)
        assert result.steps_run == len(result.losses) + result.lost_steps

    def test_scenario_deterministic(self, tmp_path):
        cfg = ScenarioConfig(steps=8, world=3, global_batch=12, seed=5,
                             preemptions=1, joins=1)
        r1 = ChurnScenario(cfg, str(tmp_path / "a")).run()
        r2 = ChurnScenario(cfg, str(tmp_path / "b")).run()
        assert r1.losses == r2.losses
        assert r1.world_trajectory == r2.world_trajectory

    def test_recorded_trace_drives_scenario(self, tmp_path):
        trace = FaultTrace.from_events([
            FaultEvent(step=2, kind=FaultKind.PREEMPT),
            FaultEvent(step=4, kind=FaultKind.JOIN)])
        cfg = ScenarioConfig(steps=6, world=2, global_batch=12, seed=1)
        result = ChurnScenario(cfg, str(tmp_path), trace=trace).run()
        assert result.final_world == 2
        assert [w for _, w in result.world_trajectory] == [2, 1, 2]

    def test_indivisible_trace_rejected(self, tmp_path):
        trace = FaultTrace.from_events(
            [FaultEvent(step=1, kind=FaultKind.JOIN)])   # world 4 -> 5
        cfg = ScenarioConfig(steps=4, world=4, global_batch=12)
        with pytest.raises(ValueError, match="does not divide"):
            ChurnScenario(cfg, str(tmp_path), trace=trace)


class TestSimulatedChurn:
    def test_timeline_deterministic_and_consistent(self):
        trace = synthetic_trace(2, steps=20, world=4, preemptions=2,
                                joins=1, allowed_worlds=divisor_worlds(12))
        a = simulate_churn(trace, steps=20, world=4, global_batch=12)
        b = simulate_churn(trace, steps=20, world=4, global_batch=12)
        assert a.to_dict() == b.to_dict()
        assert 0 < a.throughput_ratio <= 1.5
        assert a.total_s > 0 and a.no_churn_s > 0

    def test_dirty_preempt_costs_lost_steps(self):
        trace = FaultTrace.from_events([FaultEvent(
            step=5, kind=FaultKind.PREEMPT, dirty=True)])
        tl = simulate_churn(trace, steps=10, world=4, global_batch=12,
                            checkpoint_interval=3)
        assert tl.total_lost_steps == 2   # last checkpoint at step 3
        assert tl.events[0]["decision"] == "restart"
        assert tl.max_time_to_recover_s > 0

    def test_slowdown_inflates_only_its_window(self):
        slow = FaultTrace.from_events([FaultEvent(
            step=2, kind=FaultKind.SLOWDOWN, factor=3.0, duration=2)])
        quiet = FaultTrace(events=())
        t_slow = simulate_churn(slow, steps=10, world=4, global_batch=12)
        t_quiet = simulate_churn(quiet, steps=10, world=4,
                                 global_batch=12)
        assert t_slow.total_s > t_quiet.total_s
        # exactly two steps pay the 3x factor
        extra = t_slow.total_s - t_quiet.total_s
        per_step = t_quiet.total_s / 10
        assert extra == pytest.approx(2 * per_step * 2.0)


# --------------------------------------------------------------------------
# service chaos mode
# --------------------------------------------------------------------------

class TestServiceChaos:
    def _daemon(self, monkey, planner=None, **cfg):
        from repro.service.daemon import PlannerDaemon, ServiceConfig

        def default_planner(config, n):
            return {"model": config.get("model"), "planned": True}

        return PlannerDaemon(ServiceConfig(**cfg),
                             planner=planner or default_planner,
                             chaos=monkey)

    def test_chaos_monkey_is_seeded(self):
        a = ChaosMonkey(0.5, seed=1)
        b = ChaosMonkey(0.5, seed=1)
        assert [a() for _ in range(20)] == [b() for _ in range(20)]
        assert a.crashes == b.crashes > 0

    def test_crash_is_typed_and_retryable(self):
        from repro.service.errors import WorkerCrashed, rejection_for
        assert WorkerCrashed.retryable
        assert not rejection_for("bad_request", "x").retryable
        wired = rejection_for("worker_crashed", "boom")
        assert isinstance(wired, WorkerCrashed) and wired.retryable

    def test_worker_crash_resolves_flight_and_respawns(self):
        from repro.service.errors import WorkerCrashed

        with self._daemon(ChaosMonkey(crash_first=1),
                          service_workers=1) as daemon:
            with pytest.raises(WorkerCrashed):
                daemon.request({"model": "a"})
            # the respawned worker serves the retry
            resp = daemon.request({"model": "a"})
            assert resp.record["planned"]

    def test_client_retries_through_crashes(self, tmp_path):
        from repro.service.client import PlannerClient, wait_for_server
        from repro.service.server import PlannerServer

        sock = str(tmp_path / "chaos.sock")
        daemon = self._daemon(ChaosMonkey(crash_first=2),
                              service_workers=2).start()
        try:
            with PlannerServer(daemon, sock):
                assert wait_for_server(sock, timeout=10)
                with PlannerClient(sock, timeout=10) as client:
                    reply = client.plan({"model": "m", "batch": 1},
                                        retries=4, backoff_s=0.01)
                    assert reply["record"]["planned"]
        finally:
            daemon.stop()

    def test_client_does_not_retry_deterministic_errors(self, tmp_path):
        from repro.service.client import PlannerClient, wait_for_server
        from repro.service.errors import PlanningFailed
        from repro.service.server import PlannerServer

        calls = {"n": 0}

        def failing_planner(config, n):
            calls["n"] += 1
            raise ValueError("bad model config")

        sock = str(tmp_path / "fail.sock")
        daemon = self._daemon(None, planner=failing_planner).start()
        try:
            with PlannerServer(daemon, sock):
                assert wait_for_server(sock, timeout=10)
                with PlannerClient(sock, timeout=10) as client:
                    with pytest.raises(PlanningFailed):
                        client.plan({"model": "m"}, retries=5,
                                    backoff_s=0.01)
        finally:
            daemon.stop()
        assert calls["n"] == 1   # no retry on a non-retryable rejection

    def test_stop_drains_in_flight_requests(self, tmp_path):
        from repro.service.client import PlannerClient, wait_for_server
        from repro.service.server import PlannerServer

        def slow_planner(config, n):
            time.sleep(0.3)
            return {"planned": True}

        sock = str(tmp_path / "drain.sock")
        daemon = self._daemon(None, planner=slow_planner).start()
        server = PlannerServer(daemon, sock).start()
        got = {}
        try:
            assert wait_for_server(sock, timeout=10)
            client = PlannerClient(sock, timeout=10)

            def request():
                got["reply"] = client.plan({"model": "slow"})

            t = threading.Thread(target=request)
            t.start()
            deadline = time.monotonic() + 5
            while server.active_requests == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.active_requests >= 1
            server.stop(drain_s=5.0)   # must wait for the reply to land
            t.join(timeout=5)
            assert got["reply"]["record"]["planned"]
            client.close()
        finally:
            daemon.stop()

    def test_chaos_metrics_land(self):
        from repro.obs.metrics import METRICS

        with self._daemon(ChaosMonkey(crash_first=1),
                          service_workers=1) as daemon:
            from repro.service.errors import WorkerCrashed
            with pytest.raises(WorkerCrashed):
                daemon.request({"model": "z"})
            daemon.request({"model": "z"})
        snap = METRICS.snapshot()["counters"]
        assert snap.get("service.worker_crashes", 0) >= 1
        assert snap.get("service.workers_respawned", 0) >= 1


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

class TestElasticCLI:
    def test_elastic_json_run(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["elastic", "--steps", "6", "--world", "2",
                   "--global-batch", "8", "--preemptions", "1",
                   "--joins", "1", "--seed", "2", "--json",
                   "--checkpoint-dir", str(tmp_path / "ck"),
                   "--save-trace", str(tmp_path / "trace.json")])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["lost_steps"] == 0
        assert len(out["recoveries"]) == 2
        assert (tmp_path / "trace.json").exists()

    def test_elastic_rejects_indivisible_batch(self, capsys):
        from repro.cli import main

        rc = main(["elastic", "--world", "3", "--global-batch", "8"])
        assert rc == 2
        assert "divide" in capsys.readouterr().err
