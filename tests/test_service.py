"""The multi-tenant planning service: daemon, single-flight, cluster.

Concurrency tests gate the fake planner on events rather than relying
on timing: real tiny plans finish in milliseconds, far too fast for
threads to overlap naturally, so every stampede/saturation scenario
holds the planner open until the test has asserted the intermediate
state (merges attached, queue full) and only then releases it.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List

import pytest

from repro.cache.plan_cache import PlanCache
from repro.core.solver import WorkerBudget
from repro.hardware.tiering import MiB, tiny_test_hierarchy
from repro.obs.metrics import METRICS
from repro.service import (
    BadRequest,
    ClusterArbiter,
    DeadlineExpired,
    JobDemand,
    PlacementDenied,
    PlannerDaemon,
    PlanningFailed,
    QueueFull,
    ServiceClosed,
    ServiceConfig,
    request_key,
)
from repro.service.client import PlannerClient, wait_for_server
from repro.service.cluster import demand_from_record, place_jobs
from repro.service.server import PlannerServer, parse_address


def _counter(name: str) -> float:
    return METRICS.snapshot()["counters"].get(name, 0.0)


def _fake_planner(gate: threading.Event, calls: List[int]):
    """A planner that blocks on ``gate`` and logs its worker grants."""

    def planner(config: Dict[str, Any], n_workers: int) -> Dict[str, Any]:
        calls.append(n_workers)
        assert gate.wait(10), "test gate never opened"
        return {"cache": "miss", "model": config.get("model"),
                "batch": config.get("batch")}

    return planner


# ---------------------------------------------------------------------------
# request keys
# ---------------------------------------------------------------------------

class TestRequestKey:
    def test_none_values_do_not_change_the_key(self):
        assert request_key({"model": "unet", "batch": 8}) == \
            request_key({"model": "unet", "batch": 8, "capacity": None})

    def test_meaningful_fields_do(self):
        base = request_key({"model": "unet", "batch": 8})
        assert request_key({"model": "unet", "batch": 16}) != base
        assert request_key({"model": "unet", "batch": 8,
                            "hierarchy": "tiny"}) != base

    def test_key_is_a_stable_hex_digest(self):
        k = request_key({"model": "unet", "batch": 8})
        assert len(k) == 64 and int(k, 16) >= 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_queue_full_sheds_immediately_with_typed_rejection(self):
        gate = threading.Event()
        calls: List[int] = []
        daemon = PlannerDaemon(
            ServiceConfig(queue_depth=1, service_workers=1),
            planner=_fake_planner(gate, calls))
        with daemon:
            # saturate deterministically: first request occupies the one
            # worker (wait until the planner is actually invoked), then a
            # second fills the one queue slot
            t_worker = threading.Thread(
                target=lambda: daemon.request({"model": "m", "batch": 0}))
            t_worker.start()
            deadline = time.monotonic() + 5
            while not calls and time.monotonic() < deadline:
                time.sleep(0.005)
            assert calls, "worker never picked up the first request"
            t_queued = threading.Thread(
                target=lambda: daemon.request({"model": "m", "batch": 1}))
            t_queued.start()
            deadline = time.monotonic() + 5
            while daemon._queue.qsize() < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert daemon._queue.qsize() == 1, "queue slot never filled"
            # worker busy + queue full: the next distinct request must
            # shed immediately with the typed rejection — never a hang
            t0 = time.perf_counter()
            with pytest.raises(QueueFull):
                daemon.request({"model": "m", "batch": 99})
            assert time.perf_counter() - t0 < 1.0
            gate.set()
            t_worker.join()
            t_queued.join()
        assert _counter("service.rejected.queue_full") >= 1

    def test_deadline_expires_while_waiting(self):
        gate = threading.Event()
        daemon = PlannerDaemon(
            ServiceConfig(queue_depth=4, service_workers=1),
            planner=_fake_planner(gate, []))
        with daemon:
            blocker = threading.Thread(
                target=lambda: daemon.request({"model": "m", "batch": 0}))
            blocker.start()
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExpired):
                daemon.request({"model": "m", "batch": 1},
                               deadline_s=0.05)
            assert time.perf_counter() - t0 < 2.0
            gate.set()
            blocker.join()
        assert _counter("service.rejected.deadline") >= 1

    def test_deadline_expires_for_a_queued_job(self):
        gate = threading.Event()
        calls: List[int] = []
        daemon = PlannerDaemon(
            ServiceConfig(queue_depth=4, service_workers=1),
            planner=_fake_planner(gate, calls))
        with daemon:
            blocker = threading.Thread(
                target=lambda: daemon.request({"model": "m", "batch": 0}))
            blocker.start()
            deadline = time.monotonic() + 5
            while not calls and time.monotonic() < deadline:
                time.sleep(0.005)   # blocker owns the single worker
            errors: List[Exception] = []

            def expired():
                try:
                    daemon.request({"model": "m", "batch": 1},
                                   deadline_s=0.05)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            t = threading.Thread(target=expired)
            t.start()
            time.sleep(0.2)   # deadline passes while the job sits queued
            gate.set()
            t.join()
            blocker.join()
            assert len(errors) == 1
            assert isinstance(errors[0], DeadlineExpired)
            # the worker never planned the expired job
            assert len(calls) == 1

    def test_default_deadline_from_service_config(self):
        gate = threading.Event()
        daemon = PlannerDaemon(
            ServiceConfig(queue_depth=4, service_workers=1,
                          default_deadline_s=0.05),
            planner=_fake_planner(gate, []))
        with daemon:
            blocker = threading.Thread(
                target=lambda: daemon.request({"model": "m", "batch": 0},
                                              deadline_s=30.0))
            blocker.start()
            time.sleep(0.05)
            with pytest.raises(DeadlineExpired):
                daemon.request({"model": "m", "batch": 1})
            gate.set()
            blocker.join()

    def test_closed_daemon_rejects(self):
        daemon = PlannerDaemon(planner=lambda c, n: {"cache": "miss"})
        with pytest.raises(ServiceClosed):
            daemon.request({"model": "m", "batch": 1})
        daemon.start()
        daemon.stop()
        with pytest.raises(ServiceClosed):
            daemon.request({"model": "m", "batch": 1})

    def test_planner_exception_becomes_planning_failed(self):
        def boom(config: Dict[str, Any], n: int) -> Dict[str, Any]:
            raise ValueError("infeasible capacity")

        with PlannerDaemon(planner=boom) as daemon:
            with pytest.raises(PlanningFailed, match="infeasible"):
                daemon.request({"model": "m", "batch": 1})


# ---------------------------------------------------------------------------
# single-flight stampede protection
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_k_identical_requests_plan_exactly_once(self):
        """K concurrent identical requests -> one planner invocation,
        all K responses bit-identical (the headline stampede assert)."""
        K = 8
        gate = threading.Event()
        calls: List[int] = []
        merges0 = _counter("service.singleflight_merges")
        daemon = PlannerDaemon(
            ServiceConfig(queue_depth=16, service_workers=2),
            planner=_fake_planner(gate, calls))
        with daemon:
            results: List[Any] = []
            lock = threading.Lock()

            def go():
                r = daemon.request({"model": "stampede", "batch": 4})
                with lock:
                    results.append(r)

            threads = [threading.Thread(target=go) for _ in range(K)]
            for t in threads:
                t.start()
            # wait until all K-1 waiters have attached to the flight,
            # then release the planner
            deadline = time.monotonic() + 10
            while (_counter("service.singleflight_merges") - merges0
                   < K - 1) and time.monotonic() < deadline:
                time.sleep(0.005)
            assert _counter("service.singleflight_merges") - merges0 \
                == K - 1
            gate.set()
            for t in threads:
                t.join()

        assert len(calls) == 1, f"stampede planned {len(calls)} times"
        assert len(results) == K
        blobs = {json.dumps(r.record, sort_keys=True) for r in results}
        assert len(blobs) == 1, "waiters saw non-identical plans"
        assert sum(1 for r in results if r.merged) == K - 1
        assert sum(1 for r in results if not r.merged) == 1

    def test_distinct_requests_do_not_merge(self):
        gate = threading.Event()
        gate.set()
        calls: List[int] = []
        with PlannerDaemon(planner=_fake_planner(gate, calls)) as daemon:
            daemon.request({"model": "a", "batch": 1})
            daemon.request({"model": "a", "batch": 2})
        assert len(calls) == 2

    def test_hot_tier_serves_repeats_without_queueing(self):
        gate = threading.Event()
        gate.set()
        calls: List[int] = []
        with PlannerDaemon(planner=_fake_planner(gate, calls)) as daemon:
            first = daemon.request({"model": "a", "batch": 1})
            again = daemon.request({"model": "a", "batch": 1})
        assert first.tier == "cold" and again.tier == "hot"
        assert len(calls) == 1

    def test_hot_lru_evicts_at_capacity(self):
        gate = threading.Event()
        gate.set()
        calls: List[int] = []
        cfg = ServiceConfig(hot_capacity=2)
        with PlannerDaemon(cfg, planner=_fake_planner(gate, calls)) \
                as daemon:
            for b in (1, 2, 3):   # batch=1 is evicted by batch=3
                daemon.request({"model": "a", "batch": b})
            assert daemon.request({"model": "a", "batch": 3}).tier == "hot"
            assert daemon.request({"model": "a",
                                   "batch": 1}).tier == "cold"
        assert len(calls) == 4

    def test_warm_tier_reported_for_cache_hits(self):
        def cached(config: Dict[str, Any], n: int) -> Dict[str, Any]:
            return {"cache": "hit", "batch": config["batch"]}

        with PlannerDaemon(planner=cached) as daemon:
            assert daemon.request({"model": "a",
                                   "batch": 1}).tier == "warm"


# ---------------------------------------------------------------------------
# worker budgets
# ---------------------------------------------------------------------------

class TestWorkerBudget:
    def test_grants_are_capped_and_never_block(self):
        budget = WorkerBudget(3, per_request_cap=2)
        a = budget.acquire(4)
        assert a == 2 and budget.free == 1
        b = budget.acquire(2)
        assert b == 1 and budget.free == 0
        # exhausted pool still grants the floor of 1 (oversubscription,
        # not deadlock)
        c = budget.acquire(2)
        assert c == 1
        budget.release(a)
        budget.release(b)
        budget.release(c)
        assert budget.free == 3

    def test_release_guards_overflow(self):
        budget = WorkerBudget(2)
        g = budget.acquire(1)
        budget.release(g)
        with pytest.raises(ValueError):
            budget.release(5)

    def test_lease_restores_on_error(self):
        budget = WorkerBudget(2)
        with pytest.raises(RuntimeError):
            with budget.lease(2):
                raise RuntimeError("planner failed")
        assert budget.free == 2

    def test_daemon_isolates_request_budgets(self):
        """Pool of 3, cap 2: three concurrent requests see [1, 1, 2]-ish
        grants — no request monopolizes the pool."""
        gate = threading.Event()
        calls: List[int] = []
        cfg = ServiceConfig(queue_depth=8, service_workers=3,
                            pool_workers=3, max_workers_per_request=2)
        with PlannerDaemon(cfg, planner=_fake_planner(gate, calls)) \
                as daemon:
            threads = [threading.Thread(
                target=lambda i=i: daemon.request({"model": "m",
                                                   "batch": i}))
                for i in range(3)]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 5
            while len(calls) < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
            gate.set()
            for t in threads:
                t.join()
        assert len(calls) == 3
        assert all(1 <= n <= 2 for n in calls)
        assert sum(calls) <= 4   # 3 tokens + at most one floor-grant


# ---------------------------------------------------------------------------
# cluster arbitration
# ---------------------------------------------------------------------------

class TestClusterArbiter:
    def make(self, n_devices: int = 2) -> ClusterArbiter:
        return ClusterArbiter(tiny_test_hierarchy(), n_devices=n_devices)

    def test_fitting_demand_is_reserved_without_spill(self):
        arb = self.make()
        p = arb.place(JobDemand("j1", {1: 200 * MiB}))
        assert p.device == 0
        assert p.reserved[1] == pytest.approx(200 * MiB)
        assert p.spilled_bytes == 0 and p.spill_penalty_s == 0

    def test_pressure_spills_to_lower_tier_with_penalty(self):
        # tiny dram budget = 256 MiB * 0.9 = 230.4 MiB
        arb = self.make()
        arb.place(JobDemand("j1", {1: 200 * MiB}))
        p2 = arb.place(JobDemand("j2", {1: 100 * MiB}))
        assert p2.spilled_bytes == pytest.approx((100 - 30.4) * MiB,
                                                 rel=1e-3)
        assert p2.reserved[2] == pytest.approx(p2.spilled_bytes)
        assert p2.spill_penalty_s > 0
        util = arb.utilization_by_tier()
        assert util[1] == pytest.approx(1.0)   # DRAM saturated

    def test_denial_past_last_tier_leaves_reservations_untouched(self):
        arb = self.make()
        arb.place(JobDemand("j1", {1: 100 * MiB}))
        before = arb.snapshot()
        with pytest.raises(PlacementDenied, match="overflow past"):
            arb.place(JobDemand("big", {2: 5000 * MiB}))
        after = arb.snapshot()
        assert before["tiers"] == after["tiers"]
        assert after["jobs"] == ["j1"]
        assert after["devices_free"] == 1   # the denial freed no slot

    def test_device_exhaustion_denies(self):
        arb = self.make(n_devices=1)
        arb.place(JobDemand("j1", {1: 1 * MiB}))
        with pytest.raises(PlacementDenied, match="no free device"):
            arb.place(JobDemand("j2", {1: 1 * MiB}))

    def test_release_credits_reservations_and_device(self):
        arb = self.make(n_devices=1)
        arb.place(JobDemand("j1", {1: 200 * MiB}))
        arb.release("j1")
        snap = arb.snapshot()
        assert snap["devices_free"] == 1
        assert snap["tiers"]["1"]["reserved_bytes"] == 0
        p = arb.place(JobDemand("j2", {1: 200 * MiB}))
        assert p.spilled_bytes == 0

    def test_duplicate_and_unknown_jobs_are_bad_requests(self):
        arb = self.make()
        arb.place(JobDemand("j1", {}))
        with pytest.raises(BadRequest, match="already placed"):
            arb.place(JobDemand("j1", {}))
        with pytest.raises(BadRequest, match="not placed"):
            arb.release("ghost")

    def test_negative_or_device_tier_demand_rejected(self):
        arb = self.make()
        with pytest.raises(BadRequest):
            arb.place(JobDemand("j1", {0: 1 * MiB}))
        with pytest.raises(BadRequest):
            arb.place(JobDemand("j2", {1: -5.0}))

    def test_demand_from_record_and_batch_placement(self):
        demand = demand_from_record(
            {"tier_bytes": {"1": 64 * MiB, "2": 0}}, "job-a")
        assert demand.tier_bytes == {1: 64 * MiB}
        arb = self.make()
        report = place_jobs(arb, [
            demand,
            JobDemand("job-b", {2: 5000 * MiB}),   # denied, not raised
        ])
        assert report["jobs"][0]["placed"] is True
        assert report["jobs"][1]["placed"] is False
        assert report["jobs"][1]["error"]["type"] == "placement_denied"
        assert report["cluster"]["jobs"] == ["job-a"]


# ---------------------------------------------------------------------------
# real-planner integration
# ---------------------------------------------------------------------------

class TestDaemonWithRealPlanner:
    def test_cold_then_hot_with_tier_bytes(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path / "plans")
        cfg = ServiceConfig(pool_workers=2)
        with PlannerDaemon(cfg, cache=cache) as daemon:
            cold = daemon.request({"model": "unet", "batch": 8})
            hot = daemon.request({"model": "unet", "batch": 8})
        assert cold.tier == "cold" and hot.tier == "hot"
        assert cold.record == hot.record
        assert "tier_bytes" in cold.record

    def test_warm_tier_after_daemon_restart(self, tmp_path):
        cfg = ServiceConfig(pool_workers=1)
        with PlannerDaemon(cfg,
                           cache=PlanCache(cache_dir=tmp_path / "p")) as d:
            assert d.request({"model": "unet", "batch": 8}).tier == "cold"
        # a fresh daemon has an empty hot tier but shares the disk cache
        with PlannerDaemon(cfg,
                           cache=PlanCache(cache_dir=tmp_path / "p")) as d:
            assert d.request({"model": "unet", "batch": 8}).tier == "warm"


# ---------------------------------------------------------------------------
# socket protocol: server + client round trip
# ---------------------------------------------------------------------------

@pytest.fixture()
def served_daemon(tmp_path):
    """A daemon with a cluster, served over a unix socket."""
    sock = str(tmp_path / "karma.sock")
    cluster = ClusterArbiter(tiny_test_hierarchy(), n_devices=2)
    gate = threading.Event()
    gate.set()
    calls: List[int] = []
    daemon = PlannerDaemon(ServiceConfig(pool_workers=2),
                           planner=_fake_planner(gate, calls),
                           cluster=cluster)
    daemon.start()
    server = PlannerServer(daemon, sock).start()
    assert wait_for_server(sock, timeout=10)
    yield sock, daemon, calls
    server.stop()
    daemon.stop()


class TestSocketProtocol:
    def test_parse_address(self):
        assert parse_address("/tmp/x.sock") == "/tmp/x.sock"
        assert parse_address("5123") == ("127.0.0.1", 5123)
        assert parse_address("localhost:5123") == ("localhost", 5123)

    def test_round_trip_plan_place_stats(self, served_daemon):
        sock, _, calls = served_daemon
        with PlannerClient(sock, timeout=30) as c:
            assert c.ping()
            r1 = c.plan({"model": "unet", "batch": 8})
            r2 = c.plan({"model": "unet", "batch": 8})
            assert r1["tier"] == "cold" and r2["tier"] == "hot"
            assert r1["record"] == r2["record"]
            assert len(calls) == 1

            placement = c.place("job-a", {1: 100 * MiB})
            assert placement["device"] == 0
            stats = c.stats()
            assert stats["cluster"]["jobs"] == ["job-a"]
            assert stats["counters"]["service.requests"] >= 2
            released = c.release("job-a")
            assert released["job_id"] == "job-a"

    def test_typed_errors_cross_the_wire(self, served_daemon):
        sock, _, _ = served_daemon
        with PlannerClient(sock, timeout=30) as c:
            with pytest.raises(BadRequest):
                c.release("never-placed")
            with pytest.raises(PlacementDenied):
                c.place("huge", {2: 5000 * MiB})
            with pytest.raises(BadRequest):
                c.call("frobnicate")
            with pytest.raises(BadRequest):
                c.call("plan")   # missing config

    def test_malformed_line_is_rejected_not_fatal(self, served_daemon):
        sock, _, _ = served_daemon
        with PlannerClient(sock, timeout=30) as c:
            c._sock.sendall(b"this is not json\n")
            reply = json.loads(c._rfile.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
            assert c.ping()   # connection survives

    def test_shutdown_op_stops_the_server(self, tmp_path):
        sock = str(tmp_path / "k.sock")
        daemon = PlannerDaemon(planner=lambda c, n: {"cache": "miss"})
        daemon.start()
        server = PlannerServer(daemon, sock).start()
        assert wait_for_server(sock, timeout=10)
        with PlannerClient(sock, timeout=10) as c:
            c.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                PlannerClient(sock, timeout=0.2).close()
            except OSError:
                break
            time.sleep(0.02)
        else:
            pytest.fail("server still accepting after shutdown op")
        server.stop()   # idempotent
        daemon.stop()


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestServeCli:
    def test_serve_roundtrip_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        sock = str(tmp_path / "cli.sock")
        server_rc: List[int] = []

        def serve():
            server_rc.append(main([
                "serve", "--socket", sock, "--no-cache",
                "--service-workers", "1", "--pool-workers", "1"]))

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        assert wait_for_server(sock, timeout=15)

        rc1 = main(["plan", "--model", "unet", "--batch", "8",
                    "--server", sock])
        rc2 = main(["plan", "--model", "unet", "--batch", "8",
                    "--server", sock])
        out = capsys.readouterr().out
        assert rc1 == 0 and rc2 == 0
        assert "tier=cold" in out and "tier=hot" in out

        assert main(["serve", "--socket", sock, "--ping",
                     "--wait", "5"]) == 0
        assert main(["serve", "--socket", sock, "--stop"]) == 0
        t.join(timeout=15)
        assert not t.is_alive() and server_rc == [0]

    def test_plan_server_rejection_reports_error(self, tmp_path, capsys):
        from repro.cli import main

        sock = str(tmp_path / "missing.sock")
        rc = main(["plan", "--model", "unet", "--batch", "8",
                   "--server", sock])
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_requires_exactly_one_address(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 2
        assert main(["serve", "--socket", "/tmp/x", "--port",
                     "5000"]) == 2


# ---------------------------------------------------------------------------
# stats sidecar: concurrent-writer tolerance (the cache-info fix)
# ---------------------------------------------------------------------------

class TestCumulativeStatsRetry:
    def test_torn_sidecar_heals_on_retry(self, tmp_path, monkeypatch):
        import repro.cache.plan_cache as pc

        cache = PlanCache(cache_dir=tmp_path)
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        good = json.dumps({f: 1 for f in pc._STAT_FIELDS})
        cache.stats_path().write_text(good[: len(good) // 2])   # torn

        def heal(_seconds: float) -> None:
            cache.stats_path().write_text(good)   # the writer finishes

        monkeypatch.setattr(pc.time, "sleep", heal)
        stats = cache.cumulative_stats()
        assert stats == {f: 1 for f in pc._STAT_FIELDS}

    def test_torn_twice_reports_zeros_not_crash(self, tmp_path,
                                                monkeypatch):
        import repro.cache.plan_cache as pc

        cache = PlanCache(cache_dir=tmp_path)
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.stats_path().write_text('{"hits": ')
        monkeypatch.setattr(pc.time, "sleep", lambda s: None)
        assert cache.cumulative_stats() == {f: 0
                                            for f in pc._STAT_FIELDS}
