"""Opt-1 (blocking), Opt-2 (recompute), solver agreement, end-to-end plans."""

import math

import pytest

from repro.core import (
    AcoConfig,
    BlockPolicy,
    PartitionProblem,
    admissible,
    apply_recompute,
    assign_policies,
    build_inputs,
    local_search,
    plan,
    segment_graph,
    solve_aco,
    solve_blocking,
    solve_dp,
    solve_ilp,
)
from repro.core.blocking import coarsen_segments, pinned_bytes_per_block
from repro.costs import profile_graph
from repro.sim import simulate_plan

R, S, C = BlockPolicy.RESIDENT, BlockPolicy.SWAPPED, BlockPolicy.RECOMPUTED


def _toy_problem(costs, feas=None, max_span=8):
    """Pairwise problem over explicit cost table c[a][b][c]."""
    u = len(costs)

    def pair(a, b, c):
        return costs[b - 1] * 0.1 + abs((b - a) - (c - b)) * 0.01

    return PartitionProblem(
        num_segments=u,
        pair_cost=pair,
        block_feasible=feas or (lambda a, b: b - a <= 4),
        first_cost=lambda a, b: 0.0,
        max_span=max_span)


class TestSolvers:
    def test_dp_returns_valid_partition(self):
        prob = _toy_problem([1.0] * 10)
        bounds = solve_dp(prob)
        assert bounds[-1] == 10
        assert bounds == sorted(set(bounds))
        assert all(b - a <= 4 for a, b in zip([0] + bounds[:-1], bounds))

    def test_dp_and_ilp_agree(self):
        """The ILP is the DP's cross-check: same surrogate, same optimum."""
        import numpy as np
        rng = np.random.default_rng(3)
        costs = list(rng.random(9))
        prob = _toy_problem(costs)

        def total(bounds):
            t = 0.0
            prev = [0] + bounds[:-1]
            for i in range(1, len(bounds)):
                t += prob.pair_cost(prev[i - 1], prev[i], bounds[i])
            return t

        dp = solve_dp(prob)
        ilp = solve_ilp(prob)
        assert total(dp) == pytest.approx(total(ilp), abs=1e-9)

    def test_infeasible_problem_raises(self):
        prob = _toy_problem([1.0] * 10, feas=lambda a, b: False)
        with pytest.raises(ValueError):
            solve_dp(prob)

    def test_aco_never_worse_than_seed(self):
        prob = _toy_problem([1.0] * 10)
        seed = solve_dp(prob)

        def objective(bounds):
            prev = [0] + bounds[:-1]
            return sum(prob.pair_cost(prev[i - 1], prev[i], bounds[i])
                       for i in range(1, len(bounds))) + 0.001 * len(bounds)

        seed_val = objective(seed)
        best, val = solve_aco(prob, objective, seed_boundaries=seed,
                              config=AcoConfig(ants=6, iterations=6, seed=1))
        assert val <= seed_val + 1e-12

    def test_local_search_monotone(self):
        prob = _toy_problem([1.0] * 12)

        def objective(bounds):
            return abs(len(bounds) - 4) + sum(bounds) * 1e-6

        start = [3, 6, 9, 12]
        out, val = local_search([12], 12, objective, prob.block_feasible)
        assert val <= objective([12])


class TestBlocking:
    def test_segments_cover_graph(self, small_cnn):
        segs = segment_graph(small_cnn)
        assert segs[0][0] == 0 and segs[-1][1] == len(small_cnn)
        for (a, b), (c, d) in zip(segs, segs[1:]):
            assert b == c

    def test_coarsening_respects_limit(self, small_cnn, small_cnn_cost):
        segs = segment_graph(small_cnn)
        coarse = coarsen_segments(segs, small_cnn_cost, max_units=3)
        assert len(coarse) == 3
        assert coarse[0][0] == 0 and coarse[-1][1] == len(small_cnn)

    def test_assign_policies_suffix_resident(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 2048)
        inputs = build_inputs(small_cnn, cost, device.usable_memory)
        u = inputs.num_segments
        pols = assign_policies(inputs, list(range(1, u + 1)))
        # resident blocks form a suffix
        states = [p is BlockPolicy.RESIDENT for p in pols]
        if any(states):
            first_resident = states.index(True)
            assert all(states[first_resident:])

    def test_pinned_bytes_unet(self, small_unet, platform):
        device, _, transfer = platform
        cost = profile_graph(small_unet, device, transfer, 4)
        n = len(small_unet)
        blocks = [(0, n // 3), (n // 3, 2 * n // 3), (2 * n // 3, n)]
        pinned = pinned_bytes_per_block(small_unet, blocks, cost)
        assert sum(pinned) > 0, "U-Net long skips must pin bytes"

    def test_incore_regime_single_block(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 2)
        res = solve_blocking(small_cnn, cost, device.usable_memory,
                             small_cnn.name, 2)
        assert res.method == "in-core"
        assert res.policies == [BlockPolicy.RESIDENT]

    def test_out_of_core_blocking_feasible(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes)
        res = solve_blocking(small_cnn, cost, cap, small_cnn.name, 8)
        assert any(p is not BlockPolicy.RESIDENT for p in res.policies)
        assert math.isfinite(res.objective)

    def test_uniform_method_ablation(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes)
        uni = solve_blocking(small_cnn, cost, cap, small_cnn.name, 8,
                             method="uniform")
        auto = solve_blocking(small_cnn, cost, cap, small_cnn.name, 8,
                              method="auto")
        assert auto.objective <= uni.objective + 1e-12


class TestRecompute:
    def test_admissibility_constraint_10_1(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        n = len(small_cnn)
        blocks = [(0, n // 2), (n // 2, n)]
        pols = [S, R]
        # compute of the block must undercut its swap time for admission
        is_adm = admissible(cost, blocks, pols, 0)
        fw = cost.block_fw_time(0, n // 2)
        swap = cost.transfer.swap_time(
            cost.block_activation_bytes(0, n // 2))
        assert is_adm == (fw < swap)

    def test_opt2_never_worse(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes)
        res = solve_blocking(small_cnn, cost, cap, small_cnn.name, 8)
        out = apply_recompute(small_cnn, cost, cap, small_cnn.name, 8,
                              res.blocks, res.policies)
        assert out.makespan_after <= out.makespan_before + 1e-12
        assert out.improvement >= -1e-12


class TestPlannerEndToEnd:
    def test_incore_plan(self, small_cnn):
        kp = plan(small_cnn, batch_size=2)
        assert not kp.is_out_of_core
        assert kp.plan.plan_string() == "F1 -> B1"

    def test_ooc_plan_valid_and_feasible(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes)
        kp = plan(small_cnn, batch_size=8, capacity=cap)
        assert kp.is_out_of_core
        kp.plan.validate(small_cnn)
        res = simulate_plan(kp.plan, kp.cost, kp.capacity)
        assert math.isfinite(res.makespan)

    def test_recompute_flag_controls_opt2(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes)
        with_r = plan(small_cnn, batch_size=8, capacity=cap, recompute=True)
        without = plan(small_cnn, batch_size=8, capacity=cap,
                       recompute=False)
        assert without.recompute is None
        assert not without.plan.recomputed
        r1 = simulate_plan(with_r.plan, with_r.cost, cap).makespan
        r0 = simulate_plan(without.plan, without.cost, cap).makespan
        assert r1 <= r0 + 1e-12

    def test_describe_mentions_plan_string(self, small_cnn):
        kp = plan(small_cnn, batch_size=2)
        assert "plan string" in kp.describe()

    def test_unet_plan_handles_long_skips(self, small_unet):
        kp = plan(small_unet, batch_size=4)
        kp.plan.validate(small_unet)
