"""Distributed timing models: allreduce costs, DP-KARMA pipeline, hybrids,
ZeRO — the machinery behind Table IV, Fig. 8 and Table V."""

import pytest

from repro.hardware import abci_host, infiniband_edr_x2
from repro.models.transformer import MEGATRON_CONFIGS, TURING_NLG
from repro.sim import (
    AllreduceModel,
    ZeroConfig,
    dp_karma_cnn,
    dp_scaling_cnn,
    hybrid_mp_dp_lm,
    karma_plus_zero_lm,
    simulate_dp_karma_lm,
    zero_hybrid_lm,
    zero_min_gpus,
)

CFG = MEGATRON_CONFIGS["megatron-2.5b"]
EPOCH = 7_200_000


class TestAllreduceModel:
    def _model(self, workers, straggler=0.0):
        return AllreduceModel(link=infiniband_edr_x2(), host=abci_host(),
                              workers=workers,
                              straggler_per_worker=straggler)

    def test_single_worker_free(self):
        assert self._model(1).time(10**9) == 0.0

    def test_volume_term_saturates(self):
        """2(N-1)/N -> 2: doubling workers barely changes large-V time."""
        t64 = self._model(64).time(10**9)
        t128 = self._model(128).time(10**9)
        assert t128 < 1.1 * t64

    def test_straggle_grows_linearly(self):
        a = self._model(256, straggler=1e-3)
        b = self._model(512, straggler=1e-3)
        assert b.straggle == pytest.approx(2 * a.straggle, rel=0.01)

    def test_reduce_scatter_cheaper_than_allreduce(self):
        m = self._model(16)
        assert m.reduce_scatter_time(10**9) < m.time(10**9)

    def test_monotone_in_bytes(self):
        m = self._model(8)
        assert m.time(2 * 10**9) > m.time(10**9)


class TestDpKarmaLm:
    def test_steady_state_iteration_positive(self):
        r = simulate_dp_karma_lm(CFG, num_gpus=64, per_gpu_batch=32)
        assert r.iteration_time > 0
        assert r.global_samples_per_sec == pytest.approx(
            64 * 32 / r.iteration_time, rel=1e-9)

    def test_throughput_scales_with_gpus(self):
        r1 = simulate_dp_karma_lm(CFG, num_gpus=64, per_gpu_batch=32)
        r2 = simulate_dp_karma_lm(CFG, num_gpus=128, per_gpu_batch=32)
        assert r2.global_samples_per_sec > 1.5 * r1.global_samples_per_sec

    def test_recompute_off_is_faster(self):
        on = simulate_dp_karma_lm(CFG, 64, 32, recompute_activations=True)
        off = simulate_dp_karma_lm(CFG, 64, 32, recompute_activations=False)
        assert off.iteration_time < on.iteration_time

    def test_zero_exchange_not_slower(self):
        plain = simulate_dp_karma_lm(CFG, 64, 32)
        zk = simulate_dp_karma_lm(CFG, 64, 32, zero_style_exchange=True)
        assert zk.iteration_time <= plain.iteration_time + 1e-9


class TestHybrid:
    def test_mp_comm_zero_for_single_way(self):
        h = hybrid_mp_dp_lm(CFG, num_gpus=64, mp_ways=1,
                            per_replica_batch=8)
        assert h.mp_comm_time == 0.0

    def test_phased_exchange_helps(self):
        h = hybrid_mp_dp_lm(CFG, 256, 4, 8)
        hp = hybrid_mp_dp_lm(CFG, 256, 4, 8, phased_exchange=True)
        assert hp.iteration_time <= h.iteration_time

    def test_indivisible_gpus_rejected(self):
        with pytest.raises(ValueError):
            hybrid_mp_dp_lm(CFG, 65, 4, 8)

    def test_fig8_crossover_at_scale(self):
        """The paper's headline: DP-KARMA loses at small GPU counts but
        overtakes the hybrid at 2,048 GPUs (parity comparison)."""
        cfg = MEGATRON_CONFIGS["megatron-8.3b"]
        small_h = hybrid_mp_dp_lm(cfg, 256, 16, 8).epoch_time(EPOCH)
        small_k = simulate_dp_karma_lm(cfg, 256, 128).epoch_time(EPOCH)
        big_h = hybrid_mp_dp_lm(cfg, 2048, 16, 8).epoch_time(EPOCH)
        big_k = simulate_dp_karma_lm(cfg, 2048, 128).epoch_time(EPOCH)
        assert small_h < small_k, "hybrid should win at small scale"
        assert big_k < big_h, "KARMA should win at 2,048 GPUs"


class TestZero:
    def test_memory_partitioning_stages(self):
        params = 10 ** 9
        z1 = ZeroConfig(1).per_gpu_state_bytes(params, 8)
        z2 = ZeroConfig(2).per_gpu_state_bytes(params, 8)
        z3 = ZeroConfig(3).per_gpu_state_bytes(params, 8)
        assert z1 > z2 > z3

    def test_min_gpus_monotone_in_model_size(self):
        dev_mem = 16 * 1024**3
        stage3 = ZeroConfig(3)
        small = zero_min_gpus(CFG, dev_mem, zero=stage3)
        big = zero_min_gpus(TURING_NLG, dev_mem, zero=stage3)
        assert big >= small

    def test_stage2_cannot_fit_unsharded_turing_weights(self):
        with pytest.raises(ValueError):
            zero_min_gpus(TURING_NLG, 16 * 1024**3, zero=ZeroConfig(2))

    def test_turing_ordering_matches_paper(self):
        """§IV-C: KARMA < ZeRO < ZeRO+KARMA (epoch time: lower is better),
        with the combined system >= 1.1x over ZeRO."""
        z = zero_hybrid_lm(TURING_NLG, 2048, 16, 8).epoch_time(EPOCH)
        k = simulate_dp_karma_lm(TURING_NLG, 2048, 128).epoch_time(EPOCH)
        zk = karma_plus_zero_lm(TURING_NLG, 2048, 128).epoch_time(EPOCH)
        assert zk < z < k
        assert z / zk >= 1.1


class TestCostPerf:
    def test_dp_cost_rises_with_gpus(self):
        p1 = dp_scaling_cnn(0.5, 100 * 2**20, 128, 100)
        p2 = dp_scaling_cnn(0.5, 100 * 2**20, 128, 600)
        assert p2.cost_per_perf > p1.cost_per_perf

    def test_karma_cnn_point_consistency(self):
        p = dp_karma_cnn(1.0, 256, 100 * 2**20, 100)
        assert p.num_gpus == 100
        assert p.global_batch == 25600
        assert p.samples_per_sec > 0
