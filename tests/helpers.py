"""Shared model builders used across test modules."""

from __future__ import annotations

from repro.models.builder import GraphBuilder


def build_small_cnn(with_bn: bool = True, name: str = "small_cnn"):
    """Residual CNN small enough for float64 gradchecks."""
    b = GraphBuilder(name)
    b.input((3, 16, 16))
    b.conv(8, 3)
    if with_bn:
        b.bn()
    b.relu()
    skip = b.cursor
    b.conv(8, 3)
    if with_bn:
        b.bn()
    b.add_residual(skip)
    b.relu()
    b.pool(2, 2)
    b.conv(16, 3)
    b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(5)
    b.softmax()
    b.loss()
    return b.finish()


def build_small_unet(name: str = "small_unet"):
    """Two-level U-Net with long skips (tests SIII-F.4 handling)."""
    from repro.models.unet import unet

    return unet(image=32, in_channels=1, classes=2, base_width=4, depth=2)


def uniform_blocks(graph, k: int):
    """Split a graph's layers into ``k`` roughly equal contiguous blocks.

    ``k`` is a cap: rounding merges boundaries when ``k`` approaches the
    layer count, so fewer blocks may come back — callers that zip against
    a fixed-length policy list must keep ``k`` well below ``len(graph)``.
    """
    n = len(graph)
    bounds = sorted({round((i + 1) * n / k) for i in range(k)} - {0})
    bounds[-1] = n
    return list(zip([0] + bounds[:-1], bounds))
