"""Differential tests: the event-heap engine, the seed round-robin engine
(``sim.reference_engine``), and the vectorized structure-of-arrays engine
(``simulate_table``) must be bit-identical on every op stream — randomized
DAGs, plan-shaped pipeline lowerings with multi-hop tiered swaps,
distributed pipelines, and the compiled streams of every registry model.
The batched lowering cache must be value-transparent."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPolicy, make_plan
from repro.costs import profile_graph
from repro.hardware import three_tier_hierarchy
from repro.models.registry import REGISTRY, build
from repro.runtime.executor import OutOfCorePlanError
from repro.sim import (
    LoweringCache,
    OpTable,
    ScheduleBuilder,
    SimOp,
    SimulationDeadlock,
    block_costs,
    compile_plan,
    simulate,
    simulate_plan,
    simulate_portfolio,
    simulate_reference,
    simulate_table,
)

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)

RESOURCES = ("gpu", "h2d", "d2h", "d2s", "s2d", "cpu")


def assert_bit_identical(ops, capacity):
    """All three engines agree exactly — timings, summaries, or the
    deadlock.  Returns the event-heap result (None when all deadlock)."""
    try:
        ref = simulate_reference(ops, capacity)
    except SimulationDeadlock:
        with pytest.raises(SimulationDeadlock):
            simulate(ops, capacity)
        with pytest.raises(SimulationDeadlock):
            simulate_table(OpTable.from_ops(ops), capacity)
        return None
    new = simulate(ops, capacity)
    vec = simulate_table(OpTable.from_ops(ops), capacity)
    for got in (new, vec):
        assert got.timings == ref.timings      # exact float equality
        assert got.makespan == ref.makespan
        assert got.resource_busy == ref.resource_busy
        assert got.resource_span == ref.resource_span
        for r in RESOURCES:
            assert got.idle_gaps(r) == ref.idle_gaps(r)
            assert got.occupancy(r) == ref.occupancy(r)
    return new


@st.composite
def op_dags(draw):
    """Randomized op DAGs: resources, deps, acquires/releases, capacity."""
    n = draw(st.integers(min_value=1, max_value=40))
    n_res = draw(st.integers(min_value=1, max_value=4))
    ops = []
    for i in range(n):
        n_deps = draw(st.integers(min_value=0, max_value=min(i, 3)))
        deps = tuple(sorted(
            draw(st.sets(st.integers(0, i - 1), min_size=n_deps,
                         max_size=n_deps)))) if i else ()
        ops.append(SimOp(
            op_id=i,
            resource=RESOURCES[draw(st.integers(0, n_res - 1))],
            duration=draw(st.floats(min_value=0.0, max_value=3.0,
                                    allow_nan=False)),
            deps=deps,
            mem_acquire=draw(st.sampled_from([0, 0, 10, 40, 80, 130])),
            mem_release=draw(st.sampled_from([0, 0, 10, 40, 80, 130])),
        ))
    capacity = draw(st.sampled_from([None, 60, 100, 200, 500]))
    return ops, capacity


@st.composite
def pipeline_lowerings(draw):
    """Plan-shaped op streams mirroring ``compile_plan``'s emission: a
    forward chain acquiring stash, per-block swap-out/swap-in hop chains
    (optionally two-legged through the storage link, like an NVMe
    placement), recompute, and a reverse backward chain releasing stash
    — under an optional tight ledger."""
    n_blocks = draw(st.integers(min_value=2, max_value=8))
    stash = [draw(st.sampled_from([10, 20, 50, 90])) for _ in range(n_blocks)]
    # S = swapped, C = recomputed, R = resident; last block resident as
    # in real plans
    policy = [draw(st.sampled_from("SSCR")) for _ in range(n_blocks - 1)]
    policy.append("R")
    tiered = [p == "S" and draw(st.booleans()) for p in policy]
    dur = st.floats(min_value=0.1, max_value=2.0, allow_nan=False)

    ops = []
    fw_of, swapin_tail = {}, {}
    prev_gpu = None

    def emit(resource, duration, deps=(), acq=0, rel=0):
        ops.append(SimOp(len(ops), resource, duration,
                         deps=tuple(deps), mem_acquire=acq,
                         mem_release=rel))
        return ops[-1].op_id

    for b in range(n_blocks):
        deps = [prev_gpu] if prev_gpu is not None else []
        fw_of[b] = prev_gpu = emit("gpu", draw(dur), deps,
                                   acq=stash[b])
        if policy[b] == "S":
            out = emit("d2h", draw(dur), [fw_of[b]], rel=stash[b])
            if tiered[b]:
                out = emit("d2s", draw(dur), [out])
            swapin_tail[b] = out
        elif policy[b] == "C":
            # dropped immediately after forward, like FW_DROP
            ops[-1] = SimOp(fw_of[b], "gpu", ops[fw_of[b]].duration,
                            deps=ops[fw_of[b]].deps,
                            mem_acquire=stash[b], mem_release=stash[b])
    for b in reversed(range(n_blocks)):
        deps = [prev_gpu]
        if policy[b] == "S":
            sin = swapin_tail[b]
            if tiered[b]:
                sin = emit("s2d", draw(dur), [sin])
            sin = emit("h2d", draw(dur), [sin, prev_gpu],
                       acq=stash[b])
            deps.append(sin)
        elif policy[b] == "C":
            deps.append(emit("gpu", draw(dur), [prev_gpu],
                             acq=stash[b]))
        prev_gpu = emit("gpu", draw(dur), deps, rel=stash[b])
    ledger = draw(st.sampled_from([None, 100, 150, 250, 10 ** 6]))
    return ops, ledger


@st.composite
def distributed_dags(draw):
    """Multi-worker pipeline DAGs: per-worker GPU chains, cross-worker
    activations hops, and a shared allreduce resource — unledgered, so
    the vectorized wave path (not the delegating ledger path) runs."""
    workers = draw(st.integers(min_value=2, max_value=4))
    depth = draw(st.integers(min_value=2, max_value=6))
    dur = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
    ops = []

    def emit(resource, duration, deps=()):
        ops.append(SimOp(len(ops), resource, duration,
                         deps=tuple(deps)))
        return ops[-1].op_id

    stage = {}
    for p in range(depth):
        for w in range(workers):
            deps = []
            if p:
                deps.append(stage[p - 1, w])
            if w:
                # activations hop from the previous pipeline stage
                deps.append(emit("h2d", draw(dur), [stage[p, w - 1]]))
            stage[p, w] = emit(f"gpu{w}", draw(dur), deps)
    # phased allreduce: every worker's last stage meets on the wire
    reduce_deps = [stage[depth - 1, w] for w in range(workers)]
    tail = emit("cpu", draw(dur), reduce_deps)
    for w in range(workers):
        emit(f"gpu{w}", draw(dur), [tail])
    return ops, None


class TestDifferential:
    @given(op_dags())
    @settings(deadline=None)
    def test_property_randomized_dags(self, case):
        ops, capacity = case
        assert_bit_identical(ops, capacity)

    @given(pipeline_lowerings())
    @settings(deadline=None)
    def test_property_pipeline_lowerings(self, case):
        ops, ledger = case
        assert_bit_identical(ops, ledger)

    @given(distributed_dags())
    @settings(deadline=None)
    def test_property_distributed_pipelines(self, case):
        ops, capacity = case
        assert_bit_identical(ops, capacity)

    def test_ledger_contention_chain(self):
        """Swap-style pattern: acquires held across resources under a
        tight ledger — the order-sensitive case for the ledgered path."""
        ops = []
        n = 12
        for b in range(n):
            f = len(ops)
            ops.append(SimOp(f, "gpu", 1.0,
                             deps=(ops[-3].op_id,) if b else (),
                             mem_acquire=30))
            ops.append(SimOp(f + 1, "d2h", 1.5, deps=(f,), mem_release=30))
            ops.append(SimOp(f + 2, "h2d", 1.5, deps=(f + 1,),
                             mem_acquire=30))
        for b in range(n):
            ops.append(SimOp(len(ops), "gpu", 0.7,
                             deps=(3 * b + 2,), mem_release=30))
        assert_bit_identical(ops, 100)

    def test_memory_deadlock_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=80),
               SimOp(1, "h2d", 1.0, mem_acquire=50)]  # never released
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops, 100)
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 100)

    def test_capacity_overflow_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=200)]
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops, 100)
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 100)

    def test_circular_dependency_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, deps=(1,)),
               SimOp(1, "h2d", 1.0, deps=(0,))]
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops)
        with pytest.raises(SimulationDeadlock):
            simulate(ops)

    def test_zero_capacity_ledger(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=1)]
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 0)

    def test_plan_level_differential(self, small_cnn, platform):
        """Compiled plans (the production op streams) agree exactly."""
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 64)
        n = len(small_cnn)
        blocks = [(0, n // 3), (n // 3, 2 * n // 3), (2 * n // 3, n)]
        for policies in ([S, S, R], [S, C, R], [C, S, R], [S, S, S]):
            plan = make_plan(small_cnn.name, 64, blocks, policies)
            costs = block_costs(plan.blocks, cost)
            ops = compile_plan(plan, costs)
            for ledger in (None, 2 ** 40, 2 ** 34):
                assert_bit_identical(ops, ledger)

    def test_tiered_multi_hop_lowering(self, small_cnn, platform):
        """NVMe placements produce chained d2h->d2s / s2d->h2d hops; all
        three engines must still agree exactly."""
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 64)
        hier = three_tier_hierarchy(device=device)
        n = len(small_cnn)
        blocks = [(0, n // 3), (n // 3, 2 * n // 3), (2 * n // 3, n)]
        plan = make_plan(small_cnn.name, 64, blocks, [S, S, R],
                         placements={0: 2, 1: 1})
        costs = block_costs(plan.blocks, cost, hierarchy=hier,
                            placements=plan.placements)
        ops = compile_plan(plan, costs)
        assert any(op.resource in ("d2s", "s2d") for op in ops)
        for ledger in (None, 2 ** 40, 2 ** 34):
            assert_bit_identical(ops, ledger)


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestRegistryPlanStreams:
    """Plan-level bit-identity for every registered model's op stream."""

    def _compiled(self, name, platform, placements=None, hierarchy=None):
        device, _, transfer = platform
        graph = build(name)
        cost = profile_graph(graph, device, transfer, 16)
        n = len(graph)
        bounds = np.linspace(0, n, 9).astype(int)
        blocks = [(int(s), int(e)) for s, e in zip(bounds, bounds[1:])
                  if e > s]
        # alternate swap/recompute, keep the tail resident (real plans do)
        policies = [S if i % 2 == 0 else C for i in range(len(blocks))]
        policies[-1] = R
        plan = make_plan(graph.name, 16, blocks, policies,
                         placements=placements)
        costs = block_costs(plan.blocks, cost, hierarchy=hierarchy,
                            placements=plan.placements)
        return compile_plan(plan, costs)

    def test_two_tier_stream_bit_identical(self, name, platform):
        ops = self._compiled(name, platform)
        for ledger in (None, 2 ** 40):
            assert_bit_identical(ops, ledger)

    def test_tiered_stream_bit_identical(self, name, platform):
        device, _, _ = platform
        hier = three_tier_hierarchy(device=device)
        ops = self._compiled(name, platform, placements={0: 2},
                             hierarchy=hier)
        assert_bit_identical(ops, None)


class TestOpTable:
    def test_from_ops_round_trip(self):
        ops = [SimOp(7, "gpu", 1.0, mem_acquire=5, label="F1"),
               SimOp(9, "d2h", 2.0, deps=(7,), mem_release=5)]
        table = OpTable.from_ops(ops)
        assert table.n == 2
        assert table.to_ops() == ops
        assert table.label_of(0) == "F1"
        assert table.label_of(1) == "1"  # unlabeled: dense position

    def test_duplicate_and_unknown_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OpTable.from_ops([SimOp(0, "gpu", 1.0), SimOp(0, "gpu", 1.0)])
        with pytest.raises(ValueError, match="unknown op"):
            OpTable.from_ops([SimOp(0, "gpu", 1.0, deps=(3,))])

    def test_empty_table(self):
        res = simulate_table(OpTable.from_ops([]))
        assert res.makespan == 0.0 and res.timings == {}

    def test_cycle_deadlocks_like_scalar_engines(self):
        ops = [SimOp(0, "gpu", 1.0, deps=(1,)),
               SimOp(1, "h2d", 1.0, deps=(0,))]
        for run in (lambda: simulate(ops),
                    lambda: simulate_reference(ops),
                    lambda: simulate_table(OpTable.from_ops(ops))):
            with pytest.raises(SimulationDeadlock):
                run()

    def test_ledgered_table_delegates_to_greedy_order(self):
        """A capacity plus acquires must reproduce the scalar engine's
        (order-dependent) ledger placement exactly."""
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=60),
               SimOp(1, "h2d", 0.5, deps=(0,), mem_release=60),
               SimOp(2, "gpu", 2.0, mem_acquire=60, deps=(1,),
                     mem_release=60)]
        vec = simulate_table(OpTable.from_ops(ops), 100)
        ref = simulate(ops, 100)
        assert vec.timings == ref.timings
        assert vec.makespan == ref.makespan


class TestPortfolio:
    """simulate_portfolio: per-variant columns must reproduce the scalar
    engine float for float, and OpTable.concat must keep merged
    candidates independent."""

    @staticmethod
    def _variant_makespans(ops, scales):
        out = []
        for sc in scales:
            scaled = [SimOp(o.op_id, o.resource, o.duration * sc, o.deps,
                            o.mem_acquire, o.mem_release, o.label)
                      for o in ops]
            out.append(simulate(scaled).makespan)
        return np.asarray(out)

    @given(op_dags(), st.lists(st.floats(min_value=0.0, max_value=4.0,
                                         allow_nan=False),
                               min_size=1, max_size=5))
    @settings(deadline=None)
    def test_property_columns_match_scalar_engine(self, case, scales):
        ops, _ = case
        table = OpTable.from_ops(ops)
        D = table.durations[:, None] * np.asarray(scales)[None, :]
        res = simulate_portfolio(table, D)
        assert res.starts.shape == res.finishes.shape == (table.n,
                                                          len(scales))
        for j, sc in enumerate(scales):
            scaled = [SimOp(o.op_id, o.resource, o.duration * sc, o.deps,
                            label=o.label) for o in ops]
            ref = simulate(scaled)
            for i, op in enumerate(ops):
                t = ref.timing(op.op_id)
                assert res.starts[i, j] == t.start      # exact
                assert res.finishes[i, j] == t.finish
            assert res.makespans[j] == ref.makespan

    @given(st.lists(pipeline_lowerings(), min_size=2, max_size=4),
           st.lists(st.floats(min_value=0.25, max_value=4.0,
                              allow_nan=False),
                    min_size=1, max_size=4))
    @settings(deadline=None)
    def test_property_concat_portfolio_prices_candidates_independently(
            self, cases, scales):
        tables = [OpTable.from_ops(ops) for ops, _ in cases]
        merged = OpTable.concat(tables)
        assert merged.n == sum(t.n for t in tables)
        offsets = np.cumsum([0] + [t.n for t in tables])[:-1]
        D = merged.durations[:, None] * np.asarray(scales)[None, :]
        res = simulate_portfolio(merged, D)
        got = np.maximum.reduceat(res.finishes, offsets, axis=0)
        for t, (ops, _) in enumerate(cases):
            want = self._variant_makespans(ops, scales)
            assert np.array_equal(got[t], want)        # bit-identical

    def test_deadlock_propagates(self):
        table = OpTable.from_ops([SimOp(0, "gpu", 1.0, deps=(1,)),
                                  SimOp(1, "h2d", 1.0, deps=(0,))])
        with pytest.raises(SimulationDeadlock):
            simulate_portfolio(table, np.ones((2, 3)))

    def test_shape_and_sign_validated(self):
        table = OpTable.from_ops([SimOp(0, "gpu", 1.0)])
        with pytest.raises(ValueError, match="n_variants"):
            simulate_portfolio(table, np.ones(1))
        with pytest.raises(ValueError, match="n_variants"):
            simulate_portfolio(table, np.ones((2, 2)))
        with pytest.raises(ValueError, match="negative"):
            simulate_portfolio(table, -np.ones((1, 2)))

    def test_empty_table_and_zero_variants(self):
        empty = simulate_portfolio(OpTable.from_ops([]),
                                   np.zeros((0, 4)))
        assert np.array_equal(empty.makespans, np.zeros(4))
        none = simulate_portfolio(
            OpTable.from_ops([SimOp(0, "gpu", 1.0)]), np.zeros((1, 0)))
        assert none.makespans.shape == (0,)

    def test_concat_of_zero_tables_rejected(self):
        with pytest.raises(ValueError, match="zero tables"):
            OpTable.concat([])

    def test_concat_namespaces_resources(self):
        a = OpTable.from_ops([SimOp(0, "gpu", 1.0, label="A")])
        b = OpTable.from_ops([SimOp(0, "gpu", 2.0)])
        merged = OpTable.concat([a, b])
        assert merged.resources == ["0:gpu", "1:gpu"]
        assert merged.label_of(0) == "A"
        # same-named queues stay independent: both start at t=0
        res = simulate_portfolio(merged, merged.durations[:, None])
        assert res.starts[0, 0] == res.starts[1, 0] == 0.0


class TestScheduleBuilder:
    def test_symbolic_resolution_and_final_hop(self):
        b = ScheduleBuilder()
        first = b.emit("d2h", 1.0, key=("Sout", 0), label="hop1")
        b.emit("d2s", 2.0, key=("Sout", 0), deps=[first], label="hop2")
        b.emit("gpu", 1.0, deps=[("Sout", 0)], label="B1")
        ops = b.build()
        # the dep resolved against the *final* emission of the key
        assert ops[2].deps == (1,)
        assert b.id_of(("Sout", 0)) == 1
        assert ("Sout", 0) in b and ("Sin", 0) not in b

    def test_missing_symbolic_dep_dropped_or_raises(self):
        b = ScheduleBuilder()
        b.emit("gpu", 1.0, deps=[("never", 1)], label="ok")
        assert b.build()[0].deps == ()
        b2 = ScheduleBuilder()
        b2.emit("gpu", 1.0, deps=[("never", 1)], label="R1",
                require_deps=True)
        with pytest.raises(SimulationDeadlock):
            b2.build()


class TestLoweringCache:
    def _ctx(self, small_cnn, platform, batch=64):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, batch)
        return cost, device.usable_memory

    def test_cached_results_value_transparent(self, small_cnn, platform):
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        n = len(small_cnn)
        blocks = [(0, n // 2), (n // 2, n)]
        plan = make_plan(small_cnn.name, 64, blocks, [S, R])
        plain = simulate_plan(plan, cost, cap)
        miss = simulate_plan(plan, cost, cap, cache=cache)
        hit = simulate_plan(plan, cost, cap, cache=cache)
        for res in (miss, hit):
            assert res.makespan == plain.makespan
            assert res.total_stall == plain.total_stall
            assert res.gpu_occupancy == plain.gpu_occupancy
            assert res.bw_block_stalls == plain.bw_block_stalls
        assert cache.hits == 1 and cache.misses == 1
        assert hit.plan is plan   # the hit re-carries the caller's plan

    def test_skeleton_reuse_across_boundaries(self, small_cnn, platform):
        """Same policy structure, shifted boundary: skeleton reused,
        durations re-bound, values still exact."""
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        n = len(small_cnn)
        for mid in (n // 2, n // 2 + 1):
            plan = make_plan(small_cnn.name, 64, [(0, mid), (mid, n)],
                             [S, R])
            cached = simulate_plan(plan, cost, cap, cache=cache)
            assert cached.makespan == simulate_plan(plan, cost,
                                                    cap).makespan
        assert cache.skeleton_hits >= 1

    def test_infeasible_outcome_cached(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cache = LoweringCache(cost, 1000.0)
        plan = make_plan(small_cnn.name, 8, [(0, len(small_cnn))], [R])
        from repro.sim import OutOfCoreInfeasible
        for _ in range(2):
            with pytest.raises(OutOfCoreInfeasible):
                simulate_plan(plan, cost, 1000.0, cache=cache)

    def test_mismatched_context_rejected(self, small_cnn, platform):
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        plan = make_plan(small_cnn.name, 64,
                         [(0, len(small_cnn))], [R])
        with pytest.raises(ValueError):
            simulate_plan(plan, cost, cap / 2, cache=cache)


class TestSimResultCaches:
    def test_idle_gaps_cached_and_stable(self):
        ops = [SimOp(0, "gpu", 1.0),
               SimOp(1, "h2d", 3.0),
               SimOp(2, "gpu", 1.0, deps=(1,))]
        res = simulate(ops)
        first = res.idle_gaps("gpu")
        assert first == [(1.0, 3.0)]
        assert res.idle_gaps("gpu") == first
        assert res.resource_timings("gpu") is res.resource_timings("gpu")
        assert res.occupancy("gpu") == pytest.approx(0.5)


class TestExecutorLeakGuard:
    def _setup(self, policies):
        import numpy as np
        from repro.hardware import GiB, MemorySpace
        from repro.nn import ExecutableModel
        from tests.helpers import build_small_cnn

        graph = build_small_cnn()
        m = ExecutableModel(graph, dtype=np.float64, seed=3)
        n = len(graph)
        plan = make_plan(graph.name, 8, [(0, n // 2), (n // 2, n)],
                         policies)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        return m, plan, MemorySpace(2 * GiB, 16 * GiB), x, y

    def test_clean_plan_does_not_raise(self):
        from repro.runtime.executor import OutOfCoreExecutor
        m, plan, space, x, y = self._setup([S, R])
        loss = OutOfCoreExecutor(m, plan, space).run_iteration(x, y)
        assert math.isfinite(loss)
        assert space.near.bytes_in_use == 0

    def test_leak_raises_and_names_layers(self, monkeypatch):
        from repro.runtime.executor import OutOfCoreExecutor
        m, plan, space, x, y = self._setup([S, R])
        ex = OutOfCoreExecutor(m, plan, space)
        orig = OutOfCoreExecutor._backward_block

        def skip_free(self, block):  # simulate a buggy executor/plan
            orig(self, block)
            if block == 0:
                name = self.graph[0].name
                self.acts[name] = x
                self._charge(name)
        monkeypatch.setattr(OutOfCoreExecutor, "_backward_block", skip_free)
        with pytest.raises(OutOfCorePlanError, match="leaked"):
            ex.run_iteration(x, y)
        # accounting was restored before raising
        assert space.near.bytes_in_use == 0

        tolerant = OutOfCoreExecutor(m, plan, space, allow_leaks=True)
        loss = tolerant.run_iteration(x, y)
        assert math.isfinite(loss)
        assert space.near.bytes_in_use == 0
