"""Differential tests: the event-heap engine must be bit-identical to the
seed round-robin engine (``sim.reference_engine``), and the batched
lowering cache must be value-transparent."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPolicy, make_plan
from repro.costs import profile_graph
from repro.runtime.executor import OutOfCorePlanError
from repro.sim import (
    LoweringCache,
    ScheduleBuilder,
    SimOp,
    SimulationDeadlock,
    block_costs,
    compile_plan,
    simulate,
    simulate_plan,
    simulate_reference,
)

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)

RESOURCES = ("gpu", "h2d", "d2h", "d2s", "s2d", "cpu")


def assert_bit_identical(ops, capacity):
    """Both engines agree exactly — timings, summaries, or the deadlock."""
    try:
        ref = simulate_reference(ops, capacity)
    except SimulationDeadlock:
        with pytest.raises(SimulationDeadlock):
            simulate(ops, capacity)
        return None
    new = simulate(ops, capacity)
    assert new.timings == ref.timings          # exact float equality
    assert new.makespan == ref.makespan
    assert new.resource_busy == ref.resource_busy
    assert new.resource_span == ref.resource_span
    for r in RESOURCES:
        assert new.idle_gaps(r) == ref.idle_gaps(r)
        assert new.occupancy(r) == ref.occupancy(r)
    return new


@st.composite
def op_dags(draw):
    """Randomized op DAGs: resources, deps, acquires/releases, capacity."""
    n = draw(st.integers(min_value=1, max_value=40))
    n_res = draw(st.integers(min_value=1, max_value=4))
    ops = []
    for i in range(n):
        n_deps = draw(st.integers(min_value=0, max_value=min(i, 3)))
        deps = tuple(sorted(
            draw(st.sets(st.integers(0, i - 1), min_size=n_deps,
                         max_size=n_deps)))) if i else ()
        ops.append(SimOp(
            op_id=i,
            resource=RESOURCES[draw(st.integers(0, n_res - 1))],
            duration=draw(st.floats(min_value=0.0, max_value=3.0,
                                    allow_nan=False)),
            deps=deps,
            mem_acquire=draw(st.sampled_from([0, 0, 10, 40, 80, 130])),
            mem_release=draw(st.sampled_from([0, 0, 10, 40, 80, 130])),
        ))
    capacity = draw(st.sampled_from([None, 60, 100, 200, 500]))
    return ops, capacity


class TestDifferential:
    @given(op_dags())
    @settings(max_examples=300, deadline=None)
    def test_property_randomized_dags(self, case):
        ops, capacity = case
        assert_bit_identical(ops, capacity)

    def test_ledger_contention_chain(self):
        """Swap-style pattern: acquires held across resources under a
        tight ledger — the order-sensitive case for the ledgered path."""
        ops = []
        n = 12
        for b in range(n):
            f = len(ops)
            ops.append(SimOp(f, "gpu", 1.0,
                             deps=(ops[-3].op_id,) if b else (),
                             mem_acquire=30))
            ops.append(SimOp(f + 1, "d2h", 1.5, deps=(f,), mem_release=30))
            ops.append(SimOp(f + 2, "h2d", 1.5, deps=(f + 1,),
                             mem_acquire=30))
        for b in range(n):
            ops.append(SimOp(len(ops), "gpu", 0.7,
                             deps=(3 * b + 2,), mem_release=30))
        assert_bit_identical(ops, 100)

    def test_memory_deadlock_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=80),
               SimOp(1, "h2d", 1.0, mem_acquire=50)]  # never released
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops, 100)
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 100)

    def test_capacity_overflow_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=200)]
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops, 100)
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 100)

    def test_circular_dependency_both_engines(self):
        ops = [SimOp(0, "gpu", 1.0, deps=(1,)),
               SimOp(1, "h2d", 1.0, deps=(0,))]
        with pytest.raises(SimulationDeadlock):
            simulate_reference(ops)
        with pytest.raises(SimulationDeadlock):
            simulate(ops)

    def test_zero_capacity_ledger(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=1)]
        with pytest.raises(SimulationDeadlock):
            simulate(ops, 0)

    def test_plan_level_differential(self, small_cnn, platform):
        """Compiled plans (the production op streams) agree exactly."""
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 64)
        n = len(small_cnn)
        blocks = [(0, n // 3), (n // 3, 2 * n // 3), (2 * n // 3, n)]
        for policies in ([S, S, R], [S, C, R], [C, S, R], [S, S, S]):
            plan = make_plan(small_cnn.name, 64, blocks, policies)
            costs = block_costs(plan.blocks, cost)
            ops = compile_plan(plan, costs)
            for ledger in (None, 2 ** 40, 2 ** 34):
                assert_bit_identical(ops, ledger)


class TestScheduleBuilder:
    def test_symbolic_resolution_and_final_hop(self):
        b = ScheduleBuilder()
        first = b.emit("d2h", 1.0, key=("Sout", 0), label="hop1")
        b.emit("d2s", 2.0, key=("Sout", 0), deps=[first], label="hop2")
        b.emit("gpu", 1.0, deps=[("Sout", 0)], label="B1")
        ops = b.build()
        # the dep resolved against the *final* emission of the key
        assert ops[2].deps == (1,)
        assert b.id_of(("Sout", 0)) == 1
        assert ("Sout", 0) in b and ("Sin", 0) not in b

    def test_missing_symbolic_dep_dropped_or_raises(self):
        b = ScheduleBuilder()
        b.emit("gpu", 1.0, deps=[("never", 1)], label="ok")
        assert b.build()[0].deps == ()
        b2 = ScheduleBuilder()
        b2.emit("gpu", 1.0, deps=[("never", 1)], label="R1",
                require_deps=True)
        with pytest.raises(SimulationDeadlock):
            b2.build()


class TestLoweringCache:
    def _ctx(self, small_cnn, platform, batch=64):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, batch)
        return cost, device.usable_memory

    def test_cached_results_value_transparent(self, small_cnn, platform):
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        n = len(small_cnn)
        blocks = [(0, n // 2), (n // 2, n)]
        plan = make_plan(small_cnn.name, 64, blocks, [S, R])
        plain = simulate_plan(plan, cost, cap)
        miss = simulate_plan(plan, cost, cap, cache=cache)
        hit = simulate_plan(plan, cost, cap, cache=cache)
        for res in (miss, hit):
            assert res.makespan == plain.makespan
            assert res.total_stall == plain.total_stall
            assert res.gpu_occupancy == plain.gpu_occupancy
            assert res.bw_block_stalls == plain.bw_block_stalls
        assert cache.hits == 1 and cache.misses == 1
        assert hit.plan is plan   # the hit re-carries the caller's plan

    def test_skeleton_reuse_across_boundaries(self, small_cnn, platform):
        """Same policy structure, shifted boundary: skeleton reused,
        durations re-bound, values still exact."""
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        n = len(small_cnn)
        for mid in (n // 2, n // 2 + 1):
            plan = make_plan(small_cnn.name, 64, [(0, mid), (mid, n)],
                             [S, R])
            cached = simulate_plan(plan, cost, cap, cache=cache)
            assert cached.makespan == simulate_plan(plan, cost,
                                                    cap).makespan
        assert cache.skeleton_hits >= 1

    def test_infeasible_outcome_cached(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        cache = LoweringCache(cost, 1000.0)
        plan = make_plan(small_cnn.name, 8, [(0, len(small_cnn))], [R])
        from repro.sim import OutOfCoreInfeasible
        for _ in range(2):
            with pytest.raises(OutOfCoreInfeasible):
                simulate_plan(plan, cost, 1000.0, cache=cache)

    def test_mismatched_context_rejected(self, small_cnn, platform):
        cost, cap = self._ctx(small_cnn, platform)
        cache = LoweringCache(cost, cap)
        plan = make_plan(small_cnn.name, 64,
                         [(0, len(small_cnn))], [R])
        with pytest.raises(ValueError):
            simulate_plan(plan, cost, cap / 2, cache=cache)


class TestSimResultCaches:
    def test_idle_gaps_cached_and_stable(self):
        ops = [SimOp(0, "gpu", 1.0),
               SimOp(1, "h2d", 3.0),
               SimOp(2, "gpu", 1.0, deps=(1,))]
        res = simulate(ops)
        first = res.idle_gaps("gpu")
        assert first == [(1.0, 3.0)]
        assert res.idle_gaps("gpu") == first
        assert res.resource_timings("gpu") is res.resource_timings("gpu")
        assert res.occupancy("gpu") == pytest.approx(0.5)


class TestExecutorLeakGuard:
    def _setup(self, policies):
        import numpy as np
        from repro.hardware import GiB, MemorySpace
        from repro.nn import ExecutableModel
        from tests.helpers import build_small_cnn

        graph = build_small_cnn()
        m = ExecutableModel(graph, dtype=np.float64, seed=3)
        n = len(graph)
        plan = make_plan(graph.name, 8, [(0, n // 2), (n // 2, n)],
                         policies)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        return m, plan, MemorySpace(2 * GiB, 16 * GiB), x, y

    def test_clean_plan_does_not_raise(self):
        from repro.runtime.executor import OutOfCoreExecutor
        m, plan, space, x, y = self._setup([S, R])
        loss = OutOfCoreExecutor(m, plan, space).run_iteration(x, y)
        assert math.isfinite(loss)
        assert space.near.bytes_in_use == 0

    def test_leak_raises_and_names_layers(self, monkeypatch):
        from repro.runtime.executor import OutOfCoreExecutor
        m, plan, space, x, y = self._setup([S, R])
        ex = OutOfCoreExecutor(m, plan, space)
        orig = OutOfCoreExecutor._backward_block

        def skip_free(self, block):  # simulate a buggy executor/plan
            orig(self, block)
            if block == 0:
                name = self.graph[0].name
                self.acts[name] = x
                self._charge(name)
        monkeypatch.setattr(OutOfCoreExecutor, "_backward_block", skip_free)
        with pytest.raises(OutOfCorePlanError, match="leaked"):
            ex.run_iteration(x, y)
        # accounting was restored before raising
        assert space.near.bytes_in_use == 0

        tolerant = OutOfCoreExecutor(m, plan, space, allow_leaks=True)
        loss = tolerant.run_iteration(x, y)
        assert math.isfinite(loss)
        assert space.near.bytes_in_use == 0
