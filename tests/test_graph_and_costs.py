"""Layer graphs, traversal, FLOP formulas, memory model, model zoo."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs import (
    act_factor_for,
    backward_flops,
    fits_in_core,
    forward_flops,
    graph_param_count,
    layer_memory,
    max_in_core_batch,
    model_memory_total,
    optimizer_slots_for,
    param_count,
    projected_memory,
)
from repro.graph import (
    GraphValidationError,
    LayerGraph,
    LayerKind,
    LayerSpec,
    blocks_with_long_skips,
    chain,
    checkpoint_boundaries,
    contiguous_blocks,
    liveness_horizon,
    partition_is_legal,
)
from repro.hardware import v100_sxm2_16gb
from repro.models import (
    MEGATRON_CONFIGS,
    TURING_NLG,
    REGISTRY,
    fig5_models,
    tiny_gpt,
    unet,
    vgg16,
)


class TestLayerGraph:
    def test_duplicate_name_rejected(self):
        g = LayerGraph("g")
        g.add_layer(LayerSpec("a", LayerKind.INPUT, (1,), (1,)))
        with pytest.raises(GraphValidationError):
            g.add_layer(LayerSpec("a", LayerKind.RELU, (1,), (1,)))

    def test_unknown_dependency_rejected(self):
        g = LayerGraph("g")
        with pytest.raises(GraphValidationError):
            g.add_layer(LayerSpec("b", LayerKind.RELU, (1,), (1,)),
                        inputs=["missing"])

    def test_chain_builder(self):
        g = chain("c", [
            LayerSpec("a", LayerKind.INPUT, (4,), (4,)),
            LayerSpec("b", LayerKind.RELU, (4,), (4,)),
            LayerSpec("c", LayerKind.SOFTMAX, (4,), (4,)),
        ])
        assert g.is_linear_chain()
        assert g.predecessors("c") == ["b"]
        assert g.successors("a") == ["b"]

    def test_disconnected_layer_rejected(self, small_cnn):
        g = LayerGraph("g")
        g.add_layer(LayerSpec("a", LayerKind.INPUT, (1,), (1,)))
        g.add_layer(LayerSpec("b", LayerKind.INPUT, (1,), (1,)))
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_skip_edges_resnet(self, small_cnn):
        assert not small_cnn.is_linear_chain()
        assert small_cnn.longest_skip() > 1

    def test_describe_contains_layers(self, small_cnn):
        text = small_cnn.describe()
        assert "conv" in text and "loss" in text


class TestTraversal:
    def test_liveness_horizon_skip(self, small_cnn):
        horizon = liveness_horizon(small_cnn)
        # the residual source is consumed by the add join later on
        relu = "relu"  # first relu feeds both conv_1 and add
        assert horizon[relu] > small_cnn.index_of(relu) + 1

    def test_checkpoint_boundaries_avoid_skips(self, small_cnn):
        bounds = checkpoint_boundaries(small_cnn)
        for b in bounds[:-1]:
            for u, v in small_cnn.edges():
                iu, iv = small_cnn.index_of(u), small_cnn.index_of(v)
                assert not (iu < b < iv) or iv == b + 1

    def test_partition_legality(self, small_cnn):
        n = len(small_cnn)
        ok, _ = partition_is_legal(small_cnn, [n])
        assert ok
        bad, reason = partition_is_legal(small_cnn, [n + 1])
        assert not bad

    def test_unet_long_skips_flagged(self, small_unet):
        n = len(small_unet)
        third = n // 3
        blocks = [third, 2 * third, n]
        flagged = blocks_with_long_skips(small_unet, blocks)
        assert flagged, "U-Net contracting blocks must be flagged"

    def test_contiguous_blocks(self):
        assert contiguous_blocks([2, 5]) == [(0, 2), (2, 5)]
        with pytest.raises(ValueError):
            contiguous_blocks([2, 2])


_SPEC_CASES = [
    (LayerSpec("c", LayerKind.CONV2D, (3, 8, 8), (4, 8, 8),
               {"kernel": 3, "stride": 1, "padding": 1, "in_channels": 3,
                "out_channels": 4}),
     2 * 4 * 8 * 8 * 9 * 3),                      # |Y| K^2 C_in MACs
    (LayerSpec("r", LayerKind.RELU, (16,), (16,)), 16),
    (LayerSpec("p", LayerKind.POOL_MAX, (4, 8, 8), (4, 4, 4),
               {"kernel": 2, "stride": 2, "padding": 0}), 4 * 4 * 4 * 4),
    (LayerSpec("s", LayerKind.SOFTMAX, (10,), (10,)), 20),
    (LayerSpec("l", LayerKind.LINEAR, (6,), (4,),
               {"in_features": 6, "out_features": 4}), 2 * 6 * 4),
]


class TestFlops:
    @pytest.mark.parametrize("spec,expected", _SPEC_CASES)
    def test_forward_formulas(self, spec, expected):
        assert forward_flops(spec) == pytest.approx(expected)

    def test_batch_scaling_linear(self):
        spec = _SPEC_CASES[0][0]
        assert forward_flops(spec, 8) == pytest.approx(
            8 * forward_flops(spec, 1))

    def test_backward_factor_conv(self):
        spec = _SPEC_CASES[0][0]
        assert backward_flops(spec) == pytest.approx(2 * forward_flops(spec))

    def test_param_counts(self):
        conv = _SPEC_CASES[0][0]
        assert param_count(conv) == 3 * 3 * 3 * 4 + 4
        lin = _SPEC_CASES[4][0]
        assert param_count(lin) == 6 * 4 + 4

    def test_attention_flops_positive_and_quadratic_in_seq(self):
        def attn(t):
            return LayerSpec("a", LayerKind.ATTENTION, (t, 64), (t, 64),
                             {"seq_len": t, "dim": 64, "heads": 4})
        f1, f2 = forward_flops(attn(32)), forward_flops(attn(64))
        assert f2 > 2 * f1  # superlinear: score matrix is O(T^2)

    def test_lstm_flops_includes_gates(self):
        spec = LayerSpec("l", LayerKind.LSTM, (10, 8), (10, 16),
                         {"steps": 10, "input_dim": 8, "hidden_dim": 16})
        assert forward_flops(spec) > 20 * spec.output_elems


class TestMemoryModel:
    def test_layer_memory_classes(self):
        spec = _SPEC_CASES[0][0]
        mem = layer_memory(spec, batch_size=2)
        assert mem.weights == param_count(spec) * 4
        assert mem.activations == spec.output_elems * 2 * 4
        assert mem.resident_backward > mem.resident_forward

    def test_act_factor_scales_activations_not_weights(self):
        spec = _SPEC_CASES[0][0]
        m1 = layer_memory(spec, 2, act_factor=1.0)
        m2 = layer_memory(spec, 2, act_factor=2.0)
        assert m2.activations == 2 * m1.activations
        assert m2.weights == m1.weights

    def test_memory_monotone_in_batch(self, small_cnn):
        totals = [model_memory_total(small_cnn, b) for b in (1, 2, 4, 8)]
        assert totals == sorted(totals)

    def test_max_in_core_batch_bisection(self, small_cnn):
        cap = model_memory_total(small_cnn, 16) + 1
        b = max_in_core_batch(small_cnn, cap)
        assert b >= 16
        assert fits_in_core(small_cnn, b, cap)
        assert not fits_in_core(small_cnn, b + 1, cap)

    def test_projected_memory(self):
        assert projected_memory(1000, 2, 400, 4) == 400 + 1200
        with pytest.raises(ValueError):
            projected_memory(1000, 0, 0, 1)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_property_memory_monotonicity(self, b1, b2):
        spec = _SPEC_CASES[0][0]
        lo, hi = min(b1, b2), max(b1, b2)
        assert layer_memory(spec, lo).total <= layer_memory(spec, hi).total


class TestCostModelPrefixSums:
    def test_block_queries_match_direct_sums(self, small_cnn_cost):
        cm = small_cnn_cost
        n = len(cm)
        for (s, e) in [(0, n), (1, 3), (2, n - 1)]:
            assert cm.block_fw_time(s, e) == pytest.approx(
                sum(cm.fw_time(i) for i in range(s, e)))
            assert cm.block_weight_bytes(s, e) == \
                sum(cm.layer_mem(i).weights for i in range(s, e))

    def test_invalid_range_rejected(self, small_cnn_cost):
        with pytest.raises(ValueError):
            small_cnn_cost.block_fw_time(3, 3)

    def test_summary_renders(self, small_cnn_cost):
        assert "fw time" in small_cnn_cost.summary()


class TestModelZoo:
    @pytest.mark.parametrize("name,min_params", [
        ("resnet50", 25e6), ("resnet200", 64e6), ("wrn28_10", 36e6),
        ("resnet1001", 10e6), ("unet", 31e6),
    ])
    def test_table3_param_lower_bounds(self, name, min_params):
        g = REGISTRY[name].builder()
        assert graph_param_count(g) >= min_params

    def test_vgg16_canonical_params(self):
        # Table III lists >169M; the canonical VGG16 is 138M — documented
        # deviation (see EXPERIMENTS.md)
        assert graph_param_count(vgg16()) == pytest.approx(138.4e6, rel=0.01)

    @pytest.mark.parametrize("key,expected", [
        ("megatron-1.2b", 1.2e9), ("megatron-2.5b", 2.5e9),
        ("megatron-4.2b", 4.2e9), ("megatron-8.3b", 8.3e9),
    ])
    def test_megatron_param_closed_form(self, key, expected):
        cfg = MEGATRON_CONFIGS[key]
        assert cfg.analytic_params == pytest.approx(expected, rel=0.07)

    def test_turing_nlg_17b(self):
        assert TURING_NLG.analytic_params == pytest.approx(17e9, rel=0.05)

    @pytest.mark.slow
    @pytest.mark.parametrize("entry", fig5_models(), ids=lambda e: e.name)
    def test_fig5_incore_anchor(self, entry):
        """Only the first reported batch size fits in memory (§IV-B.1)."""
        g = entry.builder()
        dev = v100_sxm2_16gb()
        b = max_in_core_batch(g, dev.usable_memory,
                              act_factor=act_factor_for(g.name),
                              optimizer_slots=optimizer_slots_for(g.name))
        first, second = entry.fig5_batch_sizes[:2]
        assert first <= b < second, \
            f"{entry.name}: in-core limit {b} outside [{first}, {second})"

    def test_unet_has_long_skips(self):
        g = unet(image=64, base_width=8, depth=2)
        assert g.longest_skip() > 3

    def test_tiny_gpt_structure(self):
        g = tiny_gpt(hidden=32, heads=2, layers=2, seq_len=8, vocab=17)
        kinds = {s.kind for s in g}
        assert LayerKind.ATTENTION in kinds and LayerKind.EMBEDDING in kinds
