"""Numeric out-of-core execution: the bit-exactness guarantees of §IV-D."""

import numpy as np
import pytest

from repro.core import BlockPolicy, make_plan
from repro.hardware import GiB, MiB, MemorySpace, OutOfMemoryError
from repro.models import tiny_gpt
from repro.nn import SGD, ExecutableModel
from repro.runtime import OutOfCoreExecutor, OutOfCoreTrainer

from tests.helpers import build_small_cnn, build_small_unet

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)


def reference_grads(graph, x, y, seed=7):
    m = ExecutableModel(graph, dtype=np.float64, seed=seed)
    m.set_step(0)
    m.zero_grad()
    m.forward(x, y)
    m.backward()
    return float(m._acts[graph[len(graph) - 1].name][0]), \
        {(l, p): a.copy() for l, p, a in m.gradients()}


def run_ooc(graph, blocks, policies, x, y, near=2 * GiB, seed=7):
    plan = make_plan(graph.name, x.shape[0], blocks, policies)
    m = ExecutableModel(graph, dtype=np.float64, seed=seed)
    space = MemorySpace(near, 64 * GiB)
    ex = OutOfCoreExecutor(m, plan, space)
    m.zero_grad()
    loss = ex.run_iteration(x, y, step=0)
    return loss, {(l, p): a.copy() for l, p, a in m.gradients()}, space


def blocks_of(graph, k):
    n = len(graph)
    bounds = sorted({round((i + 1) * n / k) for i in range(k)})
    bounds[-1] = n
    return list(zip([0] + bounds[:-1], bounds))


POLICY_SETS = [
    pytest.param([S, S, S, S], id="all-swapped"),
    pytest.param([S, C, S, R], id="mixed-swap-recompute"),
    pytest.param([K, K, K, K], id="all-checkpointed"),
    pytest.param([S, C, C, R], id="recompute-chain"),
    pytest.param([R, R, R, R], id="all-resident"),
]


class TestBitExactness:
    @pytest.fixture(scope="class")
    def cnn_case(self):
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        loss, grads = reference_grads(g, x, y)
        return g, x, y, loss, grads

    @pytest.mark.parametrize("policies", POLICY_SETS)
    def test_cnn_grads_identical_under_any_policy(self, cnn_case, policies):
        g, x, y, ref_loss, ref = cnn_case
        loss, grads, _ = run_ooc(g, blocks_of(g, 4), policies, x, y)
        assert loss == pytest.approx(ref_loss, rel=1e-12)
        for key, a in grads.items():
            assert np.array_equal(a, ref[key]), f"grad mismatch {key}"

    def test_gpt_with_dropout_identical(self):
        """Recompute must reproduce dropout masks (counter-based streams)."""
        g = tiny_gpt(hidden=32, heads=2, layers=2, seq_len=8, vocab=17)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 17, (4, 8))
        y = np.roll(x, -1, axis=1)
        _, ref = reference_grads(g, x, y)
        _, grads, _ = run_ooc(g, blocks_of(g, 4), [S, C, S, R], x, y)
        for key, a in grads.items():
            assert np.array_equal(a, ref[key]), f"grad mismatch {key}"

    def test_unet_long_skips_identical(self):
        g = build_small_unet()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 1, 32, 32))
        y = rng.integers(0, 32, (2, 2, 32))
        _, ref = reference_grads(g, x, y)
        _, grads, _ = run_ooc(g, blocks_of(g, 4), [S, S, S, R], x, y)
        for key, a in grads.items():
            assert np.array_equal(a, ref[key]), f"grad mismatch {key}"


class TestMemoryBehaviour:
    def test_swaps_actually_happen(self):
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        _, _, space = run_ooc(g, blocks_of(g, 4), [S, S, S, R], x, y)
        assert space.swap_out_count > 0
        assert space.swap_out_bytes == space.swap_in_bytes

    def test_capacity_enforced_oom(self):
        """With a near pool too small for the plan, allocation must fail."""
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        with pytest.raises(OutOfMemoryError):
            run_ooc(g, blocks_of(g, 4), [R, R, R, R], x, y, near=100_000)

    def test_ooc_fits_where_incore_cannot(self):
        """The core promise: a capacity that OOMs in-core trains with a
        swapping plan."""
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        # find a capacity where all-resident OOMs
        near = 3 * MiB
        with pytest.raises(OutOfMemoryError):
            run_ooc(g, blocks_of(g, 4), [R, R, R, R], x, y, near=near)
        loss, _, space = run_ooc(g, blocks_of(g, 8),
                                 [S, S, S, S, S, S, S, R], x, y, near=near)
        assert np.isfinite(loss)
        assert space.near.peak_in_use <= near

    def test_no_stash_leak_after_iteration(self):
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 5, 4)
        plan = make_plan(g.name, 4, blocks_of(g, 4), [S, C, S, R])
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        space = MemorySpace(2 * GiB, 64 * GiB)
        ex = OutOfCoreExecutor(m, plan, space)
        ex.run_iteration(x, y, step=0)
        assert space.near.bytes_in_use == 0
        assert space.far.bytes_in_use == 0


class TestTrainerLoop:
    def test_ooc_training_converges(self):
        from repro.data import SyntheticImages

        g = build_small_cnn()
        plan = make_plan(g.name, 8, blocks_of(g, 4), [S, C, S, R])
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        trainer = OutOfCoreTrainer(m, plan, MemorySpace(2 * GiB, 64 * GiB),
                                   SGD(lr=0.1, momentum=0.9))
        data = SyntheticImages((3, 16, 16), 5, seed=0, dtype=np.float64)
        losses = trainer.train(data, steps=20)
        assert losses[-1] < losses[0]

    def test_ooc_training_matches_incore_training(self):
        from repro.data import SyntheticImages

        g = build_small_cnn()
        data = SyntheticImages((3, 16, 16), 5, seed=0, dtype=np.float64)
        plan = make_plan(g.name, 4, blocks_of(g, 4), [S, C, S, R])
        ooc_model = ExecutableModel(g, dtype=np.float64, seed=7)
        trainer = OutOfCoreTrainer(ooc_model, plan,
                                   MemorySpace(2 * GiB, 64 * GiB),
                                   SGD(lr=0.05, momentum=0.9))
        ref_model = ExecutableModel(g, dtype=np.float64, seed=7)
        ref_opt = SGD(lr=0.05, momentum=0.9)
        for s in range(5):
            x, y = data.batch(4, s)
            l_ooc = trainer.train_step(x, y)
            l_ref = ref_model.train_step(x, y, ref_opt, step=s)
            assert l_ooc == pytest.approx(l_ref, rel=1e-12)
        ref = {(l, p): a for l, p, a in ref_model.parameters()}
        for (l, p, a) in ooc_model.parameters():
            assert np.array_equal(a, ref[(l, p)])
