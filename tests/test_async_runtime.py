"""Asynchronous runtime: stream determinism, overlap machinery, and the
sim-vs-real validation harness.

The load-bearing guarantee is differential: the asynchronous executor's
gradients and trained parameters must be **byte-identical** to the
synchronous oracle's under any legal plan — randomized blockings,
policies, tier counts, placements, prefetch windows, and pacing.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPolicy, make_plan
from repro.hardware import (
    GiB,
    MiB,
    MemorySpace,
    OutOfMemoryError,
    TieredMemorySpace,
)
from repro.hardware.tiering import tiny_test_hierarchy
from repro.nn import SGD, ExecutableModel
from repro.runtime import (
    AsyncOutOfCoreExecutor,
    OutOfCoreExecutor,
    StreamSet,
    TransferPacer,
    TransferRequest,
    TransferStream,
)
from repro.sim import SimOp, compare_profiles, simulate, stall_profile
from repro.sim.stall import MEMORY, OTHER

from tests.helpers import build_small_cnn, uniform_blocks

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)


def _case(seed=0, batch=4):
    g = build_small_cnn()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, 3, 16, 16))
    y = rng.integers(0, 5, batch)
    return g, x, y


def _grads(model):
    return {(l, p): a.copy() for l, p, a in model.gradients()}


def _run(cls, g, plan, x, y, space, seed=7, **kw):
    model = ExecutableModel(g, dtype=np.float64, seed=seed)
    ex = cls(model, plan, space, **kw)
    model.zero_grad()
    loss = ex.run_iteration(x, y, step=0)
    return loss, _grads(model), ex


# ---------------------------------------------------------------------------
# Differential: async == sync, bit for bit
# ---------------------------------------------------------------------------

@st.composite
def plan_cases(draw):
    """Randomized (blocks, policies, placements, tiers, knobs) plans."""
    k = draw(st.integers(min_value=2, max_value=6))
    policies = [draw(st.sampled_from([R, S, C, K])) for _ in range(k)]
    # the final block backward immediately follows its forward; keep it
    # resident or swapped to stay a legal schedule under every k
    policies[-1] = draw(st.sampled_from([R, S]))
    tiers = draw(st.integers(min_value=2, max_value=3))
    placements = {}
    if tiers == 3:
        for b, p in enumerate(policies):
            if p is S and draw(st.booleans()):
                placements[b] = 2
    prefetch_stages = draw(st.integers(min_value=0, max_value=4))
    lookahead = draw(st.integers(min_value=0, max_value=3))
    depth = draw(st.integers(min_value=1, max_value=4))
    return k, policies, placements, tiers, prefetch_stages, lookahead, depth


class TestDifferentialBitIdentity:
    @given(plan_cases())
    @settings(max_examples=40, deadline=None)
    def test_async_matches_sync_oracle(self, case):
        """Byte-identical gradients across randomized plans, tier counts,
        placements, and prefetch/recompute settings."""
        k, policies, placements, tiers, pf, la, depth = case
        g, x, y = _case()
        blocks = uniform_blocks(g, k)
        policies = policies[:len(blocks)]
        policies[-1] = policies[-1] if policies[-1] in (R, S) else R
        placements = {b: t for b, t in placements.items()
                      if b < len(blocks) and policies[b] is S}
        plan = make_plan(g.name, x.shape[0], blocks, policies,
                         placements=placements)

        def space():
            return TieredMemorySpace([2 * GiB] * tiers)

        loss_s, grads_s, _ = _run(OutOfCoreExecutor, g, plan, x, y, space())
        loss_a, grads_a, ex = _run(AsyncOutOfCoreExecutor, g, plan, x, y,
                                   space(), prefetch_stages=pf,
                                   prefetch_lookahead=la,
                                   stream_depth=depth)
        assert loss_a == loss_s
        assert grads_a.keys() == grads_s.keys()
        for key, a in grads_a.items():
            assert np.array_equal(a, grads_s[key]), key
        assert ex.trace is not None and ex.trace.makespan > 0

    def test_trained_parameters_identical(self):
        """Multi-step training under the async executor lands on the same
        bytes as the synchronous trainer."""
        g, x, y = _case()
        blocks = uniform_blocks(g, 4)
        plan = make_plan(g.name, x.shape[0], blocks, [S, C, S, R])

        models = []
        for cls in (OutOfCoreExecutor, AsyncOutOfCoreExecutor):
            m = ExecutableModel(g, dtype=np.float64, seed=7)
            ex = cls(m, plan, MemorySpace(2 * GiB, 64 * GiB))
            opt = SGD(lr=0.05, momentum=0.9)
            for s in range(4):
                m.zero_grad()
                ex.run_iteration(x, y, step=s)
                opt.step(m)
            models.append(m)
        ref = {(l, p): a for l, p, a in models[0].parameters()}
        for (l, p, a) in models[1].parameters():
            assert np.array_equal(a, ref[(l, p)]), (l, p)

    def test_paced_run_still_bit_identical(self):
        """Wall-clock pacing must not leak into the numerics."""
        g, x, y = _case()
        blocks = uniform_blocks(g, 4)
        plan = make_plan(g.name, x.shape[0], blocks, [S, S, S, R],
                         placements={0: 2})
        pacer = TransferPacer(time_scale=2.0,
                              hierarchy=tiny_test_hierarchy(
                                  link_bw=200e9, nvme_read_bw=100e9,
                                  nvme_write_bw=50e9))
        _, grads_s, _ = _run(OutOfCoreExecutor, g, plan, x, y,
                             TieredMemorySpace([2 * GiB] * 3), pacer=pacer)
        _, grads_a, _ = _run(AsyncOutOfCoreExecutor, g, plan, x, y,
                             TieredMemorySpace([2 * GiB] * 3), pacer=pacer)
        for key, a in grads_a.items():
            assert np.array_equal(a, grads_s[key]), key

    def test_pool_oom_propagates(self):
        """A near pool too small for the plan must still OOM, not hang."""
        g, x, y = _case(batch=8)
        blocks = uniform_blocks(g, 4)
        plan = make_plan(g.name, 8, blocks, [R, R, R, R])
        with pytest.raises(OutOfMemoryError):
            _run(AsyncOutOfCoreExecutor, g, plan, x, y,
                 MemorySpace(100_000, 64 * GiB))

    def test_charge_backpressure_at_sync_peak_capacity(self):
        """A device pool sized to the synchronous peak must still run:
        forwards that collide with in-flight swap-outs wait for the
        transfer (attributed to 'memory'), they do not OOM spuriously."""
        g, x, y = _case(batch=8)
        blocks = uniform_blocks(g, 8)
        n = len(blocks)
        plan = make_plan(g.name, 8, blocks, [S] * (n - 1) + [R],
                         placements={0: 2, 1: 2})
        dry = TieredMemorySpace([64 * GiB] * 3)
        _, ref, _ = _run(OutOfCoreExecutor, g, plan, x, y, dry)
        peak = dry.near.peak_in_use

        space = TieredMemorySpace([peak + 512, 2 * GiB, 8 * GiB])
        _, grads, ex = _run(AsyncOutOfCoreExecutor, g, plan, x, y, space,
                            prefetch_stages=0)
        for key, a in grads.items():
            assert np.array_equal(a, ref[key]), key
        assert space.near.peak_in_use <= peak + 512

    def test_no_stash_leak_and_clean_pools(self):
        g, x, y = _case()
        blocks = uniform_blocks(g, 4)
        plan = make_plan(g.name, x.shape[0], blocks, [S, C, S, R],
                         placements={0: 2})
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        _run(AsyncOutOfCoreExecutor, g, plan, x, y, space)
        for pool in space.pools:
            assert pool.bytes_in_use == 0


# ---------------------------------------------------------------------------
# The _move bounce-staging fix
# ---------------------------------------------------------------------------

class TestBounceStagingFix:
    def _executor(self, space, pacer=None):
        g, x, y = _case()
        blocks = uniform_blocks(g, 4)
        plan = make_plan(g.name, x.shape[0], blocks, [S, S, S, R],
                         placements={0: 2, 1: 2})
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(m, plan, space, pacer=pacer)
        m.zero_grad()
        ex.run_iteration(x, y, step=0)
        return ex

    def test_no_bounce_residue_in_intermediate_tier(self):
        """Regression: a device<->NVMe move must leave the DRAM bounce
        bytes fully released — not parked in the allocator cache, where
        they kept the intermediate tier's reserved bytes inflated (a
        transient double-charge against real DRAM stash traffic)."""
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        self._executor(space)
        dram = space.pools[1]
        # bounce traffic definitely flowed through DRAM...
        assert space.demote_bytes.get(1, 0) > 0
        assert dram.peak_in_use > 0
        # ...but none of it may linger: only real (tier-1-placed) stash
        # frees are allowed to populate the cache, and block 2 is the
        # only DRAM-placed block here, freed at swap-in
        assert dram.bytes_in_use == 0
        stash2 = space.promote_bytes.get(1, 0)
        assert dram.bytes_cached <= stash2

    def test_bounce_never_cached(self):
        """Direct probe: after a 0->2->0 round trip through a fresh
        space, the DRAM pool retains zero cached bytes."""
        g, x, y = _case()
        blocks = uniform_blocks(g, 2)
        plan = make_plan(g.name, x.shape[0], blocks, [S, R],
                         placements={0: 2})
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(m, plan, space)
        m.zero_grad()
        ex.run_iteration(x, y, step=0)
        dram = space.pools[1]
        assert dram.bytes_in_use == 0
        assert dram.bytes_cached == 0     # old code: bounce segments
        assert dram.bytes_reserved == 0
        assert dram.peak_in_use > 0       # the transient bounce was real

    def test_mid_chain_oom_leaves_consistent_state(self):
        """A device->NVMe move whose storage hop OOMs must surface the
        OOM with the stash consistently parked in the tier it reached —
        not a dangling freed allocation that later double-frees."""
        g, x, y = _case()
        blocks = uniform_blocks(g, 2)
        plan = make_plan(g.name, x.shape[0], blocks, [S, R],
                         placements={0: 2})
        # NVMe pool far too small for the stash: hop 2 must OOM
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 100_000])
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(m, plan, space, allow_leaks=True)
        m.zero_grad()
        with pytest.raises(OutOfMemoryError):
            ex.run_iteration(x, y, step=0)
        # the interrupted entry rests in the DRAM bounce; freeing the
        # whole stash must not double-free and must zero the pools
        for name in list(ex._stash):
            ex._free(name)
        for pool in space.pools:
            assert pool.bytes_in_use == 0

    def test_paced_move_matches_transfer_model(self):
        """Verify the paced move against the hierarchy's TransferModel
        semantics: wall-clock of a multi-hop swap approximates the
        store-and-forward transfer_time at the pacer's scale."""
        hier = tiny_test_hierarchy(link_bw=0.5e9, nvme_read_bw=0.25e9,
                                   nvme_write_bw=0.25e9)
        pacer = TransferPacer(time_scale=1.0, hierarchy=hier)
        g, x, y = _case()
        blocks = uniform_blocks(g, 2)
        plan = make_plan(g.name, x.shape[0], blocks, [S, R],
                         placements={0: 2})
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        m = ExecutableModel(g, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(m, plan, space, pacer=pacer)
        m.zero_grad()

        swapped_bytes = []
        orig = ex._swap

        def spy(block, dest):
            before = space.swap_out_bytes
            orig(block, dest)
            moved = space.swap_out_bytes - before
            if moved:
                swapped_bytes.append(moved)
        ex._swap = spy

        t0 = time.perf_counter()
        ex.run_iteration(x, y, step=0)
        wall = time.perf_counter() - t0
        nbytes = swapped_bytes[0]
        expected = hier.transfer_time(nbytes, 0, 2) \
            + hier.transfer_time(nbytes, 2, 0)
        assert wall >= 0.9 * expected
        assert wall <= 2.0 * expected + 0.25  # compute + sleep overhead


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------

class TestStreams:
    def test_fifo_order_and_chaining(self):
        pacer = TransferPacer(time_scale=1.0)
        with StreamSet(("d2h", "d2s"), pacer=pacer) as ss:
            order = []
            a = TransferRequest("a", "d2h", 0, 0.02,
                                apply=lambda: order.append("a"))
            b = TransferRequest("b", "d2s", 0, 0.0, after=a,
                                apply=lambda: order.append("b"))
            ss.submit(a)
            ss.submit(b)
            ss.drain()
            assert order == ["a", "b"]          # chained apply order holds
            assert b.started >= a.finished       # worker waited for `after`
            assert all(r.applied for r in (a, b))
            assert [r.label for r in ss.records] == ["a", "b"]

    def test_bounded_depth_blocks_submit(self):
        slow = TransferPacer(time_scale=1.0)
        stream = TransferStream("d2h", depth=1, pacer=slow)
        try:
            stream.submit(TransferRequest("r1", "d2h", 0, 0.15))
            t0 = time.perf_counter()
            stream.submit(TransferRequest("r2", "d2h", 0, 0.0))
            stream.submit(TransferRequest("r3", "d2h", 0, 0.0))
            waited = time.perf_counter() - t0
            assert waited >= 0.05  # bounded queue applied backpressure
            stream.drain()
            finishes = [r.finished for r in stream.inflight]
            assert finishes == sorted(finishes)
        finally:
            stream.close()

    def test_wait_for_progress_reports_idle(self):
        with StreamSet(("h2d",)) as ss:
            assert ss.wait_for_progress() is False  # nothing in flight
            req = TransferRequest("r", "h2d", 0, 0.01)
            ss.submit(req)
            assert ss.wait_for_progress(timeout=5.0) is True
            ss.drain()

    def test_transfers_overlap_calling_thread(self):
        """The whole point: a paced transfer must not block the issuer."""
        pacer = TransferPacer(time_scale=1.0)
        with StreamSet(("d2h",), pacer=pacer) as ss:
            t0 = time.perf_counter()
            ss.submit(TransferRequest("r", "d2h", 0, 0.2))
            issue_cost = time.perf_counter() - t0
            assert issue_cost < 0.05
            done = threading.Event()
            ss.submit(TransferRequest("r2", "d2h", 0, 0.0,
                                      apply=done.set))
            ss.drain()
            assert done.is_set()


# ---------------------------------------------------------------------------
# Stall attribution + validation harness
# ---------------------------------------------------------------------------

class TestStallAttribution:
    def test_gap_attributed_to_binding_dep(self):
        ops = [
            SimOp(0, "gpu", 1.0),
            SimOp(1, "h2d", 3.0, deps=(0,)),
            SimOp(2, "gpu", 1.0, deps=(1,)),   # waits 3s on the link
        ]
        sim = simulate(ops)
        prof = stall_profile(ops, sim)
        assert prof.stalls == {"h2d": pytest.approx(3.0)}
        assert prof.fraction("h2d") == pytest.approx(3.0 / sim.makespan)
        assert prof.gpu_busy == pytest.approx(2.0)

    def test_ledger_delay_attributed_to_memory(self):
        ops = [
            SimOp(0, "gpu", 1.0, mem_acquire=80, mem_release=0),
            SimOp(1, "d2h", 2.0, deps=(0,), mem_release=80),
            SimOp(2, "gpu", 1.0, deps=(0,), mem_acquire=80),
        ]
        sim = simulate(ops, memory_capacity=100)
        prof = stall_profile(ops, sim)
        # op 2 was dep-ready at t=1 but the ledger held it until the
        # release at t=3
        assert prof.stalls.get(MEMORY, 0.0) == pytest.approx(2.0)

    def test_compare_profiles_rows(self):
        ops = [SimOp(0, "gpu", 1.0), SimOp(1, "h2d", 1.0, deps=(0,)),
               SimOp(2, "gpu", 1.0, deps=(1,))]
        sim = simulate(ops)
        prof = stall_profile(ops, sim)
        rows = compare_profiles(prof, prof)
        assert rows[-1]["resource"] == "gpu-occupancy"
        assert all(r["abs_error"] == 0 for r in rows)


class TestValidationHarness:
    def test_validate_two_configs(self):
        from repro.eval.validation import DEFAULT_CONFIGS, validate_many

        # the target wall must dwarf the real numpy compute, or residual
        # pacing (sleep modeled-minus-elapsed) floors at zero and the
        # emulation loses its modeled proportions
        reports = validate_many(DEFAULT_CONFIGS, target_wall_s=0.5)
        assert len(reports) >= 2
        for rep in reports:
            resources = [r["resource"] for r in rep.rows]
            assert "gpu-occupancy" in resources
            # the emulated runtime must reproduce the predicted stall
            # structure to within a few points of makespan
            assert rep.max_abs_error < 0.08, rep.table()
            assert 0.8 < rep.makespan_ratio < 1.3
        # the swap-bound config must actually exhibit link stalls
        cnn = next(r for r in reports if r.config == "cnn")
        assert cnn.measured.fraction("h2d") > 0.03

    def test_overlap_beats_sync_on_swap_bound_config(self):
        """Same plan + pacing: the async executor must be faster than the
        synchronous oracle once transfers take real time."""
        from repro.sim.trainer_sim import BlockCosts

        g, x, y = _case()
        blocks = uniform_blocks(g, 6)
        n = len(blocks)
        plan = make_plan(g.name, x.shape[0], blocks, [S] * (n - 1) + [R],
                         placements={0: 2})
        costs = BlockCosts(
            fw=(0.004,) * n, bw=(0.008,) * n,
            stash_bytes=(0,) * n, boundary_bytes=(0,) * n,
            weight_bytes=(0,) * n, swap_time=(0.010,) * n,
            grad_swap_time=(0.0,) * n,
            storage_out_time=tuple(0.006 if b == 0 else 0.0
                                   for b in range(n)),
            storage_in_time=tuple(0.006 if b == 0 else 0.0
                                  for b in range(n)))
        pacer = TransferPacer(time_scale=1.0, costs=costs)

        def timed(cls):
            best = float("inf")
            for _ in range(2):
                m = ExecutableModel(g, dtype=np.float64, seed=7)
                ex = cls(m, plan, TieredMemorySpace([2 * GiB] * 3),
                         pacer=pacer)
                m.zero_grad()
                t0 = time.perf_counter()
                ex.run_iteration(x, y, step=0)
                best = min(best, time.perf_counter() - t0)
            return best

        sync_wall = timed(OutOfCoreExecutor)
        async_wall = timed(AsyncOutOfCoreExecutor)
        assert async_wall < sync_wall  # overlap must help, CI-safely

    def test_validate_cli(self, capsys):
        from repro.cli import main

        rc = main(["validate", "--config", "cnn", "--target-wall", "0.1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "predicted vs measured" in out
        assert "h2d" in out

    def test_validate_cli_list_and_unknown(self, capsys):
        from repro.cli import main

        assert main(["validate", "--list"]) == 0
        assert "cnn" in capsys.readouterr().out
        assert main(["validate", "--config", "nope"]) == 2
