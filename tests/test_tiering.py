"""Tiered offload subsystem: hierarchy model, placement policies, tier-
qualified plans, storage-link simulation, and 3-tier numeric execution."""

import numpy as np
import pytest

from repro.core import BlockPolicy, PlanValidationError, make_plan, plan
from repro.core.schedule import Op, OpKind, Resource
from repro.costs.profiler import profile_graph
from repro.hardware import (
    GiB,
    MiB,
    MemorySpace,
    OutOfMemoryError,
    TieredMemorySpace,
    TransferModel,
    abci_host,
    abci_hierarchy,
    karma_swap_link,
    three_tier_hierarchy,
    tiny_test_device,
    tiny_test_hierarchy,
    two_tier_hierarchy,
)
from repro.hardware.spec import LinkSpec, StorageSpec, abci_nvme
from repro.hardware.tiering import MemoryHierarchy, TierSpec
from repro.nn import ExecutableModel
from repro.runtime import OutOfCoreExecutor, OutOfCorePlanError
from repro.sim import simulate_plan
from repro.tiering import (
    PlacementError,
    assign_tiers,
    bandwidth_aware_placement,
    capacity_pressure_placement,
    random_legal_placement,
    swapped_stash_bytes,
)

from tests.helpers import build_small_cnn, uniform_blocks as blocks_of

S, R, C = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT, BlockPolicy.RECOMPUTED


# --------------------------------------------------------------------------
# hierarchy model
# --------------------------------------------------------------------------

class TestMemoryHierarchy:
    def test_abci_hierarchy_shape(self):
        h = abci_hierarchy()
        assert h.depth == 3
        assert [t.name for t in h.tiers] == ["hbm", "dram", "nvme"]
        assert h.tier_index("nvme") == 2
        assert h.has_storage

    def test_two_tier_has_no_storage(self):
        assert not two_tier_hierarchy().has_storage

    def test_transfer_time_adds_hops(self):
        h = abci_hierarchy()
        one_hop = h.transfer_time(1 * GiB, 0, 1)
        two_hop = h.transfer_time(1 * GiB, 0, 2)
        assert two_hop > one_hop
        assert two_hop == pytest.approx(
            one_hop + h.transfer_time(1 * GiB, 1, 2))

    def test_asymmetric_storage_links(self):
        h = abci_hierarchy()
        # NVMe writes (demotion) are slower than reads (promotion)
        assert h.transfer_time(1 * GiB, 1, 2) > h.transfer_time(1 * GiB, 2, 1)

    def test_effective_bandwidth_bounded_by_slowest(self):
        h = abci_hierarchy()
        nvme_write = abci_nvme().write_bandwidth
        assert h.effective_bandwidth(0, 2) < nvme_write

    def test_validation_errors(self):
        t = TierSpec("hbm", 1 * GiB, 1e9)
        with pytest.raises(ValueError):
            MemoryHierarchy(tiers=(t,), links_down=())
        with pytest.raises(ValueError):
            MemoryHierarchy(tiers=(t, TierSpec("dram", 1 * GiB, 1e9)),
                            links_down=())
        with pytest.raises(ValueError):
            TierSpec("bad", -1, 1e9)
        with pytest.raises(ValueError):
            StorageSpec("bad", 1 * GiB, -1, 1e9)


# --------------------------------------------------------------------------
# placement policies
# --------------------------------------------------------------------------

class TestPlacement:
    STASH = {0: 100, 1: 100, 2: 100, 3: 100}

    def _hier(self, dram, nvme=10_000):
        return tiny_test_hierarchy(hbm=1 * MiB, dram=int(dram / 0.9) + 1,
                                   nvme=int(nvme / 0.9) + 1)

    def test_bandwidth_fills_dram_hottest_first(self):
        res = bandwidth_aware_placement(self.STASH, self._hier(dram=200))
        # blocks 3, 2 (hottest) get DRAM; 1, 0 overflow to NVMe
        assert res.placements[3] == 1 and res.placements[2] == 1
        assert res.placements[1] == 2 and res.placements[0] == 2
        assert res.demoted == (0, 1)

    def test_pressure_demotes_coldest(self):
        res = capacity_pressure_placement(self.STASH, self._hier(dram=400),
                                          pressure=0.5)
        # pressure target = 200 of 400: the two coldest demote
        assert res.placements[0] == 2 and res.placements[1] == 2
        assert res.placements[2] == 1 and res.placements[3] == 1

    def test_everything_fits_dram_no_demotion(self):
        res = bandwidth_aware_placement(self.STASH, self._hier(dram=4000))
        assert all(t == 1 for t in res.placements.values())
        assert not res.uses_storage

    def test_overflow_without_storage_raises(self):
        h = MemoryHierarchy(
            tiers=(TierSpec("hbm", 1 * MiB, 1e9),
                   TierSpec("dram", 250, 1e9)),
            links_down=(LinkSpec("l", 1e9),))
        with pytest.raises(PlacementError):
            bandwidth_aware_placement(self.STASH, h)
        with pytest.raises(PlacementError):
            capacity_pressure_placement(self.STASH, h)

    def test_random_placement_is_legal(self):
        from repro.tiering.placement import placement_feasible
        h = self._hier(dram=250)
        rng = np.random.default_rng(3)
        for _ in range(10):
            res = random_legal_placement(self.STASH, h, rng)
            assert placement_feasible(res.placements, self.STASH, h)

    def test_assign_tiers_without_hierarchy_is_dram_only(self, small_cnn,
                                                         small_cnn_cost):
        blocks = blocks_of(small_cnn, 4)
        policies = [S, S, S, R]
        res = assign_tiers(blocks, policies, small_cnn_cost, None)
        assert set(res.placements) == {0, 1, 2}
        assert all(t == 1 for t in res.placements.values())


# --------------------------------------------------------------------------
# tier-qualified plan IR
# --------------------------------------------------------------------------

class TestTieredPlanIR:
    def test_tier_qualified_ops_and_labels(self, small_cnn):
        blocks = blocks_of(small_cnn, 4)
        p = make_plan(small_cnn.name, 8, blocks, [S, S, S, R],
                      placements={0: 2, 1: 1})
        s = p.plan_string()
        assert "Sout1@t2" in s and "Sin1@t2" in s
        assert "Sout2@t2" not in s  # DRAM swaps keep plain notation
        assert p.stash_tier(0) == 2 and p.stash_tier(1) == 1
        assert p.uses_storage and p.max_tier == 2

    def test_storage_swaps_use_storage_resources(self):
        out = Op(OpKind.SWAP_OUT, 0, src_tier=0, dst_tier=2)
        back = Op(OpKind.SWAP_IN, 0, src_tier=2, dst_tier=0)
        assert out.resource is Resource.D2S
        assert back.resource is Resource.S2D
        assert Op(OpKind.SWAP_OUT, 0).resource is Resource.D2H

    def test_placement_for_unswapped_block_rejected(self, small_cnn):
        blocks = blocks_of(small_cnn, 4)
        with pytest.raises(PlanValidationError):
            make_plan(small_cnn.name, 8, blocks, [S, S, S, R],
                      placements={3: 2})

    def test_device_tier_placement_rejected(self, small_cnn):
        blocks = blocks_of(small_cnn, 4)
        with pytest.raises(PlanValidationError):
            make_plan(small_cnn.name, 8, blocks, [S, S, S, R],
                      placements={0: 0})

    def test_inconsistent_op_tier_rejected(self, small_cnn):
        from repro.core.schedule import ExecutionPlan, Stage
        blocks = blocks_of(small_cnn, 4)
        base = make_plan(small_cnn.name, 8, blocks, [S, S, S, R],
                         placements={0: 2, 1: 1, 2: 1})
        bad_stages = []
        for stage in base.stages:
            ops = tuple(Op(o.kind, o.block, src_tier=1, dst_tier=0)
                        if (o.kind is OpKind.SWAP_IN and o.block == 0)
                        else o for o in stage.ops)
            bad_stages.append(Stage(ops))
        bad = ExecutionPlan(
            model_name=base.model_name, batch_size=base.batch_size,
            blocks=base.blocks, policies=base.policies,
            stages=tuple(bad_stages), checkpoints=dict(base.checkpoints),
            placements=dict(base.placements))
        with pytest.raises(PlanValidationError):
            bad.validate()


# --------------------------------------------------------------------------
# storage-link simulation
# --------------------------------------------------------------------------

class TestStorageSimulation:
    @pytest.fixture(scope="class")
    def sim_case(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, batch_size=8)
        blocks = blocks_of(small_cnn, 4)
        policies = [S, S, S, R]
        stash = swapped_stash_bytes(blocks, policies, cost)
        hier = tiny_test_hierarchy(hbm=4 * MiB,
                                   dram=4 * int(sum(stash.values())),
                                   nvme=64 * MiB)
        return cost, blocks, policies, stash, hier

    def test_nvme_bound_strictly_slower_than_dram_twin(self, small_cnn,
                                                       sim_case):
        cost, blocks, policies, stash, hier = sim_case
        dram_twin = make_plan(small_cnn.name, 8, blocks, policies,
                              placements={b: 1 for b in stash})
        nvme_twin = make_plan(small_cnn.name, 8, blocks, policies,
                              placements={b: 2 for b in stash})
        res_d = simulate_plan(dram_twin, cost, 2 * GiB, hierarchy=hier)
        res_n = simulate_plan(nvme_twin, cost, 2 * GiB, hierarchy=hier)
        assert res_n.makespan > res_d.makespan
        assert res_n.storage_busy > 0.0
        assert res_d.storage_busy == 0.0

    def test_storage_resources_in_stall_profile(self, small_cnn, sim_case):
        cost, blocks, policies, stash, hier = sim_case
        nvme_twin = make_plan(small_cnn.name, 8, blocks, policies,
                              placements={b: 2 for b in stash})
        res = simulate_plan(nvme_twin, cost, 2 * GiB, hierarchy=hier)
        assert Resource.D2S.value in res.sim.resource_busy
        assert Resource.S2D.value in res.sim.resource_busy
        # every storage swap also stages over the host link
        assert Resource.D2H.value in res.sim.resource_busy
        assert Resource.H2D.value in res.sim.resource_busy

    def test_storage_plan_requires_hierarchy(self, small_cnn, sim_case):
        cost, blocks, policies, stash, _ = sim_case
        nvme_twin = make_plan(small_cnn.name, 8, blocks, policies,
                              placements={b: 2 for b in stash})
        with pytest.raises(ValueError):
            simulate_plan(nvme_twin, cost, 2 * GiB)


# --------------------------------------------------------------------------
# 3-tier numeric execution: the bit-exactness invariant
# --------------------------------------------------------------------------

def reference_grads(graph, x, y, seed=7):
    m = ExecutableModel(graph, dtype=np.float64, seed=seed)
    m.set_step(0)
    m.zero_grad()
    m.forward(x, y)
    m.backward()
    return {(l, p): a.copy() for l, p, a in m.gradients()}


class TestThreeTierBitExactness:
    @pytest.fixture(scope="class")
    def cnn_case(self):
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        return g, x, y, reference_grads(g, x, y)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_legal_3tier_placements_bit_identical(self, cnn_case,
                                                         seed, platform):
        """Gradients equal in-core backprop under arbitrary legal tiering."""
        g, x, y, ref = cnn_case
        device, _, transfer = platform
        cost = profile_graph(g, device, transfer, batch_size=8)
        blocks = blocks_of(g, 4)
        policies = [S, S, S, R]
        stash = swapped_stash_bytes(blocks, policies, cost)
        hier = tiny_test_hierarchy(hbm=64 * MiB, dram=4 * GiB, nvme=4 * GiB)
        rng = np.random.default_rng(seed)
        placement = random_legal_placement(stash, hier, rng)
        p = make_plan(g.name, 8, blocks, policies,
                      placements=placement.placements)
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 4 * GiB, 4 * GiB])
        ex = OutOfCoreExecutor(model, p, space)
        model.zero_grad()
        loss = ex.run_iteration(x, y, step=0)
        assert np.isfinite(loss)
        for key, a in ref.items():
            got = {(l, q): arr for l, q, arr in model.gradients()}[key]
            assert np.array_equal(a, got), \
                f"grad mismatch {key} under placement {placement.placements}"
        # stash moves balance: everything demoted was promoted back
        assert space.swap_out_bytes == space.swap_in_bytes

    def test_mixed_policies_with_nvme_stash(self, cnn_case):
        g, x, y, ref = cnn_case
        blocks = blocks_of(g, 4)
        p = make_plan(g.name, 8, blocks, [S, C, S, R],
                      placements={0: 2, 2: 1})
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 4 * GiB, 4 * GiB])
        ex = OutOfCoreExecutor(model, p, space)
        model.zero_grad()
        ex.run_iteration(x, y, step=0)
        for key, a in ref.items():
            got = {(l, q): arr for l, q, arr in model.gradients()}[key]
            assert np.array_equal(a, got), f"grad mismatch {key}"
        assert space.demote_bytes.get(1, 0) > 0  # NVMe actually used

    def test_no_leak_across_all_tiers(self, cnn_case):
        g, x, y, _ = cnn_case
        blocks = blocks_of(g, 4)
        p = make_plan(g.name, 8, blocks, [S, S, S, R],
                      placements={0: 2, 1: 2, 2: 1})
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 4 * GiB, 4 * GiB])
        OutOfCoreExecutor(model, p, space).run_iteration(x, y, step=0)
        for pool in space.pools:
            assert pool.bytes_in_use == 0


class TestCapacitySemantics:
    """The acceptance case: two-tier OOM, three-tier trains."""

    @pytest.fixture(scope="class")
    def oom_case(self):
        g = build_small_cnn()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 3, 16, 16))
        y = rng.integers(0, 5, 8)
        blocks = blocks_of(g, 4)
        policies = [S, S, S, R]
        # smaller than the full swapped stash (~3.2 MiB) but large enough
        # to bounce-stage any single layer (largest ~1.25 MiB): the
        # two-tier run overflows, the tiered run stages through cleanly
        far_cap = int(2.5 * MiB)
        return g, x, y, blocks, policies, far_cap

    def test_two_tier_far_pool_ooms(self, oom_case):
        g, x, y, blocks, policies, far_cap = oom_case
        p = make_plan(g.name, 8, blocks, policies)
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(model, p, MemorySpace(2 * GiB, far_cap))
        with pytest.raises(OutOfMemoryError):
            ex.run_iteration(x, y, step=0)

    def test_nvme_tier_rescues_same_config(self, oom_case):
        g, x, y, blocks, policies, far_cap = oom_case
        ref = reference_grads(g, x, y)
        # same DRAM capacity; the cold blocks spill past it to NVMe
        # (DRAM still transiently stages every NVMe hop — the bounce
        # buffer — so it must fit one layer's stash at a time)
        p = make_plan(g.name, 8, blocks, policies,
                      placements={0: 2, 1: 2, 2: 1})
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, far_cap, 4 * GiB])
        model.zero_grad()
        loss = OutOfCoreExecutor(model, p, space).run_iteration(x, y, step=0)
        assert np.isfinite(loss)
        for key, a in ref.items():
            got = {(l, q): arr for l, q, arr in model.gradients()}[key]
            assert np.array_equal(a, got), f"grad mismatch {key}"
        assert space.pools[2].peak_in_use > 0
        assert space.far.peak_in_use <= far_cap

    def test_two_tier_space_rejects_storage_plan(self, oom_case):
        g, x, y, blocks, policies, far_cap = oom_case
        p = make_plan(g.name, 8, blocks, policies, placements={0: 2})
        model = ExecutableModel(g, dtype=np.float64, seed=7)
        with pytest.raises(OutOfCorePlanError):
            OutOfCoreExecutor(model, p, MemorySpace(2 * GiB, 64 * GiB))

    def test_memory_space_tier_protocol(self):
        space = MemorySpace(1 * GiB, 2 * GiB)
        assert space.num_tiers == 2
        assert space.tier_pool(0) is space.near
        assert space.tier_pool(1) is space.far
        with pytest.raises(ValueError):
            space.tier_pool(2)


# --------------------------------------------------------------------------
# planner integration
# --------------------------------------------------------------------------

class TestPlannerIntegration:
    def test_planner_spills_to_nvme_when_dram_small(self, small_cnn):
        device = tiny_test_device(memory=500_000)
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        hier = tiny_test_hierarchy(hbm=500_000, dram=300_000,
                                   nvme=64 * MiB)
        # capacity-based strategy (no Opt-2): the DRAM overflow must swap,
        # and the only place it fits is NVMe
        kp = plan(small_cnn, 8, device=device, transfer=transfer,
                  hierarchy=hier, recompute=False)
        assert kp.plan.uses_storage
        assert kp.placement is not None
        res = simulate_plan(kp.plan, kp.cost, kp.capacity, hierarchy=hier)
        assert res.storage_busy > 0

    def test_recompute_replaces_nvme_swaps(self, small_cnn):
        """Opt-2 prices NVMe swaps at true cost: re-forwarding the cold
        block beats its storage round trip, so the interleave converts
        the spill to recompute."""
        device = tiny_test_device(memory=500_000)
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        hier = tiny_test_hierarchy(hbm=500_000, dram=300_000,
                                   nvme=64 * MiB)
        kp = plan(small_cnn, 8, device=device, transfer=transfer,
                  hierarchy=hier, recompute=True)
        # the blocking search spilled to NVMe...
        assert any(t >= 2 for t in kp.blocking.placements.values())
        # ...and the recompute interleave bought the spill back
        assert not kp.plan.uses_storage
        assert kp.plan.recomputed
        with_storage = plan(small_cnn, 8, device=device, transfer=transfer,
                            hierarchy=hier, recompute=False)
        t_rec = simulate_plan(kp.plan, kp.cost, kp.capacity,
                              hierarchy=hier).makespan
        t_swap = simulate_plan(with_storage.plan, with_storage.cost,
                               with_storage.capacity,
                               hierarchy=hier).makespan
        assert t_rec < t_swap

    def test_planner_two_tier_small_dram_infeasible(self, small_cnn):
        device = tiny_test_device(memory=500_000)
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        hier = MemoryHierarchy(
            tiers=(TierSpec("hbm", 500_000, 10e9),
                   TierSpec("dram", 300_000, 10e9)),
            links_down=(LinkSpec("l", 1e9),))
        with pytest.raises(ValueError):
            plan(small_cnn, 8, device=device, transfer=transfer,
                 hierarchy=hier)

    def test_planner_roomy_dram_stays_two_tier(self, small_cnn):
        device = tiny_test_device(memory=500_000)
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        kp = plan(small_cnn, 8, device=device, transfer=transfer,
                  hierarchy=three_tier_hierarchy(device=device))
        assert kp.plan.swapped and not kp.plan.uses_storage

    def test_explicit_placement_policy(self, small_cnn):
        device = tiny_test_device(memory=500_000)
        transfer = TransferModel(link=karma_swap_link(), device=device,
                                 host=abci_host())
        hier = tiny_test_hierarchy(hbm=500_000, dram=300_000,
                                   nvme=64 * MiB)
        kp = plan(small_cnn, 8, device=device, transfer=transfer,
                  hierarchy=hier, placement_policy="pressure")
        assert kp.blocking.placement_policy == "pressure"
