"""Schedule IR, Algorithm-1 stage generation, occupancy equations."""

import pytest

from repro.core import (
    BlockPolicy,
    ExecutionPlan,
    Op,
    OpKind,
    PlanValidationError,
    Stage,
    catch_up_step,
    estimate_blocking,
    generate_stages,
    make_plan,
    occupancy,
    single_block_plan,
)
from repro.core.occupancy import (
    available_buffers_trace,
    buffer_occupancy,
    refined_occupancy,
    swapped_in_bytes,
)

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)


class TestOpsAndStages:
    def test_op_labels_one_based(self):
        assert Op(OpKind.SWAP_OUT, 2).label() == "Sout3"
        assert Op(OpKind.FORWARD, 0).label() == "F1"
        # recompute prints as forward, like the paper's plan strings
        assert Op(OpKind.RECOMPUTE, 3).label() == "F4"

    def test_stage_label_parallel_bars(self):
        st = Stage((Op(OpKind.FORWARD, 1), Op(OpKind.SWAP_OUT, 0)))
        assert st.label() == "F2||Sout1"


class TestStageGeneration:
    def test_paper_fig2c_pattern(self):
        """Fig. 2(c): 6 blocks, swapped {1,3}, recomputed {2,4}, resident
        tail {5,6} (1-based) — the plan string of §III-F.3."""
        policies = [S, C, S, C, R, R]
        # use RECOMPUTED (not CHECKPOINTED) as the paper's blocks 2/4
        policies = [S, BlockPolicy.RECOMPUTED, S, BlockPolicy.RECOMPUTED,
                    R, R]
        plan = make_plan("fig2c", 1, [(i, i + 1) for i in range(6)],
                         policies)
        s = plan.plan_string()
        # forward: F1..F6 with Sout1 attached to F2's stage, Sout3 to F4's
        assert s.startswith("F1 -> F2||Sout1 -> F3 -> F4||Sout3 -> F5 -> F6")
        # backward must recompute 4 and 2 (printed as F4/F2) before B4/B2
        assert "F4" in s.split("B5", 1)[1]
        assert "F2" in s.split("B3", 1)[1]
        plan.validate()

    def test_checkpoints_walk_past_recomputed(self):
        policies = [S, BlockPolicy.RECOMPUTED, BlockPolicy.RECOMPUTED, R]
        stages, cps = generate_stages(policies)
        assert cps[1] == 0 and cps[2] == 0  # chain sources at block 0

    def test_checkpointed_is_own_source(self):
        policies = [K, K, K]
        _, cps = generate_stages(policies)
        assert cps == {0: -1, 1: 0, 2: 1}

    def test_prefetch_none_attaches_at_use(self):
        policies = [S, S, R]
        stages, _ = generate_stages(policies, prefetch="none")
        labels = [st.label() for st in stages]
        # Sin2 must share a stage with B2, Sin1 with B1
        assert any("Sin2" in l and "B2" in l for l in labels)
        assert any("Sin1" in l and "B1" in l for l in labels)

    def test_prefetch_eager_launches_early(self):
        policies = [S, S, R, R]
        stages, _ = generate_stages(policies, prefetch="eager")
        labels = [st.label() for st in stages]
        first_sin = next(i for i, l in enumerate(labels) if "Sin2" in l)
        use = next(i for i, l in enumerate(labels) if l.startswith("B2"))
        assert first_sin < use

    def test_unknown_prefetch_rejected(self):
        with pytest.raises(ValueError):
            generate_stages([R], prefetch="psychic")

    def test_vdnn_tail_swap_flushes(self):
        """All-swapped plans (vDNN) must Sout the last block and Sin it
        back before its backward (the Fig. 2a turnaround)."""
        policies = [S, S, S]
        plan = make_plan("vdnn", 1, [(0, 1), (1, 2), (2, 3)], policies)
        s = plan.plan_string()
        assert "Sout3" in s and "Sin3" in s
        plan.validate()


class TestPlanValidation:
    def _plan(self, policies, stages):
        return ExecutionPlan(model_name="m", batch_size=1,
                             blocks=tuple((i, i + 1)
                                          for i in range(len(policies))),
                             policies=tuple(policies), stages=tuple(stages))

    def test_backward_before_swapin_rejected(self):
        stages = [Stage((Op(OpKind.FORWARD, 0),)),
                  Stage((Op(OpKind.FORWARD, 1),
                         Op(OpKind.SWAP_OUT, 0))),
                  Stage((Op(OpKind.BACKWARD, 1),)),
                  Stage((Op(OpKind.BACKWARD, 0),)),  # missing Sin1
                  ]
        with pytest.raises(PlanValidationError):
            self._plan([S, R], stages).validate()

    def test_noncontiguous_blocks_rejected(self):
        plan = ExecutionPlan(model_name="m", batch_size=1,
                             blocks=((0, 1), (2, 3)),
                             policies=(R, R), stages=())
        with pytest.raises(PlanValidationError):
            plan.validate()

    def test_recompute_without_checkpoint_rejected(self):
        stages = [Stage((Op(OpKind.FORWARD, 0),)),
                  Stage((Op(OpKind.RECOMPUTE, 0),)),
                  Stage((Op(OpKind.BACKWARD, 0),))]
        plan = ExecutionPlan(model_name="m", batch_size=1,
                             blocks=((0, 1),),
                             policies=(BlockPolicy.RECOMPUTED,),
                             stages=tuple(stages))
        with pytest.raises(PlanValidationError):
            plan.validate()

    def test_single_block_plan_valid(self):
        plan = single_block_plan("m", 4, 10)
        plan.validate()
        assert plan.plan_string() == "F1 -> B1"

    def test_two_gpu_ops_one_stage_rejected(self):
        stages = [Stage((Op(OpKind.FORWARD, 0), Op(OpKind.FORWARD, 1)))]
        with pytest.raises(PlanValidationError):
            self._plan([R, R], stages).validate()


class TestOccupancyEquations:
    def test_eq1_occupancy(self):
        assert occupancy(3.0, 1.0) == pytest.approx(0.75)
        assert occupancy(0.0, 0.0) == 1.0
        with pytest.raises(ValueError):
            occupancy(-1, 0)

    def test_eq2_buffer_proxy_clamped(self):
        assert buffer_occupancy(5, 10) == 0.5
        assert buffer_occupancy(20, 10) == 1.0

    def test_eq3_available_trace(self):
        trace = available_buffers_trace(10, [4, 4, 4], [1, 1, 1])
        assert trace == [10, 7, 4, 1]
        # floor at zero
        trace = available_buffers_trace(2, [4, 4], [0, 0])
        assert trace[-1] == 0.0

    def test_eq5_swap_in_limited_by_space(self):
        assert swapped_in_bytes(100.0, 2.0, 50.0) == 50.0
        assert swapped_in_bytes(10.0, 2.0, 50.0) == 20.0

    def test_eq7_catch_up(self):
        # fast swap: never catches up
        assert catch_up_step([1.0, 1.0], [0.5, 0.5], 10.0) is None
        # slow swap: catches up immediately
        assert catch_up_step([0.1, 0.1], [10.0, 10.0], 1.0) == 0

    def test_eq8_regimes(self):
        assert refined_occupancy(10, [1], [1], 1.0, True) == 1.0
        assert refined_occupancy(5, [10], [0], 1.0, False) == 0.5

    def test_estimate_blocking_consistency(self, platform):
        _, _, transfer = platform
        est = estimate_blocking(
            fw_times=[0.01] * 4, bw_times=[0.02] * 4,
            stash_bytes=[10**9] * 4, swapped=[True, True, False, False],
            recomputed=[False, False, True, False], transfer=transfer)
        assert 0 < est.occupancy <= 1.0
        assert est.estimated_makespan >= est.compute_time
        assert est.estimated_stall >= 0
