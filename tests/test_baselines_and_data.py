"""Baseline schedulers, the Table I matrix, datasets, the Fig. 5 harness."""

import numpy as np
import pytest

from repro.baselines import (
    SCHEDULERS,
    InCoreInfeasible,
    capability_matrix,
    checkmate_plan,
    checkpointing_plan,
    incore_plan,
    ooc_cudnn_plan,
    superneurons_plan,
    vdnn_plan,
)
from repro.core import BlockPolicy
from repro.data import (
    CIFAR10,
    IMAGENET,
    OPENWEBTEXT,
    SyntheticImages,
    SyntheticSegmentation,
    SyntheticTokens,
    dataset_for_model,
)
from repro.eval import karma_speedup_summary, render_table, run_method
from repro.sim import simulate_plan


@pytest.fixture(scope="module")
def tight_cost(small_cnn, platform):
    """Cost model + a capacity that forces out-of-core behaviour."""
    # fixtures at module scope can't use session fixtures directly via
    # params, so rebuild here
    from repro.costs.profiler import profile_graph as pg
    from repro.hardware import TransferModel, abci_host, karma_swap_link, \
        v100_sxm2_16gb
    from tests.helpers import build_small_cnn

    graph = build_small_cnn(name="baseline_cnn")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = pg(graph, device, transfer, 8)
    cap = cost.persistent_bytes() + int(0.9 * cost.total_activation_bytes) + 2 * cost.block_memory(0, len(graph)).peak_workspace
    return graph, cost, cap


class TestBaselinePlans:
    @pytest.mark.parametrize("builder", [
        vdnn_plan, ooc_cudnn_plan, superneurons_plan,
        checkpointing_plan, checkmate_plan,
    ], ids=lambda f: f.__name__)
    def test_builds_valid_feasible_plan(self, tight_cost, builder):
        graph, cost, cap = tight_cost
        plan = builder(graph, cost, cap, 8)
        plan.validate(graph)
        res = simulate_plan(plan, cost, cap)
        assert res.makespan > 0

    def test_incore_raises_beyond_capacity(self, tight_cost):
        graph, cost, cap = tight_cost
        with pytest.raises(InCoreInfeasible):
            incore_plan(graph, cost, cap, 4096)

    def test_vdnn_swaps_everything(self, tight_cost):
        graph, cost, cap = tight_cost
        plan = vdnn_plan(graph, cost, cap, 8)
        assert all(p is BlockPolicy.SWAPPED for p in plan.policies)

    def test_checkpointing_is_recompute_only(self, tight_cost):
        graph, cost, cap = tight_cost
        plan = checkpointing_plan(graph, cost, cap, 8)
        assert all(p is BlockPolicy.CHECKPOINTED for p in plan.policies)
        assert not plan.swapped

    def test_checkmate_respects_budget(self, tight_cost):
        graph, cost, cap = tight_cost
        plan = checkmate_plan(graph, cost, cap, 8)
        assert not plan.swapped  # pure recompute method (Table I)

    def test_karma_beats_naive_baselines_out_of_core(self, tight_cost):
        """The Fig. 5 ordering on one OOC point: KARMA(+R) >= vDNN++."""
        graph, cost, cap = tight_cost
        karma = SCHEDULERS["karma+recompute"].build(graph, cost, cap, 8)
        vdnn = vdnn_plan(graph, cost, cap, 8)
        t_karma = simulate_plan(karma, cost, cap).makespan
        t_vdnn = simulate_plan(vdnn, cost, cap).makespan
        assert t_karma <= t_vdnn


class TestCapabilityMatrix:
    def test_table1_rows_present(self):
        rows = capability_matrix()
        names = {r["Name"] for r in rows}
        for expected in ("KARMA", "vDNN++", "SuperNeurons", "Checkmate",
                         "Gradient Checkpoint", "FlexFlow"):
            assert expected in names

    def test_karma_row_matches_paper(self):
        rows = {r["Name"]: r for r in capability_matrix()}
        karma = rows["KARMA"]
        assert karma["Min.Req. Memory"] == "None"
        assert karma["Universal"] == "yes"
        assert karma["Multi-node"] == "yes"
        assert karma["Strong Scaling (MN)"] == "yes"
        assert karma["Fault Tolerance (MN)"] == "yes"

    def test_prior_ooc_rows_single_gpu(self):
        rows = {r["Name"]: r for r in capability_matrix()}
        for name in ("vDNN++", "ooc_cuDNN", "SuperNeurons"):
            assert rows[name]["Multi-node"] == "no"

    def test_render_table_output(self):
        text = render_table(capability_matrix(), title="Table I")
        assert "Table I" in text and "KARMA" in text


class TestEvalHarness:
    def test_run_method_feasible_and_infeasible(self, small_cnn):
        ok = run_method(small_cnn, "karma+recompute", 2)
        assert ok.feasible and ok.samples_per_sec > 0
        bad = run_method(small_cnn, "in-core", 1 << 18)
        assert not bad.feasible and bad.infeasible_reason

    def test_speedup_summary_shape(self, small_cnn):
        pts = [run_method(small_cnn, m, 4096)
               for m in ("in-core", "vdnn++", "superneurons", "checkmate",
                         "karma", "karma+recompute")]
        summary = karma_speedup_summary(pts)
        assert "speedup[mean]" in summary


class TestSyntheticData:
    def test_images_deterministic(self):
        d = SyntheticImages((3, 8, 8), 4, seed=5)
        x1, y1 = d.batch(6, step=3)
        x2, y2 = d.batch(6, step=3)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)
        x3, _ = d.batch(6, step=4)
        assert not np.array_equal(x1, x3)

    def test_images_separable(self):
        """A nearest-mean classifier must beat chance by a wide margin."""
        d = SyntheticImages((3, 8, 8), 4, seed=5, noise=0.2)
        x, y = d.batch(200, step=0)
        means = d._means
        pred = np.array([np.argmin([np.sum((s - m) ** 2) for m in means])
                         for s in x])
        assert (pred == y).mean() > 0.9

    def test_token_stream_structure(self):
        d = SyntheticTokens(vocab=31, seq_len=16, seed=2, noise=0.0)
        x, y = d.batch(4, step=0)
        assert x.shape == y.shape == (4, 16)
        # noiseless stream follows the planted affine map exactly
        assert np.array_equal((d._a * x + d._b) % 31, y)

    def test_segmentation_shapes(self):
        d = SyntheticSegmentation(image=64, seed=1)
        x, y = d.batch(2)
        assert x.shape == (2, 1, 64, 64)
        assert y.shape == (2, 64, 64)
        assert set(np.unique(y)) <= {0, 1}

    def test_dataset_mapping_table3(self):
        assert dataset_for_model("resnet50") is IMAGENET
        assert dataset_for_model("wrn28_10") is CIFAR10
        assert dataset_for_model("megatron-8.3b") is OPENWEBTEXT
        with pytest.raises(KeyError):
            dataset_for_model("alexnet")
