"""Plan-cache coverage: digest stability, versioned invalidation,
parallel-vs-serial search equality, and the CLI service layer."""

import json
import math
import subprocess
import sys

import pytest

from repro.cache import (
    PlanCache,
    canonical_json,
    plan_digest,
    stable_digest,
)
from repro.cli import main as cli_main
from repro.cli import plan_config
from repro.core import plan, portfolio_search, solve_blocking
from repro.costs import profile_graph
from repro.hardware import (
    TransferModel,
    abci_host,
    karma_swap_link,
    tiny_test_device,
)
from repro.hardware.spec import canonical_spec, v100_sxm2_16gb
from repro.hardware.tiering import (
    three_tier_hierarchy,
    tiny_test_hierarchy,
    two_tier_hierarchy,
)
from repro.models import build
from repro.models.builder import GraphBuilder
from repro.tiering import PlacementError


def small_cnn(width: int = 8) -> object:
    b = GraphBuilder("cache_test_cnn")
    b.input((3, 16, 16))
    for w in (width, width, 2 * width):
        b.conv(w, 3)
        b.relu()
    b.pool(2, 2)
    b.conv(2 * width, 3)
    b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(5)
    b.softmax()
    b.loss()
    return b.finish()


@pytest.fixture()
def tiny_platform():
    graph = small_cnn()
    device = tiny_test_device(memory=500_000)
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, batch_size=8)
    return graph, device, transfer, cost


def digest_of_unet() -> str:
    graph = build("unet")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    return plan_digest(graph, 16, device=device, transfer=transfer,
                       capacity=device.usable_memory,
                       hierarchy=two_tier_hierarchy(),
                       knobs={"method": "auto", "recompute": True})


# --------------------------------------------------------------------------
# Digests
# --------------------------------------------------------------------------

class TestDigest:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_canonical_json_rejects_non_json_values(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_canonical_spec_nested_and_sorted(self):
        spec = canonical_spec(v100_sxm2_16gb())
        assert spec["spec"] == "DeviceSpec"
        assert list(spec.keys())[1:] == sorted(list(spec.keys())[1:])
        hier = two_tier_hierarchy().canonical_dict()
        assert hier["spec"] == "MemoryHierarchy"
        assert [t["spec"] for t in hier["tiers"]] == ["TierSpec", "TierSpec"]

    def test_digest_stable_within_process(self):
        assert digest_of_unet() == digest_of_unet()

    def test_digest_stable_across_process_restarts(self):
        """The acceptance property: a fresh interpreter reproduces the key."""
        code = ("import sys; sys.path.insert(0, 'src'); "
                "from tests.test_plan_cache import digest_of_unet; "
                "print(digest_of_unet())")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True,
                             cwd=str(__import__("pathlib").Path(
                                 __file__).resolve().parent.parent))
        assert out.stdout.strip() == digest_of_unet()

    def test_digest_sensitive_to_graph_and_batch(self, tiny_platform):
        graph, device, transfer, _ = tiny_platform
        base = dict(device=device, transfer=transfer, capacity=1e6,
                    hierarchy=None, knobs={})
        d1 = plan_digest(graph, 8, **base)
        assert plan_digest(graph, 9, **base) != d1
        assert plan_digest(small_cnn(width=16), 8, **base) != d1

    def test_digest_invalidated_by_hierarchy_change(self, tiny_platform):
        graph, device, transfer, _ = tiny_platform
        base = dict(device=device, transfer=transfer, capacity=1e6,
                    knobs={})
        two = plan_digest(graph, 8, hierarchy=two_tier_hierarchy(), **base)
        three = plan_digest(graph, 8, hierarchy=three_tier_hierarchy(),
                            **base)
        tiny = plan_digest(graph, 8, hierarchy=tiny_test_hierarchy(), **base)
        none = plan_digest(graph, 8, hierarchy=None, **base)
        assert len({two, three, tiny, none}) == 4

    def test_digest_invalidated_by_solver_version(self, tiny_platform,
                                                  monkeypatch):
        graph, device, transfer, _ = tiny_platform
        base = dict(device=device, transfer=transfer, capacity=1e6,
                    hierarchy=None, knobs={})
        before = plan_digest(graph, 8, **base)
        import repro.core.solver as solver
        monkeypatch.setattr(solver, "SOLVER_VERSION", "999.test")
        assert plan_digest(graph, 8, **base) != before

    def test_digest_sensitive_to_knobs(self, tiny_platform):
        graph, device, transfer, _ = tiny_platform
        base = dict(device=device, transfer=transfer, capacity=1e6,
                    hierarchy=None)
        assert plan_digest(graph, 8, knobs={"method": "auto"}, **base) \
            != plan_digest(graph, 8, knobs={"method": "dp"}, **base)


# --------------------------------------------------------------------------
# PlanCache store
# --------------------------------------------------------------------------

class TestPlanCache:
    def test_memory_roundtrip_and_stats(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        key = stable_digest({"k": 1})
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        key = stable_digest({"k": 2})
        PlanCache(cache_dir=tmp_path).put(key, {"plan": [1, 2, 3]})
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.get(key) == {"plan": [1, 2, 3]}
        assert fresh.stats.disk_hits == 1

    def test_no_persist_mode(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path, persist=False)
        cache.put("a" * 64, {"x": 1})
        assert not list(tmp_path.glob("*.json"))
        assert PlanCache(cache_dir=tmp_path).get("a" * 64) is None

    def test_lru_eviction(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path, capacity=2, persist=False)
        for i in range(3):
            cache.put(f"key{i}", {"i": i})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("key0") is None      # evicted (oldest)
        assert cache.get("key2") == {"i": 2}

    def test_solver_version_mismatch_invalidates_on_load(self, tmp_path,
                                                         monkeypatch):
        cache = PlanCache(cache_dir=tmp_path)
        key = stable_digest({"k": 3})
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        assert path.is_file()
        import repro.core.solver as solver
        monkeypatch.setattr(solver, "SOLVER_VERSION", "999.test")
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.invalidated == 1
        assert not path.is_file()             # stale entry dropped

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        key = "f" * 64
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.put("a" * 64, {"x": 1})
        cache.put("b" * 64, {"x": 2})
        assert cache.clear() >= 2
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.json"))


# --------------------------------------------------------------------------
# Planner integration
# --------------------------------------------------------------------------

def assert_plans_equal(a, b):
    assert a.plan.plan_string() == b.plan.plan_string()
    assert a.plan.placements == b.plan.placements
    assert a.blocking.boundaries_segments == b.blocking.boundaries_segments
    assert a.blocking.objective == b.blocking.objective
    assert [p.name for p in a.blocking.policies] \
        == [p.name for p in b.blocking.policies]
    if a.recompute is None:
        assert b.recompute is None
    else:
        assert a.recompute.flipped == b.recompute.flipped
        assert a.recompute.makespan_after == b.recompute.makespan_after


class TestPlannerCache:
    def test_warm_hit_reproduces_cold_plan(self, tiny_platform, tmp_path):
        graph, device, transfer, _ = tiny_platform
        cache = PlanCache(cache_dir=tmp_path)
        cold = plan(graph, batch_size=8, device=device, transfer=transfer,
                    cache=cache)
        warm = plan(graph, batch_size=8, device=device, transfer=transfer,
                    cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.cache_key == warm.cache_key
        assert_plans_equal(cold, warm)

    def test_disk_hit_across_cache_instances(self, tiny_platform, tmp_path):
        graph, device, transfer, _ = tiny_platform
        cold = plan(graph, batch_size=8, device=device, transfer=transfer,
                    cache=PlanCache(cache_dir=tmp_path))
        warm = plan(graph, batch_size=8, device=device, transfer=transfer,
                    cache=PlanCache(cache_dir=tmp_path))
        assert warm.cache_hit
        assert_plans_equal(cold, warm)
        # the cached record reports the cold search's wall time
        assert warm.search_time == pytest.approx(cold.search_time)

    def test_tiered_plan_roundtrips_placements(self, tiny_platform,
                                               tmp_path):
        graph, device, transfer, cost = tiny_platform
        hier = tiny_test_hierarchy(dram=max(
            1024 * 1024,
            sum(cost.block_activation_bytes(i, i + 1)
                for i in range(len(cost))) // 2))
        cache = PlanCache(cache_dir=tmp_path)
        cold = plan(graph, batch_size=8, device=device, transfer=transfer,
                    hierarchy=hier, cache=cache)
        warm = plan(graph, batch_size=8, device=device, transfer=transfer,
                    hierarchy=hier, cache=cache)
        assert warm.cache_hit
        assert_plans_equal(cold, warm)
        if cold.placement is not None:
            assert warm.placement is not None
            assert warm.placement.placements == cold.placement.placements
            assert warm.placement.tier_bytes == cold.placement.tier_bytes

    def test_different_hierarchy_misses(self, tiny_platform, tmp_path):
        graph, device, transfer, _ = tiny_platform
        cache = PlanCache(cache_dir=tmp_path)
        plan(graph, batch_size=8, device=device, transfer=transfer,
             cache=cache)
        tiered = plan(graph, batch_size=8, device=device, transfer=transfer,
                      hierarchy=tiny_test_hierarchy(), cache=cache)
        assert not tiered.cache_hit


# --------------------------------------------------------------------------
# Parallel portfolio search
# --------------------------------------------------------------------------

def grid_objective(cand, margin, policy):
    """Module-level (picklable) toy objective with deliberate ties."""
    if policy == "reject":
        raise PlacementError(f"policy rejected for {cand}")
    return round(sum(cand) * margin, 6)


class TestParallelSearch:
    CANDS = [[1, 4], [2, 4], [1, 2, 4], [4]]
    DIMS = ([0.5, 1.0], ["a", "b"])

    def test_parallel_equals_serial_toy(self):
        serial = portfolio_search(self.CANDS, self.DIMS, grid_objective,
                                  n_workers=1)
        par = portfolio_search(self.CANDS, self.DIMS, grid_objective,
                               n_workers=3)
        assert serial.best_candidate == par.best_candidate
        assert serial.best_dims == par.best_dims
        assert serial.best_value == par.best_value
        assert par.n_workers == 3

    def test_tie_break_matches_serial_first_seen(self):
        # [1, 4] and [2, 4] tie at margin 0.5 vs 1.0 crossings; the winner
        # must be the earliest grid index, same as the serial strict-<.
        res = portfolio_search([[3], [1, 2], [2, 1]], ([1.0], ["a"]),
                               lambda c, m, p: 3.0, n_workers=1)
        assert res.best_candidate == [3]

    def test_rejections_recorded_not_fatal(self):
        res = portfolio_search(self.CANDS, ([1.0], ["a", "reject"]),
                               grid_objective, n_workers=1,
                               reject_on=(PlacementError,))
        assert res.best_candidate is not None
        assert len(res.rejected) == len(self.CANDS)
        assert all(r.error_type == "PlacementError" for r in res.rejected)
        assert res.evaluated == 2 * len(self.CANDS)

    def test_rejections_recorded_in_parallel(self):
        res = portfolio_search(self.CANDS, ([1.0], ["a", "reject"]),
                               grid_objective, n_workers=2,
                               reject_on=(PlacementError,))
        assert len(res.rejected) == len(self.CANDS)
        assert [r.index for r in res.rejected] \
            == sorted(r.index for r in res.rejected)

    def test_all_rejected_returns_none(self):
        res = portfolio_search(self.CANDS, ([1.0], ["reject"]),
                               grid_objective,
                               reject_on=(PlacementError,))
        assert res.best_candidate is None
        assert math.isinf(res.best_value)

    def test_unpicklable_evaluate_degrades_to_serial(self):
        seen = []

        def closure_eval(cand, margin, policy):
            seen.append(cand)
            return sum(cand) * margin

        res = portfolio_search(self.CANDS, ([1.0], ["a"]), closure_eval,
                               n_workers=4)
        assert res.n_workers == 1
        assert len(seen) == len(self.CANDS)

    def test_legacy_tuple_unpacking(self):
        best, dims, value = portfolio_search(
            self.CANDS, self.DIMS, grid_objective)
        assert best == [4]
        assert value == pytest.approx(2.0)

    def test_solve_blocking_parallel_equals_serial(self, tiny_platform):
        graph, device, transfer, cost = tiny_platform
        serial = solve_blocking(graph, cost, 500_000, graph.name, 8,
                                n_workers=1)
        par = solve_blocking(graph, cost, 500_000, graph.name, 8,
                             n_workers=2)
        assert serial.boundaries_segments == par.boundaries_segments
        assert serial.objective == par.objective
        assert serial.policies == par.policies
        assert serial.placements == par.placements


# --------------------------------------------------------------------------
# CLI service layer
# --------------------------------------------------------------------------

class TestCli:
    def test_plan_config_miss_then_hit(self, tmp_path):
        cfg = {"model": "unet", "batch": 16}
        first = plan_config(cfg, cache_dir=str(tmp_path))
        second = plan_config(cfg, cache_dir=str(tmp_path))
        assert first["cache"] == "miss" and second["cache"] == "hit"
        assert first["plan_string"] == second["plan_string"]
        assert second["wall_s"] < first["wall_s"]

    def test_cli_plan_json_output(self, tmp_path, capsys):
        rc = cli_main(["plan", "--model", "unet", "--batch", "16",
                       "--cache-dir", str(tmp_path), "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out[0]["model"] == "unet" and out[0]["cache"] == "miss"

    def test_cli_manifest_and_cache_commands(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps([
            {"model": "unet", "batch": 16},
            {"model": "unet", "batch": 24},
        ]))
        rc = cli_main(["plan", "--manifest", str(manifest),
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "2 configuration(s)" in capsys.readouterr().out
        rc = cli_main(["cache", "info",
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "2 entr(ies)" in capsys.readouterr().out
        rc = cli_main(["cache", "clear",
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "cleared 2" in capsys.readouterr().out

    def test_cli_error_isolation_in_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps([
            {"model": "no_such_model", "batch": 4},
            {"model": "unet", "batch": 16},
        ]))
        rc = cli_main(["plan", "--manifest", str(manifest),
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 1   # failure reported, but the good config planned

    def test_cli_no_cache(self, tmp_path, capsys):
        rc = cli_main(["plan", "--model", "unet", "--batch", "16",
                       "--no-cache", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert not list(tmp_path.glob("*.json"))
