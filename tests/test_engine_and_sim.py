"""Event engine semantics, plan pricing, vDNN turnaround, stall profiles."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockPolicy, make_plan
from repro.costs import profile_graph
from repro.sim import (
    OutOfCoreInfeasible,
    SimOp,
    SimulationDeadlock,
    block_costs,
    compile_plan,
    simulate,
    simulate_plan,
)

R, S, C, K = (BlockPolicy.RESIDENT, BlockPolicy.SWAPPED,
              BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)


class TestEngine:
    def test_fifo_per_resource(self):
        ops = [SimOp(0, "gpu", 1.0), SimOp(1, "gpu", 1.0)]
        res = simulate(ops)
        assert res.timing(1).start == pytest.approx(1.0)

    def test_dependencies_across_resources(self):
        ops = [SimOp(0, "gpu", 1.0),
               SimOp(1, "h2d", 0.5, deps=(0,)),
               SimOp(2, "gpu", 1.0, deps=(1,))]
        res = simulate(ops)
        assert res.timing(2).start == pytest.approx(1.5)
        assert res.makespan == pytest.approx(2.5)

    def test_parallel_resources_overlap(self):
        ops = [SimOp(0, "gpu", 2.0), SimOp(1, "h2d", 2.0)]
        res = simulate(ops)
        assert res.makespan == pytest.approx(2.0)

    def test_memory_ledger_defers_acquire(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=80),
               SimOp(1, "d2h", 1.0, deps=(0,), mem_release=80),
               SimOp(2, "h2d", 1.0, mem_acquire=50)]
        res = simulate(ops, memory_capacity=100)
        # op 2 cannot start until op 1 releases at t=2
        assert res.timing(2).start == pytest.approx(2.0)

    def test_memory_deadlock_detected(self):
        ops = [SimOp(0, "gpu", 1.0, mem_acquire=80),
               SimOp(1, "h2d", 1.0, mem_acquire=50)]  # never released
        with pytest.raises(SimulationDeadlock):
            simulate(ops, memory_capacity=100)

    def test_oversized_acquire_rejected(self):
        with pytest.raises(SimulationDeadlock):
            simulate([SimOp(0, "gpu", 1.0, mem_acquire=200)],
                     memory_capacity=100)

    def test_circular_dependency_detected(self):
        ops = [SimOp(0, "gpu", 1.0, deps=(1,)),
               SimOp(1, "h2d", 1.0, deps=(0,))]
        with pytest.raises(SimulationDeadlock):
            simulate(ops)

    def test_idle_gaps_and_occupancy(self):
        ops = [SimOp(0, "gpu", 1.0),
               SimOp(1, "h2d", 3.0),
               SimOp(2, "gpu", 1.0, deps=(1,))]
        res = simulate(ops)
        gaps = res.idle_gaps("gpu")
        assert gaps == [(1.0, 3.0)]
        assert res.occupancy("gpu") == pytest.approx(0.5)

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_serial_chain_makespan(self, durations):
        """A dependent chain's makespan equals the sum of durations."""
        ops = [SimOp(i, "gpu", d, deps=(i - 1,) if i else ())
               for i, d in enumerate(durations)]
        res = simulate(ops)
        assert res.makespan == pytest.approx(sum(durations), rel=1e-9)

    @given(st.lists(st.tuples(st.sampled_from(["gpu", "h2d", "d2h"]),
                              st.floats(min_value=0.01, max_value=2.0)),
                    min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_property_makespan_bounds(self, spec):
        """Makespan is at least the busiest resource and at most the sum."""
        ops = [SimOp(i, r, d) for i, (r, d) in enumerate(spec)]
        res = simulate(ops)
        busiest = max(res.resource_busy.values())
        total = sum(d for _, d in spec)
        assert busiest - 1e-9 <= res.makespan <= total + 1e-9


class TestPlanPricing:
    def _cost(self, graph, platform, batch=8):
        device, _, transfer = platform
        return profile_graph(graph, device, transfer, batch), \
            device.usable_memory

    def test_incore_plan_has_no_stalls(self, small_cnn, platform):
        cost, cap = self._cost(small_cnn, platform)
        plan = make_plan(small_cnn.name, 8, [(0, len(small_cnn))], [R])
        res = simulate_plan(plan, cost, cap)
        assert res.gpu_occupancy == pytest.approx(1.0)
        assert res.total_stall == pytest.approx(0.0, abs=1e-12)
        assert res.makespan == pytest.approx(
            cost.total_fw_time + cost.total_bw_time, rel=1e-9)

    def test_recompute_adds_exactly_forward_time(self, small_cnn, platform):
        cost, cap = self._cost(small_cnn, platform)
        n = len(small_cnn)
        mid = n // 2
        blocks = [(0, mid), (mid, n)]
        base = simulate_plan(
            make_plan(small_cnn.name, 8, blocks, [R, R]), cost, cap)
        rec = simulate_plan(
            make_plan(small_cnn.name, 8, blocks, [C, R]), cost, cap)
        extra = cost.block_fw_time(0, mid)
        assert rec.makespan == pytest.approx(base.makespan + extra, rel=1e-6)

    def test_vdnn_turnaround_stall(self, small_cnn, platform):
        """Fig. 2a: swapping the tail forces a stall at fw->bw turnaround."""
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 64)
        cap = device.usable_memory
        n = len(small_cnn)
        blocks = [(0, n // 2), (n // 2, n)]
        vdnn = simulate_plan(
            make_plan(small_cnn.name, 64, blocks, [S, S]), cost, cap)
        capacity_based = simulate_plan(
            make_plan(small_cnn.name, 64, blocks, [S, R]), cost, cap)
        assert vdnn.total_stall > capacity_based.total_stall
        assert vdnn.makespan > capacity_based.makespan

    def test_infeasible_when_persistent_exceeds_capacity(self, small_cnn,
                                                         platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 8)
        plan = make_plan(small_cnn.name, 8, [(0, len(small_cnn))], [R])
        with pytest.raises(OutOfCoreInfeasible):
            simulate_plan(plan, cost, capacity=1000.0)

    def test_bw_stall_attribution(self, small_cnn, platform):
        device, _, transfer = platform
        cost = profile_graph(small_cnn, device, transfer, 256)
        n = len(small_cnn)
        blocks = [(i, i + 1) for i in range(n)]
        plan = make_plan(small_cnn.name, 256, blocks, [S] * n,
                         prefetch="none")
        res = simulate_plan(plan, cost, device.usable_memory)
        assert res.bw_block_stalls, "no-prefetch plan must stall in backward"
        assert all(v >= 0 for v in res.bw_block_stalls.values())

    def test_compile_rejects_distributed_ops(self, small_cnn, platform):
        from repro.core import Op, OpKind, Stage
        from repro.core.schedule import ExecutionPlan
        cost, cap = self._cost(small_cnn, platform)
        plan = ExecutionPlan(
            model_name="m", batch_size=1, blocks=((0, len(small_cnn)),),
            policies=(R,),
            stages=(Stage((Op(OpKind.GRAD_EXCHANGE, 0),)),))
        costs = block_costs(plan.blocks, cost)
        with pytest.raises(ValueError):
            compile_plan(plan, costs)
