"""Plain-text table/series rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    text_rows = []
    for row in rows:
        tr = {c: _fmt(row.get(c, "")) for c in cols}
        for c in cols:
            widths[c] = max(widths[c], len(tr[c]))
        text_rows.append(tr)
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for tr in text_rows:
        lines.append(" | ".join(tr[c].ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object],
                  series: Dict[str, Sequence[Optional[float]]],
                  x_label: str = "x", fmt: str = "{:.1f}") -> str:
    """Render named y-series over shared x values (a figure's data)."""
    rows = []
    for i, x in enumerate(xs):
        row: Dict[str, object] = {x_label: x}
        for sname, values in series.items():
            v = values[i] if i < len(values) else None
            row[sname] = fmt.format(v) if isinstance(v, (int, float)) \
                and v == v else "-"
        rows.append(row)
    return render_table(rows, title=name)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 1000 else f"{v:.1f}"
    return str(v)
