"""Experiment harness shared by the benchmark suite (one entry per
table/figure of the paper's evaluation section)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import SCHEDULERS, InCoreInfeasible
from ..costs.profiler import profile_graph
from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import abci_host, karma_swap_link, v100_sxm2_16gb
from ..models.registry import REGISTRY, fig5_models
from ..sim.trainer_sim import OutOfCoreInfeasible, simulate_plan


@dataclass
class MethodPoint:
    """One (model, method, batch) measurement."""

    model: str
    method: str
    batch_size: int
    samples_per_sec: Optional[float]
    occupancy: Optional[float]
    stall_seconds: Optional[float]
    infeasible_reason: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.samples_per_sec is not None


def default_platform():
    """The Fig. 5 platform: V100-16GiB + calibrated swap path."""
    device = v100_sxm2_16gb()
    host = abci_host()
    transfer = TransferModel(link=karma_swap_link(), device=device, host=host)
    return device, host, transfer


def run_method(graph: LayerGraph, method: str, batch_size: int,
               device=None, transfer=None) -> MethodPoint:
    """Price one method at one batch size on the default platform."""
    if device is None or transfer is None:
        device, _, transfer = default_platform()
    cost = profile_graph(graph, device, transfer, batch_size)
    entry = SCHEDULERS[method]
    if entry.build is None:
        return MethodPoint(graph.name, method, batch_size, None, None, None,
                           infeasible_reason="not an executable scheduler")
    try:
        plan = entry.build(graph, cost, device.usable_memory, batch_size)
        res = simulate_plan(plan, cost, device.usable_memory)
        return MethodPoint(graph.name, method, batch_size,
                           res.samples_per_sec, res.gpu_occupancy,
                           res.total_stall)
    except (InCoreInfeasible, OutOfCoreInfeasible, ValueError,
            RuntimeError) as exc:
        return MethodPoint(graph.name, method, batch_size, None, None, None,
                           infeasible_reason=str(exc)[:120])


def fig5_sweep(model_names: Optional[Sequence[str]] = None,
               methods: Optional[Sequence[str]] = None,
               batch_limit: Optional[int] = None) -> List[MethodPoint]:
    """The Fig. 5 grid: every model x method x batch size."""
    entries = [REGISTRY[m] for m in model_names] if model_names \
        else fig5_models()
    methods = list(methods) if methods else \
        ["in-core", "vdnn++", "superneurons", "checkmate",
         "karma", "karma+recompute"]
    device, _, transfer = default_platform()
    points: List[MethodPoint] = []
    for entry in entries:
        graph = entry.builder()
        batches = entry.fig5_batch_sizes
        if batch_limit:
            batches = batches[:batch_limit]
        for bs in batches:
            for method in methods:
                points.append(run_method(graph, method, bs,
                                          device=device, transfer=transfer))
    return points


def karma_speedup_summary(points: Sequence[MethodPoint]) -> Dict[str, float]:
    """The §IV-B headline: KARMA w/ recompute vs the best competing OOC or
    recompute method, averaged (geometric mean) over out-of-core points."""
    competitors = ("vdnn++", "superneurons", "checkmate")
    by_key: Dict[Tuple[str, int], Dict[str, MethodPoint]] = {}
    for p in points:
        by_key.setdefault((p.model, p.batch_size), {})[p.method] = p
    ratios: List[float] = []
    per_model: Dict[str, List[float]] = {}
    for (model, bs), methods in by_key.items():
        incore = methods.get("in-core")
        if incore is not None and incore.feasible:
            continue  # only out-of-core points count for the headline
        karma = methods.get("karma+recompute")
        if karma is None or not karma.feasible:
            continue
        best = max((m.samples_per_sec for name, m in methods.items()
                    if name in competitors and m.feasible), default=None)
        if best is None or best <= 0:
            continue
        r = karma.samples_per_sec / best
        ratios.append(r)
        per_model.setdefault(model, []).append(r)
    out = {f"speedup[{m}]": _geomean(v) for m, v in sorted(per_model.items())}
    out["speedup[mean]"] = _geomean(ratios)
    return out


def _geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
