"""Experiment harness + reporting for the benchmark suite."""

from .experiments import (
    MethodPoint,
    default_platform,
    fig5_sweep,
    karma_speedup_summary,
    run_method,
)
from .reporting import render_series, render_table

__all__ = [
    "MethodPoint", "run_method", "fig5_sweep", "karma_speedup_summary",
    "default_platform", "render_table", "render_series",
]
