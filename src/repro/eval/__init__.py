"""Experiment harness + reporting for the benchmark suite."""

from .experiments import (
    MethodPoint,
    default_platform,
    fig5_sweep,
    karma_speedup_summary,
    run_method,
)
from .reporting import render_series, render_table
from .validation import (
    DEFAULT_CONFIGS,
    VALIDATION_CONFIGS,
    ValidationConfig,
    ValidationReport,
    validate_config,
    validate_many,
)

__all__ = [
    "MethodPoint", "run_method", "fig5_sweep", "karma_speedup_summary",
    "default_platform", "render_table", "render_series",
    "ValidationConfig", "ValidationReport", "validate_config",
    "validate_many", "VALIDATION_CONFIGS", "DEFAULT_CONFIGS",
]
