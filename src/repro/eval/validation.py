"""Sim-vs-real validation: does the runtime exhibit the predicted stalls?

The planner's objective function is the event simulator; nothing else in
the system checks that its predictions survive contact with an actual
interleaved runtime (threads, queues, fences, admission).  This harness
closes that loop per configuration:

1. derive a KARMA plan the usual way (the full Opt-1/Opt-2 search
   against a deliberately tight capacity, so swapping engages);
2. **predict**: compile the plan and run the event simulation, folding
   its GPU idle gaps into a per-resource
   :class:`~repro.sim.stall.StallProfile`;
3. **measure**: run the plan numerically under the
   :class:`~repro.runtime.async_executor.AsyncOutOfCoreExecutor`, pacing
   every modeled duration through a
   :class:`~repro.runtime.streams.TransferPacer` (the same block costs
   the simulator priced, scaled to a target wall-clock), and fold the
   measured fence/admission waits into the same profile format;
4. diff the two profiles' makespan-normalized stall fractions.

Because the paced durations are the simulator's own inputs, any residual
disagreement isolates *scheduling infidelity* — places where the real
stream/fence machinery behaves differently from the event model — which
is exactly the feedback that keeps the planner's cost model honest.

``python -m repro validate`` is the CLI front end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.planner import KarmaPlan, plan
from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import (
    GiB,
    LinkSpec,
    abci_host,
    karma_swap_link,
    tiny_test_device,
)
from ..hardware.tiering import MemoryHierarchy, TieredMemorySpace
from ..models.builder import GraphBuilder
from ..models.transformer import tiny_gpt
from ..nn.build import ExecutableModel
from ..runtime.async_executor import AsyncOutOfCoreExecutor
from ..runtime.executor import OutOfCoreExecutor
from ..runtime.streams import TransferPacer
from ..sim.stall import (
    StallProfile,
    compare_profiles,
    stall_profile,
    top_stall_intervals,
)
from ..sim.trainer_sim import (
    _stash_ledger_capacity,
    block_costs,
    compile_plan,
)
from .reporting import render_table

from ..sim.engine import simulate


# ---------------------------------------------------------------------------
# Validation model zoo: small enough for float64 numeric execution
# ---------------------------------------------------------------------------

def _val_cnn() -> LayerGraph:
    """A residual CNN with enough blocks for a real swap schedule."""
    b = GraphBuilder("val_cnn")
    b.input((3, 32, 32))
    b.conv(16, 3)
    b.bn()
    b.relu()
    for _ in range(4):
        skip = b.cursor
        b.conv(16, 3)
        b.bn()
        b.relu()
        b.conv(16, 3)
        b.bn()
        b.add_residual(skip)
        b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(10)
    b.softmax()
    b.loss()
    return b.finish()


def _val_gpt() -> LayerGraph:
    """A tiny GPT — attention/LN/dropout layers exercise recompute."""
    return tiny_gpt(hidden=32, heads=2, layers=3, seq_len=16, vocab=64)


@dataclass(frozen=True)
class ValidationConfig:
    """One named sim-vs-real configuration."""

    name: str
    builder: Callable[[], LayerGraph]
    batch_size: int
    #: device capacity as persistent + this fraction of activations —
    #: tight enough that the planner must swap
    activation_fraction: float = 0.6
    #: host<->device link bandwidth (bytes/s); a slow link makes the
    #: config swap-bound, so real stalls appear in both profiles
    link_bandwidth: float = 100e9
    image_like: bool = True
    seq_len: int = 16
    vocab: int = 64


VALIDATION_CONFIGS: Dict[str, ValidationConfig] = {
    # swap-bound: the slow link leaves link stalls the runtime must
    # reproduce, not just predict
    "cnn": ValidationConfig("cnn", _val_cnn, batch_size=8,
                            activation_fraction=0.55,
                            link_bandwidth=2e9),
    # overlap-rich: the calibrated link hides (nearly) all swap traffic
    "gpt": ValidationConfig("gpt", _val_gpt, batch_size=4,
                            activation_fraction=0.6, image_like=False),
}

#: The default pair ``python -m repro validate`` runs.
DEFAULT_CONFIGS = ("cnn", "gpt")


@dataclass
class ValidationReport:
    """Predicted vs measured stall profiles for one configuration."""

    config: str
    batch_size: int
    num_blocks: int
    plan_string: str
    time_scale: float
    predicted: StallProfile
    measured: StallProfile
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: widest predicted stall intervals per resource (start/end/width in
    #: modeled seconds plus the waiting GPU op's label) — names *which*
    #: backward ate the stall, not just how much stalled
    top_stalls: Dict[str, List[Dict[str, object]]] = \
        field(default_factory=dict)
    #: raw artifacts for trace export (``python -m repro trace``); not
    #: part of the JSON report
    sim_ops: Optional[object] = field(default=None, repr=False)
    sim_result: Optional[object] = field(default=None, repr=False)
    runtime_trace: Optional[object] = field(default=None, repr=False)
    #: planner output and bound block costs — the inputs
    #: :func:`repro.costs.trace_fit.fit_validation_report` fits from
    karma_plan: Optional[object] = field(default=None, repr=False)
    block_costs: Optional[object] = field(default=None, repr=False)

    @property
    def max_abs_error(self) -> float:
        """Largest per-resource |predicted - measured| stall fraction."""
        return max((float(r["abs_error"]) for r in self.rows), default=0.0)

    @property
    def makespan_ratio(self) -> float:
        """Measured / predicted makespan (both in emulated seconds)."""
        pred = self.predicted.makespan * self.time_scale
        if pred <= 0:
            return math.inf
        return self.measured.makespan / pred

    def table(self) -> str:
        return render_table(
            self.rows, title=f"[{self.config}] predicted vs measured "
                             "stall fractions")

    def stall_detail(self) -> str:
        """Human-readable top stall intervals, one line per interval."""
        if not self.top_stalls:
            return f"[{self.config}] no predicted stall intervals"
        lines = [f"[{self.config}] widest predicted stall intervals:"]
        for resource in sorted(self.top_stalls):
            for iv in self.top_stalls[resource]:
                lines.append(
                    f"  {resource:>7}  {float(iv['width']) * 1e3:8.3f} ms "
                    f"before {iv['op']}  "
                    f"[{float(iv['start']):.6f}s -> {float(iv['end']):.6f}s]")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        top = {resource: [{"start": round(float(iv["start"]), 9),
                           "end": round(float(iv["end"]), 9),
                           "width": round(float(iv["width"]), 9),
                           "op": iv["op"]} for iv in intervals]
               for resource, intervals in sorted(self.top_stalls.items())}
        return {
            "config": self.config,
            "batch": self.batch_size,
            "blocks": self.num_blocks,
            "time_scale": self.time_scale,
            "predicted_makespan_s": self.predicted.makespan,
            "measured_makespan_s": self.measured.makespan,
            "makespan_ratio": round(self.makespan_ratio, 4),
            "max_abs_error": round(self.max_abs_error, 4),
            "rows": self.rows,
            "top_stalls": top,
        }


def _make_batch(config: ValidationConfig, rng: np.random.Generator,
                graph: LayerGraph):
    if config.image_like:
        shape = (config.batch_size,) + tuple(graph[0].output_shape)
        x = rng.standard_normal(shape)
        y = rng.integers(0, 10, config.batch_size)
        return x, y
    x = rng.integers(0, config.vocab,
                     (config.batch_size, config.seq_len))
    y = np.roll(x, -1, axis=1)
    return x, y


def validate_config(name: str, *,
                    target_wall_s: float = 0.4,
                    hierarchy: Optional[MemoryHierarchy] = None,
                    prefetch_stages: int = 0,
                    seed: int = 0,
                    calibration: Optional[Dict[str, float]] = None) \
        -> ValidationReport:
    """Run the sim-vs-real loop for one named configuration.

    Args:
        name: a key of :data:`VALIDATION_CONFIGS`.
        target_wall_s: emulated wall-clock budget for the measured
            iteration; the pacer's ``time_scale`` is derived from the
            predicted makespan so every config costs about this long.
        hierarchy: optional memory hierarchy for tiered plans (storage
            links then appear in both profiles).
        prefetch_stages: the async executor's walk-ahead window; 0
            mirrors the simulator's issue discipline exactly, which is
            what a validation run wants.
        seed: RNG seed for model weights and the batch.
        calibration: optional per-layer compute scales (a
            :class:`~repro.costs.trace_fit.CalibrationArtifact`'s
            ``op_scales``) applied when the plan is derived.

    Returns:
        A :class:`ValidationReport` with both profiles and the diff rows.
    """
    config = VALIDATION_CONFIGS[name]
    graph = config.builder()
    rng = np.random.default_rng(seed)
    x, y = _make_batch(config, rng, graph)

    # -- plan against a deliberately tight capacity ------------------------
    device = tiny_test_device(memory=64 * 1024 * 1024)
    if config.link_bandwidth >= 100e9:
        link = karma_swap_link()
    else:
        link = LinkSpec(f"val-link-{config.link_bandwidth / 1e9:.0f}gbs",
                        config.link_bandwidth)
    transfer = TransferModel(link=link, device=device, host=abci_host())
    kp: KarmaPlan = plan(graph, batch_size=config.batch_size, device=device,
                         transfer=transfer, hierarchy=hierarchy,
                         capacity=_tight_capacity(graph, device, transfer,
                                                  config),
                         calibration=calibration)
    exec_plan = kp.plan

    # -- predict -----------------------------------------------------------
    costs = block_costs(exec_plan.blocks, kp.cost, hierarchy=hierarchy,
                        placements=exec_plan.placements)
    ledger = _stash_ledger_capacity(exec_plan, costs, kp.cost, kp.capacity)
    ops = compile_plan(exec_plan, costs)
    sim = simulate(ops, memory_capacity=ledger)
    predicted = stall_profile(ops, sim)

    # -- measure -----------------------------------------------------------
    time_scale = target_wall_s / sim.makespan if sim.makespan > 0 else 0.0
    pacer = TransferPacer(time_scale=time_scale, costs=costs,
                          hierarchy=hierarchy, transfer=transfer)
    num_tiers = max(2, exec_plan.max_tier + 1)

    # size the measured device pool with the same headroom ratio the
    # simulator's stash ledger had: a dry synchronous run (plan order,
    # unbounded pools) measures the runtime's true peak in real bytes,
    # and scaling it by ledger/peak_sim makes the async executor's
    # admission backpressure engage exactly when the sim's ledger
    # throttling would — so the 'memory' stall bucket is comparable, not
    # structurally zero
    dry_space = TieredMemorySpace([64 * GiB] * num_tiers)
    dry_model = ExecutableModel(graph, dtype=np.float64, seed=seed)
    OutOfCoreExecutor(dry_model, exec_plan, dry_space).run_iteration(
        x, y, step=0)
    sync_peak = dry_space.near.peak_in_use
    sim_peak = _sim_peak_ledger_usage(sim)
    if sim_peak > 0:
        device_cap = min(4 * GiB, int(sync_peak * (ledger / sim_peak)) + 1)
    else:
        device_cap = 4 * GiB  # no ledger traffic: capacity cannot bind

    model = ExecutableModel(graph, dtype=np.float64, seed=seed)
    space = TieredMemorySpace([device_cap] + [4 * GiB] * (num_tiers - 1))
    executor = AsyncOutOfCoreExecutor(model, exec_plan, space, pacer=pacer,
                                      prefetch_stages=prefetch_stages)
    model.zero_grad()
    executor.run_iteration(x, y, step=0)
    assert executor.trace is not None
    measured = executor.trace.stall_profile()

    return ValidationReport(
        config=name, batch_size=config.batch_size,
        num_blocks=exec_plan.num_blocks,
        plan_string=exec_plan.plan_string(),
        time_scale=time_scale, predicted=predicted, measured=measured,
        rows=compare_profiles(predicted, measured),
        top_stalls=top_stall_intervals(ops, sim),
        sim_ops=ops, sim_result=sim, runtime_trace=executor.trace,
        karma_plan=kp, block_costs=costs)


def _sim_peak_ledger_usage(sim) -> int:
    """Peak bytes the simulated schedule held against the stash ledger.

    Mirrors the ledger's merge semantics: same-instant acquire/release
    deltas net out before the peak is read.
    """
    deltas: Dict[float, int] = {}
    for t in sim.timings.values():
        if t.op.mem_acquire:
            deltas[t.start] = deltas.get(t.start, 0) + t.op.mem_acquire
        if t.op.mem_release:
            deltas[t.finish] = deltas.get(t.finish, 0) - t.op.mem_release
    running = peak = 0
    for when in sorted(deltas):
        running += deltas[when]
        if running > peak:
            peak = running
    return peak


def _tight_capacity(graph: LayerGraph, device, transfer,
                    config: ValidationConfig) -> float:
    """Device capacity forcing an out-of-core plan: persistent state plus
    a fraction of the activation footprint."""
    from ..costs.profiler import profile_graph

    cost = profile_graph(graph, device, transfer, config.batch_size)
    return cost.persistent_bytes() \
        + config.activation_fraction * cost.total_activation_bytes


def validate_many(names=DEFAULT_CONFIGS, *,
                  target_wall_s: float = 0.4,
                  hierarchy: Optional[MemoryHierarchy] = None,
                  seed: int = 0,
                  calibration: Optional[Dict[str, float]] = None) \
        -> List[ValidationReport]:
    """Run :func:`validate_config` over several named configurations."""
    return [validate_config(n, target_wall_s=target_wall_s,
                            hierarchy=hierarchy, seed=seed,
                            calibration=calibration)
            for n in names]
