"""The original round-robin simulation engine, kept as the differential
oracle for :mod:`repro.sim.engine`.

This module preserves the seed engine's *scheduling semantics* verbatim:
repeated passes over the resource queues in issue order, draining each
head while its dependencies are scheduled and the memory ledger admits it,
with the ledger rebuilding the merged event timeline and suffix maxima
from scratch on every acquire.  It is :math:`O(\\text{events}^2)` per
simulation and exists only so tests can assert that the event-heap engine
produces **bit-identical** timings (`tests/test_engine_differential.py`)
and so ``benchmarks/bench_engine.py`` can measure the speedup honestly.

Do not use this from production code paths — import
:func:`repro.sim.engine.simulate` instead.

The only deliberate deviations from the seed implementation, both
behaviour-preserving:

* the ``bisect`` import is hoisted to module level;
* summary statistics (``resource_busy``/``resource_span``/``makespan``)
  are accumulated in canonical op order via the shared
  :func:`~repro.sim.engine.summarize` helper, so float accumulation order
  cannot differ between the two engines (the per-op timings, which are
  the semantics, are computed exactly as the seed did).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import OpTiming, SimOp, SimResult, SimulationDeadlock, summarize


class _ReferenceMemoryLedger:
    """Capacity ledger over scheduled acquire/release events.

    An op may hold bytes across a window that *other* ops close (e.g. a
    forward op acquires a stash that the matching backward op releases), so
    fitting a new acquire at time ``t`` must respect every already-scheduled
    usage peak at or after ``t`` — a suffix-maximum query over the event
    timeline.  Conservative by construction: an acquire is only placed where
    it can never retroactively oversubscribe the capacity.
    """

    def __init__(self, capacity: Optional[int]):
        self.capacity = capacity
        self._events: List[Tuple[float, int]] = []  # (time, delta), sorted

    def record(self, time: float, delta: int) -> None:
        if self.capacity is None or delta == 0:
            return
        bisect.insort(self._events, (time, delta), key=lambda e: e[0])

    def _merged(self) -> Tuple[List[float], List[int]]:
        """Unique event times with net deltas (releases and acquires at the
        same instant cancel)."""
        times: List[float] = []
        deltas: List[int] = []
        for t, d in self._events:
            if times and times[-1] == t:
                deltas[-1] += d
            else:
                times.append(t)
                deltas.append(d)
        return times, deltas

    def earliest_fit(self, need: int, not_before: float) -> Optional[float]:
        """Earliest t >= not_before such that usage(t') + need <= capacity
        for every t' >= t under the currently scheduled events.

        Returns None when no such time exists *yet* — the caller should
        defer the op until further releases have been scheduled.
        """
        if self.capacity is None or need == 0:
            return not_before
        if need > self.capacity:
            raise SimulationDeadlock(
                f"op needs {need} B > ledger capacity {self.capacity} B")
        times, deltas = self._merged()
        n = len(times)
        if n == 0:
            return not_before
        # usage right after each event, and suffix maxima of those usages
        cums: List[int] = []
        u = 0
        for d in deltas:
            u += d
            cums.append(u)
        suffix_max = [0] * (n + 1)  # suffix_max[i] = max(cums[i:], 0)
        for i in range(n - 1, -1, -1):
            suffix_max[i] = max(cums[i], suffix_max[i + 1])

        budget = self.capacity - need
        # candidate 1: start at not_before
        i0 = 0
        usage_at = 0
        while i0 < n and times[i0] <= not_before:
            usage_at = cums[i0]
            i0 += 1
        peak = max(usage_at, suffix_max[i0] if i0 < n else 0)
        if peak <= budget:
            return not_before
        # otherwise advance to each later event time (releases shrink peaks)
        for i in range(i0, n):
            peak = max(cums[i], suffix_max[i + 1] if i + 1 < n else 0)
            if peak <= budget:
                return max(not_before, times[i])
        # cannot fit against the *currently scheduled* events; the caller
        # may retry after more releases are scheduled
        return None


def simulate_reference(ops: Sequence[SimOp],
                       memory_capacity: Optional[int] = None) -> SimResult:
    """Schedule ``ops`` with the seed round-robin engine (oracle only)."""
    by_id = {op.op_id: op for op in ops}
    if len(by_id) != len(ops):
        raise ValueError("duplicate op ids")
    for op in ops:
        for d in op.deps:
            if d not in by_id:
                raise ValueError(f"op {op.label or op.op_id} depends on "
                                 f"unknown op {d}")

    queues: Dict[str, List[SimOp]] = {}
    for op in ops:
        queues.setdefault(op.resource, []).append(op)
    heads = {r: 0 for r in queues}
    resource_free = {r: 0.0 for r in queues}

    ledger = _ReferenceMemoryLedger(memory_capacity)
    timings: Dict[int, OpTiming] = {}
    remaining = len(ops)

    while remaining:
        progressed = False
        for r, queue in queues.items():
            while heads[r] < len(queue):
                op = queue[heads[r]]
                if any(d not in timings for d in op.deps):
                    break  # head blocked on an unscheduled dep
                ready = max((timings[d].finish for d in op.deps), default=0.0)
                start = max(ready, resource_free[r])
                if op.mem_acquire:
                    fit = ledger.earliest_fit(op.mem_acquire, start)
                    if fit is None:
                        break  # defer: future releases may open room
                    start = fit
                finish = start + op.duration
                ledger.record(start, op.mem_acquire)
                ledger.record(finish, -op.mem_release)
                timings[op.op_id] = OpTiming(op, start, finish, ready)
                resource_free[r] = finish
                heads[r] += 1
                remaining -= 1
                progressed = True
        if not progressed and remaining:
            stuck = [queue[heads[r]].label or str(queue[heads[r]].op_id)
                     for r, queue in queues.items() if heads[r] < len(queue)]
            raise SimulationDeadlock(
                f"no progress; blocked resource heads: {stuck}")

    return summarize(ops, timings)
