"""Compile execution plans to event graphs and simulate one iteration.

This is the timing engine behind Fig. 5 (throughput vs batch), Fig. 6
(per-block stall profiles) and the blocking search's objective: the planner
proposes a blocking, :func:`simulate_plan` prices it.

Op semantics (single-worker iteration):

* ``F b``   — forward of block b; needs block b-1's output; acquires b's stash
* ``Sout b``— stash D2H copy; releases the stash bytes when done
* ``Sin b`` — stash H2D copy; re-acquires the bytes (the ledger may delay it:
              that is precisely the capacity-based prefetch throttling)
* ``R b``   — recompute (re-forward) from the nearest upstream checkpoint
* ``B b``   — backward of block b; releases the stash when done

Stashes placed past DRAM (``plan.placements[b] >= 2``) lower to *chained*
swap pairs: the host-link hop (``d2h``/``h2d``) plus a storage-link hop on
the dedicated exclusive ``d2s``/``s2d`` resources, so NVMe contention
surfaces in the stall profile exactly like host-link contention does.
Simulating a storage-placed plan requires a
:class:`~repro.hardware.tiering.MemoryHierarchy` for the storage link's
timing.

Weights stay device-resident in single-worker plans (Fig. 2 swaps
activations); the distributed 5-stage pipeline moves weights and gradients
too and is simulated in :mod:`repro.sim.distributed_sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import BlockPolicy, ExecutionPlan, Op, OpKind, Resource
from ..costs.profiler import CostModel
from ..hardware.tiering import MemoryHierarchy
from .engine import SimOp, SimResult, SimulationDeadlock, simulate


class OutOfCoreInfeasible(RuntimeError):
    """The plan cannot run within device capacity (true OOM)."""


@dataclass(frozen=True)
class BlockCosts:
    """Per-block costs derived from the cost model for one plan."""

    fw: Tuple[float, ...]
    bw: Tuple[float, ...]
    stash_bytes: Tuple[int, ...]
    boundary_bytes: Tuple[int, ...]    # the block's output activation
    weight_bytes: Tuple[int, ...]
    swap_time: Tuple[float, ...]       # one-way stash transfer (host link)
    grad_swap_time: Tuple[float, ...]  # gradients D2H (distributed pipeline)
    # storage-link hop times past DRAM; all zeros for DRAM-only plans
    storage_out_time: Tuple[float, ...] = ()
    storage_in_time: Tuple[float, ...] = ()

    @property
    def num_blocks(self) -> int:
        return len(self.fw)

    def storage_out(self, block: int) -> float:
        return self.storage_out_time[block] if self.storage_out_time else 0.0

    def storage_in(self, block: int) -> float:
        return self.storage_in_time[block] if self.storage_in_time else 0.0


def block_costs(blocks: Sequence[Tuple[int, int]],
                cost: CostModel,
                hierarchy: Optional[MemoryHierarchy] = None,
                placements: Optional[Dict[int, int]] = None) -> BlockCosts:
    """Aggregate the cost model over a blocking.

    When ``hierarchy``/``placements`` are given, blocks placed past DRAM
    also get storage-link hop times (the DRAM <-> NVMe legs of the chained
    transfer); the host-link leg keeps the calibrated ``swap_time``.
    """
    fw, bw, stash, bnd, wbytes, swap, gswap = [], [], [], [], [], [], []
    sto_out, sto_in = [], []
    placements = placements or {}
    for bi, (s, e) in enumerate(blocks):
        fw.append(cost.block_fw_time(s, e))
        bw.append(cost.block_bw_time(s, e))
        sb = cost.block_activation_bytes(s, e)
        wb = cost.block_weight_bytes(s, e)
        stash.append(sb)
        bnd.append(cost.layer_mem(e - 1).activations)
        wbytes.append(wb)
        swap.append(cost.transfer.swap_time(sb))
        gswap.append(cost.transfer.swap_time(wb))
        tier = placements.get(bi, 1)
        if tier >= 2 and hierarchy is not None:
            sto_out.append(hierarchy.transfer_time(sb, 1, tier))
            sto_in.append(hierarchy.transfer_time(sb, tier, 1))
        else:
            sto_out.append(0.0)
            sto_in.append(0.0)
    return BlockCosts(fw=tuple(fw), bw=tuple(bw), stash_bytes=tuple(stash),
                      boundary_bytes=tuple(bnd), weight_bytes=tuple(wbytes),
                      swap_time=tuple(swap), grad_swap_time=tuple(gswap),
                      storage_out_time=tuple(sto_out),
                      storage_in_time=tuple(sto_in))


@dataclass
class IterationResult:
    """Timing of one simulated training iteration."""

    plan: ExecutionPlan
    sim: SimResult
    makespan: float
    gpu_busy: float
    gpu_occupancy: float
    total_stall: float
    bw_block_stalls: Dict[int, float]  # idle gap right before each B op
    samples_per_sec: float
    storage_busy: float = 0.0          # seconds on the d2s + s2d links

    def summary(self) -> str:
        line = (f"iteration {self.makespan * 1e3:8.2f} ms | occupancy "
                f"{self.gpu_occupancy * 100:5.1f}% | stalls "
                f"{self.total_stall * 1e3:7.2f} ms | "
                f"{self.samples_per_sec:8.1f} samples/s")
        if self.storage_busy > 0:
            line += f" | storage {self.storage_busy * 1e3:7.2f} ms"
        return line


def _stash_ledger_capacity(plan: ExecutionPlan, costs: BlockCosts,
                           cost: CostModel, capacity: float) -> int:
    """Near-memory bytes available to activation stashes.

    Weights, gradients and optimizer state stay resident in single-worker
    plans; the largest transient workspace is reserved as margin.
    """
    persistent = cost.persistent_bytes()
    workspace = max((cost.block_memory(s, e).peak_workspace
                     for (s, e) in plan.blocks), default=0)
    ledger = int(capacity - persistent - workspace)
    if ledger <= 0:
        raise OutOfCoreInfeasible(
            f"persistent bytes {persistent + workspace} exceed device "
            f"capacity {int(capacity)}")
    return ledger


def compile_plan(plan: ExecutionPlan, costs: BlockCosts,
                 prefetch_lookahead: int = 3) -> List[SimOp]:
    """Lower the stage schedule to SimOps with explicit data dependencies.

    Two throttles shape swap-in timing, both mirroring the paper's runtime:

    * a swap-in depends on the last GPU op of the *preceding* stage — the
      prefetch is issued at its stage's launch point, never earlier (the
      "synchronize before the prefetch" of §III-H);
    * a swap-in for block b additionally waits for the backward of block
      ``b + prefetch_lookahead`` — prefetch depth is bounded, so eager
      swap-ins cannot hoard the memory that upcoming recompute scratch or
      outstanding forwards still need.

    Swaps placed past DRAM lower to a chained op pair — the host-link hop
    plus a storage-link hop on the exclusive ``d2s``/``s2d`` resources —
    so one plan-level op may produce two SimOps.  The ``ids`` map always
    points at the *final* hop (the one downstream deps must wait for).
    """
    specs: List[Tuple[OpKind, int, float, List[object], int, int,
                      Optional[str], Optional[str]]] = []
    ids: Dict[Tuple[OpKind, int], int] = {}
    n = plan.num_blocks

    def emit(kind: OpKind, block: int, duration: float, deps: List[object],
             acquire: int = 0, release: int = 0,
             resource: Optional[str] = None,
             label: Optional[str] = None) -> int:
        op_id = len(specs)
        specs.append((kind, block, duration, deps, acquire, release,
                      resource, label))
        ids[(kind, block)] = op_id
        return op_id

    def checkpoint_key(block: int) -> Optional[Tuple[OpKind, int]]:
        """The op whose output feeds block's recompute."""
        prev = block - 1
        if prev < 0:
            return None
        prev_policy = plan.policies[prev]
        if prev_policy is BlockPolicy.RECOMPUTED:
            return (OpKind.RECOMPUTE, prev)
        if prev_policy is BlockPolicy.SWAPPED:
            return (OpKind.SWAP_IN, prev)
        # RESIDENT, or CHECKPOINTED whose boundary survived forward
        return (OpKind.FORWARD, prev)

    gpu_kinds = (OpKind.FORWARD, OpKind.BACKWARD, OpKind.RECOMPUTE)
    last_gpu_prev_stages: Optional[Tuple[OpKind, int]] = None
    for stage in plan.stages:
        stage_gpu: Optional[Tuple[OpKind, int]] = None
        for op in stage.ops:
            b = op.block
            policy = plan.policies[b]
            if op.kind is OpKind.FORWARD:
                deps: List[object] = []
                if b > 0:
                    deps.append((OpKind.FORWARD, b - 1))
                # RECOMPUTED blocks drop their whole stash after forward;
                # CHECKPOINTED blocks keep only their output boundary
                if policy is BlockPolicy.RECOMPUTED:
                    release = costs.stash_bytes[b]
                elif policy is BlockPolicy.CHECKPOINTED:
                    release = costs.stash_bytes[b] - costs.boundary_bytes[b]
                else:
                    release = 0
                emit(OpKind.FORWARD, b, costs.fw[b], deps,
                     acquire=costs.stash_bytes[b], release=release)
            elif op.kind is OpKind.SWAP_OUT:
                tier = plan.stash_tier(b)
                if tier >= 2 and costs.storage_out(b) > 0:
                    # chained demotion: D2H stages into the DRAM bounce
                    # buffer (stash leaves the device ledger here), then
                    # the storage write occupies the exclusive D2S link
                    host_hop = emit(
                        OpKind.SWAP_OUT, b, costs.swap_time[b],
                        [(OpKind.FORWARD, b)], release=costs.stash_bytes[b],
                        resource=Resource.D2H.value, label=f"Sout{b + 1}")
                    emit(OpKind.SWAP_OUT, b, costs.storage_out(b),
                         [host_hop], resource=Resource.D2S.value,
                         label=op.label())
                else:
                    emit(OpKind.SWAP_OUT, b, costs.swap_time[b],
                         [(OpKind.FORWARD, b)], release=costs.stash_bytes[b])
            elif op.kind is OpKind.SWAP_IN:
                deps = [(OpKind.SWAP_OUT, b)]
                if last_gpu_prev_stages is not None:
                    deps.append(last_gpu_prev_stages)
                if prefetch_lookahead and b + prefetch_lookahead < n:
                    deps.append((OpKind.BACKWARD, b + prefetch_lookahead))
                tier = plan.stash_tier(b)
                if tier >= 2 and costs.storage_in(b) > 0:
                    # chained promotion: the storage read (S2D) lands in
                    # DRAM first; only the H2D hop claims device memory
                    storage_hop = emit(
                        OpKind.SWAP_IN, b, costs.storage_in(b), deps,
                        resource=Resource.S2D.value, label=op.label())
                    emit(OpKind.SWAP_IN, b, costs.swap_time[b],
                         [storage_hop], acquire=costs.stash_bytes[b],
                         resource=Resource.H2D.value, label=f"Sin{b + 1}")
                else:
                    emit(OpKind.SWAP_IN, b, costs.swap_time[b], deps,
                         acquire=costs.stash_bytes[b])
            elif op.kind is OpKind.RECOMPUTE:
                key = checkpoint_key(b)
                deps = [key] if key is not None else []
                if plan.policies[b] is BlockPolicy.CHECKPOINTED:
                    acquire = costs.stash_bytes[b] - costs.boundary_bytes[b]
                else:
                    acquire = costs.stash_bytes[b]
                emit(OpKind.RECOMPUTE, b, costs.fw[b], deps, acquire=acquire)
            elif op.kind is OpKind.BACKWARD:
                deps = []
                if b + 1 < n:
                    deps.append((OpKind.BACKWARD, b + 1))
                if policy is BlockPolicy.SWAPPED:
                    deps.append((OpKind.SWAP_IN, b))
                elif policy in (BlockPolicy.RECOMPUTED,
                                BlockPolicy.CHECKPOINTED):
                    deps.append((OpKind.RECOMPUTE, b))
                else:
                    deps.append((OpKind.FORWARD, b))
                emit(OpKind.BACKWARD, b, costs.bw[b], deps,
                     release=costs.stash_bytes[b])
            else:
                raise ValueError(f"single-worker plans cannot contain "
                                 f"{op.kind}")
            if op.kind in gpu_kinds:
                stage_gpu = (op.kind, b)
        if stage_gpu is not None:
            last_gpu_prev_stages = stage_gpu

    # resolve symbolic (kind, block) deps to op ids; drop deps on ops that
    # were never emitted (e.g. lookahead pointing past scheduled backwards)
    ops: List[SimOp] = []
    for op_id, (kind, block, duration, deps, acquire, release,
                resource, label) in enumerate(specs):
        resolved = []
        for d in deps:
            if isinstance(d, tuple):
                if d in ids:
                    resolved.append(ids[d])
                elif kind is OpKind.RECOMPUTE:
                    raise SimulationDeadlock(
                        f"recompute of block {block} has no scheduled "
                        f"source {d}")
            else:
                resolved.append(d)
        ops.append(SimOp(op_id=op_id,
                         resource=resource
                         or Op(kind, block).resource.value,
                         duration=duration, deps=tuple(resolved),
                         mem_acquire=acquire, mem_release=release,
                         label=label or Op(kind, block).label()))
    return ops


def simulate_plan(plan: ExecutionPlan, cost: CostModel,
                  capacity: float,
                  hierarchy: Optional[MemoryHierarchy] = None
                  ) -> IterationResult:
    """Price one training iteration of ``plan`` on the cost model's device.

    Raises :class:`OutOfCoreInfeasible` when the plan cannot fit (either
    persistent state exceeds capacity, or the event simulation deadlocks on
    the stash ledger — e.g. a single block larger than available memory).
    Plans that place stashes past DRAM need a ``hierarchy`` for the
    storage link's timing.
    """
    if plan.uses_storage and hierarchy is None:
        raise ValueError(
            "plan places stashes on a storage tier; pass the "
            "MemoryHierarchy so the storage link can be priced")
    costs = block_costs(plan.blocks, cost, hierarchy=hierarchy,
                        placements=plan.placements)
    ledger = _stash_ledger_capacity(plan, costs, cost, capacity)
    ops = compile_plan(plan, costs)
    try:
        sim = simulate(ops, memory_capacity=ledger)
    except SimulationDeadlock as exc:
        raise OutOfCoreInfeasible(str(exc)) from exc

    gpu = Resource.GPU.value
    gpu_busy = sim.resource_busy.get(gpu, 0.0)
    occupancy = sim.occupancy(gpu)
    gaps = sim.idle_gaps(gpu)
    total_stall = sum(hi - lo for lo, hi in gaps)

    # attribute each idle gap to the GPU op that follows it
    gpu_ops = sorted((t for t in sim.timings.values()
                      if t.op.resource == gpu), key=lambda t: t.start)
    bw_stalls: Dict[int, float] = {}
    prev_finish: Optional[float] = None
    for t in gpu_ops:
        if prev_finish is not None and t.start > prev_finish + 1e-15:
            if t.op.label.startswith("B"):
                block = int(t.op.label[1:]) - 1
                bw_stalls[block] = bw_stalls.get(block, 0.0) \
                    + (t.start - prev_finish)
        prev_finish = t.finish
    storage_busy = (sim.resource_busy.get(Resource.D2S.value, 0.0)
                    + sim.resource_busy.get(Resource.S2D.value, 0.0))
    return IterationResult(
        plan=plan, sim=sim, makespan=sim.makespan, gpu_busy=gpu_busy,
        gpu_occupancy=occupancy, total_stall=total_stall,
        bw_block_stalls=bw_stalls,
        samples_per_sec=plan.batch_size / sim.makespan
        if sim.makespan > 0 else math.inf,
        storage_busy=storage_busy)
