"""Compile execution plans to event graphs and simulate one iteration.

This is the timing engine behind Fig. 5 (throughput vs batch), Fig. 6
(per-block stall profiles) and the blocking search's objective: the planner
proposes a blocking, :func:`simulate_plan` prices it.

Op semantics (single-worker iteration):

* ``F b``   — forward of block b; needs block b-1's output; acquires b's stash
* ``Sout b``— stash D2H copy; releases the stash bytes when done
* ``Sin b`` — stash H2D copy; re-acquires the bytes (the ledger may delay it:
              that is precisely the capacity-based prefetch throttling)
* ``R b``   — recompute (re-forward) from the nearest upstream checkpoint
* ``B b``   — backward of block b; releases the stash when done

Stashes placed past DRAM (``plan.placements[b] >= 2``) lower to *chained*
swap pairs: the host-link hop (``d2h``/``h2d``) plus a storage-link hop on
the dedicated exclusive ``d2s``/``s2d`` resources, so NVMe contention
surfaces in the stall profile exactly like host-link contention does.
Simulating a storage-placed plan requires a
:class:`~repro.hardware.tiering.MemoryHierarchy` for the storage link's
timing.

Weights stay device-resident in single-worker plans (Fig. 2 swaps
activations); the distributed 5-stage pipeline moves weights and gradients
too and is simulated in :mod:`repro.sim.distributed_sim`.

Lowering is split in two so the blocking search can batch candidate
evaluation:

* :func:`compile_skeleton` walks the stage schedule once and produces the
  *structure* — op roles, resources, labels, resolved dependency ids —
  which depends only on policies / stage order / which blocks chain
  through storage, **not** on where the block boundaries sit;
* :func:`bind_costs` stamps durations and acquire/release byte counts
  from a :class:`BlockCosts` onto a skeleton, yielding the
  :class:`~repro.sim.engine.SimOp` list.

A :class:`LoweringCache` memoizes every stage of that pipeline (block
costs, ledger sizing, skeletons, bound ops, and whole simulation results)
for one fixed ``(cost model, capacity, hierarchy)`` planning context, so
grid points that differ only in margin / placement policy — which very
often lower to the same plan — are priced at dictionary-lookup cost, and
boundary candidates that share a policy structure reuse the lowered
skeleton with patched durations instead of rebuilding from scratch.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import BlockPolicy, ExecutionPlan, Op, OpKind, Resource
from ..costs.profiler import CostModel
from ..hardware.tiering import MemoryHierarchy
from .engine import (
    ScheduleBuilder,
    SimOp,
    SimResult,
    SimulationDeadlock,
    simulate,
)


class OutOfCoreInfeasible(RuntimeError):
    """The plan cannot run within device capacity (true OOM)."""


@dataclass(frozen=True)
class BlockCosts:
    """Per-block costs derived from the cost model for one plan."""

    fw: Tuple[float, ...]
    bw: Tuple[float, ...]
    stash_bytes: Tuple[int, ...]
    boundary_bytes: Tuple[int, ...]    # the block's output activation
    weight_bytes: Tuple[int, ...]
    swap_time: Tuple[float, ...]       # one-way stash transfer (host link)
    grad_swap_time: Tuple[float, ...]  # gradients D2H (distributed pipeline)
    # storage-link hop times past DRAM; all zeros for DRAM-only plans
    storage_out_time: Tuple[float, ...] = ()
    storage_in_time: Tuple[float, ...] = ()

    @property
    def num_blocks(self) -> int:
        return len(self.fw)

    def storage_out(self, block: int) -> float:
        return self.storage_out_time[block] if self.storage_out_time else 0.0

    def storage_in(self, block: int) -> float:
        return self.storage_in_time[block] if self.storage_in_time else 0.0


def block_costs(blocks: Sequence[Tuple[int, int]],
                cost: CostModel,
                hierarchy: Optional[MemoryHierarchy] = None,
                placements: Optional[Dict[int, int]] = None) -> BlockCosts:
    """Aggregate the cost model over a blocking.

    When ``hierarchy``/``placements`` are given, blocks placed past DRAM
    also get storage-link hop times (the DRAM <-> NVMe legs of the chained
    transfer); the host-link leg keeps the calibrated ``swap_time``.
    """
    fw, bw, stash, bnd, wbytes, swap, gswap = [], [], [], [], [], [], []
    sto_out, sto_in = [], []
    placements = placements or {}
    for bi, (s, e) in enumerate(blocks):
        fw.append(cost.block_fw_time(s, e))
        bw.append(cost.block_bw_time(s, e))
        sb = cost.block_activation_bytes(s, e)
        wb = cost.block_weight_bytes(s, e)
        stash.append(sb)
        bnd.append(cost.layer_mem(e - 1).activations)
        wbytes.append(wb)
        swap.append(cost.transfer.swap_time(sb))
        gswap.append(cost.transfer.swap_time(wb))
        tier = placements.get(bi, 1)
        if tier >= 2 and hierarchy is not None:
            sto_out.append(hierarchy.transfer_time(sb, 1, tier))
            sto_in.append(hierarchy.transfer_time(sb, tier, 1))
        else:
            sto_out.append(0.0)
            sto_in.append(0.0)
    return BlockCosts(fw=tuple(fw), bw=tuple(bw), stash_bytes=tuple(stash),
                      boundary_bytes=tuple(bnd), weight_bytes=tuple(wbytes),
                      swap_time=tuple(swap), grad_swap_time=tuple(gswap),
                      storage_out_time=tuple(sto_out),
                      storage_in_time=tuple(sto_in))


@dataclass
class IterationResult:
    """Timing of one simulated training iteration."""

    plan: ExecutionPlan
    sim: SimResult
    makespan: float
    gpu_busy: float
    gpu_occupancy: float
    total_stall: float
    bw_block_stalls: Dict[int, float]  # idle gap right before each B op
    samples_per_sec: float
    storage_busy: float = 0.0          # seconds on the d2s + s2d links

    def summary(self) -> str:
        line = (f"iteration {self.makespan * 1e3:8.2f} ms | occupancy "
                f"{self.gpu_occupancy * 100:5.1f}% | stalls "
                f"{self.total_stall * 1e3:7.2f} ms | "
                f"{self.samples_per_sec:8.1f} samples/s")
        if self.storage_busy > 0:
            line += f" | storage {self.storage_busy * 1e3:7.2f} ms"
        return line


def _stash_ledger_capacity(plan: ExecutionPlan, costs: BlockCosts,
                           cost: CostModel, capacity: float,
                           workspace_of=None) -> int:
    """Near-memory bytes available to activation stashes.

    Weights, gradients and optimizer state stay resident in single-worker
    plans; the largest transient workspace is reserved as margin.
    ``workspace_of`` overrides the per-block peak-workspace lookup (the
    lowering cache memoizes it — neighbouring search candidates share
    almost all their blocks).
    """
    persistent = cost.persistent_bytes()
    if workspace_of is None:
        workspace = max((cost.block_memory(s, e).peak_workspace
                         for (s, e) in plan.blocks), default=0)
    else:
        workspace = max((workspace_of(s, e) for (s, e) in plan.blocks),
                        default=0)
    ledger = int(capacity - persistent - workspace)
    if ledger <= 0:
        raise OutOfCoreInfeasible(
            f"persistent bytes {persistent + workspace} exceed device "
            f"capacity {int(capacity)}")
    return ledger


# ---------------------------------------------------------------------------
# Lowering: plan -> skeleton -> SimOps
# ---------------------------------------------------------------------------

# Op roles: the cost-binding rule for each emitted op.  The skeleton pins
# (role, block, resource, label, deps); bind_costs turns a role into
# (duration, mem_acquire, mem_release) for a concrete BlockCosts.
_ROLE_FW_KEEP = 0     # forward, stash stays near
_ROLE_FW_DROP = 1     # forward of a RECOMPUTED block (drop whole stash)
_ROLE_FW_CKPT = 2     # forward of a CHECKPOINTED block (keep boundary)
_ROLE_SOUT = 3        # host-link swap-out hop (plain, or leg 1 of chained)
_ROLE_SOUT_STORE = 4  # storage-link swap-out hop (leg 2 of chained)
_ROLE_SIN = 5         # host-link swap-in hop (plain, or leg 2 of chained)
_ROLE_SIN_STORE = 6   # storage-link swap-in hop (leg 1 of chained)
_ROLE_RC = 7          # recompute of a RECOMPUTED block
_ROLE_RC_CKPT = 8     # recompute of a CHECKPOINTED block
_ROLE_BW = 9          # backward

#: One skeleton op: (role, block, resource, label, resolved dep ids).
SkeletonOp = Tuple[int, int, str, str, Tuple[int, ...]]


def plan_structure_key(plan: ExecutionPlan, costs: BlockCosts,
                       prefetch_lookahead: int = 3) -> Tuple:
    """Hashable key capturing everything :func:`compile_skeleton` reads.

    Two plans with equal keys lower to the same skeleton even when their
    block boundaries (and therefore durations and byte counts) differ —
    that is the reuse the blocking search's lowering cache exploits.
    """
    stage_sig = tuple(
        tuple((op.kind, op.block, op.src_tier, op.dst_tier)
              for op in stage.ops)
        for stage in plan.stages)
    placements_sig = tuple(sorted(plan.placements.items()))
    chained_out = frozenset(
        b for b in range(plan.num_blocks)
        if plan.stash_tier(b) >= 2 and costs.storage_out(b) > 0)
    chained_in = frozenset(
        b for b in range(plan.num_blocks)
        if plan.stash_tier(b) >= 2 and costs.storage_in(b) > 0)
    return (stage_sig, plan.policies, placements_sig, chained_out,
            chained_in, prefetch_lookahead)


def compile_skeleton(plan: ExecutionPlan, costs: BlockCosts,
                     prefetch_lookahead: int = 3) -> Tuple[SkeletonOp, ...]:
    """Lower the stage schedule to a cost-free op skeleton.

    Two throttles shape swap-in timing, both mirroring the paper's runtime:

    * a swap-in depends on the last GPU op of the *preceding* stage — the
      prefetch is issued at its stage's launch point, never earlier (the
      "synchronize before the prefetch" of §III-H);
    * a swap-in for block b additionally waits for the backward of block
      ``b + prefetch_lookahead`` — prefetch depth is bounded, so eager
      swap-ins cannot hoard the memory that upcoming recompute scratch or
      outstanding forwards still need.

    Swaps placed past DRAM lower to a chained op pair — the host-link hop
    plus a storage-link hop on the exclusive ``d2s``/``s2d`` resources —
    so one plan-level op may produce two skeleton ops.  Symbolic keys
    always point at the *final* hop (the one downstream deps must wait
    for); the :class:`~repro.sim.engine.ScheduleBuilder` resolves them
    against the final key map at build time.
    """
    builder = ScheduleBuilder()
    roles: List[int] = []
    blocks: List[int] = []
    n = plan.num_blocks

    def emit(role: int, block: int, resource: str, label: str,
             deps: Sequence[object], key: Optional[Tuple[OpKind, int]],
             require_deps: bool = False) -> int:
        roles.append(role)
        blocks.append(block)
        return builder.emit(resource, 0.0, key=key, deps=deps, label=label,
                            require_deps=require_deps)

    def checkpoint_key(block: int) -> Optional[Tuple[OpKind, int]]:
        """The op whose output feeds block's recompute."""
        prev = block - 1
        if prev < 0:
            return None
        prev_policy = plan.policies[prev]
        if prev_policy is BlockPolicy.RECOMPUTED:
            return (OpKind.RECOMPUTE, prev)
        if prev_policy is BlockPolicy.SWAPPED:
            return (OpKind.SWAP_IN, prev)
        # RESIDENT, or CHECKPOINTED whose boundary survived forward
        return (OpKind.FORWARD, prev)

    gpu_kinds = (OpKind.FORWARD, OpKind.BACKWARD, OpKind.RECOMPUTE)
    last_gpu_prev_stages: Optional[Tuple[OpKind, int]] = None
    for stage in plan.stages:
        stage_gpu: Optional[Tuple[OpKind, int]] = None
        for op in stage.ops:
            b = op.block
            policy = plan.policies[b]
            plain = Op(op.kind, b)
            if op.kind is OpKind.FORWARD:
                deps: List[object] = []
                if b > 0:
                    deps.append((OpKind.FORWARD, b - 1))
                # RECOMPUTED blocks drop their whole stash after forward;
                # CHECKPOINTED blocks keep only their output boundary
                if policy is BlockPolicy.RECOMPUTED:
                    role = _ROLE_FW_DROP
                elif policy is BlockPolicy.CHECKPOINTED:
                    role = _ROLE_FW_CKPT
                else:
                    role = _ROLE_FW_KEEP
                emit(role, b, Resource.GPU.value, plain.label(), deps,
                     (OpKind.FORWARD, b))
            elif op.kind is OpKind.SWAP_OUT:
                tier = plan.stash_tier(b)
                if tier >= 2 and costs.storage_out(b) > 0:
                    # chained demotion: D2H stages into the DRAM bounce
                    # buffer (stash leaves the device ledger here), then
                    # the storage write occupies the exclusive D2S link
                    host_hop = emit(
                        _ROLE_SOUT, b, Resource.D2H.value, f"Sout{b + 1}",
                        [(OpKind.FORWARD, b)], None)
                    emit(_ROLE_SOUT_STORE, b, Resource.D2S.value,
                         op.label(), [host_hop], (OpKind.SWAP_OUT, b))
                else:
                    emit(_ROLE_SOUT, b, Resource.D2H.value, plain.label(),
                         [(OpKind.FORWARD, b)], (OpKind.SWAP_OUT, b))
            elif op.kind is OpKind.SWAP_IN:
                deps = [(OpKind.SWAP_OUT, b)]
                if last_gpu_prev_stages is not None:
                    deps.append(last_gpu_prev_stages)
                if prefetch_lookahead and b + prefetch_lookahead < n:
                    deps.append((OpKind.BACKWARD, b + prefetch_lookahead))
                tier = plan.stash_tier(b)
                if tier >= 2 and costs.storage_in(b) > 0:
                    # chained promotion: the storage read (S2D) lands in
                    # DRAM first; only the H2D hop claims device memory
                    storage_hop = emit(
                        _ROLE_SIN_STORE, b, Resource.S2D.value, op.label(),
                        deps, None)
                    emit(_ROLE_SIN, b, Resource.H2D.value, f"Sin{b + 1}",
                         [storage_hop], (OpKind.SWAP_IN, b))
                else:
                    emit(_ROLE_SIN, b, Resource.H2D.value, plain.label(),
                         deps, (OpKind.SWAP_IN, b))
            elif op.kind is OpKind.RECOMPUTE:
                key = checkpoint_key(b)
                deps = [key] if key is not None else []
                if plan.policies[b] is BlockPolicy.CHECKPOINTED:
                    role = _ROLE_RC_CKPT
                else:
                    role = _ROLE_RC
                emit(role, b, Resource.GPU.value, plain.label(), deps,
                     (OpKind.RECOMPUTE, b), require_deps=True)
            elif op.kind is OpKind.BACKWARD:
                deps = []
                if b + 1 < n:
                    deps.append((OpKind.BACKWARD, b + 1))
                if policy is BlockPolicy.SWAPPED:
                    deps.append((OpKind.SWAP_IN, b))
                elif policy in (BlockPolicy.RECOMPUTED,
                                BlockPolicy.CHECKPOINTED):
                    deps.append((OpKind.RECOMPUTE, b))
                else:
                    deps.append((OpKind.FORWARD, b))
                emit(_ROLE_BW, b, Resource.GPU.value, plain.label(), deps,
                     (OpKind.BACKWARD, b))
            else:
                raise ValueError(f"single-worker plans cannot contain "
                                 f"{op.kind}")
            if op.kind in gpu_kinds:
                stage_gpu = (op.kind, b)
        if stage_gpu is not None:
            last_gpu_prev_stages = stage_gpu

    built = builder.build()
    return tuple((roles[i], blocks[i], sim_op.resource, sim_op.label,
                  sim_op.deps) for i, sim_op in enumerate(built))


def bind_costs(skeleton: Sequence[SkeletonOp],
               costs: BlockCosts) -> List[SimOp]:
    """Stamp durations and byte counts from ``costs`` onto a skeleton."""
    fw, bw = costs.fw, costs.bw
    stash, boundary = costs.stash_bytes, costs.boundary_bytes
    swap = costs.swap_time
    ops: List[SimOp] = []
    for op_id, (role, b, resource, label, deps) in enumerate(skeleton):
        acquire = 0
        release = 0
        if role == _ROLE_FW_KEEP:
            duration, acquire = fw[b], stash[b]
        elif role == _ROLE_FW_DROP:
            duration, acquire, release = fw[b], stash[b], stash[b]
        elif role == _ROLE_FW_CKPT:
            duration, acquire = fw[b], stash[b]
            release = stash[b] - boundary[b]
        elif role == _ROLE_SOUT:
            duration, release = swap[b], stash[b]
        elif role == _ROLE_SOUT_STORE:
            duration = costs.storage_out(b)
        elif role == _ROLE_SIN:
            duration, acquire = swap[b], stash[b]
        elif role == _ROLE_SIN_STORE:
            duration = costs.storage_in(b)
        elif role == _ROLE_RC:
            duration, acquire = fw[b], stash[b]
        elif role == _ROLE_RC_CKPT:
            duration = fw[b]
            acquire = stash[b] - boundary[b]
        else:  # _ROLE_BW
            duration, release = bw[b], stash[b]
        ops.append(SimOp(op_id=op_id, resource=resource, duration=duration,
                         deps=deps, mem_acquire=acquire,
                         mem_release=release, label=label))
    return ops


def compile_plan(plan: ExecutionPlan, costs: BlockCosts,
                 prefetch_lookahead: int = 3) -> List[SimOp]:
    """Lower the stage schedule to SimOps with explicit data dependencies.

    Equivalent to ``bind_costs(compile_skeleton(plan, costs), costs)`` —
    the split exists so the blocking search can reuse skeletons across
    candidates (see :class:`LoweringCache`).
    """
    return bind_costs(compile_skeleton(plan, costs, prefetch_lookahead),
                      costs)


# ---------------------------------------------------------------------------
# The lowering cache
# ---------------------------------------------------------------------------

class LoweringCache:
    """Memoizes the plan-pricing pipeline for one planning context.

    The blocking search prices thousands of (boundaries, margin,
    placement-policy) grid points against one fixed cost model, device
    capacity and memory hierarchy.  Candidates that differ only in margin
    or placement policy very often *lower to the same plan*, and boundary
    candidates that share a policy structure share the lowered skeleton.
    This cache exploits both, layer by layer:

    * ``results``   — full :class:`IterationResult` per (structure, blocks)
      key: identical plans are priced once;
    * ``ops``       — bound :class:`~repro.sim.engine.SimOp` lists per
      (structure, blocks, placements) key;
    * ``skeletons`` — cost-free skeletons per structure key, so a new
      boundary vector only re-binds durations / byte counts;
    * ``costs`` / ``ledgers`` — :func:`block_costs` and the stash-ledger
      sizing per block partition.

    Instances are bound to their ``(cost, capacity, hierarchy)`` triple;
    :func:`simulate_plan` refuses a cache built for a different context
    (a silent key collision would return wrong prices).  All layers are
    LRU-bounded.  Safe to pickle (fork-based portfolio workers each carry
    their own copy).
    """

    def __init__(self, cost: CostModel, capacity: float,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 max_entries: int = 1024):
        self.cost = cost
        self.capacity = capacity
        self.hierarchy = hierarchy
        self.max_entries = max_entries
        self._costs: "OrderedDict[Tuple, BlockCosts]" = OrderedDict()
        self._ledgers: "OrderedDict[Tuple, object]" = OrderedDict()
        self._skeletons: "OrderedDict[Tuple, Tuple[SkeletonOp, ...]]" = \
            OrderedDict()
        self._ops: "OrderedDict[Tuple, List[SimOp]]" = OrderedDict()
        self._results: "OrderedDict[Tuple, object]" = OrderedDict()
        self._workspace: Dict[Tuple[int, int], int] = {}
        self.hits = 0            # result-level hits (sim fully skipped)
        self.misses = 0          # result-level misses (sim actually ran)
        self.skeleton_hits = 0   # re-binds that skipped stage lowering

    def matches(self, cost: CostModel, capacity: float,
                hierarchy: Optional[MemoryHierarchy]) -> bool:
        return (self.cost is cost and self.capacity == capacity
                and self.hierarchy is hierarchy)

    def stats(self) -> Dict[str, int]:
        return {"result_hits": self.hits, "result_misses": self.misses,
                "skeleton_hits": self.skeleton_hits,
                "results": len(self._results),
                "skeletons": len(self._skeletons)}

    @staticmethod
    def _put(store: "OrderedDict", key: Tuple, value: object,
             limit: int) -> None:
        store[key] = value
        if len(store) > limit:
            store.popitem(last=False)

    @staticmethod
    def _get(store: "OrderedDict", key: Tuple) -> object:
        """Lookup that refreshes recency, so eviction is true LRU — the
        skeleton a thousand boundary candidates share must not be evicted
        by one-off entries just because it was inserted first."""
        value = store.get(key)
        if value is not None:
            store.move_to_end(key)
        return value

    def block_costs(self, plan: ExecutionPlan,
                    placements_sig: Tuple) -> BlockCosts:
        key = (plan.blocks, placements_sig)
        costs = self._get(self._costs, key)
        if costs is None:
            costs = block_costs(plan.blocks, self.cost,
                                hierarchy=self.hierarchy,
                                placements=plan.placements)
            self._put(self._costs, key, costs, self.max_entries)
        return costs  # type: ignore[return-value]

    def _block_workspace(self, s: int, e: int) -> int:
        key = (s, e)
        w = self._workspace.get(key)
        if w is None:
            w = self.cost.block_memory(s, e).peak_workspace
            self._workspace[key] = w
        return w

    def ledger_capacity(self, plan: ExecutionPlan,
                        costs: BlockCosts) -> int:
        """Stash-ledger sizing per block partition; infeasible partitions
        cache their error so repeated probes fail fast."""
        key = plan.blocks
        cached = self._get(self._ledgers, key)
        if cached is None:
            try:
                cached = _stash_ledger_capacity(
                    plan, costs, self.cost, self.capacity,
                    workspace_of=self._block_workspace)
            except OutOfCoreInfeasible as exc:
                cached = exc
            self._put(self._ledgers, key, cached, self.max_entries)
        if isinstance(cached, OutOfCoreInfeasible):
            raise OutOfCoreInfeasible(str(cached))
        return cached  # type: ignore[return-value]

    def skeleton(self, plan: ExecutionPlan, costs: BlockCosts,
                 structure_key: Tuple,
                 prefetch_lookahead: int) -> Tuple[SkeletonOp, ...]:
        skeleton = self._get(self._skeletons, structure_key)
        if skeleton is None:
            skeleton = compile_skeleton(plan, costs, prefetch_lookahead)
            self._put(self._skeletons, structure_key, skeleton,
                      self.max_entries)
        else:
            self.skeleton_hits += 1
        return skeleton  # type: ignore[return-value]

    def ops(self, plan: ExecutionPlan, costs: BlockCosts,
            structure_key: Tuple, placements_sig: Tuple,
            prefetch_lookahead: int) -> List[SimOp]:
        key = (structure_key, plan.blocks, placements_sig)
        ops = self._get(self._ops, key)
        if ops is None:
            skeleton = self.skeleton(plan, costs, structure_key,
                                     prefetch_lookahead)
            ops = bind_costs(skeleton, costs)
            self._put(self._ops, key, ops, self.max_entries)
        return ops  # type: ignore[return-value]

    def result(self, key: Tuple) -> Optional[object]:
        return self._get(self._results, key)

    def store_result(self, key: Tuple, value: object) -> None:
        self._put(self._results, key, value, self.max_entries)


# ---------------------------------------------------------------------------
# Plan pricing
# ---------------------------------------------------------------------------

def _analyze(plan: ExecutionPlan, sim: SimResult) -> IterationResult:
    """Fold a raw simulation into the per-iteration report."""
    gpu = Resource.GPU.value
    gpu_busy = sim.resource_busy.get(gpu, 0.0)
    occupancy = sim.occupancy(gpu)
    # one cached sort serves both the gap list and the stall attribution
    gpu_ops = sim.resource_timings(gpu)
    gaps = sim.idle_gaps(gpu)
    total_stall = sum(hi - lo for lo, hi in gaps)

    # attribute each idle gap to the GPU op that follows it
    bw_stalls: Dict[int, float] = {}
    prev_finish: Optional[float] = None
    for t in gpu_ops:
        if prev_finish is not None and t.start > prev_finish + 1e-15:
            if t.op.label.startswith("B"):
                block = int(t.op.label[1:]) - 1
                bw_stalls[block] = bw_stalls.get(block, 0.0) \
                    + (t.start - prev_finish)
        prev_finish = t.finish
    storage_busy = (sim.resource_busy.get(Resource.D2S.value, 0.0)
                    + sim.resource_busy.get(Resource.S2D.value, 0.0))
    return IterationResult(
        plan=plan, sim=sim, makespan=sim.makespan, gpu_busy=gpu_busy,
        gpu_occupancy=occupancy, total_stall=total_stall,
        bw_block_stalls=bw_stalls,
        samples_per_sec=plan.batch_size / sim.makespan
        if sim.makespan > 0 else math.inf,
        storage_busy=storage_busy)


def simulate_plan(plan: ExecutionPlan, cost: CostModel,
                  capacity: float,
                  hierarchy: Optional[MemoryHierarchy] = None,
                  cache: Optional[LoweringCache] = None
                  ) -> IterationResult:
    """Price one training iteration of ``plan`` on the cost model's device.

    Raises :class:`OutOfCoreInfeasible` when the plan cannot fit (either
    persistent state exceeds capacity, or the event simulation deadlocks on
    the stash ledger — e.g. a single block larger than available memory).
    Plans that place stashes past DRAM need a ``hierarchy`` for the
    storage link's timing.

    ``cache`` batches repeated pricing: pass the search's shared
    :class:`LoweringCache` (built for the *same* cost model, capacity and
    hierarchy — anything else raises) and structurally identical plans
    reuse lowered skeletons, bound op lists and whole results.
    """
    if plan.uses_storage and hierarchy is None:
        raise ValueError(
            "plan places stashes on a storage tier; pass the "
            "MemoryHierarchy so the storage link can be priced")
    if cache is not None and not cache.matches(cost, capacity, hierarchy):
        raise ValueError(
            "LoweringCache was built for a different (cost, capacity, "
            "hierarchy) context; results would be silently wrong")

    if cache is None:
        costs = block_costs(plan.blocks, cost, hierarchy=hierarchy,
                            placements=plan.placements)
        ledger = _stash_ledger_capacity(plan, costs, cost, capacity)
        ops = compile_plan(plan, costs)
        try:
            sim = simulate(ops, memory_capacity=ledger)
        except SimulationDeadlock as exc:
            raise OutOfCoreInfeasible(str(exc)) from exc
        return _analyze(plan, sim)

    placements_sig = tuple(sorted(plan.placements.items()))
    costs = cache.block_costs(plan, placements_sig)
    structure_key = plan_structure_key(plan, costs)
    result_key = (structure_key, plan.blocks)
    cached = cache.result(result_key)
    if cached is not None:
        cache.hits += 1
        if isinstance(cached, OutOfCoreInfeasible):
            raise OutOfCoreInfeasible(str(cached))
        # same structure + same blocks + same context => same timings;
        # only the plan object identity may differ
        return replace(cached, plan=plan)  # type: ignore[arg-type]
    cache.misses += 1
    try:
        ledger = cache.ledger_capacity(plan, costs)
        ops = cache.ops(plan, costs, structure_key, placements_sig,
                        prefetch_lookahead=3)
        try:
            sim = simulate(ops, memory_capacity=ledger)
        except SimulationDeadlock as exc:
            raise OutOfCoreInfeasible(str(exc)) from exc
    except OutOfCoreInfeasible as exc:
        cache.store_result(result_key, exc)
        raise
    result = _analyze(plan, sim)
    cache.store_result(result_key, result)
    return result
