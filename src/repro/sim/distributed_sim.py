"""Multi-node timing models: data-parallel KARMA's 5-stage pipeline and the
model/data-parallel hybrids it competes with (Table IV, Fig. 8, Table V).

**DP-KARMA** (Fig. 3) is simulated with the event engine over three
iterations; the steady-state (2nd -> 3rd iteration) duration is reported.
Per block b and iteration i the pipeline is::

    Win_fw(i,b) -> F(i,b) ... Win_bw(i,b) -> R(i,b) -> B(i,b)
      -> Gout(i,b) [grads D2H] -> G(i, group) [phased host allreduce]
      -> U(i,b) [CPU update]   -> Win_fw(i+1,b)   (closes the pipeline)

Weights stream from far memory because billion-parameter models exceed
device capacity outright; activations follow Megatron-style checkpointing
(recompute in backward).  Bounded lookahead keeps the in-flight weight
window within device capacity.

**MP+DP hybrid** (Megatron-LM) and **ZeRO** are priced analytically — the
paper measures them as external baselines, and their published cost
structure (per-layer activation allreduces for MP; partitioned state +
extra gather volume for ZeRO) is what our formulas encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.interconnect import TransferModel
from ..hardware.spec import ClusterSpec, abci_cluster
from ..models.transformer import TransformerConfig
from .collectives import AllreduceModel, phased_groups
from .engine import ScheduleBuilder, simulate

GiB = 1024 ** 3


@dataclass(frozen=True)
class LmWorkload:
    """Per-worker workload of a transformer LM training iteration."""

    config: TransformerConfig
    per_gpu_batch: int

    @property
    def tokens(self) -> int:
        return self.per_gpu_batch * self.config.seq_len

    @property
    def param_bytes(self) -> int:
        return self.config.analytic_params * 4

    def fw_flops(self) -> float:
        """2 FLOPs per parameter per token (dense GPT accounting)."""
        return 2.0 * self.config.analytic_params * self.tokens

    def bw_flops(self) -> float:
        return 2.0 * self.fw_flops()

    def activation_boundary_bytes(self) -> int:
        """One layer boundary: batch x seq x hidden FP32."""
        return self.per_gpu_batch * self.config.seq_len \
            * self.config.hidden * 4


@dataclass
class DpKarmaResult:
    """Steady-state timing of data-parallel KARMA."""

    iteration_time: float
    samples_per_sec_per_gpu: float
    global_samples_per_sec: float
    num_gpus: int
    blocks: int
    groups: int

    def epoch_time(self, samples_per_epoch: int) -> float:
        return samples_per_epoch / self.global_samples_per_sec


STRAGGLER_PER_WORKER = 4e-3  # calibrated to the paper's >1k-GPU comm growth


def simulate_dp_karma_lm(config: TransformerConfig, num_gpus: int,
                         per_gpu_batch: int,
                         cluster: Optional[ClusterSpec] = None,
                         blocks_per_model: int = 24,
                         weight_window: int = 4,
                         group_target_bytes: int = 256 * 2 ** 20,
                         zero_style_exchange: bool = False,
                         recompute_activations: bool = True,
                         iterations: int = 3) -> DpKarmaResult:
    """Simulate steady-state DP-KARMA on a transformer LM.

    Weights stream over the node's *bulk* host link (PCIe — weight swaps
    are plain pinned cudaMemcpy, unlike the UM-prefetch activation path).
    ``zero_style_exchange=True`` models KARMA+ZeRO: the gradient exchange
    becomes reduce-scatter (each host updates 1/N of the state) with the
    weight allgather folded into the next swap-in, the CPU update shrinks
    to 1/N, and the partitioned device state leaves enough room to keep
    activations near instead of recomputing (pass
    ``recompute_activations=False`` for that regime).
    """
    cluster = cluster or abci_cluster()
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    node = cluster.node
    device, host = node.device, node.host
    transfer = TransferModel(link=node.h2d, device=device, host=host)
    wl = LmWorkload(config, per_gpu_batch)

    nb = max(2, blocks_per_model)
    w_bytes = wl.param_bytes // nb
    fw_t = device.compute_time(wl.fw_flops() / nb)
    bw_t = device.compute_time(wl.bw_flops() / nb)
    # Megatron-style activation recompute, unless partitioned state leaves
    # room to keep stashes near (KARMA+ZeRO regime)
    rc_t = fw_t if recompute_activations else 0.0
    win_t = transfer.swap_time(w_bytes)
    gout_t = transfer.swap_time(w_bytes)  # gradients have weight volume
    boundary = wl.activation_boundary_bytes()

    # the straggler cost is paid once per iteration (one pipelined exchange
    # phase), not once per group — KARMA's amortization advantage
    ar = AllreduceModel(link=cluster.network, host=host, workers=num_gpus)
    iteration_straggle = STRAGGLER_PER_WORKER * max(0, num_gpus - 1)
    groups = phased_groups([w_bytes] * nb, group_target_bytes)
    group_of: Dict[int, int] = {}
    for gi, blocks in enumerate(groups):
        for b in blocks:
            group_of[b] = gi
    if zero_style_exchange:
        g_time = [ar.reduce_scatter_time(w_bytes * len(g)) for g in groups]
        upd_scale = 1.0 / num_gpus
    else:
        g_time = [ar.time(w_bytes * len(g)) for g in groups]
        upd_scale = 1.0
    # SGD/Adam host update: ~10 flops + 16 bytes traffic per parameter
    params_per_block = wl.param_bytes // 4 // nb
    u_time = host.update_time(10.0 * params_per_block,
                              16.0 * params_per_block) * upd_scale

    # symbolic (kind, iteration, block) keys resolve at build time;
    # missing keys (pipeline edges past the first/last block or
    # iteration) drop silently — same semantics as the old ad-hoc ids
    # dict, without the per-emit filtering
    builder = ScheduleBuilder()

    def emit(kind: str, it: int, b: int, resource: str, duration: float,
             deps: Sequence[Tuple[str, int, int]]) -> None:
        builder.emit(resource, duration, key=(kind, it, b), deps=deps,
                     label=f"{kind}{b}@{it}")

    group_members: Dict[int, List[int]] = {gi: list(g)
                                           for gi, g in enumerate(groups)}
    for it in range(iterations):
        # forward phase: weight stream + compute
        for b in range(nb):
            deps = [("U", it - 1, b)] if it > 0 else []
            if b >= weight_window:
                deps.append(("F", it, b - weight_window))
            emit("Wf", it, b, "h2d", win_t, deps)
            emit("F", it, b, "gpu", fw_t,
                 [("F", it, b - 1), ("Wf", it, b)])
        # backward phase: weight stream, recompute, backward, grad out
        for b in range(nb - 1, -1, -1):
            deps = [("Wf", it, b)]
            if b + weight_window < nb:
                deps.append(("B", it, b + weight_window))
            emit("Wb", it, b, "h2d", win_t, deps)
            emit("R", it, b, "gpu", rc_t,
                 [("B", it, b + 1), ("Wb", it, b)]
                 if b + 1 < nb else [("Wb", it, b), ("F", it, nb - 1)])
            emit("B", it, b, "gpu", bw_t,
                 [("R", it, b)] + ([("B", it, b + 1)] if b + 1 < nb else []))
            emit("Gout", it, b, "d2h", gout_t, [("B", it, b)])
        # phased exchange + CPU update (exchange order: tail groups first);
        # the per-iteration straggle lands on the final (head-of-model)
        # group, which closes the pipeline
        last_gi = len(groups) - 1
        for gi, members in group_members.items():
            straggle = iteration_straggle if gi == last_gi else 0.0
            emit("G", it, gi, "net", g_time[gi] + straggle,
                 [("Gout", it, b) for b in members])
            for b in members:
                emit("U", it, b, "cpu", u_time, [("G", it, gi)])

    result = simulate(builder.build())
    if iterations >= 3:
        t2 = max(result.timing(builder.id_of(k)).finish
                 for k in builder.keys() if k[1] == 1)
        t3 = max(result.timing(builder.id_of(k)).finish
                 for k in builder.keys() if k[1] == 2)
        iter_time = t3 - t2
    else:
        iter_time = result.makespan / iterations
    per_gpu = per_gpu_batch / iter_time
    return DpKarmaResult(iteration_time=iter_time,
                         samples_per_sec_per_gpu=per_gpu,
                         global_samples_per_sec=per_gpu * num_gpus,
                         num_gpus=num_gpus, blocks=nb, groups=len(groups))


@dataclass
class HybridResult:
    """Analytic timing of the MP+DP Megatron-LM hybrid."""

    iteration_time: float
    compute_time: float
    mp_comm_time: float
    dp_comm_time: float
    num_gpus: int
    mp_ways: int
    dp_ways: int
    global_batch: int

    @property
    def global_samples_per_sec(self) -> float:
        return self.global_batch / self.iteration_time

    def epoch_time(self, samples_per_epoch: int) -> float:
        return samples_per_epoch / self.global_samples_per_sec


def hybrid_mp_dp_lm(config: TransformerConfig, num_gpus: int, mp_ways: int,
                    per_replica_batch: int,
                    cluster: Optional[ClusterSpec] = None,
                    phased_exchange: bool = False,
                    zero_partitioning: bool = False) -> HybridResult:
    """Analytic MP+DP hybrid (Megatron-LM; with ``zero_partitioning``,
    the ZeRO variant used by Turing-NLG).

    * compute: dense FLOPs split across MP ways (with a 0.95 MP scaling
      efficiency — tensor-parallel GEMMs are narrower);
    * MP communication: 4 activation allreduces per layer over the MP
      group on NVLink, 70% overlapped with compute (Megatron pipelines
      them);
    * DP communication: gradient allreduce of the per-GPU shard over the
      DP group plus the calibrated per-worker straggler cost;
      ``phased_exchange`` overlaps the volume term with backward compute
      (the paper's "Opt. Gradient Ex." variant); ZeRO adds an extra
      parameter-gather volume (~1.5x exchange traffic).
    """
    cluster = cluster or abci_cluster()
    if num_gpus % mp_ways:
        raise ValueError(f"{num_gpus} GPUs not divisible by MP={mp_ways}")
    dp_ways = num_gpus // mp_ways
    node = cluster.node
    device, host = node.device, node.host
    wl = LmWorkload(config, per_replica_batch)

    mp_eff = 0.95 if mp_ways > 1 else 1.0
    compute = device.compute_time(
        (wl.fw_flops() + wl.bw_flops()) / mp_ways) / mp_eff

    mp_comm = 0.0
    if mp_ways > 1:
        ar_mp = AllreduceModel(link=node.intra_node, host=host,
                               workers=mp_ways)
        act_bytes = wl.activation_boundary_bytes()
        mp_comm = 0.3 * config.layers * 4 * ar_mp.time(act_bytes)

    ar_dp = AllreduceModel(link=cluster.network, host=host, workers=dp_ways,
                           straggler_per_worker=STRAGGLER_PER_WORKER)
    grad_bytes = wl.param_bytes / mp_ways
    if zero_partitioning:
        grad_bytes *= 1.5  # reduce-scatter + parameter allgather traffic
    dp_comm = ar_dp.time(grad_bytes) if dp_ways > 1 else 0.0
    if phased_exchange:
        # phased groups hide the volume term behind ~2/3 of the backward,
        # but the per-call straggle is not overlappable
        dp_comm = max(ar_dp.straggle if dp_ways > 1 else 0.0,
                      dp_comm - (2.0 / 3.0) * compute)

    iter_time = compute + mp_comm + dp_comm
    return HybridResult(iteration_time=iter_time, compute_time=compute,
                        mp_comm_time=mp_comm, dp_comm_time=dp_comm,
                        num_gpus=num_gpus, mp_ways=mp_ways, dp_ways=dp_ways,
                        global_batch=per_replica_batch * dp_ways)


# ---------------------------------------------------------------------------
# Table V: cost/performance of DP scaling vs DP-KARMA on CNNs
# ---------------------------------------------------------------------------

@dataclass
class CostPerfPoint:
    """One Table V row cell."""

    global_batch: int
    num_gpus: int
    samples_per_sec: float
    cost_per_perf: float  # GPUs / throughput, normalized by caller


# CNN gradient exchanges are ~2 orders of magnitude smaller than the LM
# ones, so their per-worker tail cost is proportionally smaller; calibrated
# to Table V's gentle $/P growth (1.04-1.17 over 100 -> 600 GPUs)
CNN_STRAGGLER_PER_WORKER = 1e-4


def dp_scaling_cnn(iter_compute_time: float, param_bytes: int,
                   per_gpu_batch: int, num_gpus: int,
                   cluster: Optional[ClusterSpec] = None) -> CostPerfPoint:
    """Classic data parallelism: fixed per-GPU batch, more GPUs.

    Iteration time = in-core compute + the unhidden share of the gradient
    allreduce (phased overlap hides up to half of the volume term behind
    backward; the per-worker straggle is not overlappable).
    """
    cluster = cluster or abci_cluster()
    ar = AllreduceModel(link=cluster.network, host=cluster.node.host,
                        workers=num_gpus,
                        straggler_per_worker=CNN_STRAGGLER_PER_WORKER)
    comm = ar.time(param_bytes)
    hidden = min(comm - ar.straggle, 0.5 * iter_compute_time)
    iter_time = iter_compute_time + comm - max(0.0, hidden)
    throughput = per_gpu_batch * num_gpus / iter_time
    return CostPerfPoint(global_batch=per_gpu_batch * num_gpus,
                         num_gpus=num_gpus, samples_per_sec=throughput,
                         cost_per_perf=num_gpus / throughput)


def dp_karma_cnn(karma_iter_time: float, per_gpu_batch: int,
                 param_bytes: int, num_gpus: int,
                 cluster: Optional[ClusterSpec] = None) -> CostPerfPoint:
    """DP-KARMA: fixed GPU count, the per-GPU batch grows out-of-core.

    The phased host-side exchange + CPU update overlap with the (longer)
    out-of-core iteration, so only the unhidden remainder counts.
    """
    cluster = cluster or abci_cluster()
    ar = AllreduceModel(link=cluster.network, host=cluster.node.host,
                        workers=num_gpus,
                        straggler_per_worker=CNN_STRAGGLER_PER_WORKER)
    comm = ar.time(param_bytes)
    # the longer out-of-core iteration hides more of the exchange, and the
    # straggle amortizes over a larger global batch
    hidden = min(comm - ar.straggle, 0.8 * karma_iter_time)
    iter_time = karma_iter_time + comm - max(0.0, hidden)
    throughput = per_gpu_batch * num_gpus / iter_time
    return CostPerfPoint(global_batch=per_gpu_batch * num_gpus,
                         num_gpus=num_gpus, samples_per_sec=throughput,
                         cost_per_perf=num_gpus / throughput)
