"""Collective-communication cost models (ring allreduce, phased exchange).

Data-parallel KARMA exchanges gradients **on the host** (the blocks were
swapped out before the exchange, Fig. 3 step 4), in *phases*: finished
blocks from the end of the model start their allreduce without waiting for
the rest (the layer-grouping model of Shi et al. [36]).  The simulator
prices each phase with the classic alpha-beta ring model, bounded by host
memory bandwidth since the reduction arithmetic runs on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hardware.spec import HostSpec, LinkSpec


@dataclass(frozen=True)
class AllreduceModel:
    """Ring allreduce over ``workers`` endpoints on ``link``.

    time = 2 (N-1) alpha + 2 (N-1)/N * V / min(link BW, host BW / 2)

    The host-bandwidth term reflects CPU-side reduction: every byte is read
    and written once per reduce step.
    """

    link: LinkSpec
    host: HostSpec
    workers: int
    software_latency: float = 10e-6  # per-step software overhead
    straggler_per_worker: float = 0.0  # per-call jitter/straggler cost

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def effective_bandwidth(self) -> float:
        return min(self.link.bandwidth, self.host.mem_bandwidth / 2.0)

    @property
    def straggle(self) -> float:
        """Synchronization jitter paid once per collective call.

        The paper observes that "increasing the numbers of GPUs also
        increases the communication cost" and reports NCCL instability
        beyond 1,000 GPUs (§III-H); a per-worker straggler coefficient is
        the standard way to model that loss.  KARMA amortizes it over far
        fewer, larger iterations — the paper's stated reason DP-KARMA wins
        the 2,048-GPU parity comparison.
        """
        return self.straggler_per_worker * max(0, self.workers - 1)

    def time(self, nbytes: float) -> float:
        """Seconds to allreduce ``nbytes`` across all workers."""
        n = self.workers
        if n == 1 or nbytes <= 0:
            return 0.0
        alpha = self.link.latency + self.software_latency
        steps = 2 * (n - 1)
        volume = 2.0 * (n - 1) / n * nbytes
        return steps * alpha + volume / self.effective_bandwidth \
            + self.straggle

    def reduce_scatter_time(self, nbytes: float) -> float:
        """Half an allreduce: used by the ZeRO-style exchange."""
        n = self.workers
        if n == 1 or nbytes <= 0:
            return 0.0
        alpha = self.link.latency + self.software_latency
        return (n - 1) * alpha + ((n - 1) / n) * nbytes \
            / self.effective_bandwidth + 0.5 * self.straggle

    def allgather_time(self, nbytes: float) -> float:
        return self.reduce_scatter_time(nbytes)


def phased_groups(block_bytes: Sequence[int],
                  target_group_bytes: int) -> List[List[int]]:
    """Group consecutive blocks for the phased gradient exchange.

    Small gradients are merged until the group reaches the target size
    (Shi et al.'s MG-WFBP-style merging), starting from the **end** of the
    model — the first gradients ready in the backward phase.  Returns
    groups of block indices in exchange order (descending block index).
    """
    if target_group_bytes <= 0:
        raise ValueError("target_group_bytes must be positive")
    groups: List[List[int]] = []
    cur: List[int] = []
    acc = 0
    for b in range(len(block_bytes) - 1, -1, -1):
        cur.append(b)
        acc += int(block_bytes[b])
        if acc >= target_group_bytes:
            groups.append(cur)
            cur, acc = [], 0
    if cur:
        groups.append(cur)
    return groups


def flat_exchange_time(model: AllreduceModel, total_bytes: int) -> float:
    """Single bulk allreduce of the whole gradient (the unphased baseline)."""
    return model.time(total_bytes)
