"""Per-resource stall attribution — the sim-vs-real validation format.

The paper's Fig. 6 argues KARMA by its *stall profile*: how long the GPU
sits idle before each backward, and which resource it was waiting on.
The simulator predicts that profile; the asynchronous runtime measures
it.  This module defines the one format both sides emit —
:class:`StallProfile` — so ``python -m repro validate`` can diff a
prediction against a measurement per resource:

* ``h2d`` / ``d2h`` / ``s2d`` / ``d2s`` — GPU idle time whose binding
  dependency was a transfer on that link;
* ``gpu`` — idle time bound by another GPU op (serialization bubbles);
* ``memory`` — idle time spent waiting on pool capacity (the simulator's
  ledger delay; the runtime's admission backpressure);
* ``other`` — idle the attribution cannot explain (runtime overhead).

:func:`stall_profile` derives the profile from a simulated schedule by
splitting each GPU idle gap into its dependency-bound prefix (attributed
to the latest-finishing dependency's resource) and its ledger-bound
remainder (attributed to ``memory``).  The runtime builds the same
structure from measured fence and admission waits
(:meth:`repro.runtime.async_executor.RuntimeTrace.stall_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, cast

from .engine import SimOp, SimResult

GPU = "gpu"
MEMORY = "memory"
OTHER = "other"

#: Gap shorter than this is float noise, not a stall.
_EPS = 1e-15


@dataclass
class StallProfile:
    """Makespan, GPU busy time, and GPU idle time attributed per resource.

    ``source`` names where the numbers came from (``"simulated"`` or
    ``"measured"``); fractions are makespan-normalized so profiles with
    different time scales (modeled seconds vs emulated wall-clock)
    compare directly.
    """

    makespan: float
    gpu_busy: float
    stalls: Dict[str, float] = field(default_factory=dict)
    source: str = "simulated"

    @property
    def total_stall(self) -> float:
        return sum(self.stalls.values())

    def fraction(self, resource: str) -> float:
        """Stalled fraction of the makespan attributed to ``resource``."""
        if self.makespan <= 0:
            return 0.0
        return self.stalls.get(resource, 0.0) / self.makespan

    def fractions(self) -> Dict[str, float]:
        """All per-resource stall fractions (resource -> fraction)."""
        return {r: self.fraction(r) for r in sorted(self.stalls)}

    def occupancy(self) -> float:
        """GPU busy fraction of the makespan."""
        if self.makespan <= 0:
            return 1.0
        return self.gpu_busy / self.makespan

    def add(self, resource: str, seconds: float) -> None:
        """Accumulate ``seconds`` of GPU idle attributed to ``resource``."""
        if seconds > _EPS:
            self.stalls[resource] = self.stalls.get(resource, 0.0) + seconds


def stall_profile(ops: Sequence[SimOp], sim: SimResult,
                  source: str = "simulated") -> StallProfile:
    """Attribute every GPU idle gap of a simulated schedule to a resource.

    Walks the GPU ops in start order.  For each gap between consecutive
    GPU ops, the portion up to the next op's ready time is charged to the
    resource of its latest-finishing dependency (the op the GPU was
    actually waiting for); any start delay past both the ready time and
    the previous finish is the memory ledger refusing the op's acquire —
    charged to ``memory``.
    """
    by_id = {op.op_id: op for op in ops}
    profile = StallProfile(makespan=sim.makespan,
                           gpu_busy=sim.resource_busy.get(GPU, 0.0),
                           source=source)
    gpu_ops = sim.resource_timings(GPU)
    prev_finish: Optional[float] = None
    for t in gpu_ops:
        if prev_finish is not None and t.start > prev_finish + _EPS:
            dep_bound = min(t.start, max(t.ready, prev_finish))
            profile.add(_binding_resource(t, by_id, sim),
                        dep_bound - prev_finish)
            profile.add(MEMORY, t.start - dep_bound)
        prev_finish = t.finish
    return profile


def _binding_resource(timing, by_id: Dict[int, SimOp],
                      sim: SimResult) -> str:
    """The resource of the dependency that finished last before ``timing``.

    Falls back to ``other`` when the op has no dependency that explains
    the wait (a pure resource-order artifact).
    """
    best_finish = -1.0
    best_resource = OTHER
    for dep in timing.op.deps:
        dep_t = sim.timings.get(dep)
        if dep_t is None:
            continue
        if dep_t.finish > best_finish:
            best_finish = dep_t.finish
            best_resource = by_id[dep].resource
    if best_finish < timing.ready - _EPS:
        return OTHER
    return best_resource


def stall_intervals(ops: Sequence[SimOp],
                    sim: SimResult) -> Dict[str, List[Dict[str, object]]]:
    """Every GPU idle interval of a simulated schedule, per resource.

    The same gap split as :func:`stall_profile` — the dependency-bound
    prefix goes to the binding dependency's resource, the ledger-bound
    remainder to ``memory`` — but kept as *intervals* instead of summed:
    each carries its ``start``/``end``/``width`` (modeled seconds) and
    the label of the GPU op that was waiting, so a validation diff can
    say *which* backward ate the stall, not just how much stalled.
    """
    by_id = {op.op_id: op for op in ops}
    out: Dict[str, List[Dict[str, object]]] = {}

    def emit(resource: str, start: float, end: float, op_label: str) -> None:
        if end - start > _EPS:
            out.setdefault(resource, []).append(
                {"start": start, "end": end, "width": end - start,
                 "op": op_label})

    prev_finish: Optional[float] = None
    for t in sim.resource_timings(GPU):
        if prev_finish is not None and t.start > prev_finish + _EPS:
            label = t.op.label or f"op{t.op.op_id}"
            dep_bound = min(t.start, max(t.ready, prev_finish))
            emit(_binding_resource(t, by_id, sim), prev_finish, dep_bound,
                 label)
            emit(MEMORY, dep_bound, t.start, label)
        prev_finish = t.finish
    return out


def top_stall_intervals(ops: Sequence[SimOp], sim: SimResult,
                        k: int = 3) -> Dict[str, List[Dict[str, object]]]:
    """The ``k`` widest stall intervals per resource, widest first.

    Ties break on earlier start so the selection is deterministic.
    """
    def widest_first(iv: Dict[str, object]) -> "Tuple[float, float]":
        return (-cast(float, iv["width"]), cast(float, iv["start"]))

    return {resource: sorted(intervals, key=widest_first)[:k]
            for resource, intervals in stall_intervals(ops, sim).items()}


def compare_profiles(predicted: StallProfile,
                     measured: StallProfile) -> List[Dict[str, object]]:
    """Per-resource rows diffing two profiles' stall fractions.

    Returns one row per resource seen in either profile, ordered by the
    larger predicted-or-measured fraction, plus an ``occupancy`` row —
    ready for :func:`repro.eval.reporting.render_table`.
    """
    resources = sorted(set(predicted.stalls) | set(measured.stalls),
                       key=lambda r: -max(predicted.fraction(r),
                                          measured.fraction(r)))
    rows: List[Dict[str, object]] = []
    for r in resources:
        p, m = predicted.fraction(r), measured.fraction(r)
        rows.append({"resource": r, "predicted": round(p, 4),
                     "measured": round(m, 4),
                     "abs_error": round(abs(p - m), 4)})
    p, m = predicted.occupancy(), measured.occupancy()
    rows.append({"resource": "gpu-occupancy", "predicted": round(p, 4),
                 "measured": round(m, 4), "abs_error": round(abs(p - m), 4)})
    return rows
