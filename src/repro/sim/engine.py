"""Deterministic event-heap engine for schedule simulation (part of
:mod:`repro.sim`).

Models exactly what the KARMA runtime has on real hardware:

* **exclusive FIFO resources** — the GPU compute stream, each direction of
  the host link (duplex PCIe/NVLink = two resources), the storage links,
  host CPU cores, and the network.  Ops issued to a resource run in issue
  order, like CUDA stream semantics.
* **dependencies** — an op starts only after all its dependency ops finish
  (cudaStreamWaitEvent semantics across streams).
* **a near-memory ledger** — an op may acquire bytes at start (blocking
  until the ledger has room) and release bytes when it finishes; this is
  how capacity limits delay eager swap-ins.

The engine is the objective function of the blocking/portfolio search, so
it is built to be *fast*, not just correct:

* dependency satisfaction is tracked with per-op **indegree counters and
  reverse-edge wakeups** — scheduling an op touches only its dependents,
  never the whole queue set;
* unledgered simulations (no ``memory_capacity``, or no op acquires
  memory — every distributed pipeline sim) run on a **priority queue of
  ready resource heads keyed by earliest feasible start**: each op is
  pushed exactly once, when it reaches its queue head with all deps
  scheduled, and popped in chronological order;
* ledgered simulations keep the seed engine's greedy pass order (the
  ledger makes timing order-*dependent*, and bit-identical results with
  :mod:`repro.sim.reference_engine` are a hard invariant) but visit only
  resources whose blocking condition may have changed since the last
  visit;
* the :class:`_MemoryLedger` is **incremental**: the event timeline lives
  in sorted parallel arrays with a lazily repaired prefix-usage /
  suffix-maximum pair, so ``record`` is an :math:`O(\\log n)` bisect plus
  a (C-speed) insert and ``earliest_fit`` is an :math:`O(\\log n)` binary
  search after an amortized-:math:`O(1)` repair — the seed engine rebuilt
  both arrays from scratch on *every* acquire.

The engine is fully deterministic (no randomness, no wall clock); one
training iteration of a 64-block plan is a few hundred events, and the
portfolio search can afford tens of thousands of calls per plan.
:class:`ScheduleBuilder` is the shared op-emission front end used by the
plan compilers (:mod:`repro.sim.trainer_sim`,
:mod:`repro.sim.distributed_sim`).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import TRACER


@dataclass(slots=True)
class SimOp:
    """One schedulable operation."""

    op_id: int
    resource: str
    duration: float
    deps: Tuple[int, ...] = ()
    mem_acquire: int = 0     # bytes claimed at start
    mem_release: int = 0     # bytes released at finish
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.label or self.op_id}: negative duration")
        if self.mem_acquire < 0 or self.mem_release < 0:
            raise ValueError("memory amounts must be non-negative")


@dataclass(slots=True)
class OpTiming:
    """Result record for one op."""

    op: SimOp
    start: float
    finish: float
    ready: float  # when deps were satisfied (start - ready = stall)

    @property
    def stall(self) -> float:
        return max(0.0, self.start - self.ready)


class SimulationDeadlock(RuntimeError):
    """Raised when no resource head can make progress (bad launch order)."""


@dataclass
class SimResult:
    """Timings + per-resource utilization of one simulated schedule."""

    timings: Dict[int, OpTiming]
    makespan: float
    resource_busy: Dict[str, float]
    resource_span: Dict[str, Tuple[float, float]]
    # per-resource timings sorted by (start, finish), built lazily and
    # reused by idle_gaps + the occupancy/stall reporting in trainer_sim
    _by_resource: Dict[str, List[OpTiming]] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def timing(self, op_id: int) -> OpTiming:
        return self.timings[op_id]

    def occupancy(self, resource: str = "gpu") -> float:
        """Busy fraction of ``resource`` over its active span (Eq. 1)."""
        busy = self.resource_busy.get(resource, 0.0)
        span = self.resource_span.get(resource)
        if span is None or span[1] <= span[0]:
            return 1.0
        return busy / (span[1] - span[0])

    def resource_timings(self, resource: str) -> List[OpTiming]:
        """Timings of every op on ``resource``, sorted by (start, finish).

        Computed once per resource and cached — both :meth:`idle_gaps` and
        the stall attribution in :func:`repro.sim.trainer_sim.simulate_plan`
        walk this list, and re-sorting it per call dominated occupancy
        reporting on large plans.
        """
        cached = self._by_resource.get(resource)
        if cached is None:
            cached = sorted((t for t in self.timings.values()
                             if t.op.resource == resource),
                            key=lambda t: (t.start, t.finish))
            self._by_resource[resource] = cached
        return cached

    def idle_gaps(self, resource: str = "gpu") -> List[Tuple[float, float]]:
        """Gaps between consecutive ops on ``resource`` (the GPU stalls)."""
        spans = self.resource_timings(resource)
        gaps: List[Tuple[float, float]] = []
        for t0, t1 in zip(spans, spans[1:]):
            if t1.start > t0.finish + 1e-15:
                gaps.append((t0.finish, t1.start))
        return gaps


def summarize(ops: Sequence[SimOp], timings: Dict[int, OpTiming]) -> SimResult:
    """Fold per-op timings into a :class:`SimResult`.

    Accumulates in canonical op order so float summary values are
    identical whichever engine produced ``timings``.
    """
    makespan = 0.0
    busy: Dict[str, float] = {}
    span: Dict[str, Tuple[float, float]] = {}
    for op in ops:
        t = timings[op.op_id]
        if t.finish > makespan:
            makespan = t.finish
        r = op.resource
        busy[r] = busy.get(r, 0.0) + op.duration
        lo, hi = span.get(r, (math.inf, -math.inf))
        span[r] = (min(lo, t.start), max(hi, t.finish))
    return SimResult(timings=timings, makespan=makespan,
                     resource_busy=busy, resource_span=span)


# ---------------------------------------------------------------------------
# Schedule building
# ---------------------------------------------------------------------------

#: A dependency handed to :meth:`ScheduleBuilder.emit`: either a concrete op
#: id (int) or the symbolic key of another emitted op, resolved at build
#: time against the *final* key map (so a key re-emitted for a chained
#: transfer resolves to its last hop).
DepSpec = Union[int, Hashable]


class ScheduleBuilder:
    """Column-wise accumulator for :class:`SimOp` streams.

    The plan compilers used to assemble ad-hoc spec tuples plus a local
    ``ids`` dict and a trailing resolution pass each; this builder owns
    that protocol once: ops are appended to preallocated parallel columns,
    symbolic dependency keys are resolved lazily in :meth:`build` against
    the final key map (re-emitting a key points it at the newest op — the
    "final hop" rule chained swaps rely on), and unresolvable symbolic
    deps are silently dropped unless the op was emitted with
    ``require_deps=True``, in which case :meth:`build` raises
    :class:`SimulationDeadlock`.
    """

    def __init__(self) -> None:
        self._resources: List[str] = []
        self._durations: List[float] = []
        self._deps: List[Tuple[DepSpec, ...]] = []
        self._acquires: List[int] = []
        self._releases: List[int] = []
        self._labels: List[str] = []
        self._require: List[bool] = []
        self._ids: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def id_of(self, key: Hashable) -> int:
        """The op id a symbolic key currently resolves to."""
        return self._ids[key]

    def keys(self) -> List[Hashable]:
        return list(self._ids)

    def emit(self, resource: str, duration: float, *,
             key: Optional[Hashable] = None,
             deps: Sequence[DepSpec] = (),
             acquire: int = 0, release: int = 0,
             label: str = "", require_deps: bool = False) -> int:
        """Append one op; returns its id (dense, in emission order)."""
        op_id = len(self._resources)
        self._resources.append(resource)
        self._durations.append(duration)
        self._deps.append(tuple(deps))
        self._acquires.append(acquire)
        self._releases.append(release)
        self._labels.append(label)
        self._require.append(require_deps)
        if key is not None:
            self._ids[key] = op_id
        return op_id

    def build(self) -> List[SimOp]:
        """Materialize the accumulated columns as a :class:`SimOp` list."""
        ids = self._ids
        ops: List[SimOp] = []
        for op_id in range(len(self._resources)):
            resolved: List[int] = []
            for d in self._deps[op_id]:
                if isinstance(d, int):
                    resolved.append(d)
                elif d in ids:
                    resolved.append(ids[d])
                elif self._require[op_id]:
                    raise SimulationDeadlock(
                        f"op {self._labels[op_id] or op_id} depends on "
                        f"never-emitted key {d!r}")
            ops.append(SimOp(op_id=op_id, resource=self._resources[op_id],
                             duration=self._durations[op_id],
                             deps=tuple(resolved),
                             mem_acquire=self._acquires[op_id],
                             mem_release=self._releases[op_id],
                             label=self._labels[op_id]))
        return ops


# ---------------------------------------------------------------------------
# Incremental memory ledger
# ---------------------------------------------------------------------------

class _MemoryLedger:
    """Incremental capacity ledger over scheduled acquire/release events.

    An op may hold bytes across a window that *other* ops close (e.g. a
    forward op acquires a stash that the matching backward op releases), so
    fitting a new acquire at time ``t`` must respect every already-scheduled
    usage peak at or after ``t`` — a suffix-maximum query over the event
    timeline.  Conservative by construction: an acquire is only placed where
    it can never retroactively oversubscribe the capacity.

    State is four parallel arrays over *unique* event times:

    * ``_times``  — sorted event times;
    * ``_deltas`` — net byte delta at each time (same-instant events merge);
    * ``_cums``   — prefix sums of ``_deltas`` (usage right after event i);
    * ``_sufmax`` — ``max(_cums[i:], 0)``, one sentinel convention: index
      ``n`` holds 0 (usage after the last event never blocks a fit, and a
      budget is never negative, so clamping at 0 is decision-equivalent to
      the true suffix maximum).

    ``record`` merges or bisect-inserts and marks the arrays dirty from
    the touched index; ``earliest_fit`` repairs lazily — forward from the
    dirty index for ``_cums``, backward with early termination for
    ``_sufmax`` — then answers with one binary search over the
    non-increasing ``_sufmax``.  Events land at or near the schedule
    frontier, so repairs touch an amortized O(1) suffix of the arrays.
    """

    __slots__ = ("capacity", "repairs", "_times", "_deltas", "_cums",
                 "_sufmax", "_dirty")

    def __init__(self, capacity: Optional[int]):
        self.capacity = capacity
        self.repairs = 0                # lazy-repair count (observability)
        self._times: List[float] = []
        self._deltas: List[int] = []
        self._cums: List[int] = []
        self._sufmax: List[int] = [0]   # index n sentinel
        self._dirty = 0                 # arrays valid on [0, _dirty)

    def record(self, time: float, delta: int) -> None:
        if self.capacity is None or delta == 0:
            return
        times = self._times
        i = bisect_left(times, time)
        if i < len(times) and times[i] == time:
            self._deltas[i] += delta
        else:
            times.insert(i, time)
            self._deltas.insert(i, delta)
            self._cums.insert(i, 0)
            self._sufmax.insert(i, 0)
        if i < self._dirty:
            self._dirty = i

    def _repair(self) -> None:
        self.repairs += 1
        n = len(self._times)
        i = self._dirty
        cums, deltas, sufmax = self._cums, self._deltas, self._sufmax
        run = cums[i - 1] if i > 0 else 0
        for j in range(i, n):
            run += deltas[j]
            cums[j] = run
        peak = 0                        # sufmax[n] sentinel
        for j in range(n - 1, i - 1, -1):
            c = cums[j]
            if c > peak:
                peak = c
            sufmax[j] = peak
        # propagate below the dirty point until a value is unchanged
        # (sufmax[j] = max(cums[j], sufmax[j+1]) and cums[<i] are intact)
        for j in range(i - 1, -1, -1):
            c = cums[j]
            v = c if c > peak else peak
            if v == sufmax[j]:
                break
            sufmax[j] = v
            peak = v
        self._dirty = n

    def earliest_fit(self, need: int, not_before: float) -> Optional[float]:
        """Earliest t >= not_before such that usage(t') + need <= capacity
        for every t' >= t under the currently scheduled events.

        Returns None when no such time exists *yet* — the caller should
        defer the op until further releases have been scheduled.
        """
        if self.capacity is None or need == 0:
            return not_before
        if need > self.capacity:
            raise SimulationDeadlock(
                f"op needs {need} B > ledger capacity {self.capacity} B")
        times = self._times
        n = len(times)
        if n == 0:
            return not_before
        if self._dirty < n:
            self._repair()
        cums, sufmax = self._cums, self._sufmax
        budget = self.capacity - need
        i0 = bisect_right(times, not_before)
        usage_at = cums[i0 - 1] if i0 > 0 else 0
        if usage_at <= budget and sufmax[i0] <= budget:
            return not_before
        # otherwise advance to the first later event time whose suffix
        # peak fits (releases shrink peaks; sufmax is non-increasing, so
        # the frontier is a plain binary search)
        lo, hi = i0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if sufmax[mid] <= budget:
                hi = mid
            else:
                lo = mid + 1
        if lo < n:
            return max(not_before, times[lo])
        # cannot fit against the *currently scheduled* events; the caller
        # may retry after more releases are scheduled
        return None


# ---------------------------------------------------------------------------
# Structure-of-arrays schedule + vectorized (wave) engine
# ---------------------------------------------------------------------------

class OpTable:
    """Structure-of-arrays view of one schedule.

    The same information as a ``List[SimOp]``, transposed into numpy
    columns: per-op durations, dense resource ids, acquire/release byte
    counts, and the dependency lists in CSR form (``dep_indptr`` /
    ``dep_indices`` over dense op positions).  This is the input format
    of :func:`simulate_table` — the batched ready-set engine — and the
    output format of the plan compilers' vectorized binding path, which
    fills the columns with array gathers instead of constructing one
    :class:`SimOp` at a time.

    Tables are position-indexed: op ``i`` is the ``i``-th op in issue
    order, and ``dep_indices`` holds positions, not ``op_id`` values.
    :meth:`from_ops` remaps arbitrary ``op_id`` schedules; :meth:`to_ops`
    materializes (and caches) the equivalent :class:`SimOp` list, keeping
    the original ids so results are keyed identically.
    """

    __slots__ = ("n", "resources", "resource_ids", "durations", "acquires",
                 "releases", "labels", "dep_indptr", "dep_indices", "_ops")

    def __init__(self, resources: Sequence[str],
                 resource_ids: np.ndarray,
                 durations: np.ndarray,
                 acquires: np.ndarray,
                 releases: np.ndarray,
                 dep_indptr: np.ndarray,
                 dep_indices: np.ndarray,
                 labels: Optional[Sequence[str]] = None):
        self.resources = list(resources)
        self.resource_ids = np.ascontiguousarray(resource_ids, dtype=np.int64)
        self.durations = np.ascontiguousarray(durations, dtype=np.float64)
        self.acquires = np.ascontiguousarray(acquires, dtype=np.int64)
        self.releases = np.ascontiguousarray(releases, dtype=np.int64)
        self.dep_indptr = np.ascontiguousarray(dep_indptr, dtype=np.int64)
        self.dep_indices = np.ascontiguousarray(dep_indices, dtype=np.int64)
        self.labels = list(labels) if labels is not None else None
        n = self.n = len(self.durations)
        if not (len(self.resource_ids) == len(self.acquires)
                == len(self.releases) == n and len(self.dep_indptr) == n + 1):
            raise ValueError("OpTable column lengths disagree")
        if n and (self.durations < 0).any():
            raise ValueError("negative duration in op table")
        if n and ((self.acquires < 0).any() or (self.releases < 0).any()):
            raise ValueError("memory amounts must be non-negative")
        if len(self.dep_indices) and (
                (self.dep_indices < 0).any() or (self.dep_indices >= n).any()):
            raise ValueError("dependency position out of range")
        self._ops: Optional[List[SimOp]] = None

    @classmethod
    def from_ops(cls, ops: Sequence[SimOp]) -> "OpTable":
        """Transpose a :class:`SimOp` schedule into columns.

        Dependencies are remapped from ``op_id`` values to dense
        positions (issue order), exactly as :class:`_Prepared` does; the
        original op objects are kept so :meth:`to_ops` round-trips.
        """
        n = len(ops)
        idx: Dict[int, int] = {}
        for i, op in enumerate(ops):
            if op.op_id in idx:
                raise ValueError("duplicate op ids")
            idx[op.op_id] = i
        resources: List[str] = []
        rindex: Dict[str, int] = {}
        resource_ids = np.zeros(n, dtype=np.int64)
        durations = np.zeros(n, dtype=np.float64)
        acquires = np.zeros(n, dtype=np.int64)
        releases = np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        dep_flat: List[int] = []
        labels: List[str] = []
        for i, op in enumerate(ops):
            ri = rindex.get(op.resource)
            if ri is None:
                ri = rindex[op.resource] = len(resources)
                resources.append(op.resource)
            resource_ids[i] = ri
            durations[i] = op.duration
            acquires[i] = op.mem_acquire
            releases[i] = op.mem_release
            labels.append(op.label)
            try:
                dep_flat.extend(idx[d] for d in op.deps)
            except KeyError as exc:
                raise ValueError(f"op {op.label or op.op_id} depends on "
                                 f"unknown op {exc.args[0]}") from exc
            indptr[i + 1] = len(dep_flat)
        table = cls(resources, resource_ids, durations, acquires, releases,
                    indptr, np.asarray(dep_flat, dtype=np.int64), labels)
        table._ops = list(ops)
        return table

    def to_ops(self) -> List[SimOp]:
        """The equivalent :class:`SimOp` list (cached after first call)."""
        if self._ops is None:
            indptr, indices = self.dep_indptr, self.dep_indices
            self._ops = [
                SimOp(op_id=i,
                      resource=self.resources[self.resource_ids[i]],
                      duration=float(self.durations[i]),
                      deps=tuple(int(d) for d in
                                 indices[indptr[i]:indptr[i + 1]]),
                      mem_acquire=int(self.acquires[i]),
                      mem_release=int(self.releases[i]),
                      label=self.labels[i] if self.labels else "")
                for i in range(self.n)
            ]
        return self._ops

    def label_of(self, i: int) -> str:
        if self.labels and self.labels[i]:
            return self.labels[i]
        return str(i)

    @classmethod
    def concat(cls, tables: Sequence["OpTable"]) -> "OpTable":
        """Disjoint union of several tables as one table.

        No edges cross the inputs and every input keeps its own FIFO
        queues: resource names are namespaced per input (``"0:gpu"``,
        ``"1:gpu"``, ...), so the merged schedule prices each input
        exactly as it would run alone.  This is the batching primitive
        for portfolio pricing — merge the candidates, run one wave pass,
        read per-candidate results back out of contiguous row ranges.
        """
        if not tables:
            raise ValueError("concat of zero tables")
        resources: List[str] = []
        rids: List[np.ndarray] = []
        durs: List[np.ndarray] = []
        acqs: List[np.ndarray] = []
        rels: List[np.ndarray] = []
        indptr: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        deps: List[np.ndarray] = []
        labels: List[str] = []
        op_off = res_off = dep_off = 0
        for t, table in enumerate(tables):
            resources.extend(f"{t}:{name}" for name in table.resources)
            rids.append(table.resource_ids + res_off)
            durs.append(table.durations)
            acqs.append(table.acquires)
            rels.append(table.releases)
            indptr.append(table.dep_indptr[1:] + dep_off)
            deps.append(table.dep_indices + op_off)
            labels.extend(table.label_of(i) for i in range(table.n))
            op_off += table.n
            res_off += len(table.resources)
            dep_off += int(table.dep_indptr[-1])
        return cls(resources, np.concatenate(rids), np.concatenate(durs),
                   np.concatenate(acqs), np.concatenate(rels),
                   np.concatenate(indptr), np.concatenate(deps), labels)


def _ragged_gather(starts: np.ndarray, counts: np.ndarray,
                   total: int) -> np.ndarray:
    """Positions selecting CSR rows ``(starts, counts)`` from a flat
    indices array: for each row r, ``starts[r] + (0..counts[r]-1)``."""
    offsets = np.cumsum(counts) - counts
    return (np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts))


def _fifo_pred(table: OpTable) -> np.ndarray:
    """Each op's predecessor on its own resource queue (-1 for heads).

    A stable argsort groups ops by resource id while preserving issue
    order inside each group, so each op's queue predecessor is simply the
    previous member of its group — no per-resource scan.
    """
    n = table.n
    pred = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order = np.argsort(table.resource_ids, kind="stable")
        grouped = table.resource_ids[order]
        same = grouped[1:] == grouped[:-1]
        pred[order[1:][same]] = order[:-1][same]
    return pred


def _graph_waves(table: OpTable,
                 pred: np.ndarray) -> List[np.ndarray]:
    """Topological waves of the dependency + FIFO edge set.

    Kahn's algorithm, vectorized: each wave is the array of op positions
    whose in-degree drops to zero together.  Wave membership is a pure
    function of the graph — durations never move an op between waves —
    so one peel serves every duration variant of the same structure.
    Raises :class:`SimulationDeadlock` if a cycle blocks progress.
    """
    n = table.n
    dep_indptr, dep_indices = table.dep_indptr, table.dep_indices
    indeg = (dep_indptr[1:] - dep_indptr[:-1]) + (pred >= 0)

    # dependents CSR over the combined edge set (dep edges + FIFO edges)
    has_pred = np.flatnonzero(pred >= 0)
    src = np.concatenate([dep_indices, pred[has_pred]])
    dst = np.concatenate([
        np.repeat(np.arange(n, dtype=np.int64),
                  dep_indptr[1:] - dep_indptr[:-1]),
        has_pred,
    ])
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    dst_sorted = dst[order]
    out_indptr = np.searchsorted(src_sorted, np.arange(n + 1))

    waves: List[np.ndarray] = []
    scheduled = 0
    wave = np.flatnonzero(indeg == 0)
    while wave.size:
        waves.append(wave)
        scheduled += int(wave.size)

        # retire the wave: decrement dependents, collect the next wave
        row_start = out_indptr[wave]
        counts = out_indptr[wave + 1] - row_start
        total = int(counts.sum())
        if not total:
            break
        touched = dst_sorted[_ragged_gather(row_start, counts, total)]
        cand, hits = np.unique(touched, return_counts=True)
        indeg[cand] -= hits
        wave = cand[indeg[cand] == 0]

    if scheduled < n:
        stuck = []
        for qi in range(len(table.resources)):
            members = np.flatnonzero(table.resource_ids == qi)
            waiting = members[indeg[members] > 0]
            if waiting.size:
                stuck.append(table.label_of(int(waiting[0])))
        raise SimulationDeadlock(
            f"no progress; blocked resource heads: {stuck}")
    return waves


def _simulate_waves(table: OpTable) -> SimResult:
    """Batched ready-set advancement over the op-table columns.

    Without a ledger an op's start is a pure function of its dependency
    finishes and its FIFO predecessor's finish, so the schedule is the
    unique fixpoint of ``start = max(max dep finish, queue-pred finish)``
    — computable in topological *waves* (Kahn's algorithm over the
    dependency edges plus the implicit queue-predecessor edges), one
    vectorized step per wave.  Every per-op float op is a selection
    (``np.maximum``) or the same ``start + duration`` addition the scalar
    engine performs, so results are bit-identical to
    :func:`_simulate_heap` by construction.
    """
    n = table.n
    durations = table.durations
    dep_indptr, dep_indices = table.dep_indptr, table.dep_indices

    pred = _fifo_pred(table)
    waves = _graph_waves(table, pred)

    starts = np.zeros(n, dtype=np.float64)
    finishes = np.zeros(n, dtype=np.float64)
    readies = np.zeros(n, dtype=np.float64)
    for wave in waves:
        # ready = max over dependency finishes (0.0 with no deps);
        # segment-max via reduceat (a selection, so exact) — rows with no
        # deps are skipped and keep ready 0.0
        row_start = dep_indptr[wave]
        counts = dep_indptr[wave + 1] - row_start
        total = int(counts.sum())
        ready = np.zeros(wave.size, dtype=np.float64)
        if total:
            gathered = finishes[dep_indices[
                _ragged_gather(row_start, counts, total)]]
            nz = np.flatnonzero(counts)
            seg_starts = (np.cumsum(counts) - counts)[nz]
            ready[nz] = np.maximum.reduceat(gathered, seg_starts)
            # finishes are >= 0.0, so clamping keeps the same
            # max(0.0, deps...) the scalar engine computes
            np.maximum(ready, 0.0, out=ready)
        pw = pred[wave]
        free = np.where(pw >= 0, finishes[np.maximum(pw, 0)], 0.0)
        start = np.maximum(ready, free)
        finish = start + durations[wave]
        readies[wave] = ready
        starts[wave] = start
        finishes[wave] = finish

    return _finalize_table(table, starts, finishes, readies)


@dataclass(frozen=True)
class PortfolioResult:
    """Dense timings for every duration variant of one table.

    ``starts`` and ``finishes`` are ``(n_ops, n_variants)`` — column
    ``j`` is exactly the schedule :func:`simulate` computes for variant
    ``j``'s durations, float for float.  ``makespans`` is the per-column
    max.  Callers pricing a :meth:`OpTable.concat` portfolio recover
    per-candidate makespans with a segment max
    (``np.maximum.reduceat(finishes, candidate_row_offsets)``) — a
    selection, so still exact.
    """

    starts: np.ndarray
    finishes: np.ndarray
    makespans: np.ndarray


def simulate_portfolio(table: OpTable,
                       durations: np.ndarray) -> PortfolioResult:
    """Price many duration variants of one DAG in a single wave pass.

    ``durations`` has shape ``(n_ops, n_variants)``: column ``j`` is a
    complete duration assignment for the table's ops.  Wave membership
    depends only on the graph, never on durations, so the topological
    peel — the expensive, width-independent part — runs once and the
    timing advance carries all variants as columns of one 2-D array.
    Per-variant results are bit-identical to running :func:`simulate`
    (or :func:`simulate_table`) on each variant alone: every float op is
    a per-column selection or the same ``start + duration`` addition.

    Schedules are priced unledgered (the planner's sweep path); ledger
    placement is order-dependent and has no batched twin — see
    :func:`simulate_table`.
    """
    durations = np.ascontiguousarray(durations, dtype=np.float64)
    if durations.ndim != 2 or durations.shape[0] != table.n:
        raise ValueError(
            f"durations must be (n_ops, n_variants) = ({table.n}, k); "
            f"got {durations.shape}")
    if durations.size and (durations < 0).any():
        raise ValueError("negative duration in portfolio")
    k = durations.shape[1]
    n = table.n
    if n == 0 or k == 0:
        empty = np.zeros((n, k), dtype=np.float64)
        return PortfolioResult(starts=empty, finishes=empty.copy(),
                               makespans=np.zeros(k, dtype=np.float64))

    dep_indptr, dep_indices = table.dep_indptr, table.dep_indices
    pred = _fifo_pred(table)
    waves = _graph_waves(table, pred)

    starts = np.zeros((n, k), dtype=np.float64)
    finishes = np.zeros((n, k), dtype=np.float64)
    for wave in waves:
        row_start = dep_indptr[wave]
        counts = dep_indptr[wave + 1] - row_start
        total = int(counts.sum())
        ready = np.zeros((wave.size, k), dtype=np.float64)
        if total:
            gathered = finishes[dep_indices[
                _ragged_gather(row_start, counts, total)]]
            nz = np.flatnonzero(counts)
            seg_starts = (np.cumsum(counts) - counts)[nz]
            ready[nz] = np.maximum.reduceat(gathered, seg_starts, axis=0)
            np.maximum(ready, 0.0, out=ready)
        pw = pred[wave]
        free = np.where((pw >= 0)[:, None],
                        finishes[np.maximum(pw, 0)], 0.0)
        start = np.maximum(ready, free)
        finish = start + durations[wave]
        starts[wave] = start
        finishes[wave] = finish

    # makespan is a max — a selection — so the per-column reduction is
    # the same float the scalar summary folds to
    return PortfolioResult(starts=starts, finishes=finishes,
                           makespans=finishes.max(axis=0))


def _finalize_table(table: OpTable, starts: np.ndarray, finishes: np.ndarray,
                    readies: np.ndarray) -> SimResult:
    """Fold the dense timing arrays into a :class:`SimResult` with the
    exact float values of :func:`summarize`: per-resource busy sums
    accumulate scalar-sequentially in issue order (numpy sums use pairwise
    summation, which is *not* the same float), and span endpoints are
    selections."""
    ops = table.to_ops()
    timings = {op.op_id: OpTiming(op, float(starts[i]), float(finishes[i]),
                                  float(readies[i]))
               for i, op in enumerate(ops)}
    makespan = 0.0
    busy: Dict[str, float] = {}
    span: Dict[str, Tuple[float, float]] = {}
    rids = table.resource_ids
    for i, op in enumerate(ops):
        f = finishes[i]
        if f > makespan:
            makespan = float(f)
        r = table.resources[rids[i]]
        busy[r] = busy.get(r, 0.0) + op.duration
        lo, hi = span.get(r, (math.inf, -math.inf))
        s = float(starts[i])
        fv = float(f)
        span[r] = (lo if lo < s else s, hi if hi > fv else fv)
    return SimResult(timings=timings, makespan=makespan,
                     resource_busy=busy, resource_span=span)


def simulate_table(table: OpTable,
                   memory_capacity: Optional[int] = None) -> SimResult:
    """Vectorized twin of :func:`simulate` over an :class:`OpTable`.

    Unledgered schedules (no ``memory_capacity``, or no op acquires
    bytes) run on the batched wave engine — numpy columns, one
    vectorized advance per dependency wave.  Ledgered schedules delegate
    to the scalar greedy engine: ledger placement is *order-dependent*
    (an acquire is committed where it can never retroactively
    oversubscribe, so even a schedule whose final peak fits may place
    ops differently under a different visit order), which makes the
    greedy pass order part of the spec — there is no order-free
    vectorization of it that stays bit-identical.

    Results are bit-identical to :func:`simulate` and
    :func:`repro.sim.reference_engine.simulate_reference` on every input;
    the differential suite holds all three to exact float equality.
    """
    if table.n == 0:
        return SimResult(timings={}, makespan=0.0, resource_busy={},
                         resource_span={})
    if memory_capacity is not None and bool(table.acquires.any()):
        return simulate(table.to_ops(), memory_capacity)
    return _simulate_waves(table)


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------

class _Prepared:
    """Dense scheduling state shared by both engine paths.

    Ops are re-indexed to dense positions so every hot-loop lookup is a
    list index, not a dict probe; per-resource FIFO queues hold dense
    indices; ``busy`` (per-resource duration sums, accumulated in op
    order — the float addition order the summary is defined in) is static
    and computed here once.
    """

    __slots__ = ("ops", "n", "resources", "queues", "queue_of_op",
                 "indeg", "dependents", "deps", "durations", "acquires",
                 "releases", "busy")

    def __init__(self, ops: Sequence[SimOp]):
        self.ops = ops
        n = self.n = len(ops)
        dense = True
        for i in range(n):
            if ops[i].op_id != i:
                dense = False
                break
        if dense:
            # ids equal positions: nothing to remap, just range-check deps
            for op in ops:
                for d in op.deps:
                    if d < 0 or d >= n:
                        raise ValueError(
                            f"op {op.label or op.op_id} depends on "
                            f"unknown op {d}")
            deps = [op.deps for op in ops]
        else:
            idx: Dict[int, int] = {}
            for i, op in enumerate(ops):
                if op.op_id in idx:
                    raise ValueError("duplicate op ids")
                idx[op.op_id] = i
            try:
                deps = [tuple(idx[d] for d in op.deps) for op in ops]
            except KeyError as exc:
                bad = exc.args[0]
                who = next(op for op in ops if bad in op.deps)
                raise ValueError(f"op {who.label or who.op_id} depends on "
                                 f"unknown op {bad}") from exc
        self.deps = deps

        queue_index: Dict[str, int] = {}
        resources: List[str] = []
        queues: List[List[int]] = []
        busy: List[float] = []
        queue_of_op = [0] * n
        durations = [0.0] * n
        acquires = [0] * n
        releases = [0] * n
        for i, op in enumerate(ops):
            qi = queue_index.get(op.resource)
            if qi is None:
                qi = len(queues)
                queue_index[op.resource] = qi
                resources.append(op.resource)
                queues.append([])
                busy.append(0.0)
            queues[qi].append(i)
            queue_of_op[i] = qi
            busy[qi] += op.duration
            durations[i] = op.duration
            acquires[i] = op.mem_acquire
            releases[i] = op.mem_release
        self.resources = resources
        self.queues = queues
        self.queue_of_op = queue_of_op
        self.busy = busy
        self.durations = durations
        self.acquires = acquires
        self.releases = releases

        indeg = [0] * n
        dependents: List[List[int]] = [[] for _ in range(n)]
        for i in range(n):
            ds = deps[i]
            indeg[i] = len(ds)
            for d in ds:
                dependents[d].append(i)
        self.indeg = indeg
        self.dependents = dependents

    def stuck_heads(self, heads: List[int]) -> List[str]:
        out = []
        for qi, q in enumerate(self.queues):
            if heads[qi] < len(q):
                op = self.ops[q[heads[qi]]]
                out.append(op.label or str(op.op_id))
        return out

    def finalize(self, starts: List[float], finishes: List[float],
                 readies: List[float]) -> SimResult:
        """Summary from the dense arrays — identical values to
        :func:`summarize`: per-resource busy sums accumulate in op order,
        and FIFO scheduling makes starts/finishes monotone per queue, so
        span endpoints are the first start / last finish."""
        ops = self.ops
        timings = {op.op_id: OpTiming(op, starts[i], finishes[i],
                                      readies[i])
                   for i, op in enumerate(ops)}
        makespan = 0.0
        resource_busy: Dict[str, float] = {}
        span: Dict[str, Tuple[float, float]] = {}
        for qi, q in enumerate(self.queues):
            hi = finishes[q[-1]]
            span[self.resources[qi]] = (starts[q[0]], hi)
            resource_busy[self.resources[qi]] = self.busy[qi]
            if hi > makespan:
                makespan = hi
        return SimResult(timings=timings, makespan=makespan,
                         resource_busy=resource_busy, resource_span=span)


def _simulate_heap(prep: _Prepared,
                   stats: Optional[Dict[str, int]] = None) -> SimResult:
    """Unledgered path: without a memory ledger an op's timing is a pure
    function of its deps and its FIFO predecessor, so a priority queue of
    dep-ready resource heads keyed by earliest feasible start schedules
    every op exactly once, in chronological order.

    ``stats`` (observability, only passed while tracing is enabled)
    receives the event count and the heap's population peak; when it is
    None the loop pays a single local-bool check per event.
    """
    queues = prep.queues
    deps = prep.deps
    indeg = list(prep.indeg)
    dependents = prep.dependents
    durations = prep.durations
    queue_of_op = prep.queue_of_op
    nq = len(queues)
    n = prep.n
    heads = [0] * nq
    resource_free = [0.0] * nq
    starts = [0.0] * n
    finishes = [0.0] * n
    readies = [0.0] * n

    heap: List[Tuple[float, int]] = []
    pushed = [False] * nq   # at most one outstanding entry per queue head

    def push_head(qi: int) -> None:
        if pushed[qi]:
            return
        q = queues[qi]
        h = heads[qi]
        if h >= len(q):
            return
        i = q[h]
        if indeg[i]:
            return
        ready = 0.0
        for d in deps[i]:
            f = finishes[d]
            if f > ready:
                ready = f
        readies[i] = ready
        free = resource_free[qi]
        pushed[qi] = True
        heappush(heap, (ready if ready > free else free, qi))

    for qi in range(nq):
        push_head(qi)

    track = stats is not None
    heap_peak = 0
    remaining = n
    while heap:
        if track and len(heap) > heap_peak:
            heap_peak = len(heap)
        start, qi = heappop(heap)
        pushed[qi] = False
        i = queues[qi][heads[qi]]
        finish = start + durations[i]
        starts[i] = start
        finishes[i] = finish
        resource_free[qi] = finish
        heads[qi] += 1
        remaining -= 1
        for j in dependents[i]:
            indeg[j] -= 1
            if not indeg[j]:
                dj = queue_of_op[j]
                if queues[dj][heads[dj]] == j:
                    push_head(dj)
        push_head(qi)
    if remaining:
        raise SimulationDeadlock(
            f"no progress; blocked resource heads: "
            f"{prep.stuck_heads(heads)}")
    if stats is not None:
        stats["events"] = n
        stats["heap_peak"] = heap_peak
    return prep.finalize(starts, finishes, readies)


def _simulate_ledgered(prep: _Prepared, memory_capacity: int,
                       stats: Optional[Dict[str, int]] = None) -> SimResult:
    """Ledgered path: greedy drain of each resource queue in issue order
    (the seed engine's semantics — ledger placement is order-dependent, so
    this order *is* the spec), revisiting a resource only when a wakeup
    (dep scheduled, or any ledger change while its head was deferred) can
    actually unblock it.

    ``stats`` (observability) receives the event count and ledger
    telemetry post hoc — the scheduling loop itself is untouched.
    """
    queues = prep.queues
    deps = prep.deps
    indeg = list(prep.indeg)
    dependents = prep.dependents
    durations = prep.durations
    acquires = prep.acquires
    releases = prep.releases
    queue_of_op = prep.queue_of_op
    nq = len(queues)
    n = prep.n
    heads = [0] * nq
    resource_free = [0.0] * nq
    starts = [0.0] * n
    finishes = [0.0] * n
    readies = [0.0] * n
    ledger = _MemoryLedger(memory_capacity)
    earliest_fit = ledger.earliest_fit
    record = ledger.record
    remaining = n

    runnable = [True] * nq              # visit on the next pass
    deferred = [False] * nq             # head blocked on the ledger
    n_deferred = 0

    while remaining:
        progressed = False
        for qi in range(nq):
            if not runnable[qi]:
                continue
            runnable[qi] = False
            q = queues[qi]
            h = heads[qi]
            free = resource_free[qi]
            while h < len(q):
                i = q[h]
                if indeg[i]:
                    break  # head blocked on an unscheduled dep
                ready = 0.0
                for d in deps[i]:
                    f = finishes[d]
                    if f > ready:
                        ready = f
                start = ready if ready > free else free
                acquire = acquires[i]
                if acquire:
                    fit = earliest_fit(acquire, start)
                    if fit is None:
                        deferred[qi] = True
                        n_deferred += 1
                        break  # defer: future releases may open room
                    start = fit
                finish = start + durations[i]
                record(start, acquire)
                record(finish, -releases[i])
                starts[i] = start
                readies[i] = ready
                finishes[i] = finish
                free = finish
                h += 1
                remaining -= 1
                progressed = True
                for j in dependents[i]:
                    indeg[j] -= 1
                    if not indeg[j]:
                        runnable[queue_of_op[j]] = True
                if n_deferred:
                    # any new event can open room for a deferred head
                    for dq in range(nq):
                        if deferred[dq]:
                            deferred[dq] = False
                            runnable[dq] = True
                    n_deferred = 0
            heads[qi] = h
            resource_free[qi] = free
        if not progressed and remaining:
            raise SimulationDeadlock(
                f"no progress; blocked resource heads: "
                f"{prep.stuck_heads(heads)}")
    if stats is not None:
        stats["events"] = n
        stats["ledger_events"] = len(ledger._times)
        stats["ledger_repairs"] = ledger.repairs
    return prep.finalize(starts, finishes, readies)


def simulate(ops: Sequence[SimOp],
             memory_capacity: Optional[int] = None) -> SimResult:
    """Schedule ``ops`` (given in issue order) and return timings.

    Args:
        ops: the operations to schedule; their order defines each
            resource's FIFO issue order (CUDA-stream semantics).
        memory_capacity: optional near-memory ledger in bytes; ops that
            ``mem_acquire`` are delayed until their bytes fit against
            every already-scheduled usage peak (capacity-based prefetch
            throttling).  ``None`` disables the ledger.

    Returns:
        A :class:`SimResult` — per-op timings, makespan, and
        per-resource busy/span aggregates.

    Raises:
        SimulationDeadlock: no resource head can make progress (circular
            waits, or an acquire larger than the ledger).

    Results are bit-identical to
    :func:`repro.sim.reference_engine.simulate_reference` (the seed
    engine) on every input — the differential test suite holds the two
    to exact equality.
    """
    if not ops:
        return SimResult(timings={}, makespan=0.0, resource_busy={},
                         resource_span={})
    prep = _Prepared(ops)
    if memory_capacity is None or not any(prep.acquires):
        if not TRACER.enabled:
            return _simulate_heap(prep)
        return _simulate_instrumented(prep, None)
    if not TRACER.enabled:
        return _simulate_ledgered(prep, memory_capacity)
    return _simulate_instrumented(prep, memory_capacity)


def _simulate_instrumented(prep: _Prepared,
                           memory_capacity: Optional[int]) -> SimResult:
    """Tracing-enabled twin of the :func:`simulate` dispatch: identical
    timings, plus a span and engine-stat metrics (events processed,
    ledger repairs, heap population peak)."""
    stats: Dict[str, int] = {}
    path = "heap" if memory_capacity is None else "ledgered"
    with TRACER.span("sim.simulate", "sim", ops=prep.n, path=path) as sp:
        if memory_capacity is None:
            result = _simulate_heap(prep, stats)
        else:
            result = _simulate_ledgered(prep, memory_capacity, stats)
        sp.set(**stats)
    METRICS.counter("sim.runs").inc()
    METRICS.counter("sim.events").inc(prep.n)
    if "heap_peak" in stats:
        METRICS.histogram("sim.heap_peak").observe(stats["heap_peak"])
    if "ledger_repairs" in stats:
        METRICS.counter("sim.ledger_repairs").inc(stats["ledger_repairs"])
        METRICS.histogram("sim.ledger_events").observe(
            stats["ledger_events"])
    return result
