"""Deterministic discrete-event engine for schedule simulation (part of
:mod:`repro.sim`).

Models exactly what the KARMA runtime has on real hardware:

* **exclusive FIFO resources** — the GPU compute stream, each direction of
  the host link (duplex PCIe/NVLink = two resources), host CPU cores, and
  the network.  Ops issued to a resource run in issue order, like CUDA
  stream semantics.
* **dependencies** — an op starts only after all its dependency ops finish
  (cudaStreamWaitEvent semantics across streams).
* **a near-memory ledger** — an op may acquire bytes at start (blocking
  until the ledger has room) and release bytes when it finishes; this is
  how capacity limits delay eager swap-ins.

The engine is fully deterministic (no randomness, no wall clock) and cheap:
one training iteration of a 64-block plan is a few hundred events, so the
blocking search can afford to call it as its objective function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SimOp:
    """One schedulable operation."""

    op_id: int
    resource: str
    duration: float
    deps: Tuple[int, ...] = ()
    mem_acquire: int = 0     # bytes claimed at start
    mem_release: int = 0     # bytes released at finish
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"op {self.label or self.op_id}: negative duration")
        if self.mem_acquire < 0 or self.mem_release < 0:
            raise ValueError("memory amounts must be non-negative")


@dataclass
class OpTiming:
    """Result record for one op."""

    op: SimOp
    start: float
    finish: float
    ready: float  # when deps were satisfied (start - ready = stall)

    @property
    def stall(self) -> float:
        return max(0.0, self.start - self.ready)


class SimulationDeadlock(RuntimeError):
    """Raised when no resource head can make progress (bad launch order)."""


@dataclass
class SimResult:
    """Timings + per-resource utilization of one simulated schedule."""

    timings: Dict[int, OpTiming]
    makespan: float
    resource_busy: Dict[str, float]
    resource_span: Dict[str, Tuple[float, float]]

    def timing(self, op_id: int) -> OpTiming:
        return self.timings[op_id]

    def occupancy(self, resource: str = "gpu") -> float:
        """Busy fraction of ``resource`` over its active span (Eq. 1)."""
        busy = self.resource_busy.get(resource, 0.0)
        span = self.resource_span.get(resource)
        if span is None or span[1] <= span[0]:
            return 1.0
        return busy / (span[1] - span[0])

    def idle_gaps(self, resource: str = "gpu") -> List[Tuple[float, float]]:
        """Gaps between consecutive ops on ``resource`` (the GPU stalls)."""
        spans = sorted((t.start, t.finish) for t in self.timings.values()
                       if t.op.resource == resource)
        gaps: List[Tuple[float, float]] = []
        for (s0, f0), (s1, _) in zip(spans, spans[1:]):
            if s1 > f0 + 1e-15:
                gaps.append((f0, s1))
        return gaps


class _MemoryLedger:
    """Capacity ledger over scheduled acquire/release events.

    An op may hold bytes across a window that *other* ops close (e.g. a
    forward op acquires a stash that the matching backward op releases), so
    fitting a new acquire at time ``t`` must respect every already-scheduled
    usage peak at or after ``t`` — a suffix-maximum query over the event
    timeline.  Conservative by construction: an acquire is only placed where
    it can never retroactively oversubscribe the capacity.
    """

    def __init__(self, capacity: Optional[int]):
        self.capacity = capacity
        self._events: List[Tuple[float, int]] = []  # (time, delta), sorted

    def record(self, time: float, delta: int) -> None:
        if self.capacity is None or delta == 0:
            return
        import bisect
        bisect.insort(self._events, (time, delta), key=lambda e: e[0])

    def _merged(self) -> Tuple[List[float], List[int]]:
        """Unique event times with net deltas (releases and acquires at the
        same instant cancel)."""
        times: List[float] = []
        deltas: List[int] = []
        for t, d in self._events:
            if times and times[-1] == t:
                deltas[-1] += d
            else:
                times.append(t)
                deltas.append(d)
        return times, deltas

    def earliest_fit(self, need: int, not_before: float) -> Optional[float]:
        """Earliest t >= not_before such that usage(t') + need <= capacity
        for every t' >= t under the currently scheduled events.

        Returns None when no such time exists *yet* — the caller should
        defer the op until further releases have been scheduled.
        """
        if self.capacity is None or need == 0:
            return not_before
        if need > self.capacity:
            raise SimulationDeadlock(
                f"op needs {need} B > ledger capacity {self.capacity} B")
        times, deltas = self._merged()
        n = len(times)
        if n == 0:
            return not_before
        # usage right after each event, and suffix maxima of those usages
        cums: List[int] = []
        u = 0
        for d in deltas:
            u += d
            cums.append(u)
        suffix_max = [0] * (n + 1)  # suffix_max[i] = max(cums[i:]), 0 at end
        suffix_max[n] = -(1 << 62)
        for i in range(n - 1, -1, -1):
            suffix_max[i] = max(cums[i], suffix_max[i + 1])

        budget = self.capacity - need
        # candidate 1: start at not_before
        i0 = 0
        usage_at = 0
        while i0 < n and times[i0] <= not_before:
            usage_at = cums[i0]
            i0 += 1
        peak = max(usage_at, suffix_max[i0] if i0 < n else 0)
        if peak <= budget:
            return not_before
        # otherwise advance to each later event time (releases shrink peaks)
        for i in range(i0, n):
            peak = max(cums[i], suffix_max[i + 1] if i + 1 < n else 0)
            if peak <= budget:
                return max(not_before, times[i])
        # cannot fit against the *currently scheduled* events; the caller
        # may retry after more releases are scheduled
        return None


def simulate(ops: Sequence[SimOp],
             memory_capacity: Optional[int] = None) -> SimResult:
    """Schedule ``ops`` (given in issue order) and return timings.

    Issue order defines per-resource FIFO order.  Raises
    :class:`SimulationDeadlock` on circular waits.
    """
    by_id = {op.op_id: op for op in ops}
    if len(by_id) != len(ops):
        raise ValueError("duplicate op ids")
    for op in ops:
        for d in op.deps:
            if d not in by_id:
                raise ValueError(f"op {op.label or op.op_id} depends on "
                                 f"unknown op {d}")

    queues: Dict[str, List[SimOp]] = {}
    for op in ops:
        queues.setdefault(op.resource, []).append(op)
    heads = {r: 0 for r in queues}
    resource_free = {r: 0.0 for r in queues}

    ledger = _MemoryLedger(memory_capacity)
    timings: Dict[int, OpTiming] = {}
    remaining = len(ops)

    while remaining:
        progressed = False
        for r, queue in queues.items():
            while heads[r] < len(queue):
                op = queue[heads[r]]
                if any(d not in timings for d in op.deps):
                    break  # head blocked on an unscheduled dep
                ready = max((timings[d].finish for d in op.deps), default=0.0)
                start = max(ready, resource_free[r])
                if op.mem_acquire:
                    fit = ledger.earliest_fit(op.mem_acquire, start)
                    if fit is None:
                        break  # defer: future releases may open room
                    start = fit
                finish = start + op.duration
                ledger.record(start, op.mem_acquire)
                ledger.record(finish, -op.mem_release)
                timings[op.op_id] = OpTiming(op, start, finish, ready)
                resource_free[r] = finish
                heads[r] += 1
                remaining -= 1
                progressed = True
        if not progressed and remaining:
            stuck = [queue[heads[r]].label or str(queue[heads[r]].op_id)
                     for r, queue in queues.items() if heads[r] < len(queue)]
            raise SimulationDeadlock(
                f"no progress; blocked resource heads: {stuck}")

    makespan = max((t.finish for t in timings.values()), default=0.0)
    busy: Dict[str, float] = {}
    span: Dict[str, Tuple[float, float]] = {}
    for t in timings.values():
        r = t.op.resource
        busy[r] = busy.get(r, 0.0) + t.op.duration
        lo, hi = span.get(r, (math.inf, -math.inf))
        span[r] = (min(lo, t.start), max(hi, t.finish))
    return SimResult(timings=timings, makespan=makespan,
                     resource_busy=busy, resource_span=span)
