"""ZeRO memory-partitioning model (Rajbhandari et al.) for the Turing-NLG
comparison of Fig. 8.

ZeRO partitions optimizer state (stage 1), gradients (stage 2), and
parameters (stage 3) across the data-parallel group.  The memory model
below decides how many GPUs a configuration *needs*; the performance model
delegates to :func:`repro.sim.distributed_sim.hybrid_mp_dp_lm` with ZeRO's
extra gather traffic, and KARMA+ZeRO to the DP-KARMA simulator with the
reduce-scatter exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hardware.spec import ClusterSpec
from ..models.transformer import TransformerConfig
from .distributed_sim import DpKarmaResult, HybridResult, hybrid_mp_dp_lm, simulate_dp_karma_lm

# FP32 training state per parameter: weights 4 + grads 4 + Adam moments 8
WEIGHT_BYTES = 4
GRAD_BYTES = 4
OPTIMIZER_BYTES = 8


@dataclass(frozen=True)
class ZeroConfig:
    """Which state classes are partitioned across the DP group."""

    stage: int = 2  # 1 = optimizer, 2 = +grads, 3 = +params

    def per_gpu_state_bytes(self, params: int, dp_ways: int) -> int:
        w = params * WEIGHT_BYTES
        g = params * GRAD_BYTES
        o = params * OPTIMIZER_BYTES
        if self.stage >= 1:
            o = o // dp_ways
        if self.stage >= 2:
            g = g // dp_ways
        if self.stage >= 3:
            w = w // dp_ways
        return w + g + o


def zero_min_gpus(config: TransformerConfig, device_memory: float,
                  zero: ZeroConfig = ZeroConfig(stage=2),
                  activation_fraction: float = 0.3) -> int:
    """Smallest DP group for which per-GPU state fits device memory.

    ``activation_fraction`` reserves headroom for activations/workspace.
    """
    budget = device_memory * (1.0 - activation_fraction)
    n = 1
    while n <= 1 << 16:
        if zero.per_gpu_state_bytes(config.analytic_params, n) <= budget:
            return n
        n *= 2
    raise ValueError("model too large even for stage-3 partitioning")


def zero_hybrid_lm(config: TransformerConfig, num_gpus: int, mp_ways: int,
                   per_replica_batch: int,
                   cluster: Optional[ClusterSpec] = None) -> HybridResult:
    """ZeRO reference implementation: MP+DP hybrid with partitioned state
    and the extra parameter-gather traffic."""
    return hybrid_mp_dp_lm(config, num_gpus, mp_ways, per_replica_batch,
                           cluster=cluster, phased_exchange=True,
                           zero_partitioning=True)


def karma_plus_zero_lm(config: TransformerConfig, num_gpus: int,
                       per_gpu_batch: int,
                       cluster: Optional[ClusterSpec] = None
                       ) -> DpKarmaResult:
    """KARMA on top of ZeRO (§IV-C): all GPUs data parallel, out-of-core
    weight streaming, ZeRO-style reduce-scatter exchange + partitioned
    CPU update.  The partitioned device state leaves enough room to keep
    activation stashes near (swapped, not recomputed)."""
    return simulate_dp_karma_lm(config, num_gpus, per_gpu_batch,
                                cluster=cluster, zero_style_exchange=True,
                                recompute_activations=False)
