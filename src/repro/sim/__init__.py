"""Discrete-event simulation: engine, single-device and distributed timing."""

from .collectives import AllreduceModel, flat_exchange_time, phased_groups
from .distributed_sim import (
    CostPerfPoint,
    DpKarmaResult,
    HybridResult,
    LmWorkload,
    dp_karma_cnn,
    dp_scaling_cnn,
    hybrid_mp_dp_lm,
    simulate_dp_karma_lm,
)
from .engine import (
    OpTable,
    PortfolioResult,
    ScheduleBuilder,
    SimOp,
    SimResult,
    SimulationDeadlock,
    simulate,
    simulate_portfolio,
    simulate_table,
)
from .reference_engine import simulate_reference
from .stall import StallProfile, compare_profiles, stall_profile
from .zero_model import ZeroConfig, karma_plus_zero_lm, zero_hybrid_lm, zero_min_gpus
from .trainer_sim import (
    BlockCosts,
    IterationResult,
    LoweringCache,
    OutOfCoreInfeasible,
    bind_costs,
    block_costs,
    compile_plan,
    compile_skeleton,
    simulate_plan,
)

__all__ = [
    "simulate", "simulate_reference", "simulate_table", "OpTable",
    "simulate_portfolio", "PortfolioResult",
    "SimOp", "SimResult", "SimulationDeadlock", "ScheduleBuilder",
    "simulate_plan", "compile_plan", "compile_skeleton", "bind_costs",
    "block_costs", "BlockCosts", "LoweringCache",
    "StallProfile", "stall_profile", "compare_profiles",
    "IterationResult", "OutOfCoreInfeasible",
    "AllreduceModel", "phased_groups", "flat_exchange_time",
    "simulate_dp_karma_lm", "hybrid_mp_dp_lm", "DpKarmaResult",
    "HybridResult", "LmWorkload", "dp_scaling_cnn", "dp_karma_cnn",
    "CostPerfPoint", "ZeroConfig", "zero_min_gpus", "zero_hybrid_lm",
    "karma_plus_zero_lm",
]
