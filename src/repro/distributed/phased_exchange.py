"""Phased (block-grouped) gradient exchange over the ring communicator.

Fig. 3 step 4: "rather than exchanging the gradients all at once, we do
the AllReduce exchange of the gradients in phases, i.e. finished blocks
from the end of the model do the exchange for their gradients without
waiting for the other unfinished blocks."  Groups follow the layer-merging
model of Shi et al. [36] (consecutive blocks merged to a target volume).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.build import ExecutableModel
from ..sim.collectives import phased_groups
from .communicator import RingCommunicator

Array = np.ndarray


def block_gradient_buffers(models: Sequence[ExecutableModel],
                           layer_indices: Sequence[int]) -> List[Array]:
    """Flatten each replica's gradients for the given layers into one
    contiguous buffer (one per replica, identical layouts)."""
    buffers = []
    for model in models:
        parts = []
        for i in layer_indices:
            module = model.modules[model.graph[i].name]
            for _, grad in sorted(module.grads.items()):
                parts.append(grad.reshape(-1))
        buffers.append(np.concatenate(parts) if parts
                       else np.zeros(0, dtype=np.float32))
    return buffers


def scatter_back(models: Sequence[ExecutableModel],
                 layer_indices: Sequence[int],
                 buffers: Sequence[Array]) -> None:
    """Write the reduced flat buffers back into each replica's grads."""
    for model, buf in zip(models, buffers):
        offset = 0
        for i in layer_indices:
            module = model.modules[model.graph[i].name]
            for _, grad in sorted(module.grads.items()):
                size = grad.size
                grad[...] = buf[offset:offset + size].reshape(grad.shape)
                offset += size


class PhasedGradientExchange:
    """Executes the per-group allreduces in backward (tail-first) order."""

    def __init__(self, comm: RingCommunicator,
                 blocks: Sequence[Tuple[int, int]],
                 block_grad_bytes: Sequence[int],
                 target_group_bytes: int = 1 << 20):
        self.comm = comm
        self.blocks = list(blocks)
        self.groups = phased_groups(block_grad_bytes, target_group_bytes)

    def group_layer_indices(self, group: Sequence[int]) -> List[int]:
        idx: List[int] = []
        for b in sorted(group):
            s, e = self.blocks[b]
            idx.extend(range(s, e))
        return idx

    def exchange(self, models: Sequence[ExecutableModel]) -> List[List[int]]:
        """Allreduce-average every group's gradients; returns the groups in
        the order they were exchanged (tail of the model first)."""
        exchanged = []
        for group in self.groups:
            layers = self.group_layer_indices(group)
            buffers = block_gradient_buffers(models, layers)
            if buffers[0].size:
                self.comm.allreduce(buffers, average=True)
                scatter_back(models, layers, buffers)
            exchanged.append(sorted(group))
        return exchanged
