"""Data-parallel KARMA: the numeric 5-stage pipeline (Fig. 3).

Each worker runs the *same* KARMA plan on its shard of the global batch;
after the backward phase, gradients leave the device (the blocks were
already swapped out), the phased allreduce averages them across workers,
and the **host-side** optimizer updates each block before it swaps back
for the next iteration.

Because every stage is arithmetically exact (same kernels, same counter-
based dropout streams), W workers on batch B/W are *bit-identical* to one
worker on batch B — the reproduction of §IV-D's accuracy-parity claim,
strengthened to exact equality (tests assert it).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.schedule import ExecutionPlan
from ..hardware.memory_pool import MemorySpace
from ..nn.build import ExecutableModel
from ..runtime.executor import OutOfCoreExecutor
from .communicator import RingCommunicator
from .cpu_update import HostAdam, HostSGD
from .phased_exchange import PhasedGradientExchange

Array = np.ndarray


class DataParallelKarmaTrainer:
    """W replicas + ring communicator + phased exchange + host updates."""

    def __init__(self, graph, plan: ExecutionPlan, world_size: int,
                 near_capacity: float, far_capacity: float,
                 optimizer: Optional[HostSGD] = None,
                 dtype=np.float32, seed: int = 0,
                 target_group_bytes: int = 1 << 20):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.plan = plan
        self.graph = graph
        self.dtype = dtype
        self.seed = seed
        self.near_capacity = near_capacity
        self.far_capacity = far_capacity
        self.target_group_bytes = target_group_bytes
        # identical initialization on every replica (same seed), as a real
        # data-parallel launch broadcasts rank 0's weights
        self.models = [ExecutableModel(graph, dtype=dtype, seed=seed)
                       for _ in range(world_size)]
        self.spaces = [MemorySpace(near_capacity, far_capacity)
                       for _ in range(world_size)]
        self.executors = [OutOfCoreExecutor(m, plan, s)
                          for m, s in zip(self.models, self.spaces)]
        self.optimizer = optimizer or HostSGD(lr=0.01)
        self._host_optimizers = [self.optimizer] + [
            type(self.optimizer)(**_optimizer_kwargs(self.optimizer))
            for _ in range(world_size - 1)]
        self._rebuild_comm()
        self.step_count = 0

    def train_step(self, batch: Array, targets: Array) -> float:
        """One global iteration; returns the mean loss across workers.

        ``batch``/``targets`` hold the *global* batch; they are split
        evenly across workers (global batch must divide by world size).
        """
        n = batch.shape[0]
        if n % self.world_size:
            raise ValueError(f"global batch {n} not divisible by "
                             f"{self.world_size} workers")
        shard = n // self.world_size
        losses = []
        # stage 1+2+3: forward/backward with swap + gradient D2H per worker
        for w, (model, executor) in enumerate(zip(self.models,
                                                  self.executors)):
            model.zero_grad()
            x = batch[w * shard:(w + 1) * shard]
            y = targets[w * shard:(w + 1) * shard]
            losses.append(executor.run_iteration(x, y, step=self.step_count))
        # stage 4: phased gradient exchange (averaging) on the host
        if self.world_size > 1:
            self.exchange.exchange(self.models)
        # stage 5: host-side block-granular updates, tail blocks first
        for opt in self._host_optimizers:
            if isinstance(opt, HostAdam):
                opt.begin_step()
        for group in self.exchange.groups:
            layers = self.exchange.group_layer_indices(group)
            for model, opt in zip(self.models, self._host_optimizers):
                opt.update_block(model, layers)
        self.step_count += 1
        return float(np.mean(losses))

    def _rebuild_comm(self) -> None:
        """(Re)build the communicator + phased exchange for the current
        world size and plan, from the surviving replica's gradient
        layout."""
        self.comm = RingCommunicator(self.world_size)
        grad_bytes = []
        for (s, e) in self.plan.blocks:
            total = 0
            for i in range(s, e):
                module = self.models[0].modules[
                    self.models[0].graph[i].name]
                total += sum(g.nbytes for g in module.grads.values())
            grad_bytes.append(total)
        self.exchange = PhasedGradientExchange(
            self.comm, self.plan.blocks, grad_bytes,
            target_group_bytes=self.target_group_bytes)

    def shrink_world(self, new_size: int) -> None:
        """Fault tolerance (§II-B): continue with a smaller worker pool.

        Out-of-core data parallelism "could potentially adapt to faults by
        ... shrinking the worker pool": replicas are identical after every
        iteration, so dropping workers loses no state — the survivors (and
        their host optimizer state) carry on with larger shards.
        """
        if not (1 <= new_size <= self.world_size):
            raise ValueError(f"cannot shrink world {self.world_size} "
                             f"-> {new_size}")
        if new_size == self.world_size:
            return
        self.models = self.models[:new_size]
        self.spaces = self.spaces[:new_size]
        self.executors = self.executors[:new_size]
        self._host_optimizers = self._host_optimizers[:new_size]
        self.world_size = new_size
        self._rebuild_comm()
        self.assert_replicas_identical()

    def grow_world(self, new_size: int) -> None:
        """Elasticity: admit joining workers into the pool (§II-B dual).

        New replicas are cloned from survivor 0 — parameters, buffers
        (BN statistics), and host-optimizer slots — exactly as a real
        elastic launch broadcasts rank 0's state to joiners, so the
        grown pool is bit-identical before its first step (asserted).
        """
        if new_size < self.world_size:
            raise ValueError(f"cannot grow world {self.world_size} "
                             f"-> {new_size}")
        if new_size == self.world_size:
            return
        template = self.models[0]
        opt_state = self._host_optimizers[0].state_dict()
        for _ in range(new_size - self.world_size):
            model = ExecutableModel(self.graph, dtype=self.dtype,
                                    seed=self.seed)
            for (ln, pn, src), (ln2, pn2, dst) in zip(
                    template.parameters(), model.parameters()):
                assert (ln, pn) == (ln2, pn2)
                dst[...] = src
            for spec in self.graph:
                src_mod = template.modules[spec.name]
                dst_mod = model.modules[spec.name]
                for bname, arr in src_mod.buffers.items():
                    dst_mod.buffers[bname][...] = arr
            space = MemorySpace(self.near_capacity, self.far_capacity)
            opt = type(self.optimizer)(
                **_optimizer_kwargs(self.optimizer))
            opt.load_state_dict(opt_state)
            self.models.append(model)
            self.spaces.append(space)
            self.executors.append(OutOfCoreExecutor(model, self.plan,
                                                    space))
            self._host_optimizers.append(opt)
        self.world_size = new_size
        self._rebuild_comm()
        self.assert_replicas_identical()

    def apply_plan(self, plan: ExecutionPlan) -> None:
        """Swap in a replanned schedule without touching replica state.

        The elastic recovery controller calls this after a fast replan on
        a new world size: models and host-optimizer state carry over (no
        lost steps), only the executors and the phased exchange are
        rebuilt against the new block structure.
        """
        self.plan = plan
        self.executors = [OutOfCoreExecutor(m, plan, s)
                          for m, s in zip(self.models, self.spaces)]
        self._rebuild_comm()

    def assert_replicas_identical(self) -> None:
        """Raise if any replica's parameters drifted from worker 0's.

        Bit-identity (``np.array_equal``, not allclose) is the §IV-D
        invariant every world-size change must preserve; a mismatch
        names the first offending (worker, layer, parameter).
        """
        ref = self.models[0].parameters()
        for w, model in enumerate(self.models[1:], start=1):
            for (ln, pn, a), (ln2, pn2, b) in zip(ref, model.parameters()):
                if (ln, pn) != (ln2, pn2) or not np.array_equal(a, b):
                    raise RuntimeError(
                        f"replica divergence after world-size change: "
                        f"worker {w} {ln}/{pn} differs from worker 0")

    def parameters_equal_across_workers(self, atol: float = 0.0) -> bool:
        """Replicas must stay in lockstep after every iteration."""
        ref = self.models[0].parameters()
        for model in self.models[1:]:
            for (ln, pn, a), (ln2, pn2, b) in zip(ref, model.parameters()):
                if ln != ln2 or pn != pn2:
                    return False
                if not np.allclose(a, b, atol=atol, rtol=0.0):
                    return False
        return True


def _optimizer_kwargs(opt) -> dict:
    if isinstance(opt, HostAdam):
        return dict(lr=opt.lr, beta1=opt.beta1, beta2=opt.beta2,
                    eps=opt.eps, weight_decay=opt.weight_decay)
    if isinstance(opt, HostSGD):
        return dict(lr=opt.lr, momentum=opt.momentum,
                    weight_decay=opt.weight_decay)
    raise TypeError(f"unsupported host optimizer {type(opt)!r}")
