"""Data-parallel KARMA numeric runtime: communicator, phased exchange,
host-side updates, and the 5-stage pipeline trainer."""

from .communicator import RingCommunicator, TrafficStats, allreduce_traffic_per_rank
from .cpu_update import HostAdam, HostSGD
from .dp_trainer import DataParallelKarmaTrainer
from .phased_exchange import (
    PhasedGradientExchange,
    block_gradient_buffers,
    scatter_back,
)

__all__ = [
    "RingCommunicator", "TrafficStats", "allreduce_traffic_per_rank",
    "HostSGD", "HostAdam", "DataParallelKarmaTrainer",
    "PhasedGradientExchange", "block_gradient_buffers", "scatter_back",
]
