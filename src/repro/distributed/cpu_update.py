"""Host-side block-granular weight update (§III-G, Fig. 3 step 5).

Data-parallel KARMA updates weights **on the CPU** after the phased
gradient exchange, because the swapped-out blocks live in host memory at
that point; the paper "implemented a stand-alone direct CPU kernel to
update the weights of individual blocks" (§III-H).  We reuse the exact
same pure kernels as the device-side optimizers, so CPU-updated replicas
are arithmetically identical to device-updated ones — the property the
equivalence tests assert.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..nn.build import ExecutableModel
from ..nn.optim import adam_update_kernel, sgd_update_kernel

Array = np.ndarray


class HostSGD:
    """Block-granular momentum SGD living on the host."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._buffers: Dict[Tuple[str, str], Array] = {}

    def state_dict(self) -> Dict[str, Array]:
        """Copy of the momentum slots, keyed ``layer/param/momentum``.

        Flat string keys so the state round-trips through checkpoint
        ``extra`` arrays and across workers (grow_world clones it).
        """
        return {f"{name}/{pname}/momentum": arr.copy()
                for (name, pname), arr in self._buffers.items()}

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Restore slots produced by :meth:`state_dict` (replaces all)."""
        self._buffers = {}
        for key, arr in state.items():
            name, pname, slot = key.rsplit("/", 2)
            if slot != "momentum":
                raise KeyError(f"unknown HostSGD state slot {key!r}")
            self._buffers[(name, pname)] = np.array(arr, copy=True)

    def update_block(self, model: ExecutableModel,
                     layer_indices: Sequence[int]) -> int:
        """Update the parameters of the given layers; returns bytes touched."""
        touched = 0
        for i in layer_indices:
            name = model.graph[i].name
            module = model.modules[name]
            for pname, param in module.params.items():
                grad = module.grads[pname]
                buf = None
                if self.momentum:
                    key = (name, pname)
                    if key not in self._buffers:
                        self._buffers[key] = np.zeros_like(param)
                    buf = self._buffers[key]
                sgd_update_kernel(param, grad, buf, self.lr, self.momentum,
                                  self.weight_decay)
                touched += int(param.nbytes + grad.nbytes)
        return touched


class HostAdam:
    """Block-granular Adam living on the host."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: Dict[Tuple[str, str], Array] = {}
        self._v: Dict[Tuple[str, str], Array] = {}

    def begin_step(self) -> None:
        """Advance the shared time step once per iteration (all blocks of
        one iteration share the same bias correction)."""
        self.t += 1

    def state_dict(self) -> Dict[str, Array]:
        """Copy of the Adam slots (+ step), keyed ``layer/param/slot``."""
        out: Dict[str, Array] = {"__t__": np.asarray(self.t)}
        for (name, pname), arr in self._m.items():
            out[f"{name}/{pname}/m"] = arr.copy()
        for (name, pname), arr in self._v.items():
            out[f"{name}/{pname}/v"] = arr.copy()
        return out

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Restore slots produced by :meth:`state_dict` (replaces all)."""
        self._m, self._v = {}, {}
        self.t = 0
        for key, arr in state.items():
            if key == "__t__":
                self.t = int(np.asarray(arr))
                continue
            name, pname, slot = key.rsplit("/", 2)
            if slot == "m":
                self._m[(name, pname)] = np.array(arr, copy=True)
            elif slot == "v":
                self._v[(name, pname)] = np.array(arr, copy=True)
            else:
                raise KeyError(f"unknown HostAdam state slot {key!r}")

    def update_block(self, model: ExecutableModel,
                     layer_indices: Sequence[int]) -> int:
        if self.t < 1:
            raise RuntimeError("call begin_step() before update_block()")
        touched = 0
        for i in layer_indices:
            name = model.graph[i].name
            module = model.modules[name]
            for pname, param in module.params.items():
                grad = module.grads[pname]
                key = (name, pname)
                if key not in self._m:
                    self._m[key] = np.zeros_like(param)
                    self._v[key] = np.zeros_like(param)
                adam_update_kernel(param, grad, self._m[key], self._v[key],
                                   self.lr, self.beta1, self.beta2,
                                   self.eps, self.t, self.weight_decay)
                touched += int(param.nbytes + grad.nbytes)
        return touched
