"""In-process communicator with a real chunked ring allreduce.

The API mirrors mpi4py's buffer conventions (uppercase = buffer ops); the
ring algorithm is implemented for real over numpy views — reduce-scatter
then allgather, moving one chunk per virtual step — so tests can assert
both the numerical result and the per-step traffic pattern that the
alpha-beta cost model in :mod:`repro.sim.collectives` prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

Array = np.ndarray


@dataclass
class TrafficStats:
    """Bytes moved per endpoint by collective calls."""

    bytes_sent: int = 0
    bytes_received: int = 0
    calls: int = 0


class RingCommunicator:
    """A world of N in-process endpoints with ring collectives.

    All endpoints participate synchronously (the caller supplies all
    buffers at once — the single-process analogue of an SPMD collective).
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.stats = [TrafficStats() for _ in range(world_size)]

    # -- collectives -----------------------------------------------------------

    def allreduce(self, buffers: Sequence[Array], average: bool = False
                  ) -> None:
        """In-place ring allreduce (sum or mean) across ``buffers``.

        ``buffers[r]`` is rank r's tensor; all must share shape and dtype.
        Implemented as reduce-scatter + allgather with N-1 steps each,
        exactly one chunk in flight per rank per step.
        """
        n = self.world_size
        if len(buffers) != n:
            raise ValueError(f"expected {n} buffers, got {len(buffers)}")
        if n == 1:
            return
        shape = buffers[0].shape
        dtype = buffers[0].dtype
        for b in buffers:
            if b.shape != shape or b.dtype != dtype:
                raise ValueError("allreduce buffers must match in "
                                 "shape and dtype")
        flats = [b.reshape(-1) for b in buffers]
        total = flats[0].size
        # chunk boundaries (N chunks, padded split)
        bounds = [int(round(i * total / n)) for i in range(n + 1)]

        def chunk(r: int, c: int) -> Array:
            return flats[r][bounds[c % n]:bounds[c % n + 1]]

        # reduce-scatter: after step s, rank r owns the partial sum of
        # chunk (r - s) from ranks r-s..r
        for s in range(n - 1):
            for r in range(n):
                src = (r - 1) % n
                c = (r - 1 - s) % n
                recv = chunk(src, c)
                chunk(r, c)[...] += recv
                self._account(src, r, recv.nbytes)
        # allgather: circulate the finished chunks
        for s in range(n - 1):
            for r in range(n):
                src = (r - 1) % n
                c = (r - s) % n
                recv = chunk(src, c)
                chunk(r, c)[...] = recv
                self._account(src, r, recv.nbytes)
        if average:
            for f in flats:
                f /= n

    def broadcast(self, buffers: Sequence[Array], root: int = 0) -> None:
        """Copy rank ``root``'s buffer into every other rank's."""
        n = self.world_size
        if len(buffers) != n:
            raise ValueError(f"expected {n} buffers, got {len(buffers)}")
        src = buffers[root]
        for r, b in enumerate(buffers):
            if r == root:
                continue
            b[...] = src
            self._account(root, r, src.nbytes)

    def _account(self, src: int, dst: int, nbytes: int) -> None:
        self.stats[src].bytes_sent += nbytes
        self.stats[dst].bytes_received += nbytes
        self.stats[src].calls += 1

    def total_traffic(self) -> int:
        return sum(s.bytes_sent for s in self.stats)


def allreduce_traffic_per_rank(nbytes: int, world_size: int) -> float:
    """Expected per-rank send volume of a ring allreduce: 2 (N-1)/N * V."""
    if world_size <= 1:
        return 0.0
    return 2.0 * (world_size - 1) / world_size * nbytes
