"""Algorithm 1: schedule generation of stages from blocks + policies.

Produces the launch schedule of Fig. 2(b)/(c): forward stages with
swap-outs attached to the *following* block's forward (``F2||Sout1``),
a capacity-based backward phase that launches swap-ins as early as the
schedule allows (``B6||Sin3``), and recompute stages inserted where Opt-2
replaced a swap with a re-forward (``... -> B5 -> F4 -> B4||Sin1 -> ...``).

``prefetch`` selects the swap-in launch discipline, which is exactly what
separates the related-work swap strategies of Fig. 2:

* ``"eager"``     — KARMA: launch as early as the link order allows; the
                    memory ledger throttles it to capacity (Fig. 2b/c)
* ``"one_ahead"`` — vDNN++-family: prefetch one block ahead of use
* ``"none"``      — ooc_cuDNN-family: swap in exactly at the point of use

Recompute *chains* (consecutive RECOMPUTED blocks, e.g. a U-Net
contracting path) are emitted in ascending order from their shared
checkpoint so each re-forward finds its input.  CHECKPOINTED blocks keep
their output boundary, so they are their own neighbours' recompute source
and always form chains of length one.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .schedule import BlockPolicy, ExecutionPlan, Op, OpKind, Stage

_RECOMPUTE_LIKE = (BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED)


def _checkpoint_of(block: int, policies: Sequence[BlockPolicy]) -> int:
    """Nearest upstream block able to source a recompute of ``block``.

    Walks past RECOMPUTED blocks (whole stash dropped); stops at RESIDENT,
    SWAPPED, or CHECKPOINTED (retained boundary) blocks.  -1 means the
    model input feeds the recompute directly.
    """
    i = block - 1
    while i >= 0 and policies[i] is BlockPolicy.RECOMPUTED:
        i -= 1
    return i


def generate_stages(policies: Sequence[BlockPolicy],
                    prefetch: str = "eager"
                    ) -> Tuple[Tuple[Stage, ...], Dict[int, int]]:
    """Build the stage launch schedule for one iteration (Algorithm 1)."""
    if prefetch not in ("eager", "one_ahead", "none"):
        raise ValueError(f"unknown prefetch mode {prefetch!r}")
    n = len(policies)
    if n == 0:
        raise ValueError("need at least one block")
    stages: List[Stage] = []
    swapped = [i for i, p in enumerate(policies) if p is BlockPolicy.SWAPPED]
    checkpoints = {i: _checkpoint_of(i, policies)
                   for i, p in enumerate(policies) if p in _RECOMPUTE_LIKE}

    # ---- forward phase: F(b), attaching pending swap-outs to the next
    # block's forward stage (Fig. 2b: Sout launches while F(b+1) runs)
    pending_out: List[int] = []
    for b in range(n):
        ops: List[Op] = [Op(OpKind.FORWARD, b)]
        while pending_out:
            ops.append(Op(OpKind.SWAP_OUT, pending_out.pop(0)))
        stages.append(Stage(tuple(ops)))
        if policies[b] is BlockPolicy.SWAPPED:
            pending_out.append(b)
    if pending_out:
        # swapped blocks at the model tail (vDNN-style plans) flush here
        stages.append(Stage(tuple(Op(OpKind.SWAP_OUT, b)
                                  for b in pending_out)))
        pending_out = []

    # ---- backward phase: descending blocks, swap-in launch per discipline
    sin_queue = sorted(swapped, reverse=True)
    sin_launched: set = set()
    recompute_done: set = set()

    def attach_next_sin(ops: List[Op]) -> None:
        # swap-ins go in front of the stage's compute op: a same-stage
        # backward may depend on them (validators and the compiler read
        # stages left to right)
        if sin_queue:
            b = sin_queue.pop(0)
            ops.insert(0, Op(OpKind.SWAP_IN, b))
            sin_launched.add(b)

    def attach_specific_sin(ops: List[Op], block: int) -> None:
        if block in sin_queue:
            # everything ahead of it in the queue must launch first to keep
            # the link FIFO in need order
            pos = 0
            while sin_queue:
                b = sin_queue.pop(0)
                ops.insert(pos, Op(OpKind.SWAP_IN, b))
                pos += 1
                sin_launched.add(b)
                if b == block:
                    break

    def next_needed_sin(current: int) -> Optional[int]:
        """Highest-index swapped block strictly below ``current``."""
        for b in sin_queue:
            if b < current:
                return b
        return None

    for b in range(n - 1, -1, -1):
        # emit any recompute chain that must complete before B(b)
        if policies[b] in _RECOMPUTE_LIKE and b not in recompute_done:
            cp = _checkpoint_of(b, policies)
            chain_start = cp + 1
            for r in range(chain_start, b + 1):
                if policies[r] in _RECOMPUTE_LIKE \
                        and r not in recompute_done:
                    ops = [Op(OpKind.RECOMPUTE, r)]
                    # the chain's source must be near before any re-forward:
                    # force its swap-in now, whatever the prefetch mode
                    if cp >= 0 and policies[cp] is BlockPolicy.SWAPPED \
                            and cp not in sin_launched:
                        attach_specific_sin(ops, cp)
                    elif prefetch == "eager":
                        attach_next_sin(ops)
                    stages.append(Stage(tuple(ops)))
                    recompute_done.add(r)
        ops = [Op(OpKind.BACKWARD, b)]
        if policies[b] is BlockPolicy.SWAPPED and b not in sin_launched:
            attach_specific_sin(ops, b)
        elif prefetch == "eager":
            attach_next_sin(ops)
        elif prefetch == "one_ahead":
            target = next_needed_sin(b)
            if target is not None:
                attach_specific_sin(ops, target)
        # prefetch == "none": swap-ins only attach at their point of use
        stages.append(Stage(tuple(ops)))

    return tuple(stages), checkpoints


def _qualify_tiers(stages: Tuple[Stage, ...],
                   placements: Mapping[int, int]) -> Tuple[Stage, ...]:
    """Rewrite swap ops with explicit src/dst tiers per the placement map."""
    out: List[Stage] = []
    for stage in stages:
        ops: List[Op] = []
        for op in stage.ops:
            tier = placements.get(op.block)
            if tier is None:
                ops.append(op)
            elif op.kind is OpKind.SWAP_OUT:
                ops.append(Op(op.kind, op.block, src_tier=0, dst_tier=tier))
            elif op.kind is OpKind.SWAP_IN:
                ops.append(Op(op.kind, op.block, src_tier=tier, dst_tier=0))
            else:
                ops.append(op)
        out.append(Stage(tuple(ops)))
    return tuple(out)


def make_plan(model_name: str, batch_size: int,
              blocks: Sequence[Tuple[int, int]],
              policies: Sequence[BlockPolicy],
              prefetch: str = "eager",
              placements: Optional[Mapping[int, int]] = None
              ) -> ExecutionPlan:
    """Assemble a validated :class:`ExecutionPlan` from blocks + policies.

    ``placements`` maps swapped block index -> stash tier (1 = DRAM,
    2 = NVMe); omitted blocks default to DRAM.  The stage schedule itself
    is tier-agnostic — tiers only change which link a swap occupies and how
    long it takes, not when it is launched.
    """
    stages, checkpoints = generate_stages(policies, prefetch=prefetch)
    placements = {int(b): int(t) for b, t in (placements or {}).items()}
    if placements:
        stages = _qualify_tiers(stages, placements)
    plan = ExecutionPlan(
        model_name=model_name, batch_size=batch_size,
        blocks=tuple((int(s), int(e)) for s, e in blocks),
        policies=tuple(policies), stages=stages,
        checkpoints=dict(checkpoints),
        placements=placements,
    )
    plan.validate()
    return plan
