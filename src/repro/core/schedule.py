"""Execution-plan IR: blocks, ops, stages, and the paper's plan strings.

A KARMA plan (Fig. 1, step 5) is a serial sequence of *stages*; each stage
launches one or more independent *ops* that may overlap (the paper's ``||``
notation).  Ops act on *blocks* — contiguous runs of layers in topological
order.  Every block carries exactly one residency policy:

* ``SWAPPED``    — stash is swapped out after forward, swapped in before
                   backward (weights travel with it);
* ``RECOMPUTED`` — stash is dropped after forward and re-derived during the
                   backward phase from the nearest upstream checkpoint;
* ``RESIDENT``   — never leaves near memory (the capacity-based strategy
                   keeps a suffix of blocks resident, Fig. 2b).

The same IR drives both the discrete-event simulator (timing) and the
numeric out-of-core executor (correctness), which is what makes the two
engines commensurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.layer_graph import LayerGraph


class OpKind(Enum):
    FORWARD = "F"
    BACKWARD = "B"
    RECOMPUTE = "R"        # re-forward of a dropped block
    SWAP_IN = "Sin"
    SWAP_OUT = "Sout"
    GRAD_SWAP_OUT = "Gout"  # gradients D2H (multi-GPU pipeline, Fig. 3 step 3)
    GRAD_EXCHANGE = "G"     # phased allreduce on the host (step 4)
    CPU_UPDATE = "U"        # host-side weight update (step 5)
    DEV_UPDATE = "W"        # device-side update (single-GPU case)


class Resource(Enum):
    GPU = "gpu"       # the device compute stream
    H2D = "h2d"       # host-to-device link direction
    D2H = "d2h"       # device-to-host link direction
    D2S = "d2s"       # DRAM-to-storage link direction (NVMe writes)
    S2D = "s2d"       # storage-to-DRAM link direction (NVMe reads)
    CPU = "cpu"       # host cores (weight update)
    NET = "net"       # inter-node fabric (allreduce)


OP_RESOURCE: Dict[OpKind, Resource] = {
    OpKind.FORWARD: Resource.GPU,
    OpKind.BACKWARD: Resource.GPU,
    OpKind.RECOMPUTE: Resource.GPU,
    OpKind.DEV_UPDATE: Resource.GPU,
    OpKind.SWAP_IN: Resource.H2D,
    OpKind.SWAP_OUT: Resource.D2H,
    OpKind.GRAD_SWAP_OUT: Resource.D2H,
    OpKind.GRAD_EXCHANGE: Resource.NET,
    OpKind.CPU_UPDATE: Resource.CPU,
}


class BlockPolicy(Enum):
    RESIDENT = "resident"
    SWAPPED = "swapped"
    RECOMPUTED = "recomputed"
    # gradient-checkpointing semantics: drop the interior stash but retain
    # the block's output boundary as the next block's recompute source
    CHECKPOINTED = "checkpointed"


#: Placement tier of a stash when the plan does not say otherwise: host
#: DRAM, the classic two-tier "far" memory.
DEFAULT_STASH_TIER = 1


@dataclass(frozen=True)
class Op:
    """One scheduled operation on one block.

    Swap ops may be *tier-qualified*: ``src_tier``/``dst_tier`` name the
    memory tiers the stash moves between (0 = HBM, 1 = DRAM, 2 = NVMe).
    Untiered swap ops (both ``None``) keep the classic two-tier meaning
    (device <-> host DRAM).
    """

    kind: OpKind
    block: int
    src_tier: Optional[int] = None
    dst_tier: Optional[int] = None

    @property
    def stash_tier(self) -> int:
        """The non-device tier this swap touches (DRAM when untiered)."""
        if self.kind is OpKind.SWAP_OUT and self.dst_tier is not None:
            return self.dst_tier
        if self.kind is OpKind.SWAP_IN and self.src_tier is not None:
            return self.src_tier
        return DEFAULT_STASH_TIER

    @property
    def resource(self) -> Resource:
        # a swap that reaches past DRAM is bound by the storage link: its
        # issue slot belongs to the D2S/S2D queue (the host-link hop it
        # stages through is modelled by the event compiler, which lowers
        # such ops to a chained pair)
        if self.kind is OpKind.SWAP_OUT and self.stash_tier >= 2:
            return Resource.D2S
        if self.kind is OpKind.SWAP_IN and self.stash_tier >= 2:
            return Resource.S2D
        return OP_RESOURCE[self.kind]

    def label(self) -> str:
        """Paper notation: 1-based block ids, e.g. ``Sout3`` or ``F2``.

        Tier-qualified swaps past DRAM carry a tier suffix (``Sout3@t2``);
        DRAM-bound swaps keep the paper's plain notation.
        """
        # recompute is printed as a forward in the paper's plan strings
        kind = OpKind.FORWARD if self.kind is OpKind.RECOMPUTE else self.kind
        base = f"{kind.value}{self.block + 1}"
        if self.kind in (OpKind.SWAP_OUT, OpKind.SWAP_IN) \
                and self.stash_tier >= 2:
            return f"{base}@t{self.stash_tier}"
        return base

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.label()


@dataclass(frozen=True)
class Stage:
    """A set of ops launched together; ops within a stage may overlap."""

    ops: Tuple[Op, ...]

    def label(self) -> str:
        """Paper notation for the stage: ops joined with ``||``."""
        return "||".join(op.label() for op in self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)


class PlanValidationError(ValueError):
    """Raised when an execution plan violates dependency or policy rules."""


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete single-iteration schedule for one worker.

    ``blocks`` are half-open layer ranges; ``policies[b]`` gives block b's
    residency policy; ``stages`` is the launch schedule.  ``checkpoints[b]``
    (for recomputed blocks) names the block whose *output* is the recompute
    source — the nearest upstream swapped/resident block.  ``placements[b]``
    (for swapped blocks) names the memory tier the stash lands in; absent
    entries default to DRAM (tier 1), the classic two-tier behaviour.
    """

    model_name: str
    batch_size: int
    blocks: Tuple[Tuple[int, int], ...]
    policies: Tuple[BlockPolicy, ...]
    stages: Tuple[Stage, ...]
    checkpoints: Dict[int, int] = field(default_factory=dict)
    placements: Dict[int, int] = field(default_factory=dict)

    # -- derived sets ---------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def swapped(self) -> FrozenSet[int]:
        return frozenset(i for i, p in enumerate(self.policies)
                         if p is BlockPolicy.SWAPPED)

    @property
    def recomputed(self) -> FrozenSet[int]:
        return frozenset(i for i, p in enumerate(self.policies)
                         if p in (BlockPolicy.RECOMPUTED,
                                  BlockPolicy.CHECKPOINTED))

    @property
    def resident(self) -> FrozenSet[int]:
        return frozenset(i for i, p in enumerate(self.policies)
                         if p is BlockPolicy.RESIDENT)

    def stash_tier(self, block: int) -> int:
        """Which tier block ``block``'s stash is placed in when swapped."""
        return self.placements.get(block, DEFAULT_STASH_TIER)

    @property
    def max_tier(self) -> int:
        """Deepest tier any stash reaches (1 for pure two-tier plans)."""
        return max(self.placements.values(), default=DEFAULT_STASH_TIER)

    @property
    def uses_storage(self) -> bool:
        """True when any stash is placed past DRAM (tier >= 2)."""
        return self.max_tier >= 2

    def block_of_layer(self, layer_index: int) -> int:
        """The block whose layer range contains ``layer_index``."""
        for b, (s, e) in enumerate(self.blocks):
            if s <= layer_index < e:
                return b
        raise IndexError(f"layer {layer_index} outside all blocks")

    def boundaries(self) -> List[int]:
        """The end layer index of every block, in order."""
        return [e for _, e in self.blocks]

    # -- the paper's plan-string notation ---------------------------------------

    def plan_string(self) -> str:
        """E.g. ``F1 -> F2||Sout1 -> ... -> B2 -> B1`` (Fig. 1, step 5)."""
        return " -> ".join(stage.label() for stage in self.stages)

    # -- validation -------------------------------------------------------------

    def validate(self, graph: Optional[LayerGraph] = None) -> None:
        """Check structural legality; raises :class:`PlanValidationError`.

        Verifies the block partition (contiguous, covering ``graph`` when
        given), checkpoint sources, tier placements, and the stage launch
        order's dependency sanity.
        """
        n = self.num_blocks
        if n == 0:
            raise PlanValidationError("plan has no blocks")
        if len(self.policies) != n:
            raise PlanValidationError("one policy required per block")
        # contiguous, complete partition
        prev_end = 0
        for s, e in self.blocks:
            if s != prev_end or e <= s:
                raise PlanValidationError(
                    f"blocks must be a contiguous partition; got {self.blocks}")
            prev_end = e
        if graph is not None and prev_end != len(graph):
            raise PlanValidationError(
                f"blocks cover {prev_end} layers, graph has {len(graph)}")
        # checkpoints: every recomputed block needs an upstream source
        # (-1 is the model-input sentinel: the batch itself is the source)
        for b in self.recomputed:
            src = self.checkpoints.get(b)
            if src is None:
                raise PlanValidationError(f"recomputed block {b} lacks a "
                                          "checkpoint source")
            if src >= b:
                raise PlanValidationError(
                    f"checkpoint {src} of block {b} is not upstream")
            if src >= 0 and self.policies[src] is BlockPolicy.RECOMPUTED:
                raise PlanValidationError(
                    f"checkpoint {src} of block {b} is itself recomputed")
        self._validate_placements()
        self._validate_stage_order()

    def _validate_placements(self) -> None:
        """Tier legality: placements only for swapped blocks, tiers >= 1,
        and every tier-qualified swap op consistent with its placement."""
        swapped = self.swapped
        for b, tier in self.placements.items():
            if b not in swapped:
                raise PlanValidationError(
                    f"placement for block {b} which is not swapped "
                    f"(policy {self.policies[b].value})")
            if tier < 1:
                raise PlanValidationError(
                    f"block {b} placed in tier {tier}; stashes must leave "
                    "the device tier (tier >= 1)")
        for stage in self.stages:
            for op in stage.ops:
                if op.kind is OpKind.SWAP_OUT:
                    if op.src_tier not in (None, 0):
                        raise PlanValidationError(
                            f"{op.label()}: swap-out must leave the device "
                            f"tier, not tier {op.src_tier}")
                    if op.dst_tier is not None \
                            and op.dst_tier != self.stash_tier(op.block):
                        raise PlanValidationError(
                            f"{op.label()}: dst tier {op.dst_tier} "
                            f"contradicts placement "
                            f"{self.stash_tier(op.block)}")
                elif op.kind is OpKind.SWAP_IN:
                    if op.dst_tier not in (None, 0):
                        raise PlanValidationError(
                            f"{op.label()}: swap-in must land in the device "
                            f"tier, not tier {op.dst_tier}")
                    if op.src_tier is not None \
                            and op.src_tier != self.stash_tier(op.block):
                        raise PlanValidationError(
                            f"{op.label()}: src tier {op.src_tier} "
                            f"contradicts placement "
                            f"{self.stash_tier(op.block)}")
                elif op.src_tier is not None or op.dst_tier is not None:
                    raise PlanValidationError(
                        f"{op.label()}: only swap ops may be tier-qualified")

    def _validate_stage_order(self) -> None:
        """Dependency sanity over the launch schedule."""
        seen: List[Op] = []
        fw_done = set()
        bw_done = set()
        swapped_out = set()
        swapped_in = set()
        recomputed_live = set()
        for stage in self.stages:
            # ops within a stage must use distinct resources or be swaps of
            # different blocks on the same duplex link
            kinds = [op.resource for op in stage.ops
                     if op.resource is Resource.GPU]
            if len(kinds) > 1:
                raise PlanValidationError(
                    f"stage {stage.label()!r} launches two GPU compute ops")
            for op in stage.ops:
                b = op.block
                if op.kind is OpKind.FORWARD:
                    if b > 0 and (b - 1) not in fw_done:
                        # recompute sources re-enter as FORWARD during the
                        # backward phase; treat as recompute then
                        if (b - 1) not in bw_done and b not in self.recomputed:
                            raise PlanValidationError(
                                f"F{b + 1} before F{b} completed")
                    fw_done.add(b)
                elif op.kind is OpKind.RECOMPUTE:
                    recomputed_live.add(b)
                elif op.kind is OpKind.BACKWARD:
                    if b + 1 < self.num_blocks and (b + 1) not in bw_done:
                        raise PlanValidationError(
                            f"B{b + 1} launched before B{b + 2}")
                    if self.policies[b] is BlockPolicy.SWAPPED \
                            and b not in swapped_in:
                        raise PlanValidationError(
                            f"B{b + 1} launched before Sin{b + 1}")
                    if self.policies[b] in (BlockPolicy.RECOMPUTED,
                                            BlockPolicy.CHECKPOINTED) \
                            and b not in recomputed_live:
                        raise PlanValidationError(
                            f"B{b + 1} launched before its recompute")
                    bw_done.add(b)
                elif op.kind is OpKind.SWAP_OUT:
                    if b not in fw_done:
                        raise PlanValidationError(
                            f"Sout{b + 1} before F{b + 1}")
                    swapped_out.add(b)
                elif op.kind is OpKind.SWAP_IN:
                    if b not in swapped_out:
                        raise PlanValidationError(
                            f"Sin{b + 1} without a prior Sout{b + 1}")
                    swapped_in.add(b)
            seen.extend(stage.ops)
        missing_bw = set(range(self.num_blocks)) - bw_done
        if missing_bw:
            raise PlanValidationError(
                f"blocks never backward-processed: {sorted(missing_bw)}")


def single_block_plan(model_name: str, batch_size: int,
                      num_layers: int) -> ExecutionPlan:
    """The trivial in-core plan: one resident block, F then B."""
    blocks = ((0, num_layers),)
    stages = (Stage((Op(OpKind.FORWARD, 0),)),
              Stage((Op(OpKind.BACKWARD, 0),)))
    return ExecutionPlan(model_name=model_name, batch_size=batch_size,
                         blocks=blocks, policies=(BlockPolicy.RESIDENT,),
                         stages=stages)
