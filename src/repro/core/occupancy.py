"""The occupancy performance model of §III-E (Equations 1-8).

These are the paper's closed-form projections used to *derive* the
capacity-based strategy; the discrete-event simulator then validates the
resulting schedules.  Units: times in seconds, sizes in bytes, throughputs
in bytes/second.  "Buffers" follow the paper's variable-size convention — a
buffer holds the arrays of one block, so buffer counts are measured in
bytes here (the paper's B quantities multiplied by buffer size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hardware.interconnect import TransferModel


def occupancy(busy: float, idle: float) -> float:
    """Eq. 1: O = T_busy / (T_busy + T_idle)."""
    if busy < 0 or idle < 0:
        raise ValueError("times must be non-negative")
    if busy + idle == 0:
        return 1.0
    return busy / (busy + idle)


def buffer_occupancy(available: float, required: float) -> float:
    """Eq. 2: the buffer-availability proxy, clamped to 1."""
    if required <= 0:
        return 1.0
    return min(1.0, available / required)


def swap_in_throughput(transfer: TransferModel) -> float:
    """Eq. 4: T_swap-in = min{T_FM, T_NM, T_IC}."""
    return transfer.effective_bandwidth


def available_buffers_trace(initial: float,
                            swapped_in: Sequence[float],
                            processed: Sequence[float]) -> List[float]:
    """Eq. 3: B_avail per step given swap-in and processing byte streams.

    ``initial`` is B_avail at step 1 ({entire GPU memory}); a step's
    availability is the previous step's minus the net accumulation
    (swapped-in minus processed/released), floored at zero.
    """
    if len(swapped_in) != len(processed):
        raise ValueError("swapped_in and processed must align")
    avail = [float(initial)]
    for s_in, proc in zip(swapped_in, processed):
        nxt = avail[-1] - (s_in - proc)
        avail.append(max(0.0, nxt))
    return avail


def swapped_in_bytes(throughput: float, proc_time: float,
                     available_prev: float) -> float:
    """Eq. 5: bytes swapped in during a block's processing window, limited
    by the memory space left."""
    return min(throughput * proc_time, max(0.0, available_prev))


def step_occupancy(available: float, processed: Sequence[float],
                   throughput: float,
                   proc_times: Sequence[float]) -> float:
    """Eq. 6: occupancy approximation for the active blocks of one step."""
    demand = sum(p + throughput * t for p, t in zip(processed, proc_times))
    if demand <= 0:
        return 1.0
    return min(1.0, available / demand)


def catch_up_step(proc_times: Sequence[float], swap_bytes: Sequence[float],
                  throughput: float) -> Optional[int]:
    """Eq. 7: the first backward step θ where processing catches up with
    swap-in, i.e. the compute of the still-resident blocks no longer covers
    the transfer of the next swapped buffer.

    ``proc_times`` are backward compute times in processing order;
    ``swap_bytes[j]`` is the buffer that must arrive before step j+1 runs.
    Returns None when the inequality never holds — the paper's 100%
    occupancy regime where transfers always hide behind compute.
    """
    if len(proc_times) != len(swap_bytes):
        raise ValueError("proc_times and swap_bytes must align")
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    compute_credit = 0.0
    for j, (t_proc, nbytes) in enumerate(zip(proc_times, swap_bytes)):
        compute_credit += t_proc
        transfer_need = nbytes / throughput
        if compute_credit < transfer_need:
            return j
        compute_credit -= transfer_need
    return None


def refined_occupancy(avail: float, processed: Sequence[float],
                      proc_times: Sequence[float], throughput: float,
                      before_catch_up: bool) -> float:
    """Eq. 8: occupancy under the capacity-based strategy.

    Before the catch-up step θ the device runs at full occupancy; after it
    the buffer-pressure expression of Eq. 6 takes over.
    """
    if before_catch_up:
        return 1.0
    return step_occupancy(avail, processed, throughput, proc_times)


@dataclass(frozen=True)
class OccupancyEstimate:
    """Closed-form estimate for one (blocking, device) combination."""

    occupancy: float
    catch_up: Optional[int]          # θ in backward-step index, None if never
    compute_time: float              # Σ fw + bw (+ recompute)
    transfer_time: float             # total one-way stash traffic / throughput
    estimated_makespan: float

    @property
    def estimated_stall(self) -> float:
        return max(0.0, self.estimated_makespan - self.compute_time)


def estimate_blocking(fw_times: Sequence[float], bw_times: Sequence[float],
                      stash_bytes: Sequence[int], swapped: Sequence[bool],
                      recomputed: Sequence[bool],
                      transfer: TransferModel) -> OccupancyEstimate:
    """Price a blocking with the paper's closed forms (no event simulation).

    The estimate mirrors §III-E.2: the backward phase runs at full
    occupancy until θ; past θ every swapped buffer costs its uncovered
    transfer remainder.  Used as a fast pre-filter by the blocking search;
    the event simulator provides the authoritative number.
    """
    n = len(fw_times)
    if not (n == len(bw_times) == len(stash_bytes) == len(swapped)
            == len(recomputed)):
        raise ValueError("per-block sequences must align")
    throughput = swap_in_throughput(transfer)

    compute = sum(fw_times) + sum(bw_times) \
        + sum(fw_times[i] for i in range(n) if recomputed[i])
    swap_traffic = sum(stash_bytes[i] for i in range(n) if swapped[i])
    transfer_time = swap_traffic / throughput

    # backward order: compute credit from each processed block hides the
    # swap-in of the next swapped buffer below it (Fig. 2b reasoning)
    proc, need = [], []
    for i in range(n - 1, -1, -1):
        t = bw_times[i] + (fw_times[i] if recomputed[i] else 0.0)
        proc.append(t)
        # the buffer that must arrive before the *next lower* block runs
        nxt = i - 1
        need.append(float(stash_bytes[nxt]) if nxt >= 0 and swapped[nxt]
                    else 0.0)
    theta = catch_up_step(proc, need, throughput)

    # uncovered transfer after θ becomes stall
    stall = 0.0
    if theta is not None:
        credit = 0.0
        for j in range(theta, len(proc)):
            credit += proc[j]
            t_need = need[j] / throughput
            if t_need > credit:
                stall += t_need - credit
                credit = 0.0
            else:
                credit -= t_need
    makespan = compute + stall
    occ = occupancy(compute, stall)
    return OccupancyEstimate(occupancy=occ, catch_up=theta,
                             compute_time=compute,
                             transfer_time=transfer_time,
                             estimated_makespan=makespan)
