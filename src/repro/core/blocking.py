"""Optimization Problem 1 (Fig. 4): group layers into blocks that maximize
occupancy subject to the device memory capacity.

Pipeline:

1. **Segment** the layer graph at checkpoint boundaries (indices no skip
   edge crosses), so every candidate block is a union of atomic segments —
   this is how residual blocks stay whole (constraint 9.3's dependency
   closure at block granularity).
2. **Search** boundary vectors with the solver suite: exact DP on the
   pairwise stall surrogate, refined by local search (and optionally ACO)
   against the *event-simulated* makespan — the paper's occupancy objective,
   since minimizing stalls at fixed compute maximizes Eq. 8's occupancy.
3. **Assign residency**: the capacity-based strategy keeps the largest
   suffix of blocks resident that fits alongside a double-buffered prefetch
   margin (Fig. 2b: "no swap-out if memory available").

Activations consumed by far-away blocks (U-Net long skips) are *pinned*:
they stay near for the whole iteration and are excluded from the swappable
stash (§III-F.4 support).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..costs.profiler import CostModel
from ..graph.layer_graph import LayerGraph
from ..graph.traversal import checkpoint_boundaries
from ..hardware.tiering import MemoryHierarchy
from .schedule import BlockPolicy
from .solver import (
    AcoConfig,
    PartitionProblem,
    local_search,
    portfolio_search,
    solve_aco,
    solve_dp,
)
from .stages import make_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sim.trainer_sim import LoweringCache


def segment_graph(graph: LayerGraph) -> List[Tuple[int, int]]:
    """Atomic segments: layer ranges between consecutive checkpoint
    boundaries.  Any union of consecutive segments is a dependency-legal
    block (no skip edge leaves its interior except at the seam)."""
    bounds = checkpoint_boundaries(graph)
    segs: List[Tuple[int, int]] = []
    start = 0
    for b in bounds:
        segs.append((start, b + 1))
        start = b + 1
    if start != len(graph):  # trailing layers after the last boundary
        segs.append((start, len(graph)))
    return segs


def coarsen_segments(segments: List[Tuple[int, int]], cost: CostModel,
                     max_units: int) -> List[Tuple[int, int]]:
    """Merge adjacent segments (smallest combined stash first) until at most
    ``max_units`` remain.  Keeps ResNet-1001-scale searches tractable
    without changing block legality (merged segments stay contiguous)."""
    segs = list(segments)
    if len(segs) <= max_units:
        return segs
    stash = [cost.block_activation_bytes(s, e) for s, e in segs]
    while len(segs) > max_units:
        # merge the adjacent pair with the smallest combined stash
        best_i = min(range(len(segs) - 1),
                     key=lambda i: stash[i] + stash[i + 1])
        segs[best_i] = (segs[best_i][0], segs[best_i + 1][1])
        stash[best_i] = stash[best_i] + stash[best_i + 1]
        del segs[best_i + 1]
        del stash[best_i + 1]
    return segs


def pinned_bytes_per_block(graph: LayerGraph, blocks: Sequence[Tuple[int, int]],
                           cost: CostModel) -> List[int]:
    """Per-block bytes that must stay near past the next block's forward.

    A layer whose activation feeds a block more than one step ahead (U-Net
    contracting -> expansive skips) cannot travel with the stash; those
    bytes are pinned for the iteration.
    """
    block_of = {}
    for bi, (s, e) in enumerate(blocks):
        for i in range(s, e):
            block_of[i] = bi
    pinned = [0] * len(blocks)
    for u, v in graph.edges():
        bu = block_of[graph.index_of(u)]
        bv = block_of[graph.index_of(v)]
        if bv - bu > 1:
            iu = graph.index_of(u)
            pinned[bu] += cost.layer_mem(iu).activations
    return pinned


@dataclass
class BlockingInputs:
    """Segment-space cost arrays plus the capacity budget."""

    segments: List[Tuple[int, int]]
    seg_fw: np.ndarray
    seg_bw: np.ndarray
    seg_stash: np.ndarray
    seg_weights: np.ndarray
    ledger_capacity: int        # bytes available to stashes
    swap_throughput: float      # bytes/s (Eq. 4)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def layers_of(self, seg_start: int, seg_end: int) -> Tuple[int, int]:
        """Map a segment range back to a layer range."""
        return self.segments[seg_start][0], self.segments[seg_end - 1][1]

    # prefix sums for O(1) block queries in segment space.  The query
    # methods read plain-python mirrors of the numpy prefixes: the DP
    # surrogate calls pair_cost ~10^6 times per search and numpy *scalar*
    # indexing plus float()/int() boxing dominated it (values are
    # identical — the mirrors hold the exact same IEEE doubles / int64s)
    def __post_init__(self) -> None:
        self._fw = np.concatenate([[0.0], np.cumsum(self.seg_fw)])
        self._bw = np.concatenate([[0.0], np.cumsum(self.seg_bw)])
        self._st = np.concatenate([[0], np.cumsum(self.seg_stash)])
        self._fw_list: List[float] = self._fw.tolist()
        self._bw_list: List[float] = self._bw.tolist()
        self._st_list: List[int] = self._st.tolist()

    def fw(self, a: int, b: int) -> float:
        """Forward time of segments ``[a, b)`` (prefix-sum lookup)."""
        return self._fw_list[b] - self._fw_list[a]

    def bw(self, a: int, b: int) -> float:
        """Backward time of segments ``[a, b)`` (prefix-sum lookup)."""
        return self._bw_list[b] - self._bw_list[a]

    def stash(self, a: int, b: int) -> int:
        """Stash bytes of segments ``[a, b)`` (prefix-sum lookup)."""
        return self._st_list[b] - self._st_list[a]

    def swap_time(self, a: int, b: int) -> float:
        """One-way swap time of segments ``[a, b)`` at the calibrated
        throughput."""
        return (self._st_list[b] - self._st_list[a]) / self.swap_throughput


def build_inputs(graph: LayerGraph, cost: CostModel,
                 capacity: float, max_units: int = 160) -> BlockingInputs:
    """Aggregate the cost model into segment space and size the ledger."""
    segments = coarsen_segments(segment_graph(graph), cost, max_units)
    seg_fw = np.array([cost.block_fw_time(s, e) for s, e in segments])
    seg_bw = np.array([cost.block_bw_time(s, e) for s, e in segments])
    seg_stash = np.array([cost.block_activation_bytes(s, e)
                          for s, e in segments], dtype=np.int64)
    seg_weights = np.array([cost.block_weight_bytes(s, e)
                            for s, e in segments], dtype=np.int64)
    persistent = cost.persistent_bytes()
    workspace = max((cost.block_memory(s, e).peak_workspace
                     for s, e in segments), default=0)
    # pinned long-skip activations count against the ledger permanently
    whole = [(0, len(graph))]
    pinned = sum(pinned_bytes_per_block(graph, whole, cost))
    ledger = int(capacity - persistent - workspace - pinned)
    if ledger <= 0:
        raise ValueError(
            f"model persistent state ({persistent + workspace + pinned} B) "
            f"exceeds device capacity ({int(capacity)} B); out-of-core "
            "activation swapping cannot help — weights must be distributed")
    return BlockingInputs(segments=segments, seg_fw=seg_fw, seg_bw=seg_bw,
                          seg_stash=seg_stash, seg_weights=seg_weights,
                          ledger_capacity=ledger,
                          swap_throughput=cost.transfer.swap_throughput())


def assign_policies(inputs: BlockingInputs, boundaries: Sequence[int],
                    margin_blocks: float = 2.0) -> List[BlockPolicy]:
    """Capacity-based residency: largest resident suffix that leaves a
    prefetch margin for the swapped prefix.

    ``margin_blocks`` is the in-flight buffer allowance in units of the
    largest swapped block (2 = classic double buffering; 1 = aggressive
    residency that relies on the ledger to serialize prefetches).
    """
    bounds = list(boundaries)
    blocks = list(zip([0] + bounds[:-1], bounds))
    n = len(blocks)
    stash = [inputs.stash(a, b) for a, b in blocks]
    ledger = inputs.ledger_capacity
    best_suffix = 0
    for suffix in range(n, -1, -1):
        resident_bytes = sum(stash[n - suffix:])
        swapped = stash[:n - suffix]
        margin = int(margin_blocks * max(swapped)) if swapped else 0
        if resident_bytes + margin <= ledger:
            best_suffix = suffix
            break
    policies = [BlockPolicy.SWAPPED] * (n - best_suffix) \
        + [BlockPolicy.RESIDENT] * best_suffix
    return policies


def make_problem(inputs: BlockingInputs, max_span: int = 64
                 ) -> PartitionProblem:
    """The pairwise stall surrogate over segment space.

    pair_cost([a,b), [b,c)) = uncovered backward swap-in of the earlier
    block + uncovered forward swap-out, assuming the earlier block swaps —
    an upper bound that residency assignment later relaxes.

    The problem also carries the vectorized twins the DP's batched inner
    loop consumes: ``pair_cost_batch`` prices one predecessor block
    against a whole array of successor ends straight off the numpy
    prefix-sum arrays.  Every array op is an elementwise subtraction of
    the same IEEE doubles the scalar path reads, a ``np.maximum``
    selection, or a multiply by 0.5 — all exactly equal to the scalar
    results, so both paths relax the DP identically.
    """
    ledger = inputs.ledger_capacity

    def block_feasible(a: int, b: int) -> bool:
        # a swapped block must double-buffer within the ledger
        return 2 * inputs.stash(a, b) <= ledger

    def pair_cost(a: int, b: int, c: int) -> float:
        swap_prev = inputs.swap_time(a, b)
        bw_next = inputs.bw(b, c)
        fw_next = inputs.fw(b, c)
        return max(0.0, swap_prev - bw_next) \
            + 0.5 * max(0.0, swap_prev - fw_next)

    def first_cost(a: int, b: int) -> float:
        return 0.0

    fw_prefix, bw_prefix, st_prefix = inputs._fw, inputs._bw, inputs._st

    def pair_cost_batch(a: int, b: int, cs: np.ndarray) -> np.ndarray:
        swap_prev = inputs.swap_time(a, b)
        bw_next = bw_prefix[cs] - bw_prefix[b]
        fw_next = fw_prefix[cs] - fw_prefix[b]
        return np.maximum(0.0, swap_prev - bw_next) \
            + 0.5 * np.maximum(0.0, swap_prev - fw_next)

    def block_feasible_batch(b: int, cs: np.ndarray) -> np.ndarray:
        return 2 * (st_prefix[cs] - st_prefix[b]) <= ledger

    return PartitionProblem(num_segments=inputs.num_segments,
                            pair_cost=pair_cost,
                            block_feasible=block_feasible,
                            first_cost=first_cost, max_span=max_span,
                            pair_cost_batch=pair_cost_batch,
                            block_feasible_batch=block_feasible_batch)


@dataclass
class BlockingResult:
    """Outcome of Opt-1: blocks in layer space + policies + search value."""

    boundaries_segments: List[int]
    blocks: List[Tuple[int, int]]       # layer space
    policies: List[BlockPolicy]
    objective: float                    # simulated makespan (seconds)
    method: str
    # stash tier per swapped block (empty = classic DRAM-only far pool)
    placements: Dict[int, int] = field(default_factory=dict)
    placement_policy: Optional[str] = None
    # grid points the placement-legality checks rejected during the sweep
    # (recorded, not fatal), as "ErrorType: reason" summaries
    rejected: Tuple[str, ...] = ()
    evaluated: int = 0
    # lowering-cache counters from the shared evaluator (diagnostics only)
    sim_cache: Dict[str, int] = field(default_factory=dict)


def fits_without_swapping(inputs: BlockingInputs) -> bool:
    """True when the whole stash fits the ledger (in-core regime)."""
    return int(inputs.seg_stash.sum()) <= inputs.ledger_capacity


def _uniform_bounds(u: int, k: int) -> List[int]:
    k = max(1, min(k, u))
    bounds = sorted({round((i + 1) * u / k) for i in range(k)})
    bounds[-1] = u
    return bounds


#: Entry cap for each of the evaluator's memo layers (realize / place /
#: plan).  Grid sweeps stay well below this; it only guards ACO runs that
#: probe thousands of candidates from hoarding memory.
_EVALUATOR_CACHE_ENTRIES = 4096


@dataclass
class CandidateEvaluator:
    """Prices one (boundaries, margin, placement policy) grid point.

    Module-level (not a closure) so :func:`~repro.core.solver.
    portfolio_search` can ship it to process workers by pickle.  Raises
    the underlying infeasibility error instead of flattening it to ``inf``
    — the portfolio search is responsible for skipping and recording
    rejected combinations.

    Evaluation is *batched*: every stage of a grid point's pricing
    pipeline is memoized across calls.  Residency assignment, tier
    placement and stage generation are cached here (different margins and
    placement policies very often realize the same plan), and the
    simulation itself runs through a shared
    :class:`~repro.sim.trainer_sim.LoweringCache` (``lowering``) so
    identical plans are priced once and structurally similar plans reuse
    the lowered SimOp skeleton with re-bound durations.  The portfolio
    sweep, local search and ACO refinement all hit the same caches —
    their neighbourhoods overlap heavily.
    """

    inputs: BlockingInputs
    cost: CostModel
    capacity: float
    model_name: str
    batch_size: int
    hierarchy: Optional[MemoryHierarchy] = None
    lowering: "Optional[LoweringCache]" = None

    def __post_init__(self) -> None:
        if self.lowering is None:
            from ..sim.trainer_sim import LoweringCache

            self.lowering = LoweringCache(self.cost, self.capacity,
                                          self.hierarchy)
        self._realize_cache: OrderedDict = OrderedDict()
        self._place_cache: OrderedDict = OrderedDict()
        self._plan_cache: OrderedDict = OrderedDict()

    @staticmethod
    def _memo(store: OrderedDict, key, value):
        store[key] = value
        if len(store) > _EVALUATOR_CACHE_ENTRIES:
            store.popitem(last=False)
        return value

    @staticmethod
    def _recall(store: OrderedDict, key):
        """LRU lookup: refresh recency on hit so hot shared entries are
        not evicted in insertion order."""
        value = store.get(key)
        if value is not None:
            store.move_to_end(key)
        return value

    def realize(self, bounds: Sequence[int], margin: float
                ) -> Tuple[List[Tuple[int, int]], List[BlockPolicy]]:
        """Turn segment boundaries + a residency margin into concrete
        layer blocks and per-block policies (memoized)."""
        key = (tuple(bounds), margin)
        hit = self._recall(self._realize_cache, key)
        if hit is None:
            seg_bounds = list(bounds)
            blocks = [self.inputs.layers_of(a, b)
                      for a, b in zip([0] + seg_bounds[:-1], seg_bounds)]
            policies = assign_policies(self.inputs, seg_bounds, margin)
            hit = self._memo(self._realize_cache, key, (blocks, policies))
        # copies: callers (Opt-2, local search) mutate policy lists freely
        return list(hit[0]), list(hit[1])

    def place(self, blocks: List[Tuple[int, int]],
              policies: List[BlockPolicy],
              ppolicy: Optional[str]) -> Dict[int, int]:
        """Assign stash tiers for one candidate under ``ppolicy``
        (memoized; empty without a hierarchy)."""
        from ..tiering.placement import assign_tiers

        if self.hierarchy is None or ppolicy is None:
            return {}
        key = (tuple(blocks), tuple(policies), ppolicy)
        hit = self._recall(self._place_cache, key)
        if hit is None:
            hit = self._memo(
                self._place_cache, key,
                assign_tiers(blocks, policies, self.cost, self.hierarchy,
                             policy=ppolicy).placements)
        return dict(hit)

    def plan_for(self, blocks: List[Tuple[int, int]],
                 policies: List[BlockPolicy],
                 placements: Dict[int, int]):
        """The validated :class:`~repro.core.schedule.ExecutionPlan` for a
        realized grid point (stage generation + validation memoized)."""
        key = (tuple(blocks), tuple(policies),
               tuple(sorted(placements.items())))
        plan = self._recall(self._plan_cache, key)
        if plan is None:
            plan = self._memo(
                self._plan_cache, key,
                make_plan(self.model_name, self.batch_size, blocks,
                          policies, placements=placements))
        return plan

    def __call__(self, bounds: Sequence[int], margin: float,
                 ppolicy: Optional[str]) -> float:
        from ..sim.trainer_sim import simulate_plan

        blocks, policies = self.realize(bounds, margin)
        placements = self.place(blocks, policies, ppolicy)
        plan = self.plan_for(blocks, policies, placements)
        return simulate_plan(plan, self.cost, self.capacity,
                             hierarchy=self.hierarchy,
                             cache=self.lowering).makespan

    def safe(self, bounds: Sequence[int], margin: float,
             ppolicy: Optional[str]) -> float:
        """``inf``-on-reject wrapper for the refinement loops (local
        search / ACO probe many illegal neighbours by design)."""
        from ..sim.trainer_sim import OutOfCoreInfeasible
        from ..tiering.placement import PlacementError

        try:
            return self(bounds, margin, ppolicy)
        except (OutOfCoreInfeasible, PlacementError, ValueError):
            return math.inf


def solve_blocking(graph: LayerGraph, cost: CostModel, capacity: float,
                   model_name: str, batch_size: int,
                   method: str = "auto", max_span: int = 64,
                   aco_config: Optional[AcoConfig] = None,
                   hierarchy: Optional[MemoryHierarchy] = None,
                   placement_policy: str = "auto",
                   n_workers: int = 1,
                   lowering: "Optional[LoweringCache]" = None
                   ) -> BlockingResult:
    """Run Opt-1 end to end and return the best blocking found.

    Args:
        graph/cost/capacity: the planning context — model graph, its
            profiled cost model, and the device capacity in bytes.
        model_name/batch_size: stamped onto the trial plans.
        method: search strategy —

            * ``'auto'``    — candidate portfolio (DP surrogate,
              per-segment fine blocking, uniform-K) x residency margins,
              scored by the event simulator, refined by local search;
            * ``'dp'``      — DP surrogate boundaries only (ablation);
            * ``'aco'``     — 'auto' seed + ant-colony refinement
              (MIDACO role);
            * ``'uniform'`` — naive equal-segment blocks (ablation
              baseline).
        max_span: cap on block span in coarsened segments.
        aco_config: ant-colony knobs for ``method='aco'``.
        hierarchy: adds a third search dimension — the stash placement
            policy — and scores every candidate with tier-aware
            simulation: a candidate whose stash overflows the DRAM budget
            is only feasible if a storage tier can absorb the spill.
            Combinations a placement-legality check rejects are skipped
            and surfaced in ``result.rejected``.
        placement_policy: ``'bandwidth'`` / ``'pressure'``, or ``'auto'``
            to try both.
        n_workers: shard the portfolio sweep across a process pool; the
            result is bit-identical to the serial sweep (deterministic
            ``(value, index)`` tie-breaking in :func:`portfolio_search`).
        lowering: share one :class:`~repro.sim.trainer_sim.LoweringCache`
            between this search and the caller's other pricing passes
            (the planner hands the same cache to Opt-2, whose trial plans
            share blocks with the winning blocking); omitted, the
            evaluator builds its own.

    Returns:
        A :class:`BlockingResult` — blocks, policies, placements, the
        simulated objective, and search diagnostics.
    """
    from ..sim.trainer_sim import OutOfCoreInfeasible, simulate_plan
    from ..tiering.placement import PlacementError

    inputs = build_inputs(graph, cost, capacity)
    u = inputs.num_segments

    if fits_without_swapping(inputs):
        boundaries = [u]
        blocks = [inputs.layers_of(0, u)]
        policies = [BlockPolicy.RESIDENT]
        plan = make_plan(model_name, batch_size, blocks, policies)
        res = simulate_plan(plan, cost, capacity)
        return BlockingResult(boundaries_segments=boundaries, blocks=blocks,
                              policies=policies, objective=res.makespan,
                              method="in-core")

    problem = make_problem(inputs, max_span=max_span)
    margins = (0.5, 1.0, 2.0)
    if hierarchy is None:
        ppolicies: Tuple[Optional[str], ...] = (None,)
    elif placement_policy == "auto":
        # without a storage tier both policies place everything in DRAM —
        # sweeping them would just simulate identical plans twice
        ppolicies = ("bandwidth", "pressure") if hierarchy.has_storage \
            else ("bandwidth",)
    else:
        ppolicies = (placement_policy,)

    evaluator = CandidateEvaluator(inputs=inputs, cost=cost,
                                   capacity=capacity, model_name=model_name,
                                   batch_size=batch_size,
                                   hierarchy=hierarchy, lowering=lowering)

    # candidate portfolio ----------------------------------------------------
    candidates: List[List[int]] = []
    if method in ("auto", "dp", "aco"):
        try:
            candidates.append(solve_dp(problem))
        except ValueError:
            pass
    if method in ("auto", "aco"):
        candidates.append(list(range(1, u + 1)))  # per-segment fine blocking
        overflow = inputs.seg_stash.sum() / max(1, inputs.ledger_capacity)
        for k in {max(2, int(math.ceil(2 * overflow))), 8, 16, u // 4 or 2}:
            candidates.append(_uniform_bounds(u, k))
    if method == "uniform":
        overflow = inputs.seg_stash.sum() / max(1, inputs.ledger_capacity)
        candidates.append(_uniform_bounds(
            u, max(2, int(math.ceil(2 * overflow)))))

    sweep = portfolio_search(
        candidates, (margins, ppolicies), evaluator, n_workers=n_workers,
        reject_on=(OutOfCoreInfeasible, PlacementError, ValueError))
    best_bounds, best_dims, best_value = sweep
    rejected = tuple(f"{r.error_type}: {r.reason}" for r in sweep.rejected)
    if best_bounds is None or not math.isfinite(best_value):
        raise ValueError(
            "no feasible blocking found within device capacity"
            + (f" ({len(rejected)} grid point(s) rejected; first: "
               f"{rejected[0]})" if rejected else ""))
    best_margin, best_ppolicy = best_dims

    if method in ("auto", "aco"):
        margin, ppol = best_margin, best_ppolicy
        best_bounds, best_value = local_search(
            best_bounds, u, lambda bs: evaluator.safe(bs, margin, ppol),
            problem.block_feasible, max_passes=2)
    if method == "aco":
        margin, ppol = best_margin, best_ppolicy
        best_bounds, best_value = solve_aco(
            problem, lambda bs: evaluator.safe(bs, margin, ppol),
            seed_boundaries=best_bounds, config=aco_config)

    blocks, policies = evaluator.realize(best_bounds, best_margin)
    placements = evaluator.place(blocks, policies, best_ppolicy)
    stats = evaluator.lowering.stats() if evaluator.lowering else {}
    return BlockingResult(boundaries_segments=list(best_bounds),
                          blocks=blocks, policies=policies,
                          objective=best_value, method=method,
                          placements=placements,
                          placement_policy=best_ppolicy,
                          rejected=rejected, evaluated=sweep.evaluated,
                          sim_cache=stats)
