"""The KARMA planner: Fig. 1's five-step workflow in one call.

1. build + validate the dependency graph (caller supplies the LayerGraph);
2. extract metadata: analytic FLOPs, calibrated memory classes, device and
   link parameters (the CostModel);
3. solve Optimization Problem 1 — blocking for maximum occupancy;
4. solve Optimization Problem 2 — recompute interleave;
5. generate the execution plan (stage schedule + plan string).

:func:`plan` is the package's primary public entry point.  It doubles as
the planning *service*: pass ``cache=PlanCache(...)`` and the search
outcome (steps 3-4, the expensive part) is stored under a content address
of the planning inputs, so replanning the same (model, hardware, knobs)
configuration — in this process or any later one — skips the search
entirely, and ``n_workers > 1`` shards the portfolio sweep across
processes with results bit-identical to the serial sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, TYPE_CHECKING

from ..costs.profiler import CostModel, profile_graph
from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import (
    DeviceSpec,
    HostSpec,
    abci_host,
    karma_swap_link,
    v100_sxm2_16gb,
)
from ..hardware.tiering import MemoryHierarchy
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from .blocking import BlockingResult, solve_blocking
from .recompute import RecomputeResult, apply_recompute
from .schedule import BlockPolicy, ExecutionPlan
from .stages import make_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..cache.plan_cache import PlanCache


@dataclass
class KarmaPlan:
    """A planned model: the executable schedule plus planner diagnostics."""

    plan: ExecutionPlan
    cost: CostModel
    blocking: BlockingResult
    recompute: Optional[RecomputeResult]
    capacity: float
    hierarchy: Optional[MemoryHierarchy] = None
    placement: Optional[object] = None  # tiering.PlacementResult
    cache_hit: bool = False
    cache_key: Optional[str] = None
    search_time: float = 0.0            # seconds spent in Opt-1 + Opt-2

    @property
    def is_out_of_core(self) -> bool:
        return bool(self.plan.swapped) or bool(self.plan.recomputed)

    @property
    def uses_storage(self) -> bool:
        return self.plan.uses_storage

    def describe(self) -> str:
        """Human-readable multi-line summary of the planned schedule."""
        lines = [
            f"KARMA plan for {self.plan.model_name!r} @ batch "
            f"{self.plan.batch_size}",
            f"  blocks      : {self.plan.num_blocks} "
            f"({self.blocking.method})",
            f"  swapped     : {sorted(self.plan.swapped)}",
            f"  recomputed  : {sorted(self.plan.recomputed)}",
            f"  resident    : {sorted(self.plan.resident)}",
            f"  plan string : {self.plan.plan_string()}",
        ]
        if self.recompute is not None:
            lines.append(
                f"  Opt-2 gain  : {self.recompute.improvement * 100:.1f}% "
                f"({len(self.recompute.flipped)} block(s) recomputed)")
        if self.placement is not None:
            demoted = sorted(b for b, t in self.plan.placements.items()
                             if t >= 2)
            lines.append(
                f"  placement   : {self.placement.policy} "
                f"(NVMe blocks {demoted})")
        if self.blocking.rejected:
            lines.append(
                f"  rejected    : {len(self.blocking.rejected)} grid "
                "point(s) skipped by placement-legality checks")
        if self.cache_key is not None:
            state = "hit" if self.cache_hit else "miss"
            lines.append(f"  plan cache  : {state} "
                         f"({self.cache_key[:16]}…)")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Cache payload (de)serialization
# --------------------------------------------------------------------------

def _encode_decisions(blocking: BlockingResult,
                      rec: Optional[RecomputeResult],
                      placement: Optional[object],
                      search_time: float) -> Dict[str, Any]:
    """The JSON-ready search outcome: everything needed to rebuild the
    plan without re-searching (the cost model is cheap to re-profile)."""
    payload: Dict[str, Any] = {
        "blocking": {
            "boundaries_segments": list(blocking.boundaries_segments),
            "blocks": [list(b) for b in blocking.blocks],
            "policies": [p.name for p in blocking.policies],
            "objective": blocking.objective,
            "method": blocking.method,
            "placements": {str(b): t
                           for b, t in sorted(blocking.placements.items())},
            "placement_policy": blocking.placement_policy,
            "rejected": list(blocking.rejected),
            "evaluated": blocking.evaluated,
        },
        "recompute": None,
        "placement": None,
        "search_time": search_time,
    }
    if rec is not None:
        payload["recompute"] = {
            "policies": [p.name for p in rec.policies],
            "flipped": list(rec.flipped),
            "makespan_before": rec.makespan_before,
            "makespan_after": rec.makespan_after,
        }
    if placement is not None:
        payload["placement"] = {
            "policy": placement.policy,
            "placements": {str(b): t
                           for b, t in sorted(placement.placements.items())},
            "tier_bytes": {str(t): n
                           for t, n in sorted(placement.tier_bytes.items())},
            "demoted": list(placement.demoted),
        }
    return payload


def _decode_decisions(payload: Dict[str, Any]):
    """Inverse of :func:`_encode_decisions`."""
    from ..tiering.placement import PlacementResult

    b = payload["blocking"]
    blocking = BlockingResult(
        boundaries_segments=list(b["boundaries_segments"]),
        blocks=[tuple(blk) for blk in b["blocks"]],
        policies=[BlockPolicy[name] for name in b["policies"]],
        objective=b["objective"],
        method=b["method"],
        placements={int(k): v for k, v in b["placements"].items()},
        placement_policy=b["placement_policy"],
        rejected=tuple(b.get("rejected", ())),
        evaluated=b.get("evaluated", 0),
    )
    rec = None
    if payload.get("recompute") is not None:
        r = payload["recompute"]
        rec = RecomputeResult(
            policies=[BlockPolicy[name] for name in r["policies"]],
            flipped=list(r["flipped"]),
            makespan_before=r["makespan_before"],
            makespan_after=r["makespan_after"],
        )
    placement = None
    if payload.get("placement") is not None:
        p = payload["placement"]
        placement = PlacementResult(
            placements={int(k): v for k, v in p["placements"].items()},
            policy=p["policy"],
            tier_bytes={int(k): v for k, v in p["tier_bytes"].items()},
            demoted=tuple(p["demoted"]),
        )
    return blocking, rec, placement, float(payload.get("search_time", 0.0))


def _digest_inputs(graph: LayerGraph, batch_size: int, device: DeviceSpec,
                   transfer: TransferModel, capacity: float,
                   hierarchy: Optional[MemoryHierarchy], cost: CostModel,
                   recompute: bool, method: str, max_span: int,
                   placement_policy: str) -> str:
    from ..cache.digest import plan_digest

    return plan_digest(
        graph, batch_size, device=device, transfer=transfer,
        capacity=capacity, hierarchy=hierarchy,
        knobs={
            "recompute": bool(recompute),
            "method": method,
            "max_span": int(max_span),
            "placement_policy": placement_policy,
            # cost-model scaling the calibration tables chose for this
            # graph — a calibration change must miss the cache
            "act_factor": cost.act_factor,
            "optimizer_slots": cost.optimizer_slots,
            "dtype_bytes": cost.dtype_bytes,
            # trace-fitted per-layer scale factors (empty without a
            # calibration artifact) — a recalibration must miss the cache
            "calibration": dict(cost.calibration),
        })


def plan(graph: LayerGraph, batch_size: int, *,
         device: Optional[DeviceSpec] = None,
         host: Optional[HostSpec] = None,
         transfer: Optional[TransferModel] = None,
         recompute: bool = True,
         method: str = "auto",
         max_span: int = 64,
         capacity: Optional[float] = None,
         hierarchy: Optional[MemoryHierarchy] = None,
         placement_policy: str = "auto",
         cache: "Optional[PlanCache]" = None,
         n_workers: int = 1,
         calibration: Optional[Dict[str, float]] = None) -> KarmaPlan:
    """Derive a KARMA execution plan for ``graph`` at ``batch_size``.

    Runs the paper's Fig. 1 workflow end to end: profile the graph into a
    cost model, solve Opt-1 (blocking), solve Opt-2 (recompute
    interleave), place stashes across the memory hierarchy, and emit the
    stage schedule.

    Args:
        graph: the validated model graph to plan over.
        batch_size: per-iteration batch size (drives the cost model).
        device/host: hardware specs; default to the paper's platform
            (V100 SXM2 16 GiB on an ABCI node).
        transfer: host<->device swap-path model; defaults to the
            calibrated :func:`repro.hardware.spec.karma_swap_link`.
            **Substitution note**: ABCI's host link is PCIe Gen3
            (16 GB/s), but with our roofline compute model that bandwidth
            makes every out-of-core method link-bound and collapses the
            relative differences Fig. 5 reports; modelling the
            UM-prefetch swap path at NVLink-class bandwidth restores the
            paper's compute-to-transfer ratio.  Pass
            ``transfer=TransferModel(link=pcie_gen3_x16(), ...)`` to
            study the PCIe regime.
        recompute: run the Opt-2 interleave; ``False`` yields the pure
            capacity-based strategy ("KARMA" vs "KARMA w/ recompute").
        method: Opt-1 search method (``'auto'``/``'dp'``/``'aco'``/
            ``'uniform'``, see :func:`repro.core.blocking.solve_blocking`).
        max_span: cap on block span in coarsened segments.
        capacity: device-capacity override in bytes (defaults to the
            device's usable memory).
        hierarchy: enables tiered offload — swapped stashes are placed
            across the hierarchy's tiers (DRAM first, NVMe overflow) and
            the plan carries tier-qualified swap ops; omitted, the
            planner keeps the classic unbounded-DRAM two-tier assumption.
        placement_policy: ``'bandwidth'``, ``'pressure'``, or ``'auto'``
            to let the blocking search pick.
        cache: a :class:`~repro.cache.plan_cache.PlanCache`; on a
            content-address hit the cached Opt-1/Opt-2 decisions are
            replayed and the returned plan is identical to a cold
            search's.
        n_workers: shard the portfolio sweep across this many processes
            (bit-identical to the serial sweep).
        calibration: per-layer compute scale factors (layer name ->
            multiplier on the analytic forward/backward times), typically
            the ``op_scales`` of a trace-fitted
            :class:`~repro.costs.trace_fit.CalibrationArtifact`.  The
            factors are part of the plan-cache digest, so a recalibrated
            planner never replays stale decisions.

    Returns:
        A :class:`KarmaPlan`: the executable :class:`ExecutionPlan` plus
        the cost model and search diagnostics.
    """
    from ..tiering.placement import PlacementResult, assign_tiers

    device = device or v100_sxm2_16gb()
    host = host or abci_host()
    transfer = transfer or TransferModel(link=karma_swap_link(),
                                         device=device, host=host)
    capacity = device.usable_memory if capacity is None else capacity
    t_plan = TRACER.clock()
    METRICS.counter("planner.plans").inc()
    with TRACER.span("plan.profile", "planner", model=graph.name,
                     batch=batch_size):
        cost = profile_graph(graph, device, transfer, batch_size,
                             calibration=calibration)

    key: Optional[str] = None
    if cache is not None:
        with TRACER.span("plan.cache_lookup", "planner") as sp:
            key = _digest_inputs(graph, batch_size, device, transfer,
                                 capacity, hierarchy, cost, recompute,
                                 method, max_span, placement_policy)
            payload = cache.get(key)
            sp.set(hit=payload is not None)
        if payload is not None:
            with TRACER.span("plan.cache_replay", "planner"):
                blocking, rec_result, placement, cold_time = \
                    _decode_decisions(payload)
                policies = (rec_result.policies if rec_result is not None
                            else list(blocking.policies))
                placements = placement.placements \
                    if placement is not None else {}
                final = make_plan(graph.name, batch_size, blocking.blocks,
                                  policies, placements=placements)
            METRICS.counter("planner.cache_replays").inc()
            if TRACER.enabled:
                TRACER.record("plan", "planner", start=t_plan,
                              end=TRACER.clock(), model=graph.name,
                              batch=batch_size, cache="hit",
                              blocks=final.num_blocks)
            return KarmaPlan(plan=final, cost=cost, blocking=blocking,
                             recompute=rec_result, capacity=capacity,
                             hierarchy=hierarchy, placement=placement,
                             cache_hit=True, cache_key=key,
                             search_time=cold_time)

    t_search = time.perf_counter()
    # one lowering cache spans Opt-1 and Opt-2: the searches revisit the
    # same block partitions and policy structures, so sharing it prices
    # repeated grid points at lookup cost (see sim.trainer_sim)
    from ..sim.trainer_sim import LoweringCache

    lowering = LoweringCache(cost, capacity, hierarchy)
    with TRACER.span("plan.opt1_blocking", "planner",
                     method=method) as sp:
        blocking = solve_blocking(graph, cost, capacity, graph.name,
                                  batch_size, method=method,
                                  max_span=max_span, hierarchy=hierarchy,
                                  placement_policy=placement_policy,
                                  n_workers=n_workers, lowering=lowering)
        sp.set(method=blocking.method, blocks=len(blocking.blocks),
               evaluated=blocking.evaluated,
               rejected=len(blocking.rejected))
    METRICS.counter("planner.candidates_evaluated").inc(blocking.evaluated)
    METRICS.counter("planner.candidates_rejected").inc(
        len(blocking.rejected))
    policies = list(blocking.policies)
    rec_result: Optional[RecomputeResult] = None
    if recompute and any(p is BlockPolicy.SWAPPED for p in policies):
        with TRACER.span("plan.opt2_recompute", "planner") as sp:
            rec_result = apply_recompute(graph, cost, capacity, graph.name,
                                         batch_size, blocking.blocks,
                                         policies, hierarchy=hierarchy,
                                         placement_policy=blocking
                                         .placement_policy,
                                         lowering=lowering)
            sp.set(flipped=len(rec_result.flipped),
                   improvement=round(rec_result.improvement, 6))
        policies = rec_result.policies

    # Opt-2 may have flipped swapped blocks to recompute, shrinking the
    # swapped set — re-place the survivors with the policy the search chose
    placement: Optional[PlacementResult] = None
    placements = {}
    if hierarchy is not None:
        with TRACER.span("plan.assign_tiers", "planner"):
            placement = assign_tiers(blocking.blocks, policies, cost,
                                     hierarchy,
                                     policy=blocking.placement_policy
                                     or "bandwidth")
        placements = placement.placements
    search_time = time.perf_counter() - t_search
    METRICS.histogram("planner.search_seconds").observe(search_time)

    if cache is not None and key is not None:
        with TRACER.span("plan.cache_store", "planner"):
            cache.put(key, _encode_decisions(blocking, rec_result,
                                             placement, search_time))

    final = make_plan(graph.name, batch_size, blocking.blocks, policies,
                      placements=placements)
    if TRACER.enabled:
        TRACER.record("plan", "planner", start=t_plan, end=TRACER.clock(),
                      model=graph.name, batch=batch_size,
                      cache="miss" if cache is not None else "off",
                      blocks=final.num_blocks,
                      search_s=round(search_time, 6))
    return KarmaPlan(plan=final, cost=cost, blocking=blocking,
                     recompute=rec_result, capacity=capacity,
                     hierarchy=hierarchy, placement=placement,
                     cache_hit=False, cache_key=key,
                     search_time=search_time)
