"""The KARMA planner: Fig. 1's five-step workflow in one call.

1. build + validate the dependency graph (caller supplies the LayerGraph);
2. extract metadata: analytic FLOPs, calibrated memory classes, device and
   link parameters (the CostModel);
3. solve Optimization Problem 1 — blocking for maximum occupancy;
4. solve Optimization Problem 2 — recompute interleave;
5. generate the execution plan (stage schedule + plan string).

:func:`plan` is the package's primary public entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..costs.profiler import CostModel, profile_graph
from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import (
    DeviceSpec,
    HostSpec,
    abci_host,
    karma_swap_link,
    nvlink2,
    pcie_gen3_x16,
    v100_sxm2_16gb,
)
from ..hardware.tiering import MemoryHierarchy
from .blocking import BlockingResult, solve_blocking
from .recompute import RecomputeResult, apply_recompute
from .schedule import BlockPolicy, ExecutionPlan
from .stages import make_plan


@dataclass
class KarmaPlan:
    """A planned model: the executable schedule plus planner diagnostics."""

    plan: ExecutionPlan
    cost: CostModel
    blocking: BlockingResult
    recompute: Optional[RecomputeResult]
    capacity: float
    hierarchy: Optional[MemoryHierarchy] = None
    placement: Optional[object] = None  # tiering.PlacementResult

    @property
    def is_out_of_core(self) -> bool:
        return bool(self.plan.swapped) or bool(self.plan.recomputed)

    @property
    def uses_storage(self) -> bool:
        return self.plan.uses_storage

    def describe(self) -> str:
        lines = [
            f"KARMA plan for {self.plan.model_name!r} @ batch "
            f"{self.plan.batch_size}",
            f"  blocks      : {self.plan.num_blocks} "
            f"({self.blocking.method})",
            f"  swapped     : {sorted(self.plan.swapped)}",
            f"  recomputed  : {sorted(self.plan.recomputed)}",
            f"  resident    : {sorted(self.plan.resident)}",
            f"  plan string : {self.plan.plan_string()}",
        ]
        if self.recompute is not None:
            lines.append(
                f"  Opt-2 gain  : {self.recompute.improvement * 100:.1f}% "
                f"({len(self.recompute.flipped)} block(s) recomputed)")
        if self.placement is not None:
            demoted = sorted(b for b, t in self.plan.placements.items()
                             if t >= 2)
            lines.append(
                f"  placement   : {self.placement.policy} "
                f"(NVMe blocks {demoted})")
        return "\n".join(lines)


def plan(graph: LayerGraph, batch_size: int, *,
         device: Optional[DeviceSpec] = None,
         host: Optional[HostSpec] = None,
         transfer: Optional[TransferModel] = None,
         recompute: bool = True,
         method: str = "auto",
         max_span: int = 64,
         capacity: Optional[float] = None,
         hierarchy: Optional[MemoryHierarchy] = None,
         placement_policy: str = "auto") -> KarmaPlan:
    """Derive a KARMA execution plan for ``graph`` at ``batch_size``.

    Defaults to the paper's device (V100 SXM2 16 GiB) with the calibrated
    swap path (:func:`repro.hardware.spec.karma_swap_link`).  **Substitution note**: ABCI's host link is PCIe
    Gen3 (16 GB/s), but with our roofline compute model that bandwidth
    makes every out-of-core method link-bound and collapses the relative
    differences Fig. 5 reports; modelling the UM-prefetch swap path at
    NVLink-class bandwidth restores the paper's compute-to-transfer ratio.
    Pass ``transfer=TransferModel(link=pcie_gen3_x16(), ...)`` to study the
    PCIe regime (see ``benchmarks/bench_ablation_link.py``).
    ``recompute=False`` yields the capacity-based strategy without the
    Opt-2 interleave ("KARMA" vs "KARMA w/ recompute" in Fig. 5).

    ``hierarchy`` enables tiered offload: swapped stashes are placed across
    the hierarchy's tiers (DRAM first, NVMe overflow) by the chosen
    ``placement_policy`` (``'bandwidth'``, ``'pressure'``, or ``'auto'``
    to let the blocking search pick), and the resulting plan carries
    tier-qualified swap ops.  Without a hierarchy the planner keeps the
    classic unbounded-DRAM two-tier assumption.
    """
    from ..tiering.placement import PlacementResult, assign_tiers

    device = device or v100_sxm2_16gb()
    host = host or abci_host()
    transfer = transfer or TransferModel(link=karma_swap_link(),
                                         device=device, host=host)
    capacity = device.usable_memory if capacity is None else capacity
    cost = profile_graph(graph, device, transfer, batch_size)

    blocking = solve_blocking(graph, cost, capacity, graph.name, batch_size,
                              method=method, max_span=max_span,
                              hierarchy=hierarchy,
                              placement_policy=placement_policy)
    policies = list(blocking.policies)
    rec_result: Optional[RecomputeResult] = None
    if recompute and any(p is BlockPolicy.SWAPPED for p in policies):
        rec_result = apply_recompute(graph, cost, capacity, graph.name,
                                     batch_size, blocking.blocks, policies,
                                     hierarchy=hierarchy,
                                     placement_policy=blocking
                                     .placement_policy)
        policies = rec_result.policies

    # Opt-2 may have flipped swapped blocks to recompute, shrinking the
    # swapped set — re-place the survivors with the policy the search chose
    placement: Optional[PlacementResult] = None
    placements = {}
    if hierarchy is not None:
        placement = assign_tiers(blocking.blocks, policies, cost, hierarchy,
                                 policy=blocking.placement_policy
                                 or "bandwidth")
        placements = placement.placements

    final = make_plan(graph.name, batch_size, blocking.blocks, policies,
                      placements=placements)
    return KarmaPlan(plan=final, cost=cost, blocking=blocking,
                     recompute=rec_result, capacity=capacity,
                     hierarchy=hierarchy, placement=placement)
