"""Solvers for the contiguous-partition (blocking) problem of Opt-1.

The paper formulates blocking as a two-tier ILP (Fig. 4) and solves it with
MIDACO, an ant-colony MINLP metaheuristic.  We provide three interchangeable
engines over the same problem:

* :func:`solve_dp` — exact dynamic program over the *pairwise surrogate*
  objective (sum over consecutive block pairs of their uncovered swap time).
  The surrogate makes the problem a shortest path in an expanded
  "(previous boundary, current boundary)" graph, solvable exactly.
* :func:`solve_ilp` — the same shortest-path problem written as a 0/1
  min-cost-flow ILP and handed to HiGHS via ``scipy.optimize.milp``;
  included to reproduce the paper's ILP formulation and to cross-check the
  DP (they must agree — tests assert it).
* :func:`solve_aco` — an ant-colony metaheuristic (the MIDACO stand-in)
  that optimizes an arbitrary *exact* objective callback (the event
  simulator's makespan), seeded by the DP solution.

All solvers work in "segment space": layers are first coarsened into atomic
segments at checkpoint boundaries, so a boundary vector is a subset of
segment indices.
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np
from scipy import optimize, sparse

from ..obs.metrics import METRICS
from ..obs.trace import TRACER, TraceContext, span_to_dict

#: Version of the search semantics.  Bump whenever a change to the solver
#: suite (objective, candidate portfolio, tie-breaking, placement sweep)
#: could alter the plan produced for identical inputs — the plan cache keys
#: on it, so bumping invalidates every cached plan.
SOLVER_VERSION = "2.0"


@dataclass(frozen=True)
class PartitionProblem:
    """Costs in segment space for the pairwise-surrogate objective.

    ``pair_cost(a, b, c)`` prices block [a, b) followed by [b, c): the
    backward-phase stall of the earlier block that the later block's compute
    cannot hide.  ``block_feasible(a, b)`` enforces the per-block memory
    cap (constraint 9.4 at block granularity).
    """

    num_segments: int
    pair_cost: Callable[[int, int, int], float]
    block_feasible: Callable[[int, int], bool]
    first_cost: Callable[[int, int], float]  # cost of the first block
    max_span: int = 64
    #: Optional vectorized twins of ``pair_cost`` / ``block_feasible``.
    #: ``pair_cost_batch(a, b, cs)`` prices block [a, b) against *every*
    #: successor end in the array ``cs`` at once; ``block_feasible_batch``
    #: returns the feasibility mask for ``cs``.  Both must be elementwise
    #: value-identical to their scalar twins (selection/broadcast float
    #: ops only — :func:`solve_dp` relies on exact equality to keep its
    #: relaxation order, and therefore its answer, unchanged).  When
    #: absent the DP falls back to the scalar calls.
    pair_cost_batch: Optional[
        Callable[[int, int, np.ndarray], np.ndarray]] = None
    block_feasible_batch: Optional[
        Callable[[int, np.ndarray], np.ndarray]] = None

    def spans(self, start: int) -> range:
        """Candidate next-boundary positions from ``start`` (span-capped)."""
        upper = min(self.num_segments, start + self.max_span)
        return range(start + 1, upper + 1)


def solve_dp(problem: PartitionProblem) -> List[int]:
    """Exact shortest path over (prev boundary, cur boundary) states.

    Returns the boundary list (exclusive segment end indices, final element
    = num_segments).  Raises ValueError when no feasible partition exists.

    When the problem carries batch hooks (``pair_cost_batch``), each
    state expansion prices its whole feasible span in one array call
    instead of ~``max_span`` scalar ``pair_cost`` calls — the relax loop
    over the ``best`` dict stays scalar (and identical), so the answer
    is bit-for-bit the same as the scalar path.  Feasible spans depend
    only on the block start, so they are computed once per start.
    """
    u = problem.num_segments
    if u <= 0:
        raise ValueError("empty problem")
    INF = math.inf

    # per-start feasible span ends: feasibility of [b, c) is independent
    # of the previous boundary a, so each start's span survey is shared
    # by every (a, b) state expanded from it
    span_cache: Dict[int, Tuple[List[int], np.ndarray]] = {}
    batch_feasible = problem.block_feasible_batch

    def feasible_span(b: int) -> Tuple[List[int], np.ndarray]:
        hit = span_cache.get(b)
        if hit is None:
            if batch_feasible is not None:
                cs = np.arange(b + 1,
                               min(u, b + problem.max_span) + 1,
                               dtype=np.int64)
                arr = cs[batch_feasible(b, cs)]
            else:
                arr = np.asarray([c for c in problem.spans(b)
                                  if problem.block_feasible(b, c)],
                                 dtype=np.int64)
            hit = (arr.tolist(), arr)
            span_cache[b] = hit
        return hit

    # best[(a, b)] = min cost of a partition prefix ending with block [a, b)
    best: Dict[Tuple[int, int], float] = {}
    parent: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
    for b in feasible_span(0)[0]:
        best[(0, b)] = problem.first_cost(0, b)
        parent[(0, b)] = None
    # process states in increasing b, then a (topological for appends)
    states = sorted(best.keys())
    queue = list(states)
    seen = set(states)
    qi = 0
    pair_cost_batch = problem.pair_cost_batch
    pair_cost = problem.pair_cost
    while qi < len(queue):
        a, b = queue[qi]
        qi += 1
        if b == u:
            continue
        base = best[(a, b)]
        cs, cs_arr = feasible_span(b)
        if not cs:
            continue
        if pair_cost_batch is not None:
            costs = (base + pair_cost_batch(a, b, cs_arr)).tolist()
        else:
            costs = [base + pair_cost(a, b, c) for c in cs]
        for c, cost in zip(cs, costs):
            key = (b, c)
            if cost < best.get(key, INF) - 1e-18:
                best[key] = cost
                parent[key] = (a, b)
                if key not in seen:
                    queue.append(key)
                    seen.add(key)
                else:
                    # relaxed an existing state: re-expand it
                    queue.append(key)
    finals = [(k, v) for k, v in best.items() if k[1] == u]
    if not finals:
        raise ValueError("no feasible contiguous partition under the "
                         "memory constraint")
    key = min(finals, key=lambda kv: kv[1])[0]
    boundaries: List[int] = []
    while key is not None:
        boundaries.append(key[1])
        key = parent[key]
    return sorted(boundaries)


def solve_ilp(problem: PartitionProblem,
              time_limit: float = 30.0) -> List[int]:
    """The same pairwise-surrogate problem as a 0/1 flow ILP (HiGHS).

    Nodes are (a, b) block states plus a source and sink; each unit-flow arc
    selects a block transition.  Intended for modest segment counts (the
    cross-validation role); use :func:`solve_dp` at scale.
    """
    u = problem.num_segments
    nodes: List[Tuple[int, int]] = []
    node_id: Dict[Tuple[int, int], int] = {}

    def get_node(state: Tuple[int, int]) -> int:
        if state not in node_id:
            node_id[state] = len(nodes)
            nodes.append(state)
        return node_id[state]

    arcs: List[Tuple[int, int, float]] = []  # (tail node, head node, cost)
    SOURCE = get_node((-1, 0))
    # first blocks
    frontier = []
    for b in problem.spans(0):
        if problem.block_feasible(0, b):
            n = get_node((0, b))
            arcs.append((SOURCE, n, problem.first_cost(0, b)))
            frontier.append((0, b))
    # expansions (BFS over reachable states)
    seen = set(frontier)
    qi = 0
    while qi < len(frontier):
        a, b = frontier[qi]
        qi += 1
        if b == u:
            continue
        for c in problem.spans(b):
            if not problem.block_feasible(b, c):
                continue
            tail = get_node((a, b))
            head = get_node((b, c))
            arcs.append((tail, head, problem.pair_cost(a, b, c)))
            if (b, c) not in seen:
                seen.add((b, c))
                frontier.append((b, c))
    SINK = get_node((u, u))
    for (a, b) in list(node_id):
        if b == u and (a, b) != (u, u):
            arcs.append((node_id[(a, b)], SINK, 0.0))
    if not any(head == SINK for _, head, _ in arcs):
        raise ValueError("no feasible partition (ILP graph has no sink arc)")

    n_nodes, n_arcs = len(nodes), len(arcs)
    costs = np.array([c for _, _, c in arcs])
    # flow conservation: A x = b with +1 out of source, -1 into sink
    rows, cols, vals = [], [], []
    for j, (tail, head, _) in enumerate(arcs):
        rows.append(tail), cols.append(j), vals.append(1.0)
        rows.append(head), cols.append(j), vals.append(-1.0)
    a_eq = sparse.coo_matrix((vals, (rows, cols)),
                             shape=(n_nodes, n_arcs)).tocsc()
    b_eq = np.zeros(n_nodes)
    b_eq[SOURCE] = 1.0
    b_eq[SINK] = -1.0
    res = optimize.milp(
        c=costs,
        constraints=optimize.LinearConstraint(a_eq, b_eq, b_eq),
        integrality=np.ones(n_arcs),
        bounds=optimize.Bounds(0, 1),
        options={"time_limit": time_limit},
    )
    if not res.success:
        raise RuntimeError(f"HiGHS failed on the blocking ILP: {res.message}")
    chosen = [arcs[j] for j in range(n_arcs) if res.x[j] > 0.5]
    # walk the path from source
    nxt = {tail: head for tail, head, _ in chosen}
    boundaries: List[int] = []
    cur = SOURCE
    while cur in nxt:
        cur = nxt[cur]
        state = nodes[cur]
        if state != (u, u):
            boundaries.append(state[1])
    return sorted(set(boundaries))


@dataclass
class AcoConfig:
    """Ant-colony hyper-parameters (MIDACO-style defaults, small budget)."""

    ants: int = 12
    iterations: int = 20
    alpha: float = 1.0        # pheromone exponent
    beta: float = 1.5         # heuristic exponent
    rho: float = 0.25         # evaporation
    q0: float = 0.3           # greedy-choice probability
    seed: int = 0


def solve_aco(problem: PartitionProblem,
              objective: Callable[[List[int]], float],
              seed_boundaries: Optional[List[int]] = None,
              config: Optional[AcoConfig] = None) -> Tuple[List[int], float]:
    """Ant-colony search over boundary vectors with an exact objective.

    ``objective`` prices a candidate boundary list (e.g. simulated
    makespan; ``inf`` marks infeasible).  Returns the best (boundaries,
    objective value) found, never worse than the seed.
    """
    cfg = config or AcoConfig()
    u = problem.num_segments
    rng = np.random.default_rng(cfg.seed)
    pheromone: Dict[Tuple[int, int], float] = {}

    def tau(a: int, b: int) -> float:
        return pheromone.get((a, b), 1.0)

    def heuristic(a: int, b: int, c: int) -> float:
        return 1.0 / (1.0 + problem.pair_cost(a, b, c))

    best_b: Optional[List[int]] = None
    best_v = math.inf
    if seed_boundaries is not None:
        v = objective(list(seed_boundaries))
        if math.isfinite(v):
            best_b, best_v = list(seed_boundaries), v
            for a, b in zip([0] + list(seed_boundaries), seed_boundaries):
                pheromone[(a, b)] = 2.0

    for _ in range(cfg.iterations):
        trails: List[Tuple[List[int], float]] = []
        for _ant in range(cfg.ants):
            bounds: List[int] = []
            a, b = 0, 0
            ok = True
            while b < u:
                choices = [c for c in problem.spans(b)
                           if problem.block_feasible(b, c)]
                if not choices:
                    ok = False
                    break
                weights = np.array([
                    tau(b, c) ** cfg.alpha *
                    (heuristic(a, b, c) if b > 0 else 1.0) ** cfg.beta
                    for c in choices])
                total = weights.sum()
                if total <= 0 or not np.isfinite(total):
                    c = int(rng.choice(choices))
                elif rng.random() < cfg.q0:
                    c = choices[int(np.argmax(weights))]
                else:
                    c = int(rng.choice(choices, p=weights / total))
                bounds.append(c)
                a, b = b, c
            if not ok:
                continue
            v = objective(bounds)
            if math.isfinite(v):
                trails.append((bounds, v))
                if v < best_v:
                    best_b, best_v = bounds, v
        # evaporation + deposit by this iteration's elite
        for key in list(pheromone):
            pheromone[key] *= (1.0 - cfg.rho)
        for bounds, v in sorted(trails, key=lambda t: t[1])[:3]:
            deposit = 1.0 / (1.0 + v)
            for a, b in zip([0] + bounds, bounds):
                pheromone[(a, b)] = pheromone.get((a, b), 1.0) + deposit

    if best_b is None:
        raise ValueError("ACO found no feasible partition")
    return best_b, best_v


@dataclass(frozen=True)
class RejectedCandidate:
    """One (candidate, dims) combination the evaluator refused to price.

    Placement-legality checks (a stash that fits no tier, a plan that
    deadlocks on the ledger) reject combinations mid-sweep; the search
    records them instead of crashing or requiring callers to pre-filter.
    """

    index: int                      # position in the serial sweep order
    candidate: Tuple[int, ...]
    dims: Tuple[object, ...]
    error_type: str
    reason: str


@dataclass
class PortfolioResult:
    """Outcome of :func:`portfolio_search`.

    Iterable as the legacy ``(best_candidate, best_dims, best_value)``
    triple, so existing ``a, b, c = portfolio_search(...)`` call sites keep
    working.
    """

    best_candidate: Optional[List[int]]
    best_dims: Tuple[object, ...]
    best_value: float
    evaluated: int = 0
    rejected: List[RejectedCandidate] = field(default_factory=list)
    n_workers: int = 1

    def __iter__(self):
        return iter((self.best_candidate, self.best_dims, self.best_value))


def _score(evaluate: Callable[..., float],
           reject_on: Tuple[Type[BaseException], ...],
           index: int, cand: Tuple[int, ...], combo: Tuple[object, ...]
           ) -> Tuple[int, float, Optional[Tuple[str, str]]]:
    try:
        value = float(evaluate(list(cand), *combo))
    except reject_on as exc:
        return index, math.inf, (type(exc).__name__, str(exc))
    if math.isnan(value):
        value = math.inf
    return index, value, None


# Per-process state for portfolio workers: the evaluator travels once per
# worker (pool initializer), not once per task — the evaluator carries the
# whole cost model, and re-pickling it for every grid point dominated the
# sweep at ResNet-1001 scale.  When the sweep is traced, the initializer
# also adopts the request's TraceContext and attaches a per-worker span
# collector ("sink") so shards ship their spans back with each result.
_WORKER_STATE: Dict[str, object] = {}


def _init_portfolio_worker(evaluate: Callable[..., float],
                           reject_on: Tuple[Type[BaseException], ...],
                           trace: Optional[TraceContext] = None) -> None:
    _WORKER_STATE["evaluate"] = evaluate
    _WORKER_STATE["reject_on"] = reject_on
    if trace is not None:
        TRACER.adopt_context(trace)
        _WORKER_STATE["sink"] = TRACER.attach_collector(trace.trace_id)
        _WORKER_STATE["proc"] = f"worker-{os.getpid()}"


def _score_combo(task: Tuple[int, Tuple[int, ...], Tuple[object, ...]]
                 ) -> Tuple[int, float, Optional[Tuple[str, str]],
                            Optional[List[Dict[str, object]]]]:
    """Price one grid point in a pool worker; must stay module-level
    (process workers pickle it by reference).

    Returns ``(index, value, error, spans)`` — ``spans`` is the wire
    rendering of the spans this shard recorded for the grid point (None
    when the sweep is untraced), labeled with this worker's ``proc``
    name so the stitched exporter renders one row per pool process.
    """
    index, cand, combo = task
    evaluate = _WORKER_STATE["evaluate"]
    reject_on = _WORKER_STATE["reject_on"]
    sink = _WORKER_STATE.get("sink")
    if sink is None:
        s = _score(evaluate, reject_on, index, cand, combo)  # type: ignore[arg-type]
        return s[0], s[1], s[2], None
    with TRACER.span(f"opt1.eval[{index}]", "solver", track="sweep",
                     boundaries=len(cand)) as sp:
        s = _score(evaluate, reject_on, index, cand, combo)  # type: ignore[arg-type]
        sp.set(value=(None if math.isinf(s[1]) else round(s[1], 9)),
               rejected=s[2] is not None)
    proc = str(_WORKER_STATE["proc"])
    shipped: List[Dict[str, object]] = []
    for span in sink:  # type: ignore[union-attr]
        span.proc = proc
        shipped.append(span_to_dict(span))
    del sink[:]  # type: ignore[union-attr]
    return s[0], s[1], s[2], shipped


def _parallelizable(evaluate: Callable[..., float],
                    reject_on: Tuple[Type[BaseException], ...]) -> bool:
    """Process workers receive tasks by pickle; closures cannot travel."""
    try:
        pickle.dumps((evaluate, reject_on))
        return True
    except Exception:
        return False


def portfolio_search(candidates: Sequence[Sequence[int]],
                     dimensions: Sequence[Sequence[object]],
                     evaluate: Callable[..., float], *,
                     n_workers: int = 1,
                     reject_on: Tuple[Type[BaseException], ...] = (ValueError,)
                     ) -> PortfolioResult:
    """Score a boundary-candidate portfolio against the cross-product of
    discrete side dimensions.

    The blocking search is not one-dimensional: besides the boundary vector
    it chooses a residency margin and (under a tiered hierarchy) a stash
    placement policy.  ``evaluate(candidate, *dims)`` prices one combination
    (``inf`` = infeasible).  Combinations whose evaluation raises one of
    ``reject_on`` are *skipped and recorded* in ``result.rejected`` — the
    placement-legality checks reject illegal tier assignments mid-sweep and
    the search carries on.

    Stateful evaluators are welcome: the grid is priced through the same
    ``evaluate`` object in serial sweep order (or per-worker copies of it),
    so an evaluator carrying memo tables — like
    :class:`~repro.core.blocking.CandidateEvaluator` with its shared
    lowering cache — amortizes pricing across grid points that realize the
    same plan.  Memoization must be value-transparent; determinism of the
    reduced winner relies on it.

    ``n_workers > 1`` shards the (candidate x dims) grid across a process
    pool.  Evaluations are pure and independent, and the winner is reduced
    by the lexicographic ``(value, serial index)`` minimum, so the result
    is **bit-identical to the serial sweep** regardless of worker count or
    completion order (the serial loop's strict ``<`` keeps the earliest
    minimum, which is exactly the ``(value, index)`` minimum).  When
    ``evaluate`` cannot be pickled the search degrades to the serial path.

    Returns a :class:`PortfolioResult`; ``best_candidate`` is None when no
    combination was feasible.
    """
    grid: List[Tuple[int, Tuple[int, ...], Tuple[object, ...]]] = []
    for cand in candidates:
        for combo in itertools.product(*dimensions):
            grid.append((len(grid), tuple(cand), tuple(combo)))

    use_workers = max(1, int(n_workers))
    if use_workers > 1 and (len(grid) < 2
                            or not _parallelizable(evaluate, reject_on)):
        use_workers = 1

    scores: List[Tuple[int, float, Optional[Tuple[str, str]]]] = []
    if use_workers == 1:
        if TRACER.enabled or TRACER.current() is not None:
            # per-candidate progress spans: which grid point the sweep is
            # on, what it scored, whether it was rejected mid-sweep
            with TRACER.span("opt1.sweep", "solver", grid=len(grid),
                             workers=1):
                for index, cand, combo in grid:
                    with TRACER.span(f"opt1.eval[{index}]", "solver",
                                     boundaries=len(cand)) as sp:
                        s = _score(evaluate, reject_on, index, cand, combo)
                        sp.set(value=(None if math.isinf(s[1])
                                      else round(s[1], 9)),
                               rejected=s[2] is not None)
                    scores.append(s)
        else:
            for index, cand, combo in grid:
                scores.append(_score(evaluate, reject_on, index, cand,
                                     combo))
    else:
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:          # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context("spawn")
        chunk = max(1, len(grid) // (4 * use_workers))
        # when the sweep is traced (globally, or per-request via an
        # activated context), workers adopt the trace and ship their
        # per-eval spans back with each result
        wire_trace = TRACER.current()
        if wire_trace is None and TRACER.enabled:
            wire_trace = TraceContext.new()
        with TRACER.span("opt1.sweep", "solver", grid=len(grid),
                         workers=use_workers, shard_size=chunk) as sweep_sp:
            with ProcessPoolExecutor(max_workers=use_workers,
                                     mp_context=ctx,
                                     initializer=_init_portfolio_worker,
                                     initargs=(evaluate, reject_on,
                                               wire_trace)) as pool:
                raw = list(pool.map(_score_combo, grid, chunksize=chunk))
            shipped = 0
            for index, value, error, spans in raw:
                if spans:
                    TRACER.adopt(spans)
                    shipped += len(spans)
                scores.append((index, value, error))
            if shipped:
                sweep_sp.set(shipped_spans=shipped)

    METRICS.counter("solver.grid_points").inc(len(grid))
    best_index: Optional[int] = None
    best_value = math.inf
    rejected: List[RejectedCandidate] = []
    if use_workers > 1:
        scores = sorted(scores)
    # the serial path appends in index order already; pool.map preserves
    # task order too, but sorting is kept there as a cheap invariant guard
    for index, value, error in scores:
        if error is not None:
            _, cand, combo = grid[index]
            rejected.append(RejectedCandidate(
                index=index, candidate=cand, dims=combo,
                error_type=error[0], reason=error[1]))
            continue
        if value < best_value:
            best_index, best_value = index, value
    METRICS.counter("solver.rejections").inc(len(rejected))
    if best_index is None:
        return PortfolioResult(best_candidate=None, best_dims=(),
                               best_value=math.inf, evaluated=len(grid),
                               rejected=rejected, n_workers=use_workers)
    _, best_cand, best_combo = grid[best_index]
    return PortfolioResult(best_candidate=list(best_cand),
                           best_dims=best_combo, best_value=best_value,
                           evaluated=len(grid), rejected=rejected,
                           n_workers=use_workers)


class WorkerBudget:
    """Thread-safe token pool that carves the portfolio process pool into
    per-request leases.

    The planning daemon (:mod:`repro.service`) serves many concurrent
    requests out of one machine, but the sweep's process pool
    (``n_workers`` in :func:`portfolio_search`) is a machine-wide
    resource: one huge sweep taking every core would starve every other
    queued request.  A budget holds ``total`` worker tokens; each request
    leases ``max(minimum, min(want, per_request_cap, free))`` of them for
    the duration of its search.

    The ``minimum`` floor guarantees progress — a request is always
    granted at least one worker even when the pool is exhausted, so the
    budget may transiently oversubscribe by at most one token per
    concurrent lease (a single-process sweep is just the serial path).
    The ``per_request_cap`` keeps any single sweep from monopolizing the
    pool regardless of what it asks for.

    Args:
        total: machine-wide worker tokens shared by all leases.
        per_request_cap: ceiling on any one lease's grant; defaults to
            ``total`` (no per-request cap beyond the pool itself).
    """

    def __init__(self, total: int,
                 per_request_cap: Optional[int] = None) -> None:
        if total < 1:
            raise ValueError("worker budget must hold at least 1 token")
        self.total = int(total)
        self.per_request_cap = int(per_request_cap
                                   if per_request_cap is not None else total)
        if self.per_request_cap < 1:
            raise ValueError("per-request cap must be >= 1")
        self._free = self.total
        self._lock = threading.Lock()

    @property
    def free(self) -> int:
        """Currently unleased tokens (negative while oversubscribed)."""
        with self._lock:
            return self._free

    def acquire(self, want: int = 1, *, minimum: int = 1) -> int:
        """Lease up to ``want`` workers; returns the granted count.

        Never blocks and never grants less than ``minimum`` (progress
        floor); the grant is clamped by the per-request cap and by the
        tokens currently free.  Pair every acquire with a
        :meth:`release` of the same grant — or use :meth:`lease`.
        """
        want = max(int(minimum), int(want))
        with self._lock:
            granted = max(int(minimum),
                          min(want, self.per_request_cap, self._free))
            self._free -= granted
            return granted

    def release(self, granted: int) -> None:
        """Return a lease's tokens to the pool."""
        with self._lock:
            self._free += int(granted)
            if self._free > self.total:   # release without matching acquire
                raise ValueError("worker budget over-released")

    @contextmanager
    def lease(self, want: int = 1, *,
              minimum: int = 1) -> Iterator[int]:
        """Context manager pairing :meth:`acquire` with :meth:`release`.

        Yields the granted worker count for the ``with`` body (typically
        forwarded as ``plan(..., n_workers=granted)``).
        """
        granted = self.acquire(want, minimum=minimum)
        try:
            yield granted
        finally:
            self.release(granted)


def local_search(boundaries: List[int], num_segments: int,
                 objective: Callable[[List[int]], float],
                 feasible: Callable[[int, int], bool],
                 max_passes: int = 4) -> Tuple[List[int], float]:
    """First-improvement hill climbing: shift/merge/split boundary moves."""
    cur = sorted(set(boundaries))
    if not cur or cur[-1] != num_segments:
        raise ValueError("boundaries must end at num_segments")
    cur_v = objective(cur)

    def blocks_of(bs: List[int]) -> List[Tuple[int, int]]:
        return list(zip([0] + bs[:-1], bs))

    for _ in range(max_passes):
        improved = False
        # shift each interior boundary by +-1
        for i in range(len(cur) - 1):
            for delta in (-1, 1):
                cand = list(cur)
                nb = cand[i] + delta
                lo = cand[i - 1] if i > 0 else 0
                hi = cand[i + 1]
                if not (lo < nb < hi):
                    continue
                cand[i] = nb
                if not all(feasible(s, e) for s, e in blocks_of(cand)):
                    continue
                v = objective(cand)
                if v < cur_v - 1e-15:
                    cur, cur_v = cand, v
                    improved = True
        # merge adjacent blocks
        for i in range(len(cur) - 1):
            cand = cur[:i] + cur[i + 1:]
            if not all(feasible(s, e) for s, e in blocks_of(cand)):
                continue
            v = objective(cand)
            if v < cur_v - 1e-15:
                cur, cur_v = cand, v
                improved = True
                break
        # split each block at its midpoint
        for s, e in blocks_of(cur):
            if e - s < 2:
                continue
            mid = (s + e) // 2
            cand = sorted(set(cur + [mid]))
            if not all(feasible(a, b) for a, b in blocks_of(cand)):
                continue
            v = objective(cand)
            if v < cur_v - 1e-15:
                cur, cur_v = cand, v
                improved = True
                break
        if not improved:
            break
    return cur, cur_v
