"""Solvers for the contiguous-partition (blocking) problem of Opt-1.

The paper formulates blocking as a two-tier ILP (Fig. 4) and solves it with
MIDACO, an ant-colony MINLP metaheuristic.  We provide three interchangeable
engines over the same problem:

* :func:`solve_dp` — exact dynamic program over the *pairwise surrogate*
  objective (sum over consecutive block pairs of their uncovered swap time).
  The surrogate makes the problem a shortest path in an expanded
  "(previous boundary, current boundary)" graph, solvable exactly.
* :func:`solve_ilp` — the same shortest-path problem written as a 0/1
  min-cost-flow ILP and handed to HiGHS via ``scipy.optimize.milp``;
  included to reproduce the paper's ILP formulation and to cross-check the
  DP (they must agree — tests assert it).
* :func:`solve_aco` — an ant-colony metaheuristic (the MIDACO stand-in)
  that optimizes an arbitrary *exact* objective callback (the event
  simulator's makespan), seeded by the DP solution.

All solvers work in "segment space": layers are first coarsened into atomic
segments at checkpoint boundaries, so a boundary vector is a subset of
segment indices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse


@dataclass(frozen=True)
class PartitionProblem:
    """Costs in segment space for the pairwise-surrogate objective.

    ``pair_cost(a, b, c)`` prices block [a, b) followed by [b, c): the
    backward-phase stall of the earlier block that the later block's compute
    cannot hide.  ``block_feasible(a, b)`` enforces the per-block memory
    cap (constraint 9.4 at block granularity).
    """

    num_segments: int
    pair_cost: Callable[[int, int, int], float]
    block_feasible: Callable[[int, int], bool]
    first_cost: Callable[[int, int], float]  # cost of the first block
    max_span: int = 64

    def spans(self, start: int) -> range:
        upper = min(self.num_segments, start + self.max_span)
        return range(start + 1, upper + 1)


def solve_dp(problem: PartitionProblem) -> List[int]:
    """Exact shortest path over (prev boundary, cur boundary) states.

    Returns the boundary list (exclusive segment end indices, final element
    = num_segments).  Raises ValueError when no feasible partition exists.
    """
    u = problem.num_segments
    if u <= 0:
        raise ValueError("empty problem")
    INF = math.inf
    # best[(a, b)] = min cost of a partition prefix ending with block [a, b)
    best: Dict[Tuple[int, int], float] = {}
    parent: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
    for b in problem.spans(0):
        if problem.block_feasible(0, b):
            best[(0, b)] = problem.first_cost(0, b)
            parent[(0, b)] = None
    # process states in increasing b, then a (topological for appends)
    states = sorted(best.keys())
    queue = list(states)
    seen = set(states)
    qi = 0
    while qi < len(queue):
        a, b = queue[qi]
        qi += 1
        if b == u:
            continue
        base = best[(a, b)]
        for c in problem.spans(b):
            if not problem.block_feasible(b, c):
                continue
            cost = base + problem.pair_cost(a, b, c)
            key = (b, c)
            if cost < best.get(key, INF) - 1e-18:
                best[key] = cost
                parent[key] = (a, b)
                if key not in seen:
                    queue.append(key)
                    seen.add(key)
                else:
                    # relaxed an existing state: re-expand it
                    queue.append(key)
    finals = [(k, v) for k, v in best.items() if k[1] == u]
    if not finals:
        raise ValueError("no feasible contiguous partition under the "
                         "memory constraint")
    key = min(finals, key=lambda kv: kv[1])[0]
    boundaries: List[int] = []
    while key is not None:
        boundaries.append(key[1])
        key = parent[key]
    return sorted(boundaries)


def solve_ilp(problem: PartitionProblem,
              time_limit: float = 30.0) -> List[int]:
    """The same pairwise-surrogate problem as a 0/1 flow ILP (HiGHS).

    Nodes are (a, b) block states plus a source and sink; each unit-flow arc
    selects a block transition.  Intended for modest segment counts (the
    cross-validation role); use :func:`solve_dp` at scale.
    """
    u = problem.num_segments
    nodes: List[Tuple[int, int]] = []
    node_id: Dict[Tuple[int, int], int] = {}

    def get_node(state: Tuple[int, int]) -> int:
        if state not in node_id:
            node_id[state] = len(nodes)
            nodes.append(state)
        return node_id[state]

    arcs: List[Tuple[int, int, float]] = []  # (tail node, head node, cost)
    SOURCE = get_node((-1, 0))
    # first blocks
    frontier = []
    for b in problem.spans(0):
        if problem.block_feasible(0, b):
            n = get_node((0, b))
            arcs.append((SOURCE, n, problem.first_cost(0, b)))
            frontier.append((0, b))
    # expansions (BFS over reachable states)
    seen = set(frontier)
    qi = 0
    while qi < len(frontier):
        a, b = frontier[qi]
        qi += 1
        if b == u:
            continue
        for c in problem.spans(b):
            if not problem.block_feasible(b, c):
                continue
            tail = get_node((a, b))
            head = get_node((b, c))
            arcs.append((tail, head, problem.pair_cost(a, b, c)))
            if (b, c) not in seen:
                seen.add((b, c))
                frontier.append((b, c))
    SINK = get_node((u, u))
    for (a, b) in list(node_id):
        if b == u and (a, b) != (u, u):
            arcs.append((node_id[(a, b)], SINK, 0.0))
    if not any(head == SINK for _, head, _ in arcs):
        raise ValueError("no feasible partition (ILP graph has no sink arc)")

    n_nodes, n_arcs = len(nodes), len(arcs)
    costs = np.array([c for _, _, c in arcs])
    # flow conservation: A x = b with +1 out of source, -1 into sink
    rows, cols, vals = [], [], []
    for j, (tail, head, _) in enumerate(arcs):
        rows.append(tail), cols.append(j), vals.append(1.0)
        rows.append(head), cols.append(j), vals.append(-1.0)
    a_eq = sparse.coo_matrix((vals, (rows, cols)),
                             shape=(n_nodes, n_arcs)).tocsc()
    b_eq = np.zeros(n_nodes)
    b_eq[SOURCE] = 1.0
    b_eq[SINK] = -1.0
    res = optimize.milp(
        c=costs,
        constraints=optimize.LinearConstraint(a_eq, b_eq, b_eq),
        integrality=np.ones(n_arcs),
        bounds=optimize.Bounds(0, 1),
        options={"time_limit": time_limit},
    )
    if not res.success:
        raise RuntimeError(f"HiGHS failed on the blocking ILP: {res.message}")
    chosen = [arcs[j] for j in range(n_arcs) if res.x[j] > 0.5]
    # walk the path from source
    nxt = {tail: head for tail, head, _ in chosen}
    boundaries: List[int] = []
    cur = SOURCE
    while cur in nxt:
        cur = nxt[cur]
        state = nodes[cur]
        if state != (u, u):
            boundaries.append(state[1])
    return sorted(set(boundaries))


@dataclass
class AcoConfig:
    """Ant-colony hyper-parameters (MIDACO-style defaults, small budget)."""

    ants: int = 12
    iterations: int = 20
    alpha: float = 1.0        # pheromone exponent
    beta: float = 1.5         # heuristic exponent
    rho: float = 0.25         # evaporation
    q0: float = 0.3           # greedy-choice probability
    seed: int = 0


def solve_aco(problem: PartitionProblem,
              objective: Callable[[List[int]], float],
              seed_boundaries: Optional[List[int]] = None,
              config: Optional[AcoConfig] = None) -> Tuple[List[int], float]:
    """Ant-colony search over boundary vectors with an exact objective.

    ``objective`` prices a candidate boundary list (e.g. simulated
    makespan; ``inf`` marks infeasible).  Returns the best (boundaries,
    objective value) found, never worse than the seed.
    """
    cfg = config or AcoConfig()
    u = problem.num_segments
    rng = np.random.default_rng(cfg.seed)
    pheromone: Dict[Tuple[int, int], float] = {}

    def tau(a: int, b: int) -> float:
        return pheromone.get((a, b), 1.0)

    def heuristic(a: int, b: int, c: int) -> float:
        return 1.0 / (1.0 + problem.pair_cost(a, b, c))

    best_b: Optional[List[int]] = None
    best_v = math.inf
    if seed_boundaries is not None:
        v = objective(list(seed_boundaries))
        if math.isfinite(v):
            best_b, best_v = list(seed_boundaries), v
            for a, b in zip([0] + list(seed_boundaries), seed_boundaries):
                pheromone[(a, b)] = 2.0

    for _ in range(cfg.iterations):
        trails: List[Tuple[List[int], float]] = []
        for _ant in range(cfg.ants):
            bounds: List[int] = []
            a, b = 0, 0
            ok = True
            while b < u:
                choices = [c for c in problem.spans(b)
                           if problem.block_feasible(b, c)]
                if not choices:
                    ok = False
                    break
                weights = np.array([
                    tau(b, c) ** cfg.alpha *
                    (heuristic(a, b, c) if b > 0 else 1.0) ** cfg.beta
                    for c in choices])
                total = weights.sum()
                if total <= 0 or not np.isfinite(total):
                    c = int(rng.choice(choices))
                elif rng.random() < cfg.q0:
                    c = choices[int(np.argmax(weights))]
                else:
                    c = int(rng.choice(choices, p=weights / total))
                bounds.append(c)
                a, b = b, c
            if not ok:
                continue
            v = objective(bounds)
            if math.isfinite(v):
                trails.append((bounds, v))
                if v < best_v:
                    best_b, best_v = bounds, v
        # evaporation + deposit by this iteration's elite
        for key in list(pheromone):
            pheromone[key] *= (1.0 - cfg.rho)
        for bounds, v in sorted(trails, key=lambda t: t[1])[:3]:
            deposit = 1.0 / (1.0 + v)
            for a, b in zip([0] + bounds, bounds):
                pheromone[(a, b)] = pheromone.get((a, b), 1.0) + deposit

    if best_b is None:
        raise ValueError("ACO found no feasible partition")
    return best_b, best_v


def portfolio_search(candidates: Sequence[Sequence[int]],
                     dimensions: Sequence[Sequence[object]],
                     evaluate: Callable[..., float]
                     ) -> Tuple[Optional[List[int]], Tuple[object, ...], float]:
    """Score a boundary-candidate portfolio against the cross-product of
    discrete side dimensions.

    The blocking search is not one-dimensional: besides the boundary vector
    it chooses a residency margin and (under a tiered hierarchy) a stash
    placement policy.  ``evaluate(candidate, *dims)`` prices one combination
    (``inf`` = infeasible).  Returns ``(best_candidate, best_dims,
    best_value)``; ``best_candidate`` is None when nothing was feasible.
    """
    import itertools

    best_cand: Optional[List[int]] = None
    best_dims: Tuple[object, ...] = ()
    best_value = math.inf
    for cand in candidates:
        for combo in itertools.product(*dimensions):
            value = evaluate(cand, *combo)
            if value < best_value:
                best_cand = list(cand)
                best_dims = combo
                best_value = value
    return best_cand, best_dims, best_value


def local_search(boundaries: List[int], num_segments: int,
                 objective: Callable[[List[int]], float],
                 feasible: Callable[[int, int], bool],
                 max_passes: int = 4) -> Tuple[List[int], float]:
    """First-improvement hill climbing: shift/merge/split boundary moves."""
    cur = sorted(set(boundaries))
    if not cur or cur[-1] != num_segments:
        raise ValueError("boundaries must end at num_segments")
    cur_v = objective(cur)

    def blocks_of(bs: List[int]) -> List[Tuple[int, int]]:
        return list(zip([0] + bs[:-1], bs))

    for _ in range(max_passes):
        improved = False
        # shift each interior boundary by +-1
        for i in range(len(cur) - 1):
            for delta in (-1, 1):
                cand = list(cur)
                nb = cand[i] + delta
                lo = cand[i - 1] if i > 0 else 0
                hi = cand[i + 1]
                if not (lo < nb < hi):
                    continue
                cand[i] = nb
                if not all(feasible(s, e) for s, e in blocks_of(cand)):
                    continue
                v = objective(cand)
                if v < cur_v - 1e-15:
                    cur, cur_v = cand, v
                    improved = True
        # merge adjacent blocks
        for i in range(len(cur) - 1):
            cand = cur[:i] + cur[i + 1:]
            if not all(feasible(s, e) for s, e in blocks_of(cand)):
                continue
            v = objective(cand)
            if v < cur_v - 1e-15:
                cur, cur_v = cand, v
                improved = True
                break
        # split each block at its midpoint
        for s, e in blocks_of(cur):
            if e - s < 2:
                continue
            mid = (s + e) // 2
            cand = sorted(set(cur + [mid]))
            if not all(feasible(a, b) for a, b in blocks_of(cand)):
                continue
            v = objective(cand)
            if v < cur_v - 1e-15:
                cur, cur_v = cand, v
                improved = True
                break
        if not improved:
            break
    return cur, cur_v
