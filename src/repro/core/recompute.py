"""Optimization Problem 2 (Fig. 4): interleave recompute with swap-in.

Given Opt-1's blocks and residency, flip SWAPPED blocks to RECOMPUTED where
that shrinks the pipeline's stalls.  Constraint 10.1 is the admission
filter — a block may be recomputed only if its re-forward cost up to the
next checkpoint is below the swap time it replaces — and the event
simulator is the acceptance test: a flip is kept only when the simulated
makespan strictly improves, which is the paper's framing ("recompute ...
to reduce the runtime by reducing the stalls in the pipeline"), not
gradient checkpointing's capacity framing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from ..costs.profiler import CostModel
from ..graph.layer_graph import LayerGraph
from ..graph.traversal import blocks_with_long_skips
from ..hardware.tiering import MemoryHierarchy
from .schedule import BlockPolicy
from .stages import make_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sim.trainer_sim import LoweringCache


@dataclass
class RecomputeResult:
    """Outcome of Opt-2."""

    policies: List[BlockPolicy]
    flipped: List[int]              # blocks converted to RECOMPUTED
    makespan_before: float
    makespan_after: float

    @property
    def improvement(self) -> float:
        if self.makespan_before <= 0:
            return 0.0
        return 1.0 - self.makespan_after / self.makespan_before


def _chain_length(policies: Sequence[BlockPolicy], b: int) -> int:
    """Length of the recompute chain that would end at block ``b``."""
    length = 1
    i = b - 1
    while i >= 0 and policies[i] is BlockPolicy.RECOMPUTED:
        length += 1
        i -= 1
    return length


def admissible(cost: CostModel, blocks: Sequence[Tuple[int, int]],
               policies: Sequence[BlockPolicy], b: int,
               hierarchy: Optional[MemoryHierarchy] = None,
               placements: Optional[Mapping[int, int]] = None) -> bool:
    """Constraint 10.1 for block ``b``: compute-to-checkpoint < swap time.

    Δ is the recompute chain that block ``b`` would join; its total
    re-forward cost must undercut the swap traffic it removes.  With a
    tiered placement, the removed swap includes the storage-link leg —
    an NVMe-placed block is far easier to admit than a DRAM-placed one.
    """
    if policies[b] is not BlockPolicy.SWAPPED:
        return False
    comp = 0.0
    i = b
    while i >= 0 and (i == b or policies[i] is BlockPolicy.RECOMPUTED):
        s, e = blocks[i]
        comp += cost.block_fw_time(s, e)
        i -= 1
    s, e = blocks[b]
    stash = cost.block_activation_bytes(s, e)
    swap = cost.transfer.swap_time(stash)
    if hierarchy is not None and placements:
        tier = placements.get(b, 1)
        if tier >= 2:
            swap += hierarchy.transfer_time(stash, 1, tier)
    return comp < swap


def apply_recompute(graph: LayerGraph, cost: CostModel, capacity: float,
                    model_name: str, batch_size: int,
                    blocks: Sequence[Tuple[int, int]],
                    policies: Sequence[BlockPolicy],
                    max_chain: int = 3,
                    max_evals: int = 200,
                    hierarchy: Optional[MemoryHierarchy] = None,
                    placement_policy: Optional[str] = None,
                    lowering: "Optional[LoweringCache]" = None
                    ) -> RecomputeResult:
    """Greedy Opt-2: flip admissible swapped blocks where the simulator
    confirms a strict makespan win.

    Blocks whose activations feed far-downstream blocks (U-Net long skips)
    are considered first — the paper observes the ILP converts exactly
    those to recompute (§III-F.4).

    Under a tiered ``hierarchy`` every trial is re-placed and priced with
    the storage links included, so an NVMe-placed block's expensive swap
    is weighed at its true cost — exactly the blocks recompute replaces
    most profitably.

    ``lowering`` shares the Opt-1 search's
    :class:`~repro.sim.trainer_sim.LoweringCache`: every trial keeps the
    winning block partition, so its block costs and ledger sizing are
    already cached, and re-probed policy vectors price as lookups.
    """
    from ..sim.trainer_sim import (
        LoweringCache,
        OutOfCoreInfeasible,
        simulate_plan,
    )

    if lowering is None:
        lowering = LoweringCache(cost, capacity, hierarchy)
    elif not lowering.matches(cost, capacity, hierarchy):
        raise ValueError("lowering cache does not match the Opt-2 context")

    policies = list(policies)

    def place(pols: Sequence[BlockPolicy]) -> Dict[int, int]:
        if hierarchy is None:
            return {}
        from ..tiering.placement import assign_tiers
        return assign_tiers(blocks, pols, cost, hierarchy,
                            policy=placement_policy or "bandwidth").placements

    def simulate(pols: Sequence[BlockPolicy]) -> float:
        try:
            plan = make_plan(model_name, batch_size, blocks, pols,
                             placements=place(pols))
            return simulate_plan(plan, cost, capacity, hierarchy=hierarchy,
                                 cache=lowering).makespan
        except (OutOfCoreInfeasible, ValueError):
            return math.inf

    base = simulate(policies)
    if not math.isfinite(base):
        raise ValueError("Opt-2 received an infeasible blocking")

    boundaries = [e for _, e in blocks]
    skip_first = set(blocks_with_long_skips(graph, boundaries))
    # candidate order: long-skip blocks first, then descending block index
    # (the backward phase meets high blocks first, Fig. 2c)
    candidates = sorted(
        (b for b, p in enumerate(policies) if p is BlockPolicy.SWAPPED),
        key=lambda b: (b not in skip_first, -b))

    flipped: List[int] = []
    current = base
    best_policies, best_value = list(policies), base
    # Greedy acceptance is order dependent, and on a saturated link a single
    # flip may sit on a makespan plateau until neighbours flip too.  Sweep
    # to a fixed point, accepting plateau moves (they strictly reduce swap
    # traffic, which is what eventually breaks the plateau), and return the
    # best configuration seen.
    evals = 0
    for _ in range(4):
        accepted_this_pass = False
        current_placements = place(policies)
        for b in candidates:
            if evals >= max_evals:
                break
            if policies[b] is not BlockPolicy.SWAPPED:
                continue
            if not admissible(cost, blocks, policies, b, hierarchy,
                              current_placements):
                continue
            if _chain_length(policies, b) > max_chain:
                continue
            trial = list(policies)
            trial[b] = BlockPolicy.RECOMPUTED
            value = simulate(trial)
            evals += 1
            if value <= current * (1.0 + 1e-6):
                policies = trial
                current = value
                flipped.append(b)
                accepted_this_pass = True
                current_placements = place(policies)
                if value < best_value - 1e-12:
                    best_policies, best_value = list(trial), value
        if not accepted_this_pass or evals >= max_evals:
            break

    kept = [b for b, p in enumerate(best_policies)
            if p is BlockPolicy.RECOMPUTED]
    return RecomputeResult(policies=best_policies, flipped=kept,
                           makespan_before=base, makespan_after=best_value)
