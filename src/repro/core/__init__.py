"""KARMA core: occupancy model, blocking, recompute interleave, planner."""

from .blocking import (
    BlockingInputs,
    BlockingResult,
    CandidateEvaluator,
    assign_policies,
    build_inputs,
    segment_graph,
    solve_blocking,
)
from .occupancy import (
    OccupancyEstimate,
    catch_up_step,
    estimate_blocking,
    occupancy,
    swap_in_throughput,
)
from .planner import KarmaPlan, plan
from .recompute import RecomputeResult, admissible, apply_recompute
from .schedule import (
    BlockPolicy,
    ExecutionPlan,
    Op,
    OpKind,
    PlanValidationError,
    Resource,
    Stage,
    single_block_plan,
)
from .solver import (
    SOLVER_VERSION,
    AcoConfig,
    PartitionProblem,
    PortfolioResult,
    RejectedCandidate,
    local_search,
    portfolio_search,
    solve_aco,
    solve_dp,
    solve_ilp,
)
from .stages import generate_stages, make_plan

__all__ = [
    "plan", "KarmaPlan",
    "ExecutionPlan", "Stage", "Op", "OpKind", "Resource", "BlockPolicy",
    "PlanValidationError", "single_block_plan",
    "generate_stages", "make_plan",
    "solve_blocking", "BlockingResult", "BlockingInputs", "build_inputs",
    "segment_graph", "assign_policies", "CandidateEvaluator",
    "apply_recompute", "RecomputeResult", "admissible",
    "occupancy", "swap_in_throughput", "catch_up_step", "estimate_blocking",
    "OccupancyEstimate",
    "PartitionProblem", "solve_dp", "solve_ilp", "solve_aco", "local_search",
    "portfolio_search", "PortfolioResult", "RejectedCandidate",
    "SOLVER_VERSION",
    "AcoConfig",
]
