"""Synthetic datasets with the paper's sample geometry (Table III)."""

from .synthetic import (
    CIFAR10,
    DATASETS,
    IMAGENET,
    OPENWEBTEXT,
    SSTEM,
    DatasetSpec,
    SyntheticImages,
    SyntheticSegmentation,
    SyntheticTokens,
    dataset_for_model,
)

__all__ = [
    "DatasetSpec", "SyntheticImages", "SyntheticSegmentation",
    "SyntheticTokens", "dataset_for_model",
    "IMAGENET", "CIFAR10", "SSTEM", "OPENWEBTEXT", "DATASETS",
]
