"""Deterministic synthetic datasets shaped like the paper's (Table III).

Schedule and performance behaviour depend on tensor shapes, not pixel
values, so ImageNet/CIFAR-10/ssTEM/OpenWebText are replaced by seeded
generators producing the same sample geometry.  For the accuracy-parity
experiments (§IV-D) the classification sets are *separable by
construction* (class-conditional Gaussian blobs / planted token bigrams),
so scaled-down models can be trained to convergence and compared across
execution engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class DatasetSpec:
    """Geometry of one dataset (a Table III row)."""

    name: str
    sample_shape: Tuple[int, ...]
    num_classes: int
    num_samples: int


IMAGENET = DatasetSpec("imagenet", (3, 224, 224), 1000, 1_280_000)
CIFAR10 = DatasetSpec("cifar10", (3, 32, 32), 10, 60_000)
SSTEM = DatasetSpec("sstem", (1, 512, 512), 2, 30)
OPENWEBTEXT = DatasetSpec("openwebtext", (1024,), 50304, 7_200_000)

DATASETS = {d.name: d for d in (IMAGENET, CIFAR10, SSTEM, OPENWEBTEXT)}


class SyntheticImages:
    """Class-conditional Gaussian image batches (separable, deterministic).

    Each class c has a fixed mean pattern mu_c; samples are mu_c + noise.
    A linear probe separates them, so any correct trainer drives the loss
    down — the property the accuracy-parity tests rely on.
    """

    def __init__(self, sample_shape: Tuple[int, ...], num_classes: int,
                 seed: int = 0, noise: float = 0.3, dtype=np.float32):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.sample_shape = sample_shape
        self.num_classes = num_classes
        self.noise = noise
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        self._means = rng.standard_normal(
            (num_classes,) + sample_shape).astype(dtype)
        self._seed = seed

    def batch(self, batch_size: int, step: int = 0) -> Tuple[Array, Array]:
        """Deterministic batch for iteration ``step``."""
        rng = np.random.default_rng(self._seed * 7919 + step + 1)
        labels = rng.integers(0, self.num_classes, batch_size)
        x = self._means[labels] + self.noise * rng.standard_normal(
            (batch_size,) + self.sample_shape).astype(self.dtype)
        return x.astype(self.dtype), labels

    def batches(self, batch_size: int, steps: int) -> Iterator[Tuple[Array, Array]]:
        for s in range(steps):
            yield self.batch(batch_size, s)


class SyntheticSegmentation:
    """ssTEM-like pairs: image + dense per-pixel binary labels.

    Ground truth is a thresholded smooth field of the input, so the mapping
    is learnable by a small U-Net.
    """

    def __init__(self, image: int = 512, seed: int = 0, dtype=np.float32):
        self.image = image
        self.dtype = dtype
        self._seed = seed

    def batch(self, batch_size: int, step: int = 0) -> Tuple[Array, Array]:
        rng = np.random.default_rng(self._seed * 104729 + step + 1)
        x = rng.standard_normal(
            (batch_size, 1, self.image, self.image)).astype(self.dtype)
        # smooth the field with a separable box blur to create structure
        k = max(3, self.image // 16)
        kernel = np.ones(k, dtype=self.dtype) / k
        sm = np.apply_along_axis(
            lambda r: np.convolve(r, kernel, mode="same"), 2, x)
        sm = np.apply_along_axis(
            lambda r: np.convolve(r, kernel, mode="same"), 3, sm)
        labels = (sm[:, 0] > 0).astype(np.int64)
        return x, labels


class SyntheticTokens:
    """OpenWebText-like token streams with planted bigram structure.

    Token t+1 = (a * t + b) mod vocab with per-stream noise: a next-token
    predictor can reach low perplexity, giving the Table IV PPL-parity
    experiments a meaningful target at tiny scale.
    """

    def __init__(self, vocab: int, seq_len: int, seed: int = 0,
                 noise: float = 0.05):
        if vocab < 4:
            raise ValueError("vocab must be >= 4")
        self.vocab = vocab
        self.seq_len = seq_len
        self.noise = noise
        self._seed = seed
        rng = np.random.default_rng(seed)
        self._a = int(rng.integers(2, max(3, vocab // 2)))
        self._b = int(rng.integers(1, vocab))

    def batch(self, batch_size: int, step: int = 0) -> Tuple[Array, Array]:
        """Returns (tokens, next_tokens) both (B, T) int64."""
        rng = np.random.default_rng(self._seed * 15485863 + step + 1)
        start = rng.integers(0, self.vocab, batch_size)
        toks = np.empty((batch_size, self.seq_len + 1), dtype=np.int64)
        toks[:, 0] = start
        for t in range(self.seq_len):
            nxt = (self._a * toks[:, t] + self._b) % self.vocab
            flip = rng.random(batch_size) < self.noise
            nxt = np.where(flip, rng.integers(0, self.vocab, batch_size), nxt)
            toks[:, t + 1] = nxt
        return toks[:, :-1], toks[:, 1:]


def dataset_for_model(model_name: str) -> DatasetSpec:
    """Table III's model -> dataset mapping."""
    mapping = {
        "resnet50": IMAGENET, "vgg16": IMAGENET, "resnet200": IMAGENET,
        "wrn28_10": CIFAR10, "resnet1001": CIFAR10,
        "unet": SSTEM,
    }
    if model_name.startswith("megatron") or model_name == "turing-nlg":
        return OPENWEBTEXT
    if model_name not in mapping:
        raise KeyError(f"no dataset mapping for model {model_name!r}")
    return mapping[model_name]
