"""Bandwidth-aware stash placement: which tier does each swap land in?

With a two-tier hierarchy the question never arises — every swapped stash
lands in host DRAM.  A three-tier hierarchy (HBM -> DRAM -> NVMe) poses a
real optimization problem: the NVMe link is one to two orders of magnitude
slower than the host link, so placement must weigh each block's *slack* —
how long its stash sits cold between swap-out and swap-in — against the
tiers' capacity budgets.

Blocks backward in descending order, so block b's swap-in deadline is the
end of blocks b+1..n-1's backward phase: *low-index blocks are the coldest*
(longest slack, most able to hide a slow NVMe round trip) and high-index
blocks are the hottest (their stash is needed again almost immediately).

Two policies, both returning a :class:`PlacementResult`:

* ``"bandwidth"`` (default) — greedy bandwidth-aware: walk blocks hottest
  to coldest, placing each in the fastest tier with remaining budget.  Hot
  blocks monopolize DRAM; the overflow that demotes to NVMe is exactly the
  cold prefix that can afford it.
* ``"pressure"`` — capacity-pressure fallback: start everything in DRAM
  and demote the coldest blocks to NVMe until DRAM usage drops under a
  pressure threshold.  Keeps DRAM headroom for the host-side pipeline
  (phased exchange buffers, CPU optimizer state) at the cost of extra
  storage traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import BlockPolicy
from ..costs.profiler import CostModel
from ..hardware.tiering import DRAM_TIER, MemoryHierarchy

PLACEMENT_POLICIES = ("bandwidth", "pressure")

#: Fraction of each non-device tier's capacity stashes may claim; the rest
#: is headroom for host/OS state the planner cannot see.
DEFAULT_UTILIZATION = 0.9

#: The "pressure" policy demotes until DRAM stash usage is under this
#: fraction of the DRAM budget.
DEFAULT_PRESSURE = 0.5


class PlacementError(ValueError):
    """The hierarchy cannot hold the plan's swapped stash."""


@dataclass(frozen=True)
class PlacementResult:
    """A stash-tier assignment for every swapped block."""

    placements: Dict[int, int]        # swapped block -> tier index (>= 1)
    policy: str
    tier_bytes: Dict[int, int]        # tier -> total stash bytes placed
    demoted: Tuple[int, ...]          # blocks placed past DRAM, ascending

    @property
    def uses_storage(self) -> bool:
        return bool(self.demoted)

    def describe(self) -> str:
        parts = [f"placement[{self.policy}]"]
        for tier, nbytes in sorted(self.tier_bytes.items()):
            blocks = sorted(b for b, t in self.placements.items()
                            if t == tier)
            parts.append(f"  tier {tier}: {len(blocks)} block(s), "
                         f"{nbytes / 2**20:.1f} MiB {blocks}")
        return "\n".join(parts)


def swapped_stash_bytes(blocks: Sequence[Tuple[int, int]],
                        policies: Sequence[BlockPolicy],
                        cost: CostModel) -> Dict[int, int]:
    """Stash bytes per swapped block (the bytes that travel on a swap)."""
    return {b: cost.block_activation_bytes(s, e)
            for b, ((s, e), p) in enumerate(zip(blocks, policies))
            if p is BlockPolicy.SWAPPED}


def tier_budgets(hierarchy: MemoryHierarchy,
                 utilization: float = DEFAULT_UTILIZATION) -> Dict[int, int]:
    """Stash byte budget per non-device tier."""
    if not (0.0 < utilization <= 1.0):
        raise ValueError("utilization must be in (0, 1]")
    return {t: int(hierarchy.tiers[t].capacity * utilization)
            for t in range(DRAM_TIER, hierarchy.depth)}


def placement_feasible(placements: Mapping[int, int],
                       stash: Mapping[int, int],
                       hierarchy: MemoryHierarchy,
                       utilization: float = DEFAULT_UTILIZATION) -> bool:
    """True when every tier's placed stash fits its budget.

    Conservative: all swapped stashes are counted as coexisting in their
    tier (they do, between the forward and backward phases).
    """
    budgets = tier_budgets(hierarchy, utilization)
    used: Dict[int, int] = {}
    for b, tier in placements.items():
        if tier not in budgets:
            return False
        used[tier] = used.get(tier, 0) + stash[b]
    return all(used.get(t, 0) <= budgets[t] for t in budgets)


def _result(placements: Dict[int, int], stash: Mapping[int, int],
            policy: str) -> PlacementResult:
    tier_bytes: Dict[int, int] = {}
    for b, t in placements.items():
        tier_bytes[t] = tier_bytes.get(t, 0) + stash[b]
    demoted = tuple(sorted(b for b, t in placements.items() if t >= 2))
    return PlacementResult(placements=placements, policy=policy,
                           tier_bytes=tier_bytes, demoted=demoted)


def bandwidth_aware_placement(stash: Mapping[int, int],
                              hierarchy: MemoryHierarchy, *,
                              utilization: float = DEFAULT_UTILIZATION
                              ) -> PlacementResult:
    """Greedy bandwidth-aware placement: hottest blocks get the fastest
    tier with remaining budget.

    Hotness is swap-in urgency: high block indices backward first, so they
    are placed first and claim DRAM; the cold low-index overflow demotes
    down the hierarchy where its slack can absorb the slower links.
    """
    budgets = tier_budgets(hierarchy, utilization)
    free = dict(budgets)
    placements: Dict[int, int] = {}
    for b in sorted(stash, reverse=True):          # hottest first
        need = stash[b]
        for tier in sorted(free):                  # fastest tier first
            if need <= free[tier]:
                placements[b] = tier
                free[tier] -= need
                break
        else:
            raise PlacementError(
                f"block {b} stash ({need} B) fits no tier: free "
                f"{ {t: v for t, v in free.items()} } of budgets "
                f"{budgets} — the hierarchy cannot hold this plan")
    return _result(placements, stash, "bandwidth")


def capacity_pressure_placement(stash: Mapping[int, int],
                                hierarchy: MemoryHierarchy, *,
                                utilization: float = DEFAULT_UTILIZATION,
                                pressure: float = DEFAULT_PRESSURE
                                ) -> PlacementResult:
    """Capacity-pressure fallback: demote cold blocks until DRAM relaxes.

    Everything starts in DRAM; while DRAM usage exceeds ``pressure`` of its
    budget (or the budget outright), the coldest DRAM-resident block
    demotes to the shallowest deeper tier with room.  Without a storage
    tier the pressure target is unreachable but legal — only a hard budget
    overflow raises.
    """
    if not (0.0 < pressure <= 1.0):
        raise ValueError("pressure must be in (0, 1]")
    budgets = tier_budgets(hierarchy, utilization)
    placements: Dict[int, int] = {b: DRAM_TIER for b in stash}
    used: Dict[int, int] = {t: 0 for t in budgets}
    used[DRAM_TIER] = sum(stash.values())
    target = int(budgets[DRAM_TIER] * pressure)
    deeper = [t for t in sorted(budgets) if t > DRAM_TIER]
    cold_order = sorted(stash)                     # coldest (lowest) first
    for b in cold_order:
        if used[DRAM_TIER] <= target:
            break
        for tier in deeper:
            if used[tier] + stash[b] <= budgets[tier]:
                placements[b] = tier
                used[DRAM_TIER] -= stash[b]
                used[tier] += stash[b]
                break
    if used[DRAM_TIER] > budgets[DRAM_TIER]:
        raise PlacementError(
            f"DRAM stash {used[DRAM_TIER]} B exceeds budget "
            f"{budgets[DRAM_TIER]} B and no deeper tier has room")
    return _result(placements, stash, "pressure")


def random_legal_placement(stash: Mapping[int, int],
                           hierarchy: MemoryHierarchy,
                           rng: np.random.Generator, *,
                           utilization: float = DEFAULT_UTILIZATION
                           ) -> PlacementResult:
    """A uniformly random tier per block, repaired to respect budgets.

    Test utility: the bit-exactness suite asserts gradient equality under
    arbitrary legal placements, not just the ones the policies produce.
    """
    budgets = tier_budgets(hierarchy, utilization)
    tiers = sorted(budgets)
    free = dict(budgets)
    placements: Dict[int, int] = {}
    order = list(stash)
    rng.shuffle(order)
    for b in order:
        need = stash[b]
        choices = [t for t in tiers if need <= free[t]]
        if not choices:
            raise PlacementError(f"block {b} stash ({need} B) fits no tier")
        t = int(rng.choice(choices))
        placements[b] = t
        free[t] -= need
    return _result(placements, stash, "random")


def assign_tiers(blocks: Sequence[Tuple[int, int]],
                 policies: Sequence[BlockPolicy],
                 cost: CostModel,
                 hierarchy: Optional[MemoryHierarchy], *,
                 policy: str = "bandwidth",
                 utilization: float = DEFAULT_UTILIZATION,
                 pressure: float = DEFAULT_PRESSURE) -> PlacementResult:
    """Place every swapped block's stash in a tier of ``hierarchy``.

    ``hierarchy=None`` means the legacy unbounded-DRAM assumption: all
    stashes in DRAM, no capacity check (the seed's behaviour).
    """
    stash = swapped_stash_bytes(blocks, policies, cost)
    if hierarchy is None:
        return _result({b: DRAM_TIER for b in stash}, stash, "dram-only")
    if policy == "bandwidth":
        return bandwidth_aware_placement(stash, hierarchy,
                                         utilization=utilization)
    if policy == "pressure":
        return capacity_pressure_placement(stash, hierarchy,
                                           utilization=utilization,
                                           pressure=pressure)
    raise ValueError(f"unknown placement policy {policy!r}; "
                     f"choose from {PLACEMENT_POLICIES}")
