"""Tiered offload: stash placement across an N-level memory hierarchy.

The :mod:`repro.hardware.tiering` module models *what the hierarchy is*
(tier capacities, link bandwidths, runtime pools); this package decides
*how to use it*: which tier each swapped block's stash lands in, given the
blocking, the cost model, and the hierarchy's capacity/bandwidth profile.
"""

from .placement import (
    PLACEMENT_POLICIES,
    PlacementError,
    PlacementResult,
    assign_tiers,
    bandwidth_aware_placement,
    capacity_pressure_placement,
    placement_feasible,
    random_legal_placement,
    swapped_stash_bytes,
)

__all__ = [
    "PLACEMENT_POLICIES", "PlacementError", "PlacementResult",
    "assign_tiers", "bandwidth_aware_placement",
    "capacity_pressure_placement", "placement_feasible",
    "random_legal_placement", "swapped_stash_bytes",
]
