"""Baseline schedulers (Table I competitors) + the capability matrix."""

from .registry import FIG5_METHODS, SCHEDULERS, SchedulerEntry, capability_matrix
from .schedulers import (
    InCoreInfeasible,
    checkmate_plan,
    checkpointing_plan,
    incore_plan,
    ooc_cudnn_plan,
    superneurons_plan,
    vdnn_plan,
)

__all__ = [
    "SCHEDULERS", "SchedulerEntry", "capability_matrix", "FIG5_METHODS",
    "incore_plan", "vdnn_plan", "ooc_cudnn_plan", "superneurons_plan",
    "checkpointing_plan", "checkmate_plan", "InCoreInfeasible",
]
