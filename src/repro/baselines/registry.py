"""Scheduler registry + the Table I capability matrix.

Each entry describes a method's approach and systemic capabilities exactly
as Table I summarizes them; the matrix is *generated* from this metadata by
``benchmarks/bench_table1_capabilities.py`` so the table stays in sync with
what the code actually implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.planner import plan as karma_plan
from ..core.schedule import ExecutionPlan
from ..costs.profiler import CostModel
from ..graph.layer_graph import LayerGraph
from .schedulers import (
    checkmate_plan,
    checkpointing_plan,
    incore_plan,
    ooc_cudnn_plan,
    superneurons_plan,
    vdnn_plan,
)


@dataclass(frozen=True)
class SchedulerEntry:
    """One row of Table I."""

    name: str
    approach: str                 # OOC / RECOMP / OOC & RECOMP / MP
    min_memory: str               # "None", "O(sqrt N)", "O(sqrt P)"
    universal: bool               # works on any model family unchanged
    multi_node: bool
    strong_scaling: Optional[bool]   # None = N/A in the paper's table
    fault_tolerance: Optional[bool]
    reference: str
    build: Optional[Callable[..., ExecutionPlan]] = None


def _karma(graph: LayerGraph, cost: CostModel, capacity: float,
           batch_size: int) -> ExecutionPlan:
    kp = karma_plan(graph, batch_size, device=cost.device,
                    transfer=cost.transfer, recompute=False,
                    capacity=capacity)
    return kp.plan


def _karma_recompute(graph: LayerGraph, cost: CostModel, capacity: float,
                     batch_size: int) -> ExecutionPlan:
    kp = karma_plan(graph, batch_size, device=cost.device,
                    transfer=cost.transfer, recompute=True,
                    capacity=capacity)
    return kp.plan


SCHEDULERS: Dict[str, SchedulerEntry] = {
    "in-core": SchedulerEntry(
        "in-core", "none", "full footprint", True, True, True, True,
        "baseline", build=incore_plan),
    "vdnn++": SchedulerEntry(
        "vDNN++", "OOC", "None", False, False, None, None, "[10]",
        build=vdnn_plan),
    "ooc_cudnn": SchedulerEntry(
        "ooc_cuDNN", "OOC", "None", False, False, None, None, "[11]",
        build=ooc_cudnn_plan),
    "checkpoint": SchedulerEntry(
        "Gradient Checkpoint", "RECOMP", "O(sqrt N)", True, True, False,
        True, "[16]", build=checkpointing_plan),
    "superneurons": SchedulerEntry(
        "SuperNeurons", "OOC & RECOMP", "O(sqrt N)", False, False, None,
        None, "[12]", build=superneurons_plan),
    "checkmate": SchedulerEntry(
        "Checkmate", "RECOMP", "O(sqrt N)", False, False, None, None,
        "[20]", build=checkmate_plan),
    "flexflow": SchedulerEntry(
        "FlexFlow", "Explicit MP", "O(sqrt P)", False, True, True, False,
        "[18]", build=None),  # model parallelism: out of scope, row only
    "graph-partition": SchedulerEntry(
        "Graph Partitioning", "Implicit MP", "None", True, False, False,
        False, "[17]", build=None),
    "karma": SchedulerEntry(
        "KARMA", "OOC & RECOMP", "None", True, True, True, True,
        "this work", build=_karma),
    "karma+recompute": SchedulerEntry(
        "KARMA (w/ recompute)", "OOC & RECOMP", "None", True, True, True,
        True, "this work", build=_karma_recompute),
}


def capability_matrix() -> List[Dict[str, str]]:
    """Table I as a list of row dicts (rendered by the bench)."""

    def mark(v: Optional[bool]) -> str:
        if v is None:
            return "N/A"
        return "yes" if v else "no"

    rows = []
    for entry in SCHEDULERS.values():
        if entry.name == "in-core":
            continue
        rows.append({
            "Name": entry.name,
            "Approach": entry.approach,
            "Min.Req. Memory": entry.min_memory,
            "Universal": mark(entry.universal),
            "Multi-node": mark(entry.multi_node),
            "Strong Scaling (MN)": mark(entry.strong_scaling),
            "Fault Tolerance (MN)": mark(entry.fault_tolerance),
            "Ref.": entry.reference,
        })
    return rows


FIG5_METHODS = ("in-core", "vdnn++", "superneurons", "checkmate",
                "karma", "karma+recompute")
