"""Baseline schedulers: the related-work strategies of Table I and Fig. 5.

Every baseline emits a standard :class:`ExecutionPlan`, so the same event
simulator prices KARMA and its competitors — differences in Fig. 5 come
from *strategy*, never from a different timing model.

* **in-core** — no swapping; feasible only while the unmanaged footprint
  fits (the first batch size of each Fig. 5 panel).
* **vDNN++ family** (Fig. 2a) — eager per-segment swap-out of everything,
  including the model tail (the forward->backward turnaround stall), with
  one-block-lookahead prefetch.
* **ooc_cuDNN** — per-segment swaps with *no* cross-layer prefetch
  ("the swapping of tensors is limited to the scope of a single layer").
* **SuperNeurons** — type-driven policy: conv-dominated segments swap,
  cheap segments recompute; eager swap-out without capacity-based
  residency, one-ahead prefetch.
* **gradient checkpointing** (Chen et al.) — sqrt(N) segments, recompute
  only (CHECKPOINTED policy keeps segment boundaries).
* **Checkmate** — memory-constrained *optimal* rematerialization: an ILP
  picks which blocks keep their stash vs recompute, no swapping.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np
from scipy import optimize

from ..core.blocking import build_inputs
from ..core.schedule import BlockPolicy, ExecutionPlan
from ..core.stages import make_plan
from ..costs.calibration import act_factor_for, optimizer_slots_for
from ..costs.memory import fits_in_core
from ..costs.profiler import CostModel
from ..graph.layer_graph import CHEAP_TO_RECOMPUTE, LayerGraph


class InCoreInfeasible(RuntimeError):
    """In-core training does not fit device memory at this batch size."""


def incore_plan(graph: LayerGraph, cost: CostModel,
                capacity: float, batch_size: int) -> ExecutionPlan:
    """Vanilla training: one resident block.  Raises when the *unmanaged*
    footprint (act-factor calibrated) exceeds capacity — the regime where
    real PyTorch OOMs even though a managed stash might fit."""
    if not fits_in_core(graph, batch_size, capacity,
                        act_factor=act_factor_for(graph.name),
                        optimizer_slots=optimizer_slots_for(graph.name)):
        raise InCoreInfeasible(
            f"{graph.name} @ batch {batch_size} exceeds device capacity")
    return make_plan(graph.name, batch_size, [(0, len(graph))],
                     [BlockPolicy.RESIDENT])


def _segment_blocks(graph: LayerGraph, cost: CostModel,
                    capacity: float) -> List[Tuple[int, int]]:
    inputs = build_inputs(graph, cost, capacity)
    return [inputs.layers_of(i, i + 1) for i in range(inputs.num_segments)]


def vdnn_plan(graph: LayerGraph, cost: CostModel, capacity: float,
              batch_size: int) -> ExecutionPlan:
    """vDNN++-style: swap every segment (even the tail), prefetch one
    block ahead.  Reproduces Fig. 2a's turnaround inefficiency."""
    blocks = _segment_blocks(graph, cost, capacity)
    policies = [BlockPolicy.SWAPPED] * len(blocks)
    return make_plan(graph.name, batch_size, blocks, policies,
                     prefetch="one_ahead")


def ooc_cudnn_plan(graph: LayerGraph, cost: CostModel, capacity: float,
                   batch_size: int) -> ExecutionPlan:
    """ooc_cuDNN-style: per-segment swaps, swap-in exactly at use."""
    blocks = _segment_blocks(graph, cost, capacity)
    policies = [BlockPolicy.SWAPPED] * len(blocks)
    return make_plan(graph.name, batch_size, blocks, policies,
                     prefetch="none")


def superneurons_plan(graph: LayerGraph, cost: CostModel, capacity: float,
                      batch_size: int) -> ExecutionPlan:
    """SuperNeurons: type-driven swap/recompute + a caching memory pool.

    Segments containing convolutions swap ("activations of convolution
    layers are swapped out"); segments of only cheap operators recompute
    ("batch normalization layers are recomputed").  Its memory pool caches
    recently-used tensors, which we model as a residency suffix sized by
    leftover capacity — but the decision is type-based, with no cost model,
    no occupancy objective and no interleave optimization, which is the
    source of its spread-out stalls in Fig. 6.
    """
    blocks = _segment_blocks(graph, cost, capacity)
    inputs = build_inputs(graph, cost, capacity)
    n = len(blocks)
    has_conv = []
    for (s, e) in blocks:
        heavy = any(graph[i].kind not in CHEAP_TO_RECOMPUTE
                    and graph[i].is_parametric for i in range(s, e))
        has_conv.append(heavy)
    stash = [cost.block_activation_bytes(s, e) for s, e in blocks]
    # the caching pool keeps the most recently produced conv segments that
    # still fit (a plain LRU over the tail), minus a double-buffer margin
    ledger = inputs.ledger_capacity
    swapped_stash = [stash[i] for i in range(n) if has_conv[i]]
    margin = 2 * max(swapped_stash) if swapped_stash else 0
    budget = max(0, ledger - margin)
    resident = [False] * n
    acc = 0
    for i in range(n - 1, -1, -1):
        if acc + stash[i] > budget:
            break
        resident[i] = True
        acc += stash[i]
    policies: List[BlockPolicy] = []
    for i in range(n):
        if resident[i]:
            policies.append(BlockPolicy.RESIDENT)
        elif has_conv[i]:
            policies.append(BlockPolicy.SWAPPED)
        else:
            policies.append(BlockPolicy.RECOMPUTED)
    # a recomputed segment needs an upstream non-recomputed source
    if policies and policies[0] is BlockPolicy.RECOMPUTED:
        policies[0] = BlockPolicy.SWAPPED
    return make_plan(graph.name, batch_size, blocks, policies,
                     prefetch="one_ahead")


def checkpointing_plan(graph: LayerGraph, cost: CostModel, capacity: float,
                       batch_size: int,
                       segments: Optional[int] = None) -> ExecutionPlan:
    """Chen et al. sqrt(N) gradient checkpointing: recompute-only.

    The model is cut into ~sqrt(U) CHECKPOINTED blocks; only block
    boundaries persist between forward and backward — the O(sqrt N) memory
    bound of Table I.
    """
    inputs = build_inputs(graph, cost, capacity)
    u = inputs.num_segments
    k = segments or max(2, int(round(math.sqrt(u))))
    k = min(k, u)
    bounds = sorted({round((i + 1) * u / k) for i in range(k)})
    bounds[-1] = u
    blocks = [inputs.layers_of(a, b)
              for a, b in zip([0] + bounds[:-1], bounds)]
    policies = [BlockPolicy.CHECKPOINTED] * len(blocks)
    return make_plan(graph.name, batch_size, blocks, policies)


def checkmate_plan(graph: LayerGraph, cost: CostModel, capacity: float,
                   batch_size: int, time_limit: float = 20.0
                   ) -> ExecutionPlan:
    """Checkmate-style optimal rematerialization via ILP (HiGHS).

    Minimize total recompute time subject to the retained stash fitting
    the memory budget: ``x_b = 1`` keeps block b's stash resident,
    ``x_b = 0`` drops it to a checkpoint (keep the boundary, re-forward in
    the backward pass).  No swapping — Checkmate is a pure recompute
    method (Table I).
    """
    inputs = build_inputs(graph, cost, capacity)
    u = inputs.num_segments
    # coarsen block granularity until the mandatory boundaries fit: fewer
    # blocks -> fewer retained boundaries (Checkmate picks its own stage
    # granularity in the original system)
    group = 1
    while group < u:
        bounds = list(range(group, u, group))
        if not bounds or bounds[-1] != u:
            bounds.append(u)
        starts = [0] + bounds[:-1]
        boundary = np.array(
            [cost.layer_mem(inputs.layers_of(a, b)[1] - 1).activations
             for a, b in zip(starts, bounds)], dtype=float)
        if boundary.sum() <= inputs.ledger_capacity:
            break
        group *= 2
    else:
        raise ValueError("even pure checkpointing does not fit memory")
    starts = [0] + bounds[:-1]
    stash = np.array([inputs.stash(a, b) for a, b in zip(starts, bounds)],
                     dtype=float)
    fw = np.array([inputs.fw(a, b) for a, b in zip(starts, bounds)])
    k = len(bounds)
    budget = float(inputs.ledger_capacity)
    # retained = sum_b x_b stash_b + (1-x_b) boundary_b <= budget, minus the
    # largest transient interior (a dropped block holds its full stash
    # while it is being forwarded/recomputed)
    # minimize sum_b (1-x_b) fw_b  ==  maximize sum_b x_b fw_b
    coeff = stash - boundary
    transient = float((stash - boundary).max()) if k else 0.0
    rhs = budget - boundary.sum() - transient
    if rhs < 0:
        raise ValueError("even pure checkpointing does not fit memory")
    res = optimize.milp(
        c=-fw,
        constraints=optimize.LinearConstraint(coeff[None, :], -np.inf, rhs),
        integrality=np.ones(k),
        bounds=optimize.Bounds(0, 1),
        options={"time_limit": time_limit},
    )
    if not res.success:
        raise RuntimeError(f"Checkmate ILP failed: {res.message}")
    keep = res.x > 0.5
    blocks = [inputs.layers_of(a, b) for a, b in zip(starts, bounds)]
    policies = [BlockPolicy.RESIDENT if keep[i] else BlockPolicy.CHECKPOINTED
                for i in range(k)]
    return make_plan(graph.name, batch_size, blocks, policies)
