"""U-Net spec graph (Ronneberger et al.) — the fully-convolutional model of
Table III (>31M params, 27 ops, ssTEM dataset).

U-Net is KARMA's stress test for non-affine skip connections (§III-F.4):
every contracting-path stage feeds a channel-concat deep in the expansive
path, so its activations stay live across nearly the whole network.  The
planner must mark those contracting blocks for *recompute* instead of
prematurely swapping them back in.

We use 'same' padding (modern U-Net practice) so skip concats align without
cropping; the ssTEM samples are single-channel 512x512 sections.
"""

from __future__ import annotations

from typing import List

from ..graph.layer_graph import LayerGraph
from .builder import Cursor, GraphBuilder


def unet(image: int = 512, in_channels: int = 1, classes: int = 2,
         base_width: int = 64, depth: int = 4) -> LayerGraph:
    """Classic 4-down/4-up U-Net with channel-concat skips."""
    if image % (2 ** depth) != 0:
        raise ValueError(f"image size {image} not divisible by 2^{depth}")
    b = GraphBuilder("unet")
    b.input((in_channels, image, image))

    skips: List[Cursor] = []
    width = base_width
    # contracting path
    for d in range(depth):
        b.conv(width, kernel=3, stride=1, padding=1, name=f"down{d}_conv1")
        b.relu()
        b.conv(width, kernel=3, stride=1, padding=1, name=f"down{d}_conv2")
        b.relu()
        skips.append(b.cursor)
        b.pool(kernel=2, stride=2, name=f"down{d}_pool")
        width *= 2
    # bottleneck
    b.conv(width, kernel=3, stride=1, padding=1, name="bottleneck_conv1")
    b.relu()
    b.conv(width, kernel=3, stride=1, padding=1, name="bottleneck_conv2")
    b.relu()
    # expansive path
    for d in reversed(range(depth)):
        width //= 2
        b.upsample(width, name=f"up{d}_upconv")
        b.concat(skips[d], name=f"up{d}_concat")
        b.conv(width, kernel=3, stride=1, padding=1, name=f"up{d}_conv1")
        b.relu()
        b.conv(width, kernel=3, stride=1, padding=1, name=f"up{d}_conv2")
        b.relu()
    b.conv(classes, kernel=1, stride=1, padding=0, name="head_conv")
    b.softmax()
    b.loss()
    return b.finish()
