"""Model registry: name -> builder, plus the Table III experiment matrix."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..graph.layer_graph import LayerGraph
from .resnet import resnet50, resnet200, resnet1001, wrn28_10
from .unet import unet
from .vgg import vgg16


@dataclass(frozen=True)
class ModelEntry:
    """One row of Table III: a model, its dataset, and Fig. 5's batch sweep."""

    name: str
    builder: Callable[[], LayerGraph]
    dataset: str
    num_samples: int
    reported_params: float      # Table III lower bound ("> 25M")
    reported_layers: int
    fig5_batch_sizes: Tuple[int, ...]  # the x-axis of the Fig. 5 panel


REGISTRY: Dict[str, ModelEntry] = {
    "resnet50": ModelEntry(
        "resnet50", resnet50, "imagenet", 1_280_000, 25e6, 50,
        fig5_batch_sizes=(128, 256, 384, 512, 640, 768)),
    "vgg16": ModelEntry(
        "vgg16", vgg16, "imagenet", 1_280_000, 169e6, 38,
        fig5_batch_sizes=(32, 64, 96, 128, 160)),
    "resnet200": ModelEntry(
        "resnet200", resnet200, "imagenet", 1_280_000, 64e6, 200,
        fig5_batch_sizes=(4, 8, 12, 16, 20, 24)),
    "wrn28_10": ModelEntry(
        "wrn28_10", wrn28_10, "cifar10", 60_000, 36e6, 28,
        fig5_batch_sizes=(256, 512, 768, 1024, 1280)),
    "resnet1001": ModelEntry(
        "resnet1001", resnet1001, "cifar10", 60_000, 10e6, 1001,
        fig5_batch_sizes=(64, 128, 192, 256, 320)),
    "unet": ModelEntry(
        "unet", unet, "sstem", 30, 31e6, 27,
        fig5_batch_sizes=(8, 16, 24, 32, 40)),
}


def build(name: str) -> LayerGraph:
    """Build a registered model's spec graph by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name].builder()


def fig5_models() -> List[ModelEntry]:
    """The six single-GPU models in the Fig. 5 order."""
    order = ("resnet50", "vgg16", "resnet200", "wrn28_10", "resnet1001", "unet")
    return [REGISTRY[name] for name in order]
