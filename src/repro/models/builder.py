"""Shape-tracking builder for assembling :class:`LayerGraph` models.

Keeps the "current tensor" (name + per-sample shape) while appending layers,
computing conv/pool output shapes, and wiring residual / long-skip edges.
All model-zoo builders (`resnet`, `vgg`, `unet`, `transformer`) sit on top
of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.layer_graph import LayerGraph, LayerKind, LayerSpec


def conv_out_hw(h: int, w: int, kernel: int, stride: int,
                padding: int) -> Tuple[int, int]:
    """Standard convolution/pooling output spatial size."""
    ho = (h + 2 * padding - kernel) // stride + 1
    wo = (w + 2 * padding - kernel) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"non-positive output size {ho}x{wo} "
            f"(in {h}x{w}, k={kernel}, s={stride}, p={padding})")
    return ho, wo


@dataclass
class Cursor:
    """A named tensor with a per-sample shape."""

    name: str
    shape: Tuple[int, ...]


class GraphBuilder:
    """Appends layers to a :class:`LayerGraph`, tracking the live cursor."""

    def __init__(self, name: str):
        self.graph = LayerGraph(name)
        self.cursor: Optional[Cursor] = None
        self._counts: Dict[str, int] = {}

    # -- naming -------------------------------------------------------------

    def _unique(self, base: str) -> str:
        n = self._counts.get(base, 0)
        self._counts[base] = n + 1
        return base if n == 0 else f"{base}_{n}"

    # -- core append ----------------------------------------------------------

    def add(self, base_name: str, kind: LayerKind, out_shape: Tuple[int, ...],
            attrs: Optional[Dict[str, float]] = None,
            inputs: Optional[List[str]] = None) -> Cursor:
        """Append a layer reading from ``inputs`` (default: the cursor)."""
        if inputs is None:
            if self.cursor is None:
                raise ValueError("no cursor; call input() first")
            inputs = [self.cursor.name]
            in_shape = self.cursor.shape
        elif inputs:
            in_shape = self.graph.layer(inputs[0]).output_shape
        else:
            in_shape = out_shape  # source layer: input == output
        name = self._unique(base_name)
        spec = LayerSpec(name=name, kind=kind, input_shape=in_shape,
                         output_shape=out_shape, attrs=dict(attrs or {}))
        self.graph.add_layer(spec, inputs=inputs)
        self.cursor = Cursor(name, out_shape)
        return self.cursor

    # -- common layers --------------------------------------------------------

    def input(self, shape: Tuple[int, ...], name: str = "input") -> Cursor:
        return self.add(name, LayerKind.INPUT, shape, inputs=[])

    def conv(self, out_channels: int, kernel: int, stride: int = 1,
             padding: Optional[int] = None, name: str = "conv",
             groups: int = 1) -> Cursor:
        c, h, w = self.cursor.shape
        if padding is None:
            padding = kernel // 2
        ho, wo = conv_out_hw(h, w, kernel, stride, padding)
        return self.add(name, LayerKind.CONV2D, (out_channels, ho, wo), {
            "kernel": kernel, "stride": stride, "padding": padding,
            "in_channels": c, "out_channels": out_channels, "groups": groups,
        })

    def bn(self, name: str = "bn") -> Cursor:
        c = self.cursor.shape[0]
        return self.add(name, LayerKind.BATCHNORM, self.cursor.shape,
                        {"channels": c})

    def relu(self, name: str = "relu") -> Cursor:
        return self.add(name, LayerKind.RELU, self.cursor.shape)

    def gelu(self, name: str = "gelu") -> Cursor:
        return self.add(name, LayerKind.GELU, self.cursor.shape)

    def pool(self, kernel: int, stride: Optional[int] = None,
             kind: LayerKind = LayerKind.POOL_MAX, padding: int = 0,
             name: str = "pool") -> Cursor:
        c, h, w = self.cursor.shape
        stride = stride or kernel
        ho, wo = conv_out_hw(h, w, kernel, stride, padding)
        return self.add(name, kind, (c, ho, wo),
                        {"kernel": kernel, "stride": stride, "padding": padding})

    def global_avg_pool(self, name: str = "gap") -> Cursor:
        c, h, w = self.cursor.shape
        return self.add(name, LayerKind.POOL_AVG, (c, 1, 1),
                        {"kernel": h, "stride": h, "padding": 0})

    def flatten(self, name: str = "flatten") -> Cursor:
        elems = 1
        for d in self.cursor.shape:
            elems *= d
        return self.add(name, LayerKind.RESHAPE, (elems,))

    def linear(self, out_features: int, name: str = "fc") -> Cursor:
        in_features = self.cursor.shape[-1]
        out_shape = self.cursor.shape[:-1] + (out_features,)
        return self.add(name, LayerKind.LINEAR, out_shape,
                        {"in_features": in_features, "out_features": out_features})

    def softmax(self, name: str = "softmax") -> Cursor:
        return self.add(name, LayerKind.SOFTMAX, self.cursor.shape)

    def dropout(self, p: float = 0.1, name: str = "dropout") -> Cursor:
        return self.add(name, LayerKind.DROPOUT, self.cursor.shape, {"p": p})

    def layernorm(self, name: str = "ln") -> Cursor:
        d = self.cursor.shape[-1]
        return self.add(name, LayerKind.LAYERNORM, self.cursor.shape, {"dim": d})

    def add_residual(self, skip: Cursor, name: str = "add") -> Cursor:
        """Element-wise add of the cursor and ``skip`` (shapes must match)."""
        if skip.shape != self.cursor.shape:
            raise ValueError(
                f"residual shape mismatch {skip.shape} vs {self.cursor.shape}")
        return self.add(name, LayerKind.ADD, self.cursor.shape,
                        inputs=[self.cursor.name, skip.name])

    def concat(self, other: Cursor, name: str = "concat") -> Cursor:
        """Channel-concat of cursor and ``other`` (U-Net skip join)."""
        c1, h1, w1 = self.cursor.shape
        c2, h2, w2 = other.shape
        if (h1, w1) != (h2, w2):
            raise ValueError(f"concat spatial mismatch {self.cursor.shape} "
                             f"vs {other.shape}")
        return self.add(name, LayerKind.CONCAT, (c1 + c2, h1, w1),
                        inputs=[self.cursor.name, other.name])

    def upsample(self, out_channels: int, name: str = "upconv") -> Cursor:
        """2x transposed-conv upsampling."""
        c, h, w = self.cursor.shape
        return self.add(name, LayerKind.UPSAMPLE, (out_channels, h * 2, w * 2),
                        {"kernel": 2, "stride": 2, "in_channels": c,
                         "out_channels": out_channels})

    def embedding(self, vocab: int, dim: int, seq_len: int,
                  name: str = "embed") -> Cursor:
        return self.add(name, LayerKind.EMBEDDING, (seq_len, dim),
                        {"vocab": vocab, "dim": dim})

    def attention(self, heads: int, name: str = "attn") -> Cursor:
        t, d = self.cursor.shape
        return self.add(name, LayerKind.ATTENTION, (t, d),
                        {"seq_len": t, "dim": d, "heads": heads})

    def loss(self, name: str = "loss") -> Cursor:
        return self.add(name, LayerKind.LOSS, (1,))

    def finish(self) -> LayerGraph:
        self.graph.validate()
        return self.graph
