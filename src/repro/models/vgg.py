"""VGG16 spec graph (Simonyan & Zisserman) — Table III: >169M params, 38 ops.

The classic configuration D: 13 convolutions in five pooled stages followed
by three fully-connected layers.  VGG's huge FC layers make it the most
parameter-heavy of the Fig. 5 models, which is why its in-core batch limit
is so low on a 16 GiB V100.
"""

from __future__ import annotations

from ..graph.layer_graph import LayerGraph
from .builder import GraphBuilder

_CFG_D = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def vgg16(image: int = 224, classes: int = 1000,
          dropout: bool = True) -> LayerGraph:
    """VGG16 with batch-norm-free conv stages (the original recipe)."""
    b = GraphBuilder("vgg16")
    b.input((3, image, image))
    for stage, (channels, convs) in enumerate(_CFG_D):
        for i in range(convs):
            b.conv(channels, kernel=3, stride=1, padding=1,
                   name=f"conv{stage + 1}_{i + 1}")
            b.relu()
        b.pool(kernel=2, stride=2, name=f"pool{stage + 1}")
    b.flatten()
    b.linear(4096, name="fc6")
    b.relu()
    if dropout:
        b.dropout(0.5)
    b.linear(4096, name="fc7")
    b.relu()
    if dropout:
        b.dropout(0.5)
    b.linear(classes, name="fc8")
    b.softmax()
    b.loss()
    return b.finish()
