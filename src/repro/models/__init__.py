"""Model zoo: spec graphs for every model in Table III + the LM configs."""

from .builder import Cursor, GraphBuilder, conv_out_hw
from .registry import REGISTRY, ModelEntry, build, fig5_models
from .resnet import resnet50, resnet200, resnet1001, wrn28_10
from .transformer import (
    MEGATRON_CONFIGS,
    TURING_NLG,
    TransformerConfig,
    megatron_lm,
    tiny_gpt,
    transformer_lm,
    turing_nlg,
)
from .unet import unet
from .vgg import vgg16

__all__ = [
    "GraphBuilder", "Cursor", "conv_out_hw",
    "resnet50", "resnet200", "resnet1001", "wrn28_10", "vgg16", "unet",
    "TransformerConfig", "MEGATRON_CONFIGS", "TURING_NLG",
    "transformer_lm", "megatron_lm", "turing_nlg", "tiny_gpt",
    "REGISTRY", "ModelEntry", "build", "fig5_models",
]
