"""GPT-2-family transformer spec graphs: Megatron-LM configurations
(Table IV) and Turing-NLG (Fig. 8).

Each transformer layer contributes ~12 H^2 parameters (attention QKVO
projections 4H^2, MLP 8H^2), so e.g. the 8.3B Megatron-LM configuration is
H=3072, L=72 and Turing-NLG is H=4256, L=78 — the same closed form the
Megatron paper reports and that our tests assert.

The KARMA planner sees every transformer layer as a block-able run of
sub-layers with short residual skips (pre-LN GPT-2 style), which §III-F.4
notes the ILP handles by keeping skip sources within one block of their
consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..graph.layer_graph import LayerGraph
from .builder import GraphBuilder


@dataclass(frozen=True)
class TransformerConfig:
    """One language-model configuration (a row of Table IV)."""

    name: str
    hidden: int
    heads: int
    layers: int
    seq_len: int = 1024
    vocab: int = 50304  # GPT-2 BPE vocabulary padded to a multiple of 128
    reported_params: float = 0.0  # the paper's P column, for reference

    @property
    def analytic_params(self) -> int:
        """12 L H^2 + 13 L H + V H + positional (closed form, tied head)."""
        h, l = self.hidden, self.layers
        per_layer = 12 * h * h + 13 * h
        embed = self.vocab * h + self.seq_len * h
        final_ln = 2 * h
        return l * per_layer + embed + final_ln


# Table IV rows (H, A, L, reported P) + Turing-NLG from §IV-C.
MEGATRON_CONFIGS: Dict[str, TransformerConfig] = {
    "megatron-0.7b": TransformerConfig("megatron-0.7b", 1152, 12, 18,
                                       reported_params=0.7e9),
    "megatron-1.2b": TransformerConfig("megatron-1.2b", 1536, 16, 40,
                                       reported_params=1.2e9),
    "megatron-2.5b": TransformerConfig("megatron-2.5b", 1920, 20, 54,
                                       reported_params=2.5e9),
    "megatron-4.2b": TransformerConfig("megatron-4.2b", 2304, 24, 64,
                                       reported_params=4.2e9),
    "megatron-8.3b": TransformerConfig("megatron-8.3b", 3072, 32, 72,
                                       reported_params=8.3e9),
}

TURING_NLG = TransformerConfig("turing-nlg", 4256, 28, 78,
                               reported_params=17e9)


def transformer_lm(config: TransformerConfig) -> LayerGraph:
    """Build the spec graph of a GPT-2-style decoder-only LM."""
    b = GraphBuilder(config.name)
    b.input((config.seq_len,))
    b.embedding(config.vocab, config.hidden, config.seq_len)
    for i in range(config.layers):
        _transformer_layer(b, config, i)
    b.layernorm(name="final_ln")
    b.linear(config.vocab, name="lm_head")
    b.softmax(name="lm_softmax")
    b.loss()
    return b.finish()


def _transformer_layer(b: GraphBuilder, cfg: TransformerConfig,
                       index: int) -> None:
    """Pre-LN GPT-2 block: LN -> MHA -> +res -> LN -> MLP(4H) -> +res."""
    entry = b.cursor
    b.layernorm(name=f"l{index}_ln1")
    b.attention(cfg.heads, name=f"l{index}_attn")
    b.dropout(0.1, name=f"l{index}_attn_drop")
    b.add_residual(entry, name=f"l{index}_add1")
    mid = b.cursor
    b.layernorm(name=f"l{index}_ln2")
    b.linear(4 * cfg.hidden, name=f"l{index}_fc1")
    b.gelu(name=f"l{index}_gelu")
    b.linear(cfg.hidden, name=f"l{index}_fc2")
    b.dropout(0.1, name=f"l{index}_mlp_drop")
    b.add_residual(mid, name=f"l{index}_add2")


def megatron_lm(size: str = "8.3b") -> LayerGraph:
    """Convenience constructor: ``megatron_lm('2.5b')`` etc."""
    key = f"megatron-{size.lower()}"
    if key not in MEGATRON_CONFIGS:
        raise KeyError(f"unknown Megatron-LM size {size!r}; "
                       f"choose from {sorted(MEGATRON_CONFIGS)}")
    return transformer_lm(MEGATRON_CONFIGS[key])


def turing_nlg() -> LayerGraph:
    """The 17B-parameter Turing-NLG configuration (78 layers, H=4256)."""
    return transformer_lm(TURING_NLG)


def tiny_gpt(hidden: int = 64, heads: int = 4, layers: int = 2,
             seq_len: int = 32, vocab: int = 128) -> LayerGraph:
    """A laptop-scale GPT used by the numeric tests and examples."""
    cfg = TransformerConfig("tiny-gpt", hidden, heads, layers,
                            seq_len=seq_len, vocab=vocab)
    return transformer_lm(cfg)
