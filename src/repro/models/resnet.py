"""ResNet-family spec graphs: ResNet-50/200 (ImageNet), ResNet-1001 and
WRN-28-10 (CIFAR-10) — four of the six single-GPU models in Fig. 5/Table III.

Architectures follow He et al. (ResNet v1 bottleneck for ImageNet, v2
pre-activation bottleneck for ResNet-1001) and Zagoruyko & Komodakis
(WRN-28-10).  Parameter totals are asserted against Table III's reported
counts in the test suite (>25M, >64M, >10M, >36M respectively).
"""

from __future__ import annotations

from typing import Sequence

from ..graph.layer_graph import LayerGraph
from .builder import GraphBuilder


def _bottleneck(b: GraphBuilder, out_channels: int, stride: int,
                first_in_stage: bool) -> None:
    """ResNet v1 bottleneck: 1x1 -> 3x3 -> 1x1 (+projection on stage entry)."""
    entry = b.cursor
    mid = out_channels // 4
    b.conv(mid, kernel=1, stride=1, padding=0, name="conv1x1a")
    b.bn()
    b.relu()
    b.conv(mid, kernel=3, stride=stride, padding=1, name="conv3x3")
    b.bn()
    b.relu()
    b.conv(out_channels, kernel=1, stride=1, padding=0, name="conv1x1b")
    b.bn()
    main = b.cursor
    if first_in_stage:
        # projection shortcut: 1x1 conv with the stage's stride
        b.cursor = entry
        b.conv(out_channels, kernel=1, stride=stride, padding=0, name="proj")
        b.bn(name="proj_bn")
        skip = b.cursor
        b.cursor = main
    else:
        skip = entry
    b.add_residual(skip)
    b.relu()


def _preact_bottleneck(b: GraphBuilder, out_channels: int, stride: int,
                       first_in_stage: bool) -> None:
    """ResNet v2 (pre-activation) bottleneck, used by ResNet-1001."""
    entry = b.cursor
    mid = out_channels // 4
    b.bn()
    b.relu()
    post_act = b.cursor
    b.conv(mid, kernel=1, stride=1, padding=0, name="conv1x1a")
    b.bn()
    b.relu()
    b.conv(mid, kernel=3, stride=stride, padding=1, name="conv3x3")
    b.bn()
    b.relu()
    b.conv(out_channels, kernel=1, stride=1, padding=0, name="conv1x1b")
    main = b.cursor
    if first_in_stage:
        b.cursor = post_act
        b.conv(out_channels, kernel=1, stride=stride, padding=0, name="proj")
        skip = b.cursor
        b.cursor = main
    else:
        skip = entry
    b.add_residual(skip)


def _basic_wide(b: GraphBuilder, out_channels: int, stride: int,
                first_in_stage: bool) -> None:
    """WRN basic block: BN-ReLU-3x3 -> BN-ReLU-3x3 with pre-activation."""
    entry = b.cursor
    b.bn()
    b.relu()
    post_act = b.cursor
    b.conv(out_channels, kernel=3, stride=stride, padding=1, name="conv3x3a")
    b.bn()
    b.relu()
    b.conv(out_channels, kernel=3, stride=1, padding=1, name="conv3x3b")
    main = b.cursor
    if first_in_stage:
        b.cursor = post_act
        b.conv(out_channels, kernel=1, stride=stride, padding=0, name="proj")
        skip = b.cursor
        b.cursor = main
    else:
        skip = entry
    b.add_residual(skip)


def _imagenet_resnet(name: str, blocks_per_stage: Sequence[int],
                     image: int = 224, classes: int = 1000) -> LayerGraph:
    b = GraphBuilder(name)
    b.input((3, image, image))
    b.conv(64, kernel=7, stride=2, padding=3, name="stem_conv")
    b.bn(name="stem_bn")
    b.relu(name="stem_relu")
    b.pool(kernel=3, stride=2, padding=1, name="stem_pool")
    channels = (256, 512, 1024, 2048)
    for stage, (n_blocks, c_out) in enumerate(zip(blocks_per_stage, channels)):
        for i in range(n_blocks):
            stride = 2 if (stage > 0 and i == 0) else 1
            _bottleneck(b, c_out, stride, first_in_stage=(i == 0))
    b.global_avg_pool()
    b.flatten()
    b.linear(classes)
    b.softmax()
    b.loss()
    return b.finish()


def resnet50(image: int = 224, classes: int = 1000) -> LayerGraph:
    """ResNet-50 / ImageNet (Table III: >25M parameters, 50 layers)."""
    return _imagenet_resnet("resnet50", (3, 4, 6, 3), image, classes)


def resnet200(image: int = 224, classes: int = 1000) -> LayerGraph:
    """ResNet-200 / ImageNet (Table III: >64M parameters, 200 layers)."""
    return _imagenet_resnet("resnet200", (3, 24, 36, 3), image, classes)


def resnet1001(image: int = 32, classes: int = 10) -> LayerGraph:
    """ResNet-1001 / CIFAR-10, pre-activation bottlenecks (He et al. v2).

    1001 = 9n + 2 with n = 111 bottleneck blocks *per stage* (3 convs per
    block x 3 stages x 111 + stem conv + fc).  Base widths 16/32/64 with 4x
    bottleneck expansion.  Table III: >10M parameters.
    """
    b = GraphBuilder("resnet1001")
    b.input((3, image, image))
    b.conv(16, kernel=3, stride=1, padding=1, name="stem_conv")
    n = 111
    for stage, c_out in enumerate((64, 128, 256)):
        for i in range(n):
            stride = 2 if (stage > 0 and i == 0) else 1
            _preact_bottleneck(b, c_out, stride, first_in_stage=(i == 0))
    b.bn(name="final_bn")
    b.relu(name="final_relu")
    b.global_avg_pool()
    b.flatten()
    b.linear(classes)
    b.softmax()
    b.loss()
    return b.finish()


def wrn28_10(image: int = 32, classes: int = 10) -> LayerGraph:
    """WRN-28-10 / CIFAR-10 (Table III: >36M parameters, 28 layers).

    depth 28 = 6n + 4 -> n = 4 basic blocks per stage; widen factor 10
    gives widths 160/320/640.
    """
    b = GraphBuilder("wrn28_10")
    b.input((3, image, image))
    b.conv(16, kernel=3, stride=1, padding=1, name="stem_conv")
    widths = (160, 320, 640)
    for stage, c_out in enumerate(widths):
        for i in range(4):
            stride = 2 if (stage > 0 and i == 0) else 1
            _basic_wide(b, c_out, stride, first_in_stage=(i == 0))
    b.bn(name="final_bn")
    b.relu(name="final_relu")
    b.global_avg_pool()
    b.flatten()
    b.linear(classes)
    b.softmax()
    b.loss()
    return b.finish()
