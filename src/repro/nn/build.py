"""Build executable numeric models from :class:`LayerGraph` specs.

The same graph KARMA plans over is the graph the numeric engine executes:
:func:`build_module` maps each :class:`LayerSpec` to a :class:`Module`, and
:class:`ExecutableModel` runs forward/backward over the DAG, exposing
layer-granular entry points (``run_forward_layer`` / ``run_backward_layer``)
that the out-of-core executor drives when it evicts, reloads, or recomputes
activations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.layer_graph import LayerGraph, LayerKind, LayerSpec
from . import layers as L

Array = np.ndarray


def build_module(spec: LayerSpec, rng: np.random.Generator,
                 dtype=np.float32, dropout_seed: int = 0) -> L.Module:
    """Instantiate the numeric module implementing ``spec``."""
    kind = spec.kind
    name = spec.name
    if kind is LayerKind.INPUT:
        return L.Input(name)
    if kind is LayerKind.CONV2D:
        return L.Conv2d(name, int(spec.attr("in_channels")),
                        int(spec.attr("out_channels")),
                        int(spec.attr("kernel")), int(spec.attr("stride")),
                        int(spec.attr("padding")), rng, dtype)
    if kind is LayerKind.UPSAMPLE:
        return L.ConvTranspose2d(name, int(spec.attr("in_channels")),
                                 int(spec.attr("out_channels")),
                                 int(spec.attr("kernel", 2)), rng, dtype)
    if kind is LayerKind.RELU:
        return L.ReLU(name)
    if kind is LayerKind.GELU:
        return L.GELU(name)
    if kind is LayerKind.POOL_MAX:
        return L.MaxPool(name, int(spec.attr("kernel")),
                         int(spec.attr("stride")), int(spec.attr("padding")))
    if kind is LayerKind.POOL_AVG:
        return L.AvgPool(name, int(spec.attr("kernel")),
                         int(spec.attr("stride")), int(spec.attr("padding")))
    if kind is LayerKind.BATCHNORM:
        return L.BatchNorm(name, int(spec.attr("channels")), dtype)
    if kind is LayerKind.LAYERNORM:
        return L.LayerNorm(name, int(spec.attr("dim")), dtype)
    if kind is LayerKind.LINEAR:
        return L.Linear(name, int(spec.attr("in_features")),
                        int(spec.attr("out_features")), rng, dtype)
    if kind is LayerKind.SOFTMAX:
        return L.Softmax(name)
    if kind is LayerKind.DROPOUT:
        return L.Dropout(name, float(spec.attr("p", 0.1)), dropout_seed)
    if kind is LayerKind.EMBEDDING:
        return L.Embedding(name, int(spec.attr("vocab")),
                           int(spec.attr("dim")), rng, dtype)
    if kind is LayerKind.LSTM:
        return L.LSTM(name, int(spec.attr("input_dim")),
                      int(spec.attr("hidden_dim")), rng, dtype)
    if kind is LayerKind.ATTENTION:
        return L.Attention(name, int(spec.attr("dim")),
                           int(spec.attr("heads")), rng, dtype)
    if kind is LayerKind.ADD:
        return L.Add(name)
    if kind is LayerKind.CONCAT:
        return L.Concat(name)
    if kind is LayerKind.RESHAPE:
        return L.Reshape(name)
    if kind is LayerKind.LOSS:
        return L.NLLLoss(name)
    raise NotImplementedError(f"no numeric module for kind {kind}")


class ExecutableModel:
    """A numeric model mirroring a :class:`LayerGraph`.

    Activations (``acts``) and saved backward contexts (``ctxs``) live in
    dictionaries owned by the *caller* for the layer-granular API, so the
    out-of-core executor fully controls residency.  The convenience
    ``forward``/``backward`` pair owns them internally for in-core use.
    """

    def __init__(self, graph: LayerGraph, dtype=np.float32, seed: int = 0):
        graph.validate()
        self.graph = graph
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        self.modules: Dict[str, L.Module] = {}
        for i, spec in enumerate(graph):
            self.modules[spec.name] = build_module(
                spec, rng, dtype, dropout_seed=seed * 1000003 + i)
        self._loss_names = [s.name for s in graph if s.kind is LayerKind.LOSS]

    # -- parameter access -----------------------------------------------------

    def parameters(self) -> List[Tuple[str, str, Array]]:
        """Flat list of (layer_name, param_name, array)."""
        out = []
        for spec in self.graph:
            mod = self.modules[spec.name]
            for pname, arr in mod.params.items():
                out.append((spec.name, pname, arr))
        return out

    def gradients(self) -> List[Tuple[str, str, Array]]:
        out = []
        for spec in self.graph:
            mod = self.modules[spec.name]
            for gname, arr in mod.grads.items():
                out.append((spec.name, gname, arr))
        return out

    def zero_grad(self) -> None:
        for mod in self.modules.values():
            mod.zero_grad()

    def param_count(self) -> int:
        return sum(arr.size for _, _, arr in self.parameters())

    def set_step(self, step: int) -> None:
        """Propagate the iteration counter to dropout layers (recompute
        determinism: same step -> same masks)."""
        for mod in self.modules.values():
            if isinstance(mod, L.Dropout):
                mod.step = step

    def set_targets(self, targets: Array) -> None:
        for name in self._loss_names:
            self.modules[name].targets = targets

    # -- layer-granular execution (driven by the OOC executor) -----------------

    def layer_inputs(self, index: int, acts: Dict[str, Array],
                     batch: Optional[Array] = None) -> List[Array]:
        spec = self.graph[index]
        if spec.kind is LayerKind.INPUT:
            if batch is None:
                raise ValueError("input layer needs the batch")
            return [batch]
        preds = self.graph.predecessors(spec.name)
        missing = [p for p in preds if p not in acts]
        if missing:
            raise KeyError(f"layer {spec.name!r} missing input activations "
                           f"{missing}")
        return [acts[p] for p in preds]

    def run_forward_layer(self, index: int, acts: Dict[str, Array],
                          ctxs: Dict[str, tuple], *,
                          batch: Optional[Array] = None,
                          training: bool = True) -> Array:
        spec = self.graph[index]
        xs = self.layer_inputs(index, acts, batch)
        out, ctx = self.modules[spec.name].forward(*xs, training=training)
        acts[spec.name] = out
        ctxs[spec.name] = ctx
        return out

    def run_backward_layer(self, index: int, douts: Dict[str, Array],
                           ctxs: Dict[str, tuple]) -> None:
        """Consume douts[name], push input grads onto the predecessors."""
        spec = self.graph[index]
        name = spec.name
        if name not in douts:
            raise KeyError(f"no output gradient for layer {name!r}")
        if name not in ctxs:
            raise KeyError(f"no saved ctx for layer {name!r} "
                           "(was it evicted without recompute?)")
        dout = douts.pop(name)
        dxs = self.modules[name].backward(dout, ctxs[name])
        preds = self.graph.predecessors(name)
        if spec.kind is LayerKind.INPUT:
            return
        if len(dxs) != len(preds):
            raise RuntimeError(
                f"layer {name!r} returned {len(dxs)} input grads for "
                f"{len(preds)} inputs")
        for pname, dx in zip(preds, dxs):
            if self.graph.layer(pname).kind is LayerKind.INPUT and \
                    spec.kind is LayerKind.EMBEDDING:
                continue  # token inputs are not differentiable
            if pname in douts:
                douts[pname] = douts[pname] + dx
            else:
                douts[pname] = dx

    # -- whole-model convenience (in-core reference path) -----------------------

    def forward(self, batch: Array, targets: Optional[Array] = None, *,
                training: bool = True,
                acts: Optional[Dict[str, Array]] = None,
                ctxs: Optional[Dict[str, tuple]] = None) -> float:
        if targets is not None:
            self.set_targets(targets)
        acts = {} if acts is None else acts
        ctxs = {} if ctxs is None else ctxs
        self._acts, self._ctxs = acts, ctxs
        out = None
        for i in range(len(self.graph)):
            out = self.run_forward_layer(i, acts, ctxs, batch=batch,
                                         training=training)
        return float(out[0]) if self._loss_names else out

    def backward(self) -> None:
        """Full reverse pass after :meth:`forward` (in-core reference)."""
        acts, ctxs = self._acts, self._ctxs
        last = self.graph[len(self.graph) - 1]
        douts: Dict[str, Array] = {
            last.name: np.ones_like(acts[last.name])}
        for i in range(len(self.graph) - 1, -1, -1):
            name = self.graph[i].name
            if name not in douts:
                continue  # dead branch (e.g. token input)
            self.run_backward_layer(i, douts, ctxs)

    def train_step(self, batch: Array, targets: Array,
                   optimizer, step: int = 0) -> float:
        """One in-core SGD iteration: the baseline everything must match."""
        self.set_step(step)
        self.zero_grad()
        loss = self.forward(batch, targets, training=True)
        self.backward()
        optimizer.step(self)
        return loss
