"""Module wrappers over the functional kernels, one per :class:`LayerKind`.

A :class:`Module` owns its parameters and gradients as plain numpy arrays
(keyed by name) and exposes the stateless ``forward -> (out, ctx)`` /
``backward(dout, ctx) -> per-input grads`` protocol the out-of-core executor
drives.  Keeping ``ctx`` external to the module is deliberate: KARMA's
runtime owns the stash so it can evict, reload, or recompute it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import functional as F

Array = np.ndarray


class Module:
    """Base class: parameter/gradient registry + the forward/backward API."""

    def __init__(self, name: str):
        self.name = name
        self.params: Dict[str, Array] = {}
        self.grads: Dict[str, Array] = {}
        self.buffers: Dict[str, Array] = {}  # non-trainable state (BN stats)

    # subclasses override these two -----------------------------------------
    def forward(self, *xs: Array, training: bool = True) -> Tuple[Array, tuple]:
        raise NotImplementedError

    def backward(self, dout: Array, ctx: tuple) -> Tuple[Array, ...]:
        raise NotImplementedError

    # -- utilities ------------------------------------------------------------

    def zero_grad(self) -> None:
        for k in self.grads:
            self.grads[k][...] = 0.0

    def _init_grads(self) -> None:
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def param_bytes(self) -> int:
        return sum(int(p.nbytes) for p in self.params.values())

    def _accumulate(self, name: str, value: Array) -> None:
        self.grads[name] += value


class Input(Module):
    """Source layer: passes the batch through unchanged."""

    def forward(self, *xs: Array, training: bool = True) -> Tuple[Array, tuple]:
        (x,) = xs
        return x, ()

    def backward(self, dout: Array, ctx: tuple) -> Tuple[Array, ...]:
        return (dout,)


class Conv2d(Module):
    def __init__(self, name: str, in_channels: int, out_channels: int,
                 kernel: int, stride: int, padding: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__(name)
        fan_in = in_channels * kernel * kernel
        std = np.sqrt(2.0 / fan_in)  # Kaiming for ReLU nets
        self.params["weight"] = (rng.standard_normal(
            (out_channels, in_channels, kernel, kernel)) * std).astype(dtype)
        self.params["bias"] = np.zeros(out_channels, dtype=dtype)
        self.stride = stride
        self.padding = padding
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.conv2d_forward(x, self.params["weight"], self.params["bias"],
                                self.stride, self.padding)

    def backward(self, dout, ctx):
        dx, dw, db = F.conv2d_backward(dout, ctx, self.params["weight"])
        self._accumulate("weight", dw)
        self._accumulate("bias", db)
        return (dx,)


class ConvTranspose2d(Module):
    """2x up-convolution with stride == kernel (U-Net expansive path)."""

    def __init__(self, name: str, in_channels: int, out_channels: int,
                 kernel: int, rng: np.random.Generator, dtype=np.float32):
        super().__init__(name)
        std = np.sqrt(2.0 / (in_channels * kernel * kernel))
        self.params["weight"] = (rng.standard_normal(
            (in_channels, out_channels, kernel, kernel)) * std).astype(dtype)
        self.stride = kernel
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.convtranspose2d_forward(x, self.params["weight"], self.stride)

    def backward(self, dout, ctx):
        dx, dw = F.convtranspose2d_backward(dout, ctx, self.params["weight"])
        self._accumulate("weight", dw)
        return (dx,)


class ReLU(Module):
    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.relu_forward(x)

    def backward(self, dout, ctx):
        return (F.relu_backward(dout, ctx),)


class GELU(Module):
    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.gelu_forward(x)

    def backward(self, dout, ctx):
        return (F.gelu_backward(dout, ctx),)


class MaxPool(Module):
    def __init__(self, name: str, kernel: int, stride: int, padding: int):
        super().__init__(name)
        self.kernel, self.stride, self.padding = kernel, stride, padding

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.maxpool_forward(x, self.kernel, self.stride, self.padding)

    def backward(self, dout, ctx):
        return (F.maxpool_backward(dout, ctx),)


class AvgPool(Module):
    def __init__(self, name: str, kernel: int, stride: int, padding: int):
        super().__init__(name)
        self.kernel, self.stride, self.padding = kernel, stride, padding

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.avgpool_forward(x, self.kernel, self.stride, self.padding)

    def backward(self, dout, ctx):
        return (F.avgpool_backward(dout, ctx),)


class BatchNorm(Module):
    def __init__(self, name: str, channels: int, dtype=np.float32,
                 momentum: float = 0.1, eps: float = 1e-5):
        super().__init__(name)
        self.params["gamma"] = np.ones(channels, dtype=dtype)
        self.params["beta"] = np.zeros(channels, dtype=dtype)
        self.buffers["running_mean"] = np.zeros(channels, dtype=dtype)
        self.buffers["running_var"] = np.ones(channels, dtype=dtype)
        self.momentum = momentum
        self.eps = eps
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.batchnorm_forward(
            x, self.params["gamma"], self.params["beta"],
            self.buffers["running_mean"], self.buffers["running_var"],
            self.momentum, self.eps, training)

    def backward(self, dout, ctx):
        dx, dgamma, dbeta = F.batchnorm_backward(dout, ctx,
                                                 self.params["gamma"])
        self._accumulate("gamma", dgamma)
        self._accumulate("beta", dbeta)
        return (dx,)


class LayerNorm(Module):
    def __init__(self, name: str, dim: int, dtype=np.float32,
                 eps: float = 1e-5):
        super().__init__(name)
        self.params["gamma"] = np.ones(dim, dtype=dtype)
        self.params["beta"] = np.zeros(dim, dtype=dtype)
        self.eps = eps
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.layernorm_forward(x, self.params["gamma"],
                                   self.params["beta"], self.eps)

    def backward(self, dout, ctx):
        dx, dgamma, dbeta = F.layernorm_backward(dout, ctx,
                                                 self.params["gamma"])
        self._accumulate("gamma", dgamma)
        self._accumulate("beta", dbeta)
        return (dx,)


class Linear(Module):
    def __init__(self, name: str, in_features: int, out_features: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__(name)
        std = np.sqrt(2.0 / (in_features + out_features))  # Xavier
        self.params["weight"] = (rng.standard_normal(
            (in_features, out_features)) * std).astype(dtype)
        self.params["bias"] = np.zeros(out_features, dtype=dtype)
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.linear_forward(x, self.params["weight"], self.params["bias"])

    def backward(self, dout, ctx):
        dx, dw, db = F.linear_backward(dout, ctx, self.params["weight"])
        self._accumulate("weight", dw)
        self._accumulate("bias", db)
        return (dx,)


class Softmax(Module):
    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.softmax_forward(x)

    def backward(self, dout, ctx):
        return (F.softmax_backward(dout, ctx),)


class Dropout(Module):
    """Counter-based dropout: deterministic given (seed, step)."""

    def __init__(self, name: str, p: float, seed: int):
        super().__init__(name)
        self.p = p
        self.seed = seed
        self.step = 0  # set by the trainer each iteration

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.dropout_forward(x, self.p, self.seed, self.step, training)

    def backward(self, dout, ctx):
        return (F.dropout_backward(dout, ctx),)


class Embedding(Module):
    def __init__(self, name: str, vocab: int, dim: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__(name)
        self.params["weight"] = (rng.standard_normal(
            (vocab, dim)) * 0.02).astype(dtype)
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (tokens,) = xs
        return F.embedding_forward(tokens, self.params["weight"])

    def backward(self, dout, ctx):
        dw = F.embedding_backward(dout, ctx)
        self._accumulate("weight", dw)
        # token input is not differentiable; return a zero placeholder
        return (np.zeros(1, dtype=dout.dtype),)


class Attention(Module):
    def __init__(self, name: str, dim: int, heads: int,
                 rng: np.random.Generator, dtype=np.float32,
                 causal: bool = True):
        super().__init__(name)
        std = np.sqrt(1.0 / dim)
        for key in ("wq", "wk", "wv", "wo"):
            self.params[key] = (rng.standard_normal(
                (dim, dim)) * std).astype(dtype)
        for key in ("bq", "bk", "bv", "bo"):
            self.params[key] = np.zeros(dim, dtype=dtype)
        self.heads = heads
        self.causal = causal
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        p = self.params
        return F.attention_forward(x, p["wq"], p["wk"], p["wv"], p["wo"],
                                   p["bq"], p["bk"], p["bv"], p["bo"],
                                   self.heads, self.causal)

    def backward(self, dout, ctx):
        p = self.params
        dx, dwq, dwk, dwv, dwo, dbq, dbk, dbv, dbo = F.attention_backward(
            dout, ctx, p["wq"], p["wk"], p["wv"], p["wo"])
        for key, g in (("wq", dwq), ("wk", dwk), ("wv", dwv), ("wo", dwo),
                       ("bq", dbq), ("bk", dbk), ("bv", dbv), ("bo", dbo)):
            self._accumulate(key, g)
        return (dx,)


class Add(Module):
    """Element-wise residual join of two inputs."""

    def forward(self, *xs, training: bool = True):
        a, b = xs
        return a + b, ()

    def backward(self, dout, ctx):
        return (dout, dout)


class Concat(Module):
    """Channel concat (axis 1) of two conv-layout inputs."""

    def forward(self, *xs, training: bool = True):
        a, b = xs
        return np.concatenate([a, b], axis=1), (a.shape[1],)

    def backward(self, dout, ctx):
        (c1,) = ctx
        return (dout[:, :c1], dout[:, c1:])


class Reshape(Module):
    """Flatten to (N, -1); saves the input shape for backward."""

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return x.reshape(x.shape[0], -1), (x.shape,)

    def backward(self, dout, ctx):
        (shape,) = ctx
        return (dout.reshape(shape),)


class NLLLoss(Module):
    """Mean negative-log-likelihood over probabilities (graph has Softmax).

    The runtime sets ``targets`` before the forward pass.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.targets: Optional[Array] = None

    def forward(self, *xs, training: bool = True):
        (probs,) = xs
        if self.targets is None:
            raise RuntimeError(f"{self.name}: targets not set before forward")
        loss, dprobs = F.cross_entropy_from_probs(probs, self.targets)
        out = np.asarray([loss], dtype=probs.dtype)
        return out, (dprobs,)

    def backward(self, dout, ctx):
        (dprobs,) = ctx
        scale = float(np.asarray(dout).sum())  # dL/dloss, normally 1.0
        return (dprobs * scale,)


class LSTM(Module):
    """Single-layer LSTM over (N, T, D_in) sequences (zero initial state)."""

    def __init__(self, name: str, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__(name)
        std = np.sqrt(1.0 / hidden_dim)
        self.params["w_ih"] = (rng.standard_normal(
            (input_dim, 4 * hidden_dim)) * std).astype(dtype)
        self.params["w_hh"] = (rng.standard_normal(
            (hidden_dim, 4 * hidden_dim)) * std).astype(dtype)
        self.params["bias"] = np.zeros(4 * hidden_dim, dtype=dtype)
        self._init_grads()

    def forward(self, *xs, training: bool = True):
        (x,) = xs
        return F.lstm_forward(x, self.params["w_ih"], self.params["w_hh"],
                              self.params["bias"])

    def backward(self, dout, ctx):
        dx, dw_ih, dw_hh, db = F.lstm_backward(
            dout, ctx, self.params["w_ih"], self.params["w_hh"])
        self._accumulate("w_ih", dw_ih)
        self._accumulate("w_hh", dw_hh)
        self._accumulate("bias", db)
        return (dx,)
