"""Vectorized numpy kernels: forward/backward pairs for every layer kind.

These are the numeric ground truth under the KARMA executor.  Every forward
returns ``(output, ctx)`` where ``ctx`` is the tuple of saved tensors the
backward needs — exactly the "stashed activations" KARMA swaps or
recomputes.  Dropping a ctx and re-running the forward must reproduce it
bit-for-bit (dropout uses counter-based Philox streams for that), which is
the invariant out-of-core recompute relies on.

All kernels are batch-vectorized (im2col convolutions, strided pooling
windows) per the HPC guide: no Python loops over samples or channels.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

Array = np.ndarray


# ---------------------------------------------------------------------------
# im2col machinery
# ---------------------------------------------------------------------------

def im2col(x: Array, kh: int, kw: int, stride: int, pad: int) -> Array:
    """(N, C, H, W) -> (N, C*kh*kw, P) patch matrix, P = out_h*out_w."""
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x, (n, c, kh, kw, out_h, out_w),
        (s0, s1, s2, s3, s2 * stride, s3 * stride), writeable=False)
    return np.ascontiguousarray(windows).reshape(n, c * kh * kw,
                                                 out_h * out_w)


def col2im(cols: Array, x_shape: Tuple[int, int, int, int], kh: int, kw: int,
           stride: int, pad: int) -> Array:
    """Scatter-add inverse of :func:`im2col`."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    x_p = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x_p[:, :, i:i + stride * out_h:stride,
                j:j + stride * out_w:stride] += cols6[:, :, i, j]
    if pad:
        return x_p[:, :, pad:pad + h, pad:pad + w]
    return x_p


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------

def conv2d_forward(x: Array, weight: Array, bias: Array, stride: int,
                   pad: int) -> Tuple[Array, tuple]:
    """x (N,Ci,H,W), weight (Co,Ci,kh,kw), bias (Co,) -> (N,Co,Ho,Wo)."""
    n = x.shape[0]
    co, ci, kh, kw = weight.shape
    cols = im2col(x, kh, kw, stride, pad)                      # (N, CK, P)
    w2 = weight.reshape(co, ci * kh * kw)                      # (Co, CK)
    out = np.matmul(w2, cols)                                  # (N, Co, P)
    out += bias[None, :, None]
    hp = (x.shape[2] + 2 * pad - kh) // stride + 1
    wp = (x.shape[3] + 2 * pad - kw) // stride + 1
    out = out.reshape(n, co, hp, wp)
    ctx = (cols, x.shape, weight.shape, stride, pad)
    return out, ctx


def conv2d_backward(dout: Array, ctx: tuple,
                    weight: Array) -> Tuple[Array, Array, Array]:
    """Returns (dx, dweight, dbias)."""
    cols, x_shape, w_shape, stride, pad = ctx
    n, co = dout.shape[:2]
    ci, kh, kw = w_shape[1:]
    dout2 = dout.reshape(n, co, -1)                            # (N, Co, P)
    dbias = dout2.sum(axis=(0, 2))
    # dW = sum_n dout_n @ cols_n^T
    dw = np.einsum("ncp,nkp->ck", dout2, cols,
                   optimize=True).reshape(w_shape)
    w2 = weight.reshape(co, ci * kh * kw)
    dcols = np.matmul(w2.T, dout2)                             # (N, CK, P)
    dx = col2im(dcols, x_shape, kh, kw, stride, pad)
    return dx, dw, dbias


# ---------------------------------------------------------------------------
# Transposed convolution (U-Net 2x up-conv)
# ---------------------------------------------------------------------------

def convtranspose2d_forward(x: Array, weight: Array, stride: int
                            ) -> Tuple[Array, tuple]:
    """x (N,Ci,H,W), weight (Ci,Co,k,k), stride k assumed == kernel (U-Net).

    Output is (N, Co, H*k, W*k): each input pixel paints a k x k patch.
    """
    n, ci, h, w = x.shape
    ci2, co, kh, kw = weight.shape
    if ci != ci2:
        raise ValueError(f"channel mismatch {ci} vs {ci2}")
    if stride != kh or kh != kw:
        raise ValueError("convtranspose2d supports stride == kernel only")
    # (N, Co, H, W, kh, kw)
    patches = np.einsum("nihw,iojk->nohwjk", x, weight, optimize=True)
    out = patches.transpose(0, 1, 2, 4, 3, 5).reshape(n, co, h * kh, w * kw)
    ctx = (x, weight.shape, stride)
    return np.ascontiguousarray(out), ctx


def convtranspose2d_backward(dout: Array, ctx: tuple,
                             weight: Array) -> Tuple[Array, Array]:
    """Returns (dx, dweight)."""
    x, w_shape, stride = ctx
    n, ci, h, w = x.shape
    _, co, kh, kw = w_shape
    d6 = dout.reshape(n, co, h, kh, w, kw).transpose(0, 1, 2, 4, 3, 5)
    dx = np.einsum("nohwjk,iojk->nihw", d6, weight, optimize=True)
    dw = np.einsum("nihw,nohwjk->iojk", x, d6, optimize=True)
    return dx, dw


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def _pool_windows(x: Array, k: int, stride: int, pad: int,
                  fill: float) -> Tuple[Array, Tuple[int, int]]:
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                   constant_values=fill)
    n, c, h, w = x.shape
    out_h = (h - k) // stride + 1
    out_w = (w - k) // stride + 1
    s0, s1, s2, s3 = x.strides
    win = np.lib.stride_tricks.as_strided(
        x, (n, c, out_h, out_w, k, k),
        (s0, s1, s2 * stride, s3 * stride, s2, s3), writeable=False)
    return win.reshape(n, c, out_h, out_w, k * k), (out_h, out_w)


def maxpool_forward(x: Array, k: int, stride: int,
                    pad: int) -> Tuple[Array, tuple]:
    win, (oh, ow) = _pool_windows(x, k, stride, pad, fill=-np.inf)
    arg = win.argmax(axis=-1)
    out = np.take_along_axis(win, arg[..., None], axis=-1)[..., 0]
    ctx = (arg, x.shape, k, stride, pad)
    return out, ctx


def maxpool_backward(dout: Array, ctx: tuple) -> Array:
    arg, x_shape, k, stride, pad = ctx
    n, c, oh, ow = dout.shape
    one_hot = np.zeros((n, c, oh, ow, k * k), dtype=dout.dtype)
    np.put_along_axis(one_hot, arg[..., None], 1.0, axis=-1)
    one_hot *= dout[..., None]
    # (N,C,oh,ow,k*k) -> cols layout (N, C*k*k, P)
    cols = one_hot.reshape(n, c, oh * ow, k * k).transpose(0, 1, 3, 2)
    cols = cols.reshape(n, c * k * k, oh * ow)
    return col2im(cols, x_shape, k, k, stride, pad)


def avgpool_forward(x: Array, k: int, stride: int,
                    pad: int) -> Tuple[Array, tuple]:
    win, _ = _pool_windows(x, k, stride, pad, fill=0.0)
    out = win.mean(axis=-1)
    ctx = (x.shape, k, stride, pad)
    return out, ctx


def avgpool_backward(dout: Array, ctx: tuple) -> Array:
    x_shape, k, stride, pad = ctx
    n, c, oh, ow = dout.shape
    scale = 1.0 / (k * k)
    cols = np.broadcast_to((dout * scale)[..., None],
                           (n, c, oh, ow, k * k))
    cols = cols.reshape(n, c, oh * ow, k * k).transpose(0, 1, 3, 2)
    cols = np.ascontiguousarray(cols).reshape(n, c * k * k, oh * ow)
    return col2im(cols, x_shape, k, k, stride, pad)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def batchnorm_forward(x: Array, gamma: Array, beta: Array,
                      running_mean: Array, running_var: Array,
                      momentum: float, eps: float,
                      training: bool) -> Tuple[Array, tuple]:
    """Per-channel batch norm over (N, C, ...) layouts."""
    axes = (0,) + tuple(range(2, x.ndim))
    if training:
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        running_mean *= (1 - momentum)
        running_mean += momentum * mean
        running_var *= (1 - momentum)
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    shape = (1, -1) + (1,) * (x.ndim - 2)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.reshape(shape) * x_hat + beta.reshape(shape)
    ctx = (x_hat, inv_std, axes, shape)
    return out, ctx


def batchnorm_backward(dout: Array, ctx: tuple,
                       gamma: Array) -> Tuple[Array, Array, Array]:
    x_hat, inv_std, axes, shape = ctx
    m = dout.size // gamma.size
    dgamma = (dout * x_hat).sum(axis=axes)
    dbeta = dout.sum(axis=axes)
    dxhat = dout * gamma.reshape(shape)
    dx = (inv_std.reshape(shape) / m) * (
        m * dxhat
        - dxhat.sum(axis=axes).reshape(shape)
        - x_hat * (dxhat * x_hat).sum(axis=axes).reshape(shape))
    return dx, dgamma, dbeta


def layernorm_forward(x: Array, gamma: Array, beta: Array,
                      eps: float) -> Tuple[Array, tuple]:
    """Normalize over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    ctx = (x_hat, inv_std)
    return out, ctx


def layernorm_backward(dout: Array, ctx: tuple,
                       gamma: Array) -> Tuple[Array, Array, Array]:
    x_hat, inv_std = ctx
    d = x_hat.shape[-1]
    axes = tuple(range(x_hat.ndim - 1))
    dgamma = (dout * x_hat).sum(axis=axes)
    dbeta = dout.sum(axis=axes)
    dxhat = dout * gamma
    dx = (inv_std / d) * (
        d * dxhat
        - dxhat.sum(axis=-1, keepdims=True)
        - x_hat * (dxhat * x_hat).sum(axis=-1, keepdims=True))
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu_forward(x: Array) -> Tuple[Array, tuple]:
    mask = x > 0
    return x * mask, (mask,)


def relu_backward(dout: Array, ctx: tuple) -> Array:
    (mask,) = ctx
    return dout * mask


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu_forward(x: Array) -> Tuple[Array, tuple]:
    """tanh-approximation GELU (GPT-2's variant)."""
    u = _GELU_C * (x + 0.044715 * x ** 3)
    t = np.tanh(u)
    out = 0.5 * x * (1.0 + t)
    return out, (x, t)


def gelu_backward(dout: Array, ctx: tuple) -> Array:
    x, t = ctx
    du = _GELU_C * (1.0 + 3 * 0.044715 * x ** 2)
    dt = (1.0 - t ** 2) * du
    return dout * (0.5 * (1.0 + t) + 0.5 * x * dt)


def softmax_forward(x: Array) -> Tuple[Array, tuple]:
    """Numerically-stable softmax over the last dimension."""
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    return p, (p,)


def softmax_backward(dout: Array, ctx: tuple) -> Array:
    (p,) = ctx
    inner = (dout * p).sum(axis=-1, keepdims=True)
    return p * (dout - inner)


# ---------------------------------------------------------------------------
# Linear / embedding / dropout
# ---------------------------------------------------------------------------

def linear_forward(x: Array, weight: Array,
                   bias: Array) -> Tuple[Array, tuple]:
    """x (..., Din) @ weight (Din, Dout) + bias."""
    out = x @ weight + bias
    return out, (x,)


def linear_backward(dout: Array, ctx: tuple,
                    weight: Array) -> Tuple[Array, Array, Array]:
    (x,) = ctx
    x2 = x.reshape(-1, x.shape[-1])
    d2 = dout.reshape(-1, dout.shape[-1])
    dw = x2.T @ d2
    db = d2.sum(axis=0)
    dx = (d2 @ weight.T).reshape(x.shape)
    return dx, dw, db


def embedding_forward(tokens: Array, weight: Array) -> Tuple[Array, tuple]:
    """tokens (..., T) int -> (..., T, D)."""
    out = weight[tokens]
    return out, (tokens, weight.shape)


def embedding_backward(dout: Array, ctx: tuple) -> Array:
    tokens, w_shape = ctx
    dw = np.zeros(w_shape, dtype=dout.dtype)
    np.add.at(dw, tokens.reshape(-1),
              dout.reshape(-1, dout.shape[-1]))
    return dw


def dropout_forward(x: Array, p: float, seed: int, step: int,
                    training: bool) -> Tuple[Array, tuple]:
    """Counter-based (Philox) dropout: (seed, step) fully determines the
    mask, so recomputing a dropped forward reproduces it exactly."""
    if not training or p <= 0.0:
        return x, (None, 1.0)
    rng = np.random.Generator(np.random.Philox(key=seed + (step << 20)))
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype)
    scale = 1.0 / keep
    return x * mask * scale, (mask, scale)


def dropout_backward(dout: Array, ctx: tuple) -> Array:
    mask, scale = ctx
    if mask is None:
        return dout
    return dout * mask * scale


# ---------------------------------------------------------------------------
# Multi-head self-attention
# ---------------------------------------------------------------------------

def attention_forward(x: Array, wq: Array, wk: Array, wv: Array, wo: Array,
                      bq: Array, bk: Array, bv: Array, bo: Array,
                      heads: int, causal: bool) -> Tuple[Array, tuple]:
    """x (N, T, D) -> (N, T, D), GPT-style causal multi-head attention."""
    n, t, d = x.shape
    if d % heads:
        raise ValueError(f"dim {d} not divisible by heads {heads}")
    dk = d // heads

    q = x @ wq + bq
    k = x @ wk + bk
    v = x @ wv + bv

    def split(a: Array) -> Array:  # (N, T, D) -> (N, H, T, dk)
        return a.reshape(n, t, heads, dk).transpose(0, 2, 1, 3)

    qh, kh, vh = split(q), split(k), split(v)
    scores = np.matmul(qh, kh.transpose(0, 1, 3, 2)) / math.sqrt(dk)
    if causal:
        mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        scores = np.where(mask, np.asarray(-1e30, dtype=scores.dtype), scores)
    probs, _ = softmax_forward(scores)
    ctxh = np.matmul(probs, vh)                      # (N, H, T, dk)
    merged = ctxh.transpose(0, 2, 1, 3).reshape(n, t, d)
    out = merged @ wo + bo
    ctx = (x, qh, kh, vh, probs, merged, heads, causal)
    return out, ctx


def attention_backward(dout: Array, ctx: tuple, wq: Array, wk: Array,
                       wv: Array, wo: Array) -> tuple:
    """Returns (dx, dwq, dwk, dwv, dwo, dbq, dbk, dbv, dbo)."""
    x, qh, kh, vh, probs, merged, heads, causal = ctx
    n, t, d = x.shape
    dk = d // heads

    dbo = dout.reshape(-1, d).sum(axis=0)
    dwo = merged.reshape(-1, d).T @ dout.reshape(-1, d)
    dmerged = dout @ wo.T
    dctxh = dmerged.reshape(n, t, heads, dk).transpose(0, 2, 1, 3)

    dprobs = np.matmul(dctxh, vh.transpose(0, 1, 3, 2))
    dvh = np.matmul(probs.transpose(0, 1, 3, 2), dctxh)
    dscores = softmax_backward(dprobs, (probs,))
    # masked positions had probs == 0 so dscores there is already 0
    dscores /= math.sqrt(dk)
    dqh = np.matmul(dscores, kh)
    dkh = np.matmul(dscores.transpose(0, 1, 3, 2), qh)

    def merge(a: Array) -> Array:  # (N, H, T, dk) -> (N, T, D)
        return a.transpose(0, 2, 1, 3).reshape(n, t, d)

    dq, dkk, dv = merge(dqh), merge(dkh), merge(dvh)
    x2 = x.reshape(-1, d)
    dwq = x2.T @ dq.reshape(-1, d)
    dwk = x2.T @ dkk.reshape(-1, d)
    dwv = x2.T @ dv.reshape(-1, d)
    dbq = dq.reshape(-1, d).sum(axis=0)
    dbk = dkk.reshape(-1, d).sum(axis=0)
    dbv = dv.reshape(-1, d).sum(axis=0)
    dx = dq @ wq.T + dkk @ wk.T + dv @ wv.T
    return dx, dwq, dwk, dwv, dwo, dbq, dbk, dbv, dbo


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def cross_entropy_from_probs(probs: Array, targets: Array,
                             eps: float = 1e-12) -> Tuple[float, Array]:
    """NLL on probabilities (the graph applies softmax separately).

    targets: int class indices, shape = probs.shape[:-1].
    Returns (mean loss, dprobs).
    """
    flat = probs.reshape(-1, probs.shape[-1])
    idx = targets.reshape(-1)
    m = flat.shape[0]
    picked = np.clip(flat[np.arange(m), idx], eps, None)
    loss = float(-np.log(picked).mean())
    dflat = np.zeros_like(flat)
    dflat[np.arange(m), idx] = -1.0 / (picked * m)
    return loss, dflat.reshape(probs.shape)


def cross_entropy_from_logits(logits: Array,
                              targets: Array) -> Tuple[float, Array]:
    """Fused softmax + NLL (numerically preferred reference path)."""
    probs, _ = softmax_forward(logits)
    flat = probs.reshape(-1, probs.shape[-1])
    idx = targets.reshape(-1)
    m = flat.shape[0]
    picked = np.clip(flat[np.arange(m), idx], 1e-12, None)
    loss = float(-np.log(picked).mean())
    dlogits = flat.copy()
    dlogits[np.arange(m), idx] -= 1.0
    dlogits /= m
    return loss, dlogits.reshape(logits.shape)


# ---------------------------------------------------------------------------
# LSTM (SIII-C.5's numeric counterpart)
# ---------------------------------------------------------------------------

def lstm_forward(x: Array, w_ih: Array, w_hh: Array, b: Array
                 ) -> Tuple[Array, tuple]:
    """Single-layer LSTM over (N, T, D_in) -> hidden states (N, T, H).

    Gate layout along the 4H axis: input, forget, cell, output.  Initial
    hidden and cell states are zero.
    """
    n, t, d_in = x.shape
    h_dim = w_hh.shape[0]
    hs = np.zeros((n, t, h_dim), dtype=x.dtype)
    cs = np.zeros((n, t, h_dim), dtype=x.dtype)
    gates = np.zeros((n, t, 4 * h_dim), dtype=x.dtype)
    h_prev = np.zeros((n, h_dim), dtype=x.dtype)
    c_prev = np.zeros((n, h_dim), dtype=x.dtype)
    for step in range(t):
        z = x[:, step] @ w_ih + h_prev @ w_hh + b
        i = _sigmoid(z[:, :h_dim])
        fgt = _sigmoid(z[:, h_dim:2 * h_dim])
        g = np.tanh(z[:, 2 * h_dim:3 * h_dim])
        o = _sigmoid(z[:, 3 * h_dim:])
        c = fgt * c_prev + i * g
        h = o * np.tanh(c)
        gates[:, step, :h_dim] = i
        gates[:, step, h_dim:2 * h_dim] = fgt
        gates[:, step, 2 * h_dim:3 * h_dim] = g
        gates[:, step, 3 * h_dim:] = o
        hs[:, step] = h
        cs[:, step] = c
        h_prev, c_prev = h, c
    ctx = (x, hs, cs, gates)
    return hs, ctx


def _sigmoid(z: Array) -> Array:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def lstm_backward(dout: Array, ctx: tuple, w_ih: Array, w_hh: Array
                  ) -> Tuple[Array, Array, Array, Array]:
    """Backward through time; returns (dx, dw_ih, dw_hh, db)."""
    x, hs, cs, gates = ctx
    n, t, d_in = x.shape
    h_dim = w_hh.shape[0]
    dx = np.zeros_like(x)
    dw_ih = np.zeros_like(w_ih)
    dw_hh = np.zeros_like(w_hh)
    db = np.zeros(4 * h_dim, dtype=x.dtype)
    dh_next = np.zeros((n, h_dim), dtype=x.dtype)
    dc_next = np.zeros((n, h_dim), dtype=x.dtype)
    for step in range(t - 1, -1, -1):
        i = gates[:, step, :h_dim]
        fgt = gates[:, step, h_dim:2 * h_dim]
        g = gates[:, step, 2 * h_dim:3 * h_dim]
        o = gates[:, step, 3 * h_dim:]
        c = cs[:, step]
        c_prev = cs[:, step - 1] if step > 0 else np.zeros_like(c)
        h_prev = hs[:, step - 1] if step > 0 else np.zeros_like(c)
        tanh_c = np.tanh(c)
        dh = dout[:, step] + dh_next
        do = dh * tanh_c
        dc = dh * o * (1.0 - tanh_c ** 2) + dc_next
        di = dc * g
        dg = dc * i
        dfgt = dc * c_prev
        dc_next = dc * fgt
        dz = np.concatenate([
            di * i * (1.0 - i),
            dfgt * fgt * (1.0 - fgt),
            dg * (1.0 - g ** 2),
            do * o * (1.0 - o)], axis=1)
        dx[:, step] = dz @ w_ih.T
        dh_next = dz @ w_hh.T
        dw_ih += x[:, step].T @ dz
        dw_hh += h_prev.T @ dz
        db += dz.sum(axis=0)
    return dx, dw_ih, dw_hh, db
