"""Numeric NN substrate: numpy autodiff framework mirroring LayerGraph specs."""

from . import functional
from .build import ExecutableModel, build_module
from .layers import Module
from .optim import SGD, Adam, adam_update_kernel, sgd_update_kernel

__all__ = [
    "functional", "ExecutableModel", "build_module", "Module",
    "SGD", "Adam", "sgd_update_kernel", "adam_update_kernel",
]
