"""Optimizers, including the standalone CPU-side update kernel (§III-G).

Data-parallel KARMA performs weight updates *on the host* after the phased
gradient exchange, so the update rule is factored as a pure kernel
(:func:`sgd_update_kernel` / :func:`adam_update_kernel`) operating on flat
arrays — the same kernel both the device-side optimizers here and
:mod:`repro.distributed.cpu_update` invoke.  That sharing is what makes the
numeric equivalence tests meaningful: CPU-updated and GPU-updated replicas
run literally the same arithmetic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

Array = np.ndarray


# ---------------------------------------------------------------------------
# Pure update kernels (shared by device- and host-side updates)
# ---------------------------------------------------------------------------

def sgd_update_kernel(param: Array, grad: Array, momentum_buf: Optional[Array],
                      lr: float, momentum: float, weight_decay: float) -> None:
    """In-place SGD with momentum and L2 weight decay (PyTorch semantics)."""
    g = grad
    if weight_decay:
        g = g + weight_decay * param
    if momentum_buf is not None:
        momentum_buf *= momentum
        momentum_buf += g
        g = momentum_buf
    param -= lr * g


def adam_update_kernel(param: Array, grad: Array, m: Array, v: Array,
                       lr: float, beta1: float, beta2: float, eps: float,
                       step: int, weight_decay: float) -> None:
    """In-place Adam (bias-corrected)."""
    g = grad
    if weight_decay:
        g = g + weight_decay * param
    m *= beta1
    m += (1 - beta1) * g
    v *= beta2
    v += (1 - beta2) * (g * g)
    mc = m / (1 - beta1 ** step)
    vc = v / (1 - beta2 ** step)
    param -= lr * mc / (np.sqrt(vc) + eps)


# ---------------------------------------------------------------------------
# Model-level optimizers
# ---------------------------------------------------------------------------

class SGD:
    """Momentum SGD over an :class:`ExecutableModel`'s parameters."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._buffers: Dict[Tuple[str, str], Array] = {}

    def state_bytes(self) -> int:
        return sum(int(b.nbytes) for b in self._buffers.values())

    def step(self, model) -> None:
        for lname, pname, param in model.parameters():
            grad = model.modules[lname].grads[pname]
            buf = None
            if self.momentum:
                key = (lname, pname)
                if key not in self._buffers:
                    self._buffers[key] = np.zeros_like(param)
                buf = self._buffers[key]
            sgd_update_kernel(param, grad, buf, self.lr, self.momentum,
                              self.weight_decay)

    def step_module(self, lname: str, module) -> None:
        """Update a single layer's parameters (block-granular updates)."""
        for pname, param in module.params.items():
            grad = module.grads[pname]
            buf = None
            if self.momentum:
                key = (lname, pname)
                if key not in self._buffers:
                    self._buffers[key] = np.zeros_like(param)
                buf = self._buffers[key]
            sgd_update_kernel(param, grad, buf, self.lr, self.momentum,
                              self.weight_decay)


class Adam:
    """Adam over an :class:`ExecutableModel`'s parameters."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: Dict[Tuple[str, str], Array] = {}
        self._v: Dict[Tuple[str, str], Array] = {}

    def state_bytes(self) -> int:
        return sum(int(b.nbytes) for b in self._m.values()) + \
            sum(int(b.nbytes) for b in self._v.values())

    def step(self, model) -> None:
        self.t += 1
        for lname, pname, param in model.parameters():
            grad = model.modules[lname].grads[pname]
            key = (lname, pname)
            if key not in self._m:
                self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
            adam_update_kernel(param, grad, self._m[key], self._v[key],
                               self.lr, self.beta1, self.beta2, self.eps,
                               self.t, self.weight_decay)
