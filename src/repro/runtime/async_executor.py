"""Asynchronous out-of-core executor: overlap transfers with compute.

KARMA's headline mechanism (§III-H, Fig. 6) is that swaps *overlap*
compute: prefetched swap-ins hide the host/storage links behind the
backward pass, so out-of-core training approaches in-core speed.  The
synchronous :class:`~repro.runtime.executor.OutOfCoreExecutor` cannot
exhibit that — every transfer completes inline — so the repo could
*predict* stall profiles it could not *produce*.  This executor closes
the loop:

* GPU ops (F/R/B) run on the calling thread, in exact plan order — the
  numerics are untouched, so gradients stay **bit-identical** to the
  synchronous oracle (the differential test holds both to exact
  equality);
* swap ops become :class:`~repro.runtime.streams.TransferRequest`\\ s on
  per-link :class:`~repro.runtime.streams.TransferStream` workers, with
  pool capacity reserved at admission and the accounting applied back on
  the main thread in deterministic issue order;
* a prefetch scheduler walks the compiled plan up to ``prefetch_stages``
  stages ahead of compute, issuing future swap-ins early (double
  buffering block boundaries) — gated by the same
  ``prefetch_lookahead``-blocks-of-backward throttle the simulator's
  event compiler encodes, and deferred (not failed) when admission finds
  no room;
* the backward of a swapped block **fences** on its swap-in's final hop
  before first use; recompute fences on its checkpoint source's swap-in.

Every fence and admission wait is measured, and the iteration's
:class:`RuntimeTrace` folds them into the same per-resource
:class:`~repro.sim.stall.StallProfile` the simulator emits — the
sim-vs-real comparison ``python -m repro validate`` reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.schedule import BlockPolicy, ExecutionPlan, OpKind
from ..hardware.memory_pool import Allocation, OutOfMemoryError
from ..hardware.tiering import DEVICE_TIER, DRAM_TIER
from ..nn.build import ExecutableModel
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..sim.stall import GPU, MEMORY, OTHER, StallProfile
from .executor import Array, OutOfCoreExecutor
from .streams import (
    LINK_RESOURCES,
    OpRecord,
    StreamSet,
    TransferPacer,
    TransferRequest,
)

_EPS = 1e-9


@dataclass
class RuntimeTrace:
    """Measured wall-clock timings of one asynchronous iteration.

    ``records`` holds one :class:`~repro.runtime.streams.OpRecord` per
    executed op (GPU ops and reaped transfers); ``waits`` accumulates the
    GPU-side idle time per resource — fence waits under the link they
    waited on, admission backpressure under ``memory``, unexplained
    scheduling overhead under ``other``.
    """

    wall_start: float = 0.0
    wall_end: float = 0.0
    gpu_busy: float = 0.0
    records: List[OpRecord] = field(default_factory=list)
    waits: Dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(0.0, self.wall_end - self.wall_start)

    def add_wait(self, resource: str, seconds: float) -> None:
        """Accumulate measured GPU idle time against ``resource``."""
        if seconds > _EPS:
            self.waits[resource] = self.waits.get(resource, 0.0) + seconds

    def stall_profile(self) -> StallProfile:
        """The measured profile in the simulator's attribution format."""
        return StallProfile(makespan=self.makespan, gpu_busy=self.gpu_busy,
                            stalls=dict(self.waits), source="measured")

    def resource_busy(self, resource: str) -> float:
        """Total measured busy seconds of one resource's op records."""
        return sum(r.duration for r in self.records
                   if r.resource == resource)


class AsyncOutOfCoreExecutor(OutOfCoreExecutor):
    """Execute a plan with transfers overlapped onto link streams.

    A drop-in replacement for the synchronous executor: same constructor
    shape, same ``run_iteration`` contract, bit-identical gradients.  The
    differences are in *when* transfers happen (issued at their stage
    launch point or prefetched early, completed off-thread) and in the
    measured :attr:`trace` each iteration leaves behind.

    Args:
        model/plan/space/allow_leaks/pacer: as for
            :class:`~repro.runtime.executor.OutOfCoreExecutor`.
        prefetch_stages: how many stages past the current one the
            prefetcher may walk to issue future swap-ins early; 0 mirrors
            the simulator's issue discipline exactly (swap-ins launch at
            their stage position only).
        prefetch_lookahead: a swap-in for block ``b`` is not issued until
            the backward of block ``b + prefetch_lookahead`` has run —
            the bounded prefetch depth of the event compiler's
            ``prefetch_lookahead`` dependency.
        stream_depth: bound on in-flight requests per link stream.
    """

    def __init__(self, model: ExecutableModel, plan: ExecutionPlan,
                 space: "MemorySpace | TieredMemorySpace",
                 allow_leaks: bool = False,
                 pacer: Optional[TransferPacer] = None, *,
                 prefetch_stages: int = 2,
                 prefetch_lookahead: int = 3,
                 stream_depth: int = 4):
        super().__init__(model, plan, space, allow_leaks=allow_leaks,
                         pacer=pacer)
        if prefetch_stages < 0 or prefetch_lookahead < 0:
            raise ValueError("prefetch windows must be >= 0")
        self.prefetch_stages = prefetch_stages
        self.prefetch_lookahead = prefetch_lookahead
        self.stream_depth = stream_depth
        self.trace: Optional[RuntimeTrace] = None

    # -- iteration state ---------------------------------------------------

    def _reset_async(self) -> None:
        self._sout_reqs: Dict[int, Optional[TransferRequest]] = {}
        self._sin_reqs: Dict[int, Optional[TransferRequest]] = {}
        # stash entries each swap-out moved: swap-in must use this list,
        # not live tier fields — the accounting may still be in flight
        self._sout_names: Dict[int, List[str]] = {}
        self._pending_sins: List[int] = []
        self._bw_done: set = set()
        self._gap_waits: Dict[str, float] = {}
        self._inop_waits = 0.0
        self._trace = RuntimeTrace()

    def _note_wait(self, resource: str, seconds: float) -> None:
        if seconds > _EPS:
            self._gap_waits[resource] = \
                self._gap_waits.get(resource, 0.0) + seconds

    # -- admission ---------------------------------------------------------

    def _rollback(self, tier: int, allocs: Dict[str, Allocation]) -> None:
        """Undo an admission (uncached — reservations leave no residue)."""
        pool = self.space.tier_pool(tier)
        for a in allocs.values():
            pool.free(a, cache=False)

    def _charge(self, name: str) -> None:
        """Charge a fresh stash with capacity backpressure.

        A forward that cannot fit while a swap-out is still in flight
        waits for the transfer to land (the runtime twin of the
        simulator's ledger delaying an acquire until a release), instead
        of OOMing on memory the synchronous schedule would have freed
        inline.  The wait is charged to ``memory`` and excluded from the
        op's busy time.
        """
        while True:
            self._streams.reap()
            try:
                return super()._charge(name)
            except OutOfMemoryError:
                t0 = self._clock()
                if not self._streams.wait_for_progress():
                    raise  # nothing in flight can ever free room
                waited = self._clock() - t0
                self._trace.add_wait(MEMORY, waited)
                self._inop_waits += waited
                METRICS.counter("runtime.admission_wait_s").inc(waited)

    def _admit(self, tier: int, names: List[str], *, blocking: bool,
               bounce: bool = False) -> Optional[Dict[str, Allocation]]:
        """Reserve ``tier`` pool bytes for every stash entry in ``names``.

        Admission is all-or-nothing: a partial reservation is rolled back
        (uncached — reservations must leave no residue) before retrying
        or deferring.  ``blocking=True`` waits for in-flight transfers to
        free room, charging the wait to ``memory``; ``blocking=False``
        returns None on the first OOM so the prefetcher can defer.
        """
        pool = self.space.tier_pool(tier)
        suffix = ":bounce" if bounce else ""
        while True:
            self._streams.reap()
            allocs: Dict[str, Allocation] = {}
            try:
                for n in names:
                    allocs[n] = pool.allocate(self._stash[n].nbytes,
                                              tag=n + suffix)
                return allocs
            except OutOfMemoryError:
                self._rollback(tier, allocs)
                if not blocking:
                    return None
                t0 = self._clock()
                if not self._streams.wait_for_progress():
                    raise  # nothing in flight can ever free room
                waited = self._clock() - t0
                self._note_wait(MEMORY, waited)
                METRICS.counter("runtime.admission_wait_s").inc(waited)

    # -- swap issue --------------------------------------------------------

    def _issue_swap_out(self, block: int) -> None:
        """Issue block's demotion to its placement tier (never blocks on
        the transfer itself, only on destination admission)."""
        if block in self._sout_reqs:
            return
        dest = self.plan.stash_tier(block)
        names = [n for n in self._layer_names(block)
                 if n in self._stash
                 and self._stash[n].tier == DEVICE_TIER]
        self._sout_names[block] = names
        if not names:
            self._sout_reqs[block] = None
            return
        total = sum(self._stash[n].nbytes for n in names)
        pacer = self.pacer or self._streams.pacer

        if dest == DRAM_TIER:
            dst = self._admit(DRAM_TIER, names, blocking=True)
            assert dst is not None

            def apply_host() -> None:
                for n in names:
                    entry = self._stash[n]
                    self.space.tier_pool(DEVICE_TIER).free(entry.allocation)
                    entry.allocation = dst[n]
                    entry.tier = DRAM_TIER
                    self.space.record_tier_swap(entry.nbytes, DEVICE_TIER,
                                                DRAM_TIER)

            req = TransferRequest(
                f"Sout{block + 1}", "d2h", block,
                pacer.host_hop_seconds(total, block), apply=apply_host,
                nbytes=total)
            self._streams.submit(req)
            self._sout_reqs[block] = req
            return

        # chained demotion: D2H into the DRAM bounce buffer, then the
        # storage write on the exclusive d2s link
        bounce = self._admit(DRAM_TIER, names, blocking=True, bounce=True)
        assert bounce is not None
        try:
            dst = self._admit(dest, names, blocking=True)
        except BaseException:
            self._rollback(DRAM_TIER, bounce)
            raise
        assert dst is not None

        def apply_d2h() -> None:
            # the stash has left the device; HBM bytes free here
            for n in names:
                self.space.tier_pool(DEVICE_TIER).free(
                    self._stash[n].allocation)

        def apply_d2s() -> None:
            for n in names:
                entry = self._stash[n]
                self.space.tier_pool(DRAM_TIER).free(bounce[n], cache=False)
                entry.allocation = dst[n]
                entry.tier = dest
                self.space.record_tier_swap(entry.nbytes, DEVICE_TIER, dest)

        hop1 = TransferRequest(
            f"Sout{block + 1}", "d2h", block,
            pacer.host_hop_seconds(total, block), apply=apply_d2h,
            nbytes=total)
        hop2 = TransferRequest(
            f"Sout{block + 1}@t{dest}", "d2s", block,
            pacer.storage_hop_seconds(total, block, down=True),
            after=hop1, apply=apply_d2s, nbytes=total)
        self._streams.submit(hop1)
        self._streams.submit(hop2)
        self._sout_reqs[block] = hop2

    def _gate_ok(self, block: int) -> bool:
        """The bounded-prefetch-depth throttle the event compiler encodes:
        a swap-in for ``block`` waits for backward of ``block + la``."""
        la = self.prefetch_lookahead
        return (not la or block + la >= self.plan.num_blocks
                or (block + la) in self._bw_done)

    def _issue_swap_in(self, block: int, *, blocking: bool,
                       force: bool = False) -> bool:
        """Issue block's promotion back to the device tier.

        Returns True when issued (or nothing to do); False when deferred —
        either the lookahead throttle is not yet satisfied (``force``
        overrides it: a fence must run now) or (``blocking=False``)
        device admission found no room.
        """
        if block in self._sin_reqs:
            return True
        if not force and not self._gate_ok(block):
            return False  # bounded prefetch depth (the sim's Bw dep)
        if block not in self._sout_reqs:
            return False  # its swap-out has not launched yet
        after = self._sout_reqs[block]
        names = self._sout_names.get(block, [])
        names = [n for n in names if n in self._stash]
        if not names:
            self._sin_reqs[block] = None
            return True
        src = self.plan.stash_tier(block)
        pacer = self.pacer or self._streams.pacer
        total = sum(self._stash[n].nbytes for n in names) if names else 0

        dst = self._admit(DEVICE_TIER, names, blocking=blocking)
        if dst is None:
            return False

        if src == DRAM_TIER:
            def apply_h2d() -> None:
                for n in names:
                    entry = self._stash[n]
                    self.space.tier_pool(DRAM_TIER).free(entry.allocation)
                    entry.allocation = dst[n]
                    entry.tier = DEVICE_TIER
                    self.space.record_tier_swap(entry.nbytes, DRAM_TIER,
                                                DEVICE_TIER)

            req = TransferRequest(
                f"Sin{block + 1}", "h2d", block,
                pacer.host_hop_seconds(total, block), after=after,
                apply=apply_h2d, nbytes=total)
            self._streams.submit(req)
            self._sin_reqs[block] = req
            return True

        # chained promotion: storage read lands in the DRAM bounce first,
        # then the H2D hop claims the (already admitted) device bytes
        try:
            bounce = self._admit(DRAM_TIER, names, blocking=blocking,
                                 bounce=True)
        except BaseException:
            self._rollback(DEVICE_TIER, dst)
            raise
        if bounce is None:
            self._rollback(DEVICE_TIER, dst)
            return False

        def apply_s2d() -> None:
            for n in names:
                self.space.tier_pool(src).free(self._stash[n].allocation)

        def apply_h2d_chained() -> None:
            for n in names:
                entry = self._stash[n]
                self.space.tier_pool(DRAM_TIER).free(bounce[n], cache=False)
                entry.allocation = dst[n]
                entry.tier = DEVICE_TIER
                self.space.record_tier_swap(entry.nbytes, src, DEVICE_TIER)

        hop1 = TransferRequest(
            f"Sin{block + 1}@t{src}", "s2d", block,
            pacer.storage_hop_seconds(total, block, down=False),
            after=after, apply=apply_s2d, nbytes=total)
        hop2 = TransferRequest(
            f"Sin{block + 1}", "h2d", block,
            pacer.host_hop_seconds(total, block), after=hop1,
            apply=apply_h2d_chained, nbytes=total)
        self._streams.submit(hop1)
        self._streams.submit(hop2)
        self._sin_reqs[block] = hop2
        return True

    # -- prefetch + fences -------------------------------------------------

    def _prefetch(self, stage_index: int) -> None:
        """Walk up to ``prefetch_stages`` stages ahead, issuing future
        swap-ins early.  Stops at the first swap-in it cannot issue, so
        link FIFO order always matches plan order."""
        if not self.prefetch_stages:
            return
        if self._pending_sins:
            # an earlier-plan-order swap-in is capacity-deferred; issuing
            # later ones first would let them steal the device bytes it
            # needs (its backward fences *earlier* — backwards descend),
            # turning a schedulable plan into a spurious OOM
            return
        stages = self.plan.stages
        hi = min(len(stages), stage_index + 1 + self.prefetch_stages)
        for si in range(stage_index + 1, hi):
            for op in stages[si].ops:
                if op.kind is not OpKind.SWAP_IN:
                    continue
                if not self._issue_swap_in(op.block, blocking=False):
                    return

    def _retry_pending(self) -> None:
        """Re-attempt swap-ins deferred at their own stage, in plan order."""
        while self._pending_sins:
            if not self._issue_swap_in(self._pending_sins[0],
                                       blocking=False):
                return
            self._pending_sins.pop(0)

    def _fence(self, req: Optional[TransferRequest]) -> None:
        """Wait for a transfer's final hop and apply its accounting."""
        if req is None or req.applied:
            return
        t0 = self._clock()
        req.wait()
        waited = self._clock() - t0
        self._streams.reap()
        self._note_wait(req.resource, waited)
        METRICS.counter("runtime.fence_wait_s").inc(waited)
        if TRACER.enabled:
            TRACER.record(f"fence:{req.label}", "fence", start=t0,
                          end=t0 + waited, track="gpu",
                          resource=req.resource, block=req.block)

    def _fence_for_gpu_op(self, op) -> None:
        """Block until every stash this GPU op reads is device-resident."""
        b = op.block
        if op.kind is OpKind.BACKWARD \
                and self.plan.policies[b] is BlockPolicy.SWAPPED:
            self._force_swap_in(b)
        elif op.kind is OpKind.RECOMPUTE:
            cp = self.plan.checkpoints.get(b)
            if cp is not None and cp >= 0 \
                    and self.plan.policies[cp] is BlockPolicy.SWAPPED \
                    and cp in self._sout_reqs:
                # the recompute reads its checkpoint source's boundary
                self._force_swap_in(cp)

    def _force_swap_in(self, block: int) -> None:
        """Issue (if still deferred) and fence one block's swap-in."""
        if block not in self._sin_reqs:
            # the prefetcher never got this one in — the fence pays full
            # transfer latency (the paper's un-hidden swap-in stall)
            METRICS.counter("runtime.prefetch_force_issued").inc()
        self._issue_swap_in(block, blocking=True, force=True)
        if block in self._pending_sins:
            self._pending_sins.remove(block)
        self._fence(self._sin_reqs.get(block))

    # -- public API --------------------------------------------------------

    def run_iteration(self, batch: Array, targets: Array,
                      step: int = 0) -> float:
        """Run one overlapped forward+backward pass following the plan.

        Same contract as the synchronous executor — returns the scalar
        loss, gradients accumulate into the model — plus a measured
        :class:`RuntimeTrace` left on :attr:`trace`.
        """
        self._clock = time.perf_counter
        self.model.set_step(step)
        self._reset(batch, targets)
        self._reset_async()
        trace = self._trace
        with StreamSet(LINK_RESOURCES, depth=self.stream_depth,
                       pacer=self.pacer or TransferPacer(),
                       clock=self._clock) as streams:
            self._streams = streams
            trace.wall_start = self._clock()
            gpu_free = trace.wall_start
            for si, stage in enumerate(self.plan.stages):
                streams.reap()
                self._retry_pending()
                gpu_op = None
                for op in stage.ops:
                    if op.kind is OpKind.SWAP_OUT:
                        self._issue_swap_out(op.block)
                    elif op.kind is OpKind.SWAP_IN:
                        # defer while the lookahead gate holds or device
                        # admission finds no room — the runtime twin of
                        # the simulator's ledger-delayed swap-in (the
                        # paper's capacity-based prefetch throttling);
                        # the backward fence force-issues it at first use
                        if not self._issue_swap_in(op.block,
                                                   blocking=False):
                            self._pending_sins.append(op.block)
                            METRICS.counter(
                                "runtime.prefetch_deferred").inc()
                    else:
                        gpu_op = op  # plan validation: at most one
                self._prefetch(si)
                if gpu_op is None:
                    continue
                self._fence_for_gpu_op(gpu_op)
                self._inop_waits = 0.0
                t0 = self._clock()
                self._exec_gpu_op(gpu_op)
                t1 = self._clock()
                # in-op charge backpressure is memory stall, not busy
                # time: the record's start shifts past the waited span so
                # summing record durations agrees with gpu_busy
                trace.records.append(OpRecord(
                    label=f"{gpu_op.kind.value}{gpu_op.block + 1}",
                    resource=GPU, block=gpu_op.block,
                    start=t0 + self._inop_waits, finish=t1,
                    ready=gpu_free))
                trace.gpu_busy += t1 - t0 - self._inop_waits
                # fold this gap's measured waits; the unexplained rest is
                # runtime overhead
                gap = t0 - gpu_free
                explained = 0.0
                for resource, w in self._gap_waits.items():
                    trace.add_wait(resource, w)
                    explained += w
                trace.add_wait(OTHER, gap - explained)
                self._gap_waits = {}
                if gpu_op.kind is OpKind.BACKWARD:
                    self._bw_done.add(gpu_op.block)
                gpu_free = t1
            streams.drain()
            trace.wall_end = self._clock()
            trace.records.extend(streams.records)
        self.trace = trace
        return self._finish_iteration()
