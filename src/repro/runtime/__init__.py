"""Numeric out-of-core runtime: capacity-enforced plan execution.

Two executors share one op dispatch and one bit-identical-gradients
invariant: the synchronous :class:`OutOfCoreExecutor` (the oracle —
every transfer completes inline) and the asynchronous
:class:`AsyncOutOfCoreExecutor` (transfers overlap compute on per-link
streams, prefetched ahead of use and fenced before first use).  See
``docs/runtime.md`` for the stream model and its invariants.
"""

from .async_executor import AsyncOutOfCoreExecutor, RuntimeTrace
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    checkpoint_digest,
    load_checkpoint,
    load_checkpoint_full,
    save_checkpoint,
)
from .executor import OutOfCoreExecutor, OutOfCorePlanError
from .streams import (
    LINK_RESOURCES,
    OpRecord,
    StreamSet,
    TransferPacer,
    TransferRequest,
    TransferStream,
)
from .trainer import OutOfCoreTrainer

__all__ = ["OutOfCoreExecutor", "OutOfCorePlanError", "OutOfCoreTrainer",
           "AsyncOutOfCoreExecutor", "RuntimeTrace",
           "TransferPacer", "TransferStream", "TransferRequest",
           "StreamSet", "OpRecord", "LINK_RESOURCES",
           "save_checkpoint", "load_checkpoint", "load_checkpoint_full",
           "CheckpointCorruptError", "CheckpointManager",
           "checkpoint_digest"]
