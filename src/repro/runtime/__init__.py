"""Numeric out-of-core runtime: capacity-enforced plan execution."""

from .checkpoint import load_checkpoint, save_checkpoint
from .executor import OutOfCoreExecutor, OutOfCorePlanError
from .trainer import OutOfCoreTrainer

__all__ = ["OutOfCoreExecutor", "OutOfCorePlanError", "OutOfCoreTrainer",
           "save_checkpoint", "load_checkpoint"]
