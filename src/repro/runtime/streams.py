"""Asynchronous transfer streams: one worker thread per interconnect link.

The synchronous executor *charges* transfers instantly — accounting moves
between tier pools but no wall-clock passes, so plans that the simulator
prices as overlap-rich still execute serially.  This module supplies the
missing runtime substrate:

* :class:`TransferPacer` — turns the planner's modeled durations (the same
  :class:`~repro.sim.trainer_sim.BlockCosts` and
  :class:`~repro.hardware.tiering.MemoryHierarchy` hop times the simulator
  prices with) into real wall-clock delays via a ``time_scale`` factor, so
  an emulated iteration *exhibits* the stall structure the simulator
  predicts;
* :class:`TransferRequest` — one link transfer: paced off-thread, with its
  pool accounting applied back on the issuing thread in deterministic
  issue order (the completion thunk never runs concurrently with compute);
* :class:`TransferStream` — one direction of one link (``h2d``/``d2h``/
  ``d2s``/``s2d``): a worker thread draining a **bounded** in-flight
  queue, FIFO like a CUDA stream;
* :class:`StreamSet` — the per-link streams of one executor plus the
  completion condition used for capacity backpressure (an admission that
  cannot reserve pool bytes waits for an in-flight transfer to finish).

Numerics are never touched by worker threads: arrays stay owned by the
main thread, workers only sleep out the modeled transfer time and
timestamp the request.  That is what keeps the asynchronous executor's
gradients bit-identical to the synchronous oracle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from queue import Queue
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.schedule import OpKind
from ..hardware.interconnect import TransferModel
from ..hardware.tiering import MemoryHierarchy
from ..obs.metrics import METRICS
from ..obs.trace import TRACER

#: The four link directions of a three-tier hierarchy, in issue priority
#: order.  Deeper hierarchies would extend this list.
LINK_RESOURCES: Tuple[str, ...] = ("h2d", "d2h", "d2s", "s2d")

#: Stall-attribution bucket for time spent waiting on pool capacity
#: (admission backpressure / the simulator's memory ledger).
MEMORY_RESOURCE = "memory"

#: Stall-attribution bucket for unexplained runtime overhead.
OTHER_RESOURCE = "other"


class TransferPacer:
    """Wall-clock emulation of the cost model's op durations.

    Maps modeled seconds to emulated seconds through ``time_scale``; a
    scale of 0 disables pacing entirely (pure-accounting runs, the test
    default).  Durations come from the same sources the simulator uses:

    * GPU ops — per-block forward/backward times from ``costs``;
    * host-link hops — the calibrated ``costs.swap_time`` when block
      costs are bound, else ``transfer.swap_time`` over raw bytes;
    * storage-link hops — ``hierarchy.hop_time`` (or the bound
      ``costs.storage_*`` block times).
    """

    def __init__(self, *, time_scale: float = 0.0,
                 costs: Optional[object] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 transfer: Optional[TransferModel] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.time_scale = time_scale
        self.costs = costs          # sim.trainer_sim.BlockCosts, if bound
        self.hierarchy = hierarchy
        self.transfer = transfer
        self._sleep = sleep

    # -- modeled durations (in emulated wall-clock seconds) ----------------

    def gpu_seconds(self, kind: OpKind, block: int) -> float:
        """Emulated duration of one GPU block op (F/R/B)."""
        if not self.time_scale or self.costs is None:
            return 0.0
        if kind is OpKind.BACKWARD:
            modeled = self.costs.bw[block]
        else:  # FORWARD and RECOMPUTE both re-run the block's forwards
            modeled = self.costs.fw[block]
        return modeled * self.time_scale

    def host_hop_seconds(self, nbytes: int, block: Optional[int]) -> float:
        """Emulated duration of one device<->DRAM hop."""
        if not self.time_scale:
            return 0.0
        if self.costs is not None and block is not None:
            return self.costs.swap_time[block] * self.time_scale
        if self.transfer is not None:
            return self.transfer.swap_time(nbytes) * self.time_scale
        if self.hierarchy is not None:
            return self.hierarchy.hop_time(nbytes, 0, down=True) \
                * self.time_scale
        return 0.0

    def storage_hop_seconds(self, nbytes: int, block: Optional[int],
                            *, down: bool) -> float:
        """Emulated duration of one DRAM<->storage hop."""
        if not self.time_scale:
            return 0.0
        if self.costs is not None and block is not None:
            modeled = self.costs.storage_out(block) if down \
                else self.costs.storage_in(block)
            if modeled > 0:
                return modeled * self.time_scale
        if self.hierarchy is not None and self.hierarchy.has_storage:
            return self.hierarchy.hop_time(nbytes, 1, down=down) \
                * self.time_scale
        return 0.0

    def transfer_seconds(self, nbytes: int, src_tier: int,
                         dst_tier: int) -> float:
        """Emulated store-and-forward time between two tiers (raw bytes)."""
        if not self.time_scale or src_tier == dst_tier:
            return 0.0
        if self.hierarchy is not None:
            return self.hierarchy.transfer_time(nbytes, src_tier, dst_tier) \
                * self.time_scale
        if self.transfer is not None:
            return self.transfer.swap_time(nbytes) * self.time_scale
        return 0.0

    def pace(self, seconds: float) -> None:
        """Sleep out an emulated duration (no-op for zero)."""
        if seconds > 0:
            self._sleep(seconds)


@dataclass
class OpRecord:
    """One measured operation — the runtime twin of the simulator's
    :class:`~repro.sim.engine.OpTiming`."""

    label: str
    resource: str
    block: int
    start: float
    finish: float
    ready: float
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def stall(self) -> float:
        return max(0.0, self.start - self.ready)


class TransferError(RuntimeError):
    """A stream worker failed; re-raised on the issuing thread at reap."""


_STOP = object()


class TransferRequest:
    """One in-flight link transfer.

    The worker thread only *paces* the request (sleeps out ``duration``)
    and timestamps it; ``apply`` — the pool-accounting thunk — runs later
    on the issuing thread, in per-stream issue order, when the executor
    reaps completions.  ``after`` chains this request behind another
    (possibly on a different stream): the worker waits for the
    predecessor to finish before starting, which is how a device->NVMe
    demotion serializes its D2H and D2S hops.
    """

    __slots__ = ("label", "resource", "block", "duration", "after", "apply",
                 "nbytes", "enqueued", "ready", "started", "finished",
                 "applied", "seq", "_done")

    def __init__(self, label: str, resource: str, block: int,
                 duration: float, *,
                 after: "Optional[TransferRequest]" = None,
                 apply: Optional[Callable[[], None]] = None,
                 nbytes: int = 0):
        self.label = label
        self.resource = resource
        self.block = block
        self.duration = duration
        self.after = after
        self.apply = apply
        self.nbytes = nbytes
        self.enqueued = 0.0
        self.ready = 0.0
        self.started = 0.0
        self.finished = 0.0
        self.applied = False
        self.seq = -1          # global submission index, set by StreamSet
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the worker finished pacing this request."""
        return self._done.wait(timeout)

    def record(self) -> OpRecord:
        """Freeze the request's timestamps into an :class:`OpRecord`."""
        return OpRecord(label=self.label, resource=self.resource,
                        block=self.block, start=self.started,
                        finish=self.finished, ready=self.ready,
                        nbytes=self.nbytes)


class TransferStream:
    """One interconnect link direction: a FIFO worker with a bounded
    in-flight queue.

    ``depth`` bounds how many submitted-but-unfinished requests the link
    accepts; :meth:`submit` blocks when the queue is full, which is the
    runtime's first admission throttle (the second is pool-capacity
    reservation, done by the executor before submitting).
    """

    def __init__(self, resource: str, *, depth: int = 4,
                 pacer: Optional[TransferPacer] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 completed: Optional[threading.Condition] = None):
        if depth < 1:
            raise ValueError("stream depth must be >= 1")
        self.resource = resource
        self.depth = depth
        self.pacer = pacer or TransferPacer()
        self.clock = clock
        self.inflight: List[TransferRequest] = []  # issue order, unreaped
        self.submitted = 0
        self._completed = completed or threading.Condition()
        self._queue: "Queue[object]" = Queue(maxsize=depth)
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name=f"stream-{resource}", daemon=True)
        self._thread.start()

    # -- issuing thread API ------------------------------------------------

    def submit(self, request: TransferRequest) -> TransferRequest:
        """Enqueue a request; blocks while the in-flight queue is full."""
        if self._failure is not None:
            raise TransferError(
                f"stream {self.resource} already failed") from self._failure
        request.enqueued = self.clock()
        self.inflight.append(request)
        self.submitted += 1
        self._queue.put(request)
        return request

    def reap_ready(self) -> List[TransferRequest]:
        """Pop the completed prefix of the in-flight list (issue order)."""
        if self._failure is not None:
            raise TransferError(
                f"stream {self.resource} worker failed") from self._failure
        out: List[TransferRequest] = []
        while self.inflight and self.inflight[0].done:
            out.append(self.inflight.pop(0))
        return out

    def drain(self) -> None:
        """Block until every submitted request has finished pacing."""
        for req in list(self.inflight):
            req.wait()
        if self._failure is not None:
            raise TransferError(
                f"stream {self.resource} worker failed") from self._failure

    def close(self) -> None:
        """Stop the worker thread (idempotent)."""
        if self._thread.is_alive():
            self._queue.put(_STOP)
            self._thread.join(timeout=5.0)

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            req: TransferRequest = item  # type: ignore[assignment]
            try:
                if req.after is not None:
                    req.after._done.wait()
                req.ready = self.clock()
                req.started = req.ready
                self.pacer.pace(req.duration)
                req.finished = self.clock()
            except BaseException as exc:  # pragma: no cover - defensive
                self._failure = exc
                req.finished = self.clock()
            req._done.set()
            with self._completed:
                self._completed.notify_all()


class StreamSet:
    """The per-link streams of one executor plus completion plumbing.

    Owns one :class:`TransferStream` per link direction, a shared
    completion condition (so capacity backpressure can wait for *any*
    transfer to finish), and the reap loop that applies completed
    requests' accounting thunks on the issuing thread in issue order.
    """

    def __init__(self, resources: Sequence[str] = LINK_RESOURCES, *,
                 depth: int = 4, pacer: Optional[TransferPacer] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self.pacer = pacer or TransferPacer()
        self.clock = clock
        self.completed = threading.Condition()
        self.streams: Dict[str, TransferStream] = {
            r: TransferStream(r, depth=depth, pacer=self.pacer, clock=clock,
                              completed=self.completed)
            for r in resources}
        self.records: List[OpRecord] = []
        self._seq = 0

    def stream(self, resource: str) -> TransferStream:
        """The stream serving one link direction (``h2d`` etc.)."""
        if resource not in self.streams:
            raise KeyError(f"no stream for link {resource!r}; have "
                           f"{sorted(self.streams)}")
        return self.streams[resource]

    def submit(self, request: TransferRequest) -> TransferRequest:
        """Route a request to its link's stream (bounded, may block)."""
        request.seq = self._seq
        self._seq += 1
        return self.stream(request.resource).submit(request)

    def reap(self) -> int:
        """Apply accounting for every completed request, in finish order.

        Per-stream FIFO means completion order equals issue order within
        a stream; across streams, chained requests (``after``) finish
        strictly after their predecessor, so applying in global
        ``(finished, seq)`` order guarantees a chained hop's accounting
        never runs before the hop it depends on.  Returns the number of
        requests applied.  Must only be called from the issuing thread —
        thunks mutate the (unsynchronized) memory pools.
        """
        ready: List[TransferRequest] = []
        for stream in self.streams.values():
            ready.extend(stream.reap_ready())
        ready.sort(key=lambda r: (r.finished, r.seq))
        traced = TRACER.enabled
        for req in ready:
            if req.apply is not None:
                req.apply()
            req.applied = True
            self.records.append(req.record())
            if req.nbytes:
                METRICS.counter(
                    f"runtime.bytes_moved.{req.resource}").inc(req.nbytes)
            if traced:
                TRACER.record(req.label, "transfer", start=req.started,
                              end=req.finished,
                              track=f"stream-{req.resource}",
                              block=req.block, nbytes=req.nbytes)
        return len(ready)

    def in_flight(self) -> int:
        """Number of submitted-but-unreaped requests across all streams."""
        return sum(len(s.inflight) for s in self.streams.values())

    def wait_for_progress(self, timeout: float = 60.0) -> bool:
        """Block until some in-flight request completes.

        Returns False when nothing is in flight (the caller's OOM is
        final — no pending transfer can free room).  Raises
        :class:`TransferError` after ``timeout`` seconds without progress
        (a stuck worker would otherwise hang the executor silently).
        """
        heads = [s.inflight[0] for s in self.streams.values() if s.inflight]
        if not heads:
            return False
        deadline = self.clock() + timeout
        with self.completed:
            while not any(h.done for h in heads):
                remaining = deadline - self.clock()
                if remaining <= 0 or not self.completed.wait(remaining):
                    raise TransferError(
                        "no transfer progress within "
                        f"{timeout:.0f}s; in-flight: "
                        f"{[h.label for h in heads]}")
        return True

    def drain(self) -> None:
        """Wait for every stream to empty, then apply all accounting."""
        for stream in self.streams.values():
            stream.drain()
        self.reap()

    def close(self) -> None:
        """Stop every stream worker (idempotent)."""
        for stream in self.streams.values():
            stream.close()

    def __enter__(self) -> "StreamSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
