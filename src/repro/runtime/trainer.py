"""Single-worker out-of-core training loop."""

from __future__ import annotations


import numpy as np

from ..core.schedule import ExecutionPlan
from ..hardware.memory_pool import MemorySpace
from ..nn.build import ExecutableModel
from .executor import OutOfCoreExecutor


class OutOfCoreTrainer:
    """Trains a numeric model under a KARMA plan with device-side updates.

    Single-GPU semantics: the weight update is folded into the end of the
    backward phase (§III-G), so the optimizer runs after ``run_iteration``.
    """

    def __init__(self, model: ExecutableModel, plan: ExecutionPlan,
                 space: MemorySpace, optimizer):
        self.model = model
        self.plan = plan
        self.space = space
        self.optimizer = optimizer
        self.executor = OutOfCoreExecutor(model, plan, space)
        self.step_count = 0

    def train_step(self, batch: np.ndarray, targets: np.ndarray) -> float:
        """One zero-grad + plan iteration + optimizer step; returns loss."""
        self.model.zero_grad()
        loss = self.executor.run_iteration(batch, targets,
                                           step=self.step_count)
        self.optimizer.step(self.model)
        self.step_count += 1
        return loss

    def train(self, data, steps: int) -> list:
        """Run ``steps`` iterations over a dataset with ``.batch(n, step)``."""
        losses = []
        for s in range(steps):
            x, y = data.batch(self.plan.batch_size, s)
            losses.append(self.train_step(x, y))
        return losses
