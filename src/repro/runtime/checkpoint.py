"""Model checkpoint/restart (§IV-C's mitigation strategy).

The paper splits epochs into separate runs "at which we checkpoint/restart
the model state" when scheduler limits preclude long jobs; fault-tolerant
data-parallel KARMA likewise relaunches from a checkpoint with a smaller
worker pool (§II-B).  Checkpoints capture parameters, non-trainable buffers
(BN statistics) and the training step, in a single ``.npz`` archive.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..nn.build import ExecutableModel


def save_checkpoint(model: ExecutableModel, path: str, *,
                    step: int = 0,
                    extra: Optional[Dict[str, np.ndarray]] = None) -> None:
    """Write model parameters + buffers (+ optional extras) to ``path``."""
    payload: Dict[str, np.ndarray] = {"__step__": np.asarray(step)}
    for lname, pname, arr in model.parameters():
        payload[f"param/{lname}/{pname}"] = arr
    for spec in model.graph:
        module = model.modules[spec.name]
        for bname, arr in module.buffers.items():
            payload[f"buffer/{spec.name}/{bname}"] = arr
    for key, arr in (extra or {}).items():
        payload[f"extra/{key}"] = np.asarray(arr)
    tmp = f"{path}.tmp"
    np.savez(tmp, **payload)
    os.replace(tmp + ".npz" if not tmp.endswith(".npz") else tmp, path)


def load_checkpoint(model: ExecutableModel, path: str) -> int:
    """Restore parameters/buffers in place; returns the saved step."""
    with np.load(path) as data:
        for lname, pname, arr in model.parameters():
            key = f"param/{lname}/{pname}"
            if key not in data:
                raise KeyError(f"checkpoint missing {key!r}")
            if data[key].shape != arr.shape:
                raise ValueError(f"shape mismatch for {key!r}: checkpoint "
                                 f"{data[key].shape} vs model {arr.shape}")
            arr[...] = data[key]
        for spec in model.graph:
            module = model.modules[spec.name]
            for bname, arr in module.buffers.items():
                key = f"buffer/{spec.name}/{bname}"
                if key in data:
                    arr[...] = data[key]
        return int(data["__step__"])
