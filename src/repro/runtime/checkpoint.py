"""Model checkpoint/restart (§IV-C's mitigation strategy), hardened.

The paper splits epochs into separate runs "at which we checkpoint/restart
the model state" when scheduler limits preclude long jobs; fault-tolerant
data-parallel KARMA likewise relaunches from a checkpoint with a smaller
worker pool (§II-B).  Checkpoints capture parameters, non-trainable buffers
(BN statistics), optional extras (host-optimizer slots), and the training
step, in a single ``.npz`` archive.

Hardening for the elastic runtime (``repro.elastic``):

* every archive carries a **content digest** (SHA-256 over each entry's
  name, dtype, shape, and bytes) that is re-verified on load — a torn or
  bit-flipped file surfaces as a typed :class:`CheckpointCorruptError`
  instead of an opaque zipfile traceback;
* writes are atomic (tmp + ``os.replace``), so a kill mid-write never
  replaces the last good checkpoint with a partial one;
* :class:`CheckpointManager` adds **periodic asynchronous** checkpointing:
  arrays are snapshotted synchronously (a consistent view of the step) and
  written on a background thread so training never stalls on storage, with
  bounded rotation and last-good tracking for the recovery controller.
"""

from __future__ import annotations

import hashlib
import os
import queue
import re
import threading
import time
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.build import ExecutableModel
from ..obs.metrics import METRICS

__all__ = [
    "CheckpointCorruptError",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_full",
    "checkpoint_digest",
    "CheckpointManager",
]

#: Archive key holding the content digest (excluded from its own hash).
_DIGEST_KEY = "__digest__"


class CheckpointCorruptError(RuntimeError):
    """The checkpoint file is truncated, unreadable, or fails its digest.

    Raised instead of the underlying ``zipfile``/``OSError`` so recovery
    code can tell *data loss* (fall back to an older checkpoint, or give
    up with a typed failure) apart from programming errors.
    """


def checkpoint_digest(payload: Dict[str, np.ndarray]) -> str:
    """SHA-256 hex digest of a checkpoint payload.

    Covers each entry's key, dtype, shape, and raw bytes in sorted key
    order; the digest entry itself is excluded.  Stable across processes
    and interpreter restarts for identical array contents.
    """
    h = hashlib.sha256()
    for key in sorted(payload):
        if key == _DIGEST_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        h.update(key.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    return h.hexdigest()


def _collect_payload(model: ExecutableModel, step: int,
                     extra: Optional[Dict[str, np.ndarray]],
                     *, copy: bool = False) -> Dict[str, np.ndarray]:
    """Flatten model state (+ extras) into the archive's key space."""
    payload: Dict[str, np.ndarray] = {"__step__": np.asarray(step)}
    for lname, pname, arr in model.parameters():
        payload[f"param/{lname}/{pname}"] = arr.copy() if copy else arr
    for spec in model.graph:
        module = model.modules[spec.name]
        for bname, arr in module.buffers.items():
            payload[f"buffer/{spec.name}/{bname}"] = (arr.copy() if copy
                                                      else arr)
    for key, val in (extra or {}).items():
        arr = np.asarray(val)
        payload[f"extra/{key}"] = arr.copy() if copy else arr
    return payload


def _write_payload(payload: Dict[str, np.ndarray], path: str) -> None:
    """Atomically write a digested archive to ``path``."""
    payload = dict(payload)
    payload[_DIGEST_KEY] = np.frombuffer(
        checkpoint_digest(payload).encode("ascii"), dtype=np.uint8).copy()
    tmp = f"{path}.tmp.npz"
    np.savez(tmp, **payload)
    os.replace(tmp, path)


def save_checkpoint(model: ExecutableModel, path: str, *,
                    step: int = 0,
                    extra: Optional[Dict[str, np.ndarray]] = None) -> None:
    """Write model parameters + buffers (+ optional extras) to ``path``.

    Args:
        model: the executable model whose state is captured.
        path: destination file (conventionally ``*.npz``); the write is
            atomic — a crash mid-write leaves any previous file intact.
        step: training step recorded alongside the state.
        extra: additional named arrays (host-optimizer slots, RNG state);
            restored by :func:`load_checkpoint_full`.
    """
    _write_payload(_collect_payload(model, step, extra), path)


def load_checkpoint_full(model: ExecutableModel, path: str
                         ) -> Tuple[int, Dict[str, np.ndarray]]:
    """Restore parameters/buffers in place; returns ``(step, extras)``.

    Verifies the archive's content digest before touching the model, so a
    corrupt file never leaves it half-restored.  Raises
    :class:`CheckpointCorruptError` for truncated/unreadable archives or
    digest mismatches, :class:`KeyError`/:class:`ValueError` for archives
    that are intact but belong to a different model.
    """
    try:
        with np.load(path) as data:
            entries = {key: data[key] for key in data.files}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is unreadable (truncated or corrupt "
            f"archive): {exc}") from exc
    digest_arr = entries.pop(_DIGEST_KEY, None)
    if digest_arr is not None:
        stored = bytes(digest_arr.tobytes()).decode("ascii",
                                                    errors="replace")
        actual = checkpoint_digest(entries)
        if stored != actual:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} failed its content digest "
                f"(stored {stored[:16]}..., computed {actual[:16]}...): "
                "the file was corrupted after writing")
    if "__step__" not in entries:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} has no __step__ entry: not a checkpoint "
            "archive")
    for lname, pname, arr in model.parameters():
        key = f"param/{lname}/{pname}"
        if key not in entries:
            raise KeyError(f"checkpoint missing {key!r}")
        if entries[key].shape != arr.shape:
            raise ValueError(f"shape mismatch for {key!r}: checkpoint "
                             f"{entries[key].shape} vs model {arr.shape}")
    for lname, pname, arr in model.parameters():
        arr[...] = entries[f"param/{lname}/{pname}"]
    for spec in model.graph:
        module = model.modules[spec.name]
        for bname, arr in module.buffers.items():
            key = f"buffer/{spec.name}/{bname}"
            if key in entries:
                arr[...] = entries[key]
    extras = {key[len("extra/"):]: val for key, val in entries.items()
              if key.startswith("extra/")}
    return int(entries["__step__"]), extras


def load_checkpoint(model: ExecutableModel, path: str) -> int:
    """Restore parameters/buffers in place; returns the saved step.

    Thin wrapper over :func:`load_checkpoint_full` for callers that do
    not carry extras (the seed API).
    """
    step, _ = load_checkpoint_full(model, path)
    return step


class _Pending:
    """One queued asynchronous write (payload already snapshotted)."""

    __slots__ = ("payload", "path", "step")

    def __init__(self, payload: Dict[str, np.ndarray], path: str,
                 step: int) -> None:
        self.payload = payload
        self.path = path
        self.step = step


class CheckpointManager:
    """Periodic, asynchronous, digest-verified checkpointing.

    The manager owns a directory of ``ckpt_<step>.npz`` archives.  On
    :meth:`save`, the model's arrays are *snapshotted synchronously* (so
    the archive is a consistent view of that step even while training
    mutates the live arrays) and written on a background thread; the
    caller only pays the copy.  ``keep`` bounds on-disk rotation and
    :attr:`last_good` always names the newest fully-written archive — the
    recovery controller restarts from it.

    Args:
        directory: checkpoint directory (created if missing).
        interval: :meth:`maybe_save` checkpoints every ``interval`` steps
            (``0`` disables periodic saves; explicit :meth:`save` always
            works).
        keep: archives retained on disk (older ones are unlinked).
        asynchronous: write on a background thread (default); ``False``
            writes inline, which tests use for determinism.
    """

    _STOP = object()

    def __init__(self, directory: str, *, interval: int = 0, keep: int = 2,
                 asynchronous: bool = True) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval = interval
        self.keep = keep
        self.asynchronous = asynchronous
        self._history: List[Tuple[int, Path]] = []
        self._lock = threading.Lock()
        self._error: Optional[BaseException] = None
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        if asynchronous:
            self._thread = threading.Thread(target=self._writer,
                                            daemon=True,
                                            name="checkpoint-writer")
            self._thread.start()

    # -- saving ------------------------------------------------------------

    def path_for(self, step: int) -> Path:
        """The archive path used for ``step``."""
        return self.directory / f"ckpt_{step:08d}.npz"

    def maybe_save(self, model: ExecutableModel, step: int, *,
                   extra: Optional[Dict[str, np.ndarray]] = None
                   ) -> Optional[Path]:
        """Checkpoint when ``step`` hits the periodic interval.

        Returns the archive path when a save was scheduled, else None.
        """
        if self.interval and step > 0 and step % self.interval == 0:
            return self.save(model, step, extra=extra)
        return None

    def save(self, model: ExecutableModel, step: int, *,
             extra: Optional[Dict[str, np.ndarray]] = None) -> Path:
        """Snapshot the model now; write (possibly asynchronously).

        Raises any error a *previous* asynchronous write hit, so storage
        failures surface at the next checkpoint instead of silently
        dropping archives.
        """
        self._raise_pending_error()
        payload = _collect_payload(model, step, extra, copy=True)
        path = self.path_for(step)
        if self.asynchronous:
            self._queue.put(_Pending(payload, str(path), step))
        else:
            self._write(_Pending(payload, str(path), step))
        return path

    def wait(self) -> None:
        """Block until every queued write has landed; re-raise errors."""
        if self.asynchronous:
            self._queue.join()
        self._raise_pending_error()

    def close(self) -> None:
        """Finish pending writes and stop the writer thread (idempotent)."""
        if self._thread is not None:
            self._queue.put(self._STOP)
            self._thread.join()
            self._thread = None
        self._raise_pending_error()

    def __enter__(self) -> "CheckpointManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- recovery side -----------------------------------------------------

    @property
    def last_good(self) -> Optional[Tuple[int, Path]]:
        """``(step, path)`` of the newest fully-written archive, if any."""
        with self._lock:
            return self._history[-1] if self._history else None

    def discover(self) -> Optional[Tuple[int, Path]]:
        """Scan the directory for the newest archive (cold restart).

        Seeds :attr:`last_good` from disk — a relaunched controller that
        did not write the archives itself still finds them.
        """
        best: Optional[Tuple[int, Path]] = None
        for path in sorted(self.directory.glob("ckpt_*.npz")):
            match = re.fullmatch(r"ckpt_(\d+)\.npz", path.name)
            if match is None:
                continue
            step = int(match.group(1))
            if best is None or step > best[0]:
                best = (step, path)
        if best is not None:
            with self._lock:
                if best not in self._history:
                    self._history.append(best)
                    self._history.sort()
        return best

    def restore_latest(self, model: ExecutableModel
                       ) -> Tuple[int, Dict[str, np.ndarray]]:
        """Load the newest archive into ``model``; returns (step, extras).

        Walks backwards through the retained archives: a corrupt newest
        file falls back to the previous one (counted in
        ``elastic.checkpoint_fallbacks``).  Raises
        :class:`CheckpointCorruptError` when none survive.
        """
        with self._lock:
            candidates = list(reversed(self._history))
        if not candidates:
            found = self.discover()
            candidates = [found] if found is not None else []
        last_error: Optional[BaseException] = None
        for step, path in candidates:
            try:
                loaded_step, extras = load_checkpoint_full(model, str(path))
                return loaded_step, extras
            except CheckpointCorruptError as exc:
                METRICS.counter("elastic.checkpoint_fallbacks").inc()
                last_error = exc
        from ..obs.flight import FLIGHT

        FLIGHT.dump("checkpoint_corrupt",
                    detail={"archives": len(candidates),
                            "error": str(last_error) if last_error else
                            "none were ever written"})
        raise CheckpointCorruptError(
            "no loadable checkpoint: "
            + (str(last_error) if last_error else "none were ever written"))

    # -- internals ---------------------------------------------------------

    def _raise_pending_error(self) -> None:
        with self._lock:
            err, self._error = self._error, None
        if err is not None:
            raise err

    def _write(self, pending: _Pending) -> None:
        t0 = time.perf_counter()
        _write_payload(pending.payload, pending.path)
        METRICS.counter("elastic.checkpoints_written").inc()
        METRICS.histogram("elastic.checkpoint_write_s").observe(
            time.perf_counter() - t0)
        METRICS.gauge("elastic.last_checkpoint_step").set(pending.step)
        with self._lock:
            self._history.append((pending.step, Path(pending.path)))
            self._history.sort()
            while len(self._history) > self.keep:
                _, old = self._history.pop(0)
                try:
                    old.unlink()
                except OSError:  # already gone: rotation is best-effort
                    pass

    def _writer(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._STOP:
                    return
                assert isinstance(item, _Pending)
                self._write(item)
            except BaseException as exc:  # noqa: BLE001 - surfaced on save
                with self._lock:
                    self._error = exc
            finally:
                self._queue.task_done()
