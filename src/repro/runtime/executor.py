"""Numeric out-of-core executor: runs KARMA plans on real numpy tensors.

This is the correctness half of the reproduction.  The executor walks an
:class:`ExecutionPlan` stage by stage against an :class:`ExecutableModel`,
with every stash byte accounted in a capacity-enforced near pool:

* ``F b``    — forward the block's layers, charging activations + saved
               contexts to the near pool (OOM here means the plan is
               genuinely infeasible, like a real 16 GiB device);
* ``Sout b`` — move the block's stash accounting (and array ownership) to
               the tier the plan placed it in (DRAM by default, NVMe for
               storage-placed blocks under a tiered space);
* ``Sin b``  — bring it back to the device tier;
* ``R b``    — re-run the block's forwards from its checkpoint source;
               dropout uses counter-based streams, so the recompute is
               bit-identical to the original;
* ``B b``    — backward the block's layers in reverse, freeing the stash.

Gradients produced under *any* legal plan are bit-identical to vanilla
in-core backprop — the invariant the test suite asserts (§IV-D's "no
impact on accuracy" claim, strengthened to exact equality).

This executor is strictly synchronous — every transfer completes before
the next op starts — which makes it the *oracle* the asynchronous
executor (:mod:`repro.runtime.async_executor`) is differentially tested
against.  Pass a :class:`~repro.runtime.streams.TransferPacer` to make
the modeled compute/transfer durations take real wall-clock time (the
sim-vs-real validation harness and the overlap benchmarks do this); by
default no time is paced and execution is pure accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.schedule import BlockPolicy, ExecutionPlan, OpKind
from ..graph.layer_graph import LayerGraph
from ..graph.traversal import liveness_horizon
from ..hardware.memory_pool import Allocation
from ..hardware.tiering import DEVICE_TIER
from ..nn.build import ExecutableModel
from ..obs.trace import TRACER
from .streams import TransferPacer

Array = np.ndarray


def _tensor_bytes(obj: object, seen: Optional[Set[int]] = None) -> int:
    """Total ndarray bytes reachable from ``obj`` (tuples/lists), deduped."""
    seen = set() if seen is None else seen
    if isinstance(obj, np.ndarray):
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(_tensor_bytes(x, seen) for x in obj)
    return 0


@dataclass
class _StashEntry:
    """Accounting record for one layer's stashed state."""

    nbytes: int
    allocation: Allocation
    tier: int  # memory tier index (0 = device)


class OutOfCorePlanError(RuntimeError):
    """The plan asked for something the numeric state cannot satisfy."""


class OutOfCoreExecutor:
    """Execute one training iteration of ``plan`` over ``model``.

    The synchronous reference runtime: ops run strictly in stage order,
    transfers are instantaneous accounting moves (plus an optional paced
    delay), and gradients are bit-identical to in-core backprop under any
    legal plan.

    Args:
        model: the numeric model; provides layer-granular compute while
            the executor owns the activation (``acts``) and saved-context
            (``ctxs``) stores.
        plan: a validated :class:`~repro.core.schedule.ExecutionPlan`;
            its deepest stash tier must exist in ``space``.
        space: the capacity-enforced memory pools — either the classic
            two-pool :class:`MemorySpace` or an N-pool
            :class:`~repro.hardware.tiering.TieredMemorySpace`; both
            expose the same tier-indexed protocol.
        allow_leaks: tolerate stash entries surviving the iteration
            instead of raising (test escape hatch).
        pacer: optional :class:`~repro.runtime.streams.TransferPacer`;
            when set, GPU block ops and tier transfers take their modeled
            durations in real wall-clock time (``time_scale``-scaled), so
            sync-vs-async overlap is measurable.

    Raises:
        OutOfCorePlanError: the plan is inconsistent with the space or
            the execution state (e.g. backward before swap-in).
    """

    def __init__(self, model: ExecutableModel, plan: ExecutionPlan,
                 space: "MemorySpace | TieredMemorySpace",
                 allow_leaks: bool = False,
                 pacer: Optional[TransferPacer] = None):
        plan.validate(model.graph)
        if plan.max_tier >= space.num_tiers:
            raise OutOfCorePlanError(
                f"plan places stashes in tier {plan.max_tier} but the "
                f"space has only {space.num_tiers} tier(s); use a "
                "TieredMemorySpace matching the hierarchy")
        self.model = model
        self.plan = plan
        self.space = space
        self.allow_leaks = allow_leaks
        self.pacer = pacer
        self.graph: LayerGraph = model.graph
        self._horizon = liveness_horizon(self.graph)
        self._block_end: Dict[int, int] = {
            b: e for b, (_, e) in enumerate(plan.blocks)}

    # -- per-iteration state -------------------------------------------------

    def _reset(self, batch: Array, targets: Optional[Array]) -> None:
        self.acts: Dict[str, Array] = {}
        self.ctxs: Dict[str, tuple] = {}
        self.douts: Dict[str, Array] = {}
        self._stash: Dict[str, _StashEntry] = {}
        self._loss: Optional[float] = None
        self._batch = batch
        if targets is not None:
            self.model.set_targets(targets)

    # -- stash accounting ------------------------------------------------------

    def _charge(self, name: str) -> None:
        nbytes = _tensor_bytes(self.acts.get(name)) \
            + _tensor_bytes(self.ctxs.get(name, ()))
        alloc = self.space.near.allocate(nbytes, tag=name)
        self._stash[name] = _StashEntry(nbytes, alloc, DEVICE_TIER)

    def _free(self, name: str) -> None:
        entry = self._stash.pop(name, None)
        if entry is not None:
            self.space.tier_pool(entry.tier).free(entry.allocation)
        self.acts.pop(name, None)
        self.ctxs.pop(name, None)

    def _move(self, name: str, dest_tier: int) -> None:
        entry = self._stash.get(name)
        if entry is None:
            raise OutOfCorePlanError(f"no stash for layer {name!r}")
        if entry.tier == dest_tier:
            return
        src = entry.tier
        # store-and-forward: each hop lands fully in the next tier before
        # the following hop starts, so an intermediate tier (the DRAM
        # bounce buffer of a device<->NVMe transfer) holds the stash only
        # across its two adjacent hops.  The bounce is released with
        # cache=False: a cached bounce segment would keep the intermediate
        # pool's reserved bytes inflated after the transfer completes —
        # double-charging DRAM against real stash traffic, which the
        # hierarchy's per-hop transfer semantics (and TransferModel's
        # transient staging buffers) do not do.
        step = 1 if dest_tier > src else -1
        for nxt in range(src + step, dest_tier + step, step):
            tag = name if nxt == dest_tier else f"{name}:bounce"
            # allocate the hop destination BEFORE touching the entry: a
            # mid-chain OOM propagates with the entry still consistently
            # pointing at the live allocation of the tier it reached
            new_alloc = self.space.tier_pool(nxt).allocate(
                entry.nbytes, tag=tag)
            self.space.tier_pool(entry.tier).free(
                entry.allocation, cache=None if entry.tier == src else False)
            entry.allocation = new_alloc
            entry.tier = nxt
        self.space.record_tier_swap(entry.nbytes, src, dest_tier)

    def _layer_names(self, block: int) -> List[str]:
        s, e = self.plan.blocks[block]
        return [self.graph[i].name for i in range(s, e)]

    def _pace_gpu(self, kind: OpKind, block: int, elapsed: float) -> None:
        """Sleep out the residual of the block op's modeled duration."""
        if self.pacer is not None:
            self.pacer.pace(self.pacer.gpu_seconds(kind, block) - elapsed)

    def _transfer_seconds(self, block: int, nbytes: int, src: int,
                          dst: int) -> float:
        """Modeled wall-clock of one block stash move (store-and-forward)."""
        if self.pacer is None or src == dst:
            return 0.0
        total = 0.0
        down = dst > src
        for upper in range(min(src, dst), max(src, dst)):
            if upper == 0:
                total += self.pacer.host_hop_seconds(nbytes, block)
            else:
                total += self.pacer.storage_hop_seconds(nbytes, block,
                                                        down=down)
        return total

    # -- plan ops ----------------------------------------------------------------

    def _forward_block(self, block: int, *, recompute: bool) -> None:
        t0 = time.perf_counter()
        s, e = self.plan.blocks[block]
        policy = self.plan.policies[block]
        for i in range(s, e):
            name = self.graph[i].name
            if not recompute and name in self.acts:
                raise OutOfCorePlanError(f"double forward of {name!r}")
            self.model.run_forward_layer(i, self.acts, self.ctxs,
                                         batch=self._batch, training=True)
            self._charge(name)
        if recompute:
            self._pace_gpu(OpKind.RECOMPUTE, block, time.perf_counter() - t0)
            return
        # post-forward residency per policy
        if policy in (BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED):
            keep_boundary = policy is BlockPolicy.CHECKPOINTED
            last = self.graph[e - 1].name
            for i in range(s, e):
                name = self.graph[i].name
                if keep_boundary and name == last:
                    continue
                if self._horizon[name] >= e:
                    continue  # pinned: a later block still consumes it
                self._free(name)
        self._pace_gpu(OpKind.FORWARD, block, time.perf_counter() - t0)

    def _recompute_block(self, block: int) -> None:
        """Re-forward a dropped block from its surviving inputs."""
        t0 = time.perf_counter()
        s, e = self.plan.blocks[block]
        for i in range(s, e):
            name = self.graph[i].name
            if name in self.acts:
                continue  # boundary kept by CHECKPOINTED, or pinned
            self.model.run_forward_layer(i, self.acts, self.ctxs,
                                         batch=self._batch, training=True)
            self._charge(name)
        self._pace_gpu(OpKind.RECOMPUTE, block, time.perf_counter() - t0)

    def _swap(self, block: int, dest_tier: int) -> None:
        moved = 0
        src: Optional[int] = None
        for name in self._layer_names(block):
            entry = self._stash.get(name)
            if entry is not None:
                if entry.tier != dest_tier and src is None:
                    src = entry.tier
                moved += entry.nbytes if entry.tier != dest_tier else 0
                self._move(name, dest_tier)
        if self.pacer is not None and moved and src is not None:
            self.pacer.pace(self._transfer_seconds(block, moved, src,
                                                   dest_tier))

    def _backward_block(self, block: int) -> None:
        t0 = time.perf_counter()
        s, e = self.plan.blocks[block]
        policy = self.plan.policies[block]
        if policy is BlockPolicy.SWAPPED:
            for name in self._layer_names(block):
                entry = self._stash.get(name)
                if entry is not None and entry.tier != DEVICE_TIER:
                    raise OutOfCorePlanError(
                        f"backward of block {block} before swap-in "
                        f"({name!r} still in tier {entry.tier})")
        for i in range(e - 1, s - 1, -1):
            name = self.graph[i].name
            if name not in self.douts:
                # dead branch (token inputs): no gradient will ever flow
                # here, so the stash is dead exactly like after a normal
                # backward — free it now instead of leaking to iteration
                # end (edges only point forward, so every consumer's
                # backward/recompute already ran in descending block order)
                self._free(name)
                continue
            if name not in self.ctxs:
                raise OutOfCorePlanError(
                    f"backward of {name!r} without saved context "
                    f"(policy {policy.value})")
            self.model.run_backward_layer(i, self.douts, self.ctxs)
            # each layer's saved context is consumed exactly once (its own
            # backward), and any recompute that needed this activation as a
            # forward input ran earlier in the descending block order — so
            # the stash is dead here
            self._free(name)
        self._pace_gpu(OpKind.BACKWARD, block, time.perf_counter() - t0)

    # -- op dispatch (shared with the async executor) -------------------------

    def _capture_loss(self, block: int) -> None:
        """After the final block's forward, read the loss and seed douts."""
        if self._block_end[block] == len(self.graph):
            last = self.graph[len(self.graph) - 1].name
            self._loss = float(self.acts[last][0])
            self.douts[last] = np.ones_like(self.acts[last])

    def _exec_gpu_op(self, op) -> None:
        """Run one GPU op (F/R/B) of the plan on the calling thread."""
        if not TRACER.enabled:
            self._dispatch_gpu_op(op)
            return
        with TRACER.span(f"{op.kind.value}{op.block + 1}", "gpu",
                         track="gpu", block=op.block):
            self._dispatch_gpu_op(op)

    def _dispatch_gpu_op(self, op) -> None:
        b = op.block
        if op.kind is OpKind.FORWARD:
            self._forward_block(b, recompute=False)
            self._capture_loss(b)
        elif op.kind is OpKind.RECOMPUTE:
            self._recompute_block(b)
        elif op.kind is OpKind.BACKWARD:
            self._backward_block(b)
        else:
            raise OutOfCorePlanError(
                f"numeric executor cannot run op {op.kind}")

    def _finish_iteration(self) -> float:
        """Leak-check the stash and return the captured loss."""
        if self._loss is None:
            raise OutOfCorePlanError("plan never produced the loss")
        # all stash must be gone: a leak means some op never ran (the plan
        # is wrong) or the executor lost track of a stash (the executor is
        # wrong) — either way the pool accounting can no longer be trusted
        leaked = sorted(self._stash)
        if leaked:
            for n in leaked:
                self._free(n)  # restore pool accounting before reporting
            if not self.allow_leaks:
                raise OutOfCorePlanError(
                    f"iteration leaked {len(leaked)} stash entr"
                    f"{'y' if len(leaked) == 1 else 'ies'}: "
                    f"{', '.join(leaked)} (pass allow_leaks=True to "
                    "tolerate this in tests)")
        return self._loss

    # -- public API -----------------------------------------------------------------

    def run_iteration(self, batch: Array, targets: Array,
                      step: int = 0) -> float:
        """Run one forward+backward pass following the plan.

        Args:
            batch: the input batch (fed to the graph's input layer).
            targets: the labels (fed to the loss layer).
            step: iteration counter; seeds the counter-based dropout
                streams so recompute is bit-identical.

        Returns:
            The scalar loss.  Gradients accumulate into the model's
            modules; the caller applies the optimizer (single-GPU
            semantics fold the update into backward, the distributed
            trainer updates on the host instead).
        """
        self.model.set_step(step)
        self._reset(batch, targets)
        for stage in self.plan.stages:
            for op in stage.ops:
                if op.kind is OpKind.SWAP_OUT:
                    self._swap(op.block, self.plan.stash_tier(op.block))
                elif op.kind is OpKind.SWAP_IN:
                    self._swap(op.block, DEVICE_TIER)
                else:
                    self._exec_gpu_op(op)
        return self._finish_iteration()
