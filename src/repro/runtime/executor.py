"""Numeric out-of-core executor: runs KARMA plans on real numpy tensors.

This is the correctness half of the reproduction.  The executor walks an
:class:`ExecutionPlan` stage by stage against an :class:`ExecutableModel`,
with every stash byte accounted in a capacity-enforced near pool:

* ``F b``    — forward the block's layers, charging activations + saved
               contexts to the near pool (OOM here means the plan is
               genuinely infeasible, like a real 16 GiB device);
* ``Sout b`` — move the block's stash accounting (and array ownership) to
               the tier the plan placed it in (DRAM by default, NVMe for
               storage-placed blocks under a tiered space);
* ``Sin b``  — bring it back to the device tier;
* ``R b``    — re-run the block's forwards from its checkpoint source;
               dropout uses counter-based streams, so the recompute is
               bit-identical to the original;
* ``B b``    — backward the block's layers in reverse, freeing the stash.

Gradients produced under *any* legal plan are bit-identical to vanilla
in-core backprop — the invariant the test suite asserts (§IV-D's "no
impact on accuracy" claim, strengthened to exact equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.schedule import BlockPolicy, ExecutionPlan, OpKind
from ..graph.layer_graph import LayerGraph
from ..graph.traversal import liveness_horizon
from ..hardware.memory_pool import Allocation
from ..hardware.tiering import DEVICE_TIER
from ..nn.build import ExecutableModel

Array = np.ndarray


def _tensor_bytes(obj: object, seen: Optional[Set[int]] = None) -> int:
    """Total ndarray bytes reachable from ``obj`` (tuples/lists), deduped."""
    seen = set() if seen is None else seen
    if isinstance(obj, np.ndarray):
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(_tensor_bytes(x, seen) for x in obj)
    return 0


@dataclass
class _StashEntry:
    """Accounting record for one layer's stashed state."""

    nbytes: int
    allocation: Allocation
    tier: int  # memory tier index (0 = device)


class OutOfCorePlanError(RuntimeError):
    """The plan asked for something the numeric state cannot satisfy."""


class OutOfCoreExecutor:
    """Executes one training iteration of ``plan`` over ``model``.

    ``space`` supplies the capacity-enforced memory pools — either the
    classic two-pool :class:`MemorySpace` or an N-pool
    :class:`~repro.hardware.tiering.TieredMemorySpace`; both expose the
    same tier-indexed protocol.  The executor owns the activation
    (``acts``) and saved-context (``ctxs``) stores; the model provides the
    layer-granular compute.
    """

    def __init__(self, model: ExecutableModel, plan: ExecutionPlan,
                 space: "MemorySpace | TieredMemorySpace",
                 allow_leaks: bool = False):
        plan.validate(model.graph)
        if plan.max_tier >= space.num_tiers:
            raise OutOfCorePlanError(
                f"plan places stashes in tier {plan.max_tier} but the "
                f"space has only {space.num_tiers} tier(s); use a "
                "TieredMemorySpace matching the hierarchy")
        self.model = model
        self.plan = plan
        self.space = space
        self.allow_leaks = allow_leaks
        self.graph: LayerGraph = model.graph
        self._horizon = liveness_horizon(self.graph)
        self._block_end: Dict[int, int] = {
            b: e for b, (_, e) in enumerate(plan.blocks)}

    # -- per-iteration state -------------------------------------------------

    def _reset(self, batch: Array, targets: Optional[Array]) -> None:
        self.acts: Dict[str, Array] = {}
        self.ctxs: Dict[str, tuple] = {}
        self.douts: Dict[str, Array] = {}
        self._stash: Dict[str, _StashEntry] = {}
        self._batch = batch
        if targets is not None:
            self.model.set_targets(targets)

    # -- stash accounting ------------------------------------------------------

    def _charge(self, name: str) -> None:
        nbytes = _tensor_bytes(self.acts.get(name)) \
            + _tensor_bytes(self.ctxs.get(name, ()))
        alloc = self.space.near.allocate(nbytes, tag=name)
        self._stash[name] = _StashEntry(nbytes, alloc, DEVICE_TIER)

    def _free(self, name: str) -> None:
        entry = self._stash.pop(name, None)
        if entry is not None:
            self.space.tier_pool(entry.tier).free(entry.allocation)
        self.acts.pop(name, None)
        self.ctxs.pop(name, None)

    def _move(self, name: str, dest_tier: int) -> None:
        entry = self._stash.get(name)
        if entry is None:
            raise OutOfCorePlanError(f"no stash for layer {name!r}")
        if entry.tier == dest_tier:
            return
        src = entry.tier
        # store-and-forward: a multi-hop move stages through every
        # intermediate tier (the DRAM bounce buffer of a device<->NVMe
        # transfer), so each intermediate pool must transiently hold the
        # stash — matching the timing model's per-hop semantics
        step = 1 if dest_tier > src else -1
        for tier in range(src + step, dest_tier, step):
            bounce = self.space.tier_pool(tier).allocate(
                entry.nbytes, tag=f"{name}:bounce")
            self.space.tier_pool(tier).free(bounce)
        new_alloc = self.space.tier_pool(dest_tier).allocate(
            entry.nbytes, tag=name)
        self.space.tier_pool(entry.tier).free(entry.allocation)
        entry.allocation = new_alloc
        entry.tier = dest_tier
        self.space.record_tier_swap(entry.nbytes, src, dest_tier)

    def _layer_names(self, block: int) -> List[str]:
        s, e = self.plan.blocks[block]
        return [self.graph[i].name for i in range(s, e)]

    # -- plan ops ----------------------------------------------------------------

    def _forward_block(self, block: int, *, recompute: bool) -> None:
        s, e = self.plan.blocks[block]
        policy = self.plan.policies[block]
        for i in range(s, e):
            name = self.graph[i].name
            if not recompute and name in self.acts:
                raise OutOfCorePlanError(f"double forward of {name!r}")
            self.model.run_forward_layer(i, self.acts, self.ctxs,
                                         batch=self._batch, training=True)
            self._charge(name)
        if recompute:
            return
        # post-forward residency per policy
        if policy in (BlockPolicy.RECOMPUTED, BlockPolicy.CHECKPOINTED):
            keep_boundary = policy is BlockPolicy.CHECKPOINTED
            last = self.graph[e - 1].name
            for i in range(s, e):
                name = self.graph[i].name
                if keep_boundary and name == last:
                    continue
                if self._horizon[name] >= e:
                    continue  # pinned: a later block still consumes it
                self._free(name)

    def _recompute_block(self, block: int) -> None:
        """Re-forward a dropped block from its surviving inputs."""
        s, e = self.plan.blocks[block]
        for i in range(s, e):
            name = self.graph[i].name
            if name in self.acts:
                continue  # boundary kept by CHECKPOINTED, or pinned
            self.model.run_forward_layer(i, self.acts, self.ctxs,
                                         batch=self._batch, training=True)
            self._charge(name)

    def _swap(self, block: int, dest_tier: int) -> None:
        for name in self._layer_names(block):
            if name in self._stash:
                self._move(name, dest_tier)

    def _backward_block(self, block: int) -> None:
        s, e = self.plan.blocks[block]
        policy = self.plan.policies[block]
        if policy is BlockPolicy.SWAPPED:
            for name in self._layer_names(block):
                entry = self._stash.get(name)
                if entry is not None and entry.tier != DEVICE_TIER:
                    raise OutOfCorePlanError(
                        f"backward of block {block} before swap-in "
                        f"({name!r} still in tier {entry.tier})")
        for i in range(e - 1, s - 1, -1):
            name = self.graph[i].name
            if name not in self.douts:
                # dead branch (token inputs): no gradient will ever flow
                # here, so the stash is dead exactly like after a normal
                # backward — free it now instead of leaking to iteration
                # end (edges only point forward, so every consumer's
                # backward/recompute already ran in descending block order)
                self._free(name)
                continue
            if name not in self.ctxs:
                raise OutOfCorePlanError(
                    f"backward of {name!r} without saved context "
                    f"(policy {policy.value})")
            self.model.run_backward_layer(i, self.douts, self.ctxs)
            # each layer's saved context is consumed exactly once (its own
            # backward), and any recompute that needed this activation as a
            # forward input ran earlier in the descending block order — so
            # the stash is dead here
            self._free(name)

    # -- public API -----------------------------------------------------------------

    def run_iteration(self, batch: Array, targets: Array,
                      step: int = 0) -> float:
        """One forward+backward pass following the plan; returns the loss.

        Gradients accumulate into the model's modules; the caller applies
        the optimizer (single-GPU semantics fold the update into backward,
        the distributed trainer updates on the host instead).
        """
        self.model.set_step(step)
        self._reset(batch, targets)
        loss: Optional[float] = None
        last = self.graph[len(self.graph) - 1].name

        for stage in self.plan.stages:
            for op in stage.ops:
                b = op.block
                if op.kind is OpKind.FORWARD:
                    self._forward_block(b, recompute=False)
                    if self._block_end[b] == len(self.graph):
                        loss = float(self.acts[last][0])
                        self.douts[last] = np.ones_like(self.acts[last])
                elif op.kind is OpKind.SWAP_OUT:
                    self._swap(b, self.plan.stash_tier(b))
                elif op.kind is OpKind.SWAP_IN:
                    self._swap(b, DEVICE_TIER)
                elif op.kind is OpKind.RECOMPUTE:
                    self._recompute_block(b)
                elif op.kind is OpKind.BACKWARD:
                    self._backward_block(b)
                else:
                    raise OutOfCorePlanError(
                        f"numeric executor cannot run op {op.kind}")
        if loss is None:
            raise OutOfCorePlanError("plan never produced the loss")
        # all stash must be gone: a leak means some op never ran (the plan
        # is wrong) or the executor lost track of a stash (the executor is
        # wrong) — either way the pool accounting can no longer be trusted
        leaked = sorted(self._stash)
        if leaked:
            for n in leaked:
                self._free(n)  # restore pool accounting before reporting
            if not self.allow_leaks:
                raise OutOfCorePlanError(
                    f"iteration leaked {len(leaked)} stash entr"
                    f"{'y' if len(leaked) == 1 else 'ies'}: "
                    f"{', '.join(leaked)} (pass allow_leaks=True to "
                    "tolerate this in tests)")
        return loss
