"""Content-addressed plan caching: make repeated planning effectively free.

KARMA's capacity/performance win comes from searching swap/recompute
interleavings; the tiered portfolio search made that search combinatorial.
This package turns the planner into a shared, cached service: planning
decisions are keyed by a stable digest of the model graph, the hardware
hierarchy, and the search knobs (:mod:`repro.cache.digest`), and stored in
an LRU-fronted on-disk JSON cache (:mod:`repro.cache.plan_cache`) that any
process — the CLI, examples, benchmarks, a training job — can share.

Entry points:

* :func:`repro.core.planner.plan` accepts ``cache=PlanCache(...)``;
* ``python -m repro plan`` (see :mod:`repro.cli`) is the service front
  door, with cache hit/miss and wall-time reporting.
"""

from .digest import (
    CACHE_FORMAT_VERSION,
    canonical_json,
    plan_digest,
    stable_digest,
)
from .plan_cache import (
    CACHE_DIR_ENV,
    CacheStats,
    PlanCache,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "PlanCache",
    "canonical_json",
    "default_cache_dir",
    "plan_digest",
    "stable_digest",
]
