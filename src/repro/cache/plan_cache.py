"""The content-addressed plan cache: in-memory LRU over on-disk JSON.

Planning is the hot path between a (model, hardware) configuration and a
running job — the portfolio search simulates dozens of candidate plans per
call.  The decisions it produces are pure functions of the planning inputs,
so they are cached by content address (:func:`repro.cache.digest.
plan_digest`) and reused across runs and processes:

* **in-memory LRU** — repeated plans inside one process are a dict hit;
* **on-disk JSON** — one ``<key>.json`` per entry under the cache
  directory (``KARMA_PLAN_CACHE_DIR``, default
  ``~/.cache/karma-repro/plans``), written atomically so concurrent
  planner processes (the parallel manifest path) never observe torn files;
* **versioned invalidation** — every entry records the solver and cache
  format versions; a mismatch on load is treated as a miss and the stale
  file is dropped.  Version bumps also change the digest itself, so stale
  entries are doubly unreachable.

The cache stores JSON payloads (plain dicts), not pickles: entries are
inspectable with a text editor, diffable in review, and safe to load from
an untrusted checkout.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..obs.metrics import METRICS
from .digest import CACHE_FORMAT_VERSION

#: Environment override for the on-disk cache location.
CACHE_DIR_ENV = "KARMA_PLAN_CACHE_DIR"

#: Sidecar holding cumulative session counters (never a cache entry — the
#: name cannot collide with the 64-hex digest keys).
STATS_FILENAME = "_stats.json"

#: The counter fields persisted into the stats sidecar.
_STAT_FIELDS = ("hits", "misses", "memory_hits", "disk_hits", "stores",
                "evictions", "invalidated")


def default_cache_dir() -> Path:
    """The on-disk cache root: env override, else the XDG-ish default."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "karma-repro" / "plans"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`PlanCache` instance."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PlanCache:
    """Content-addressed plan store with an LRU front and a JSON disk back.

    Keys are SHA-256 digests of the planning inputs
    (:func:`repro.cache.digest.plan_digest`), so any change to the model
    graph, hardware, capacity or search knobs is automatically a miss;
    entries record the solver and cache-format versions and are
    invalidated on load when either moved on.

    Args:
        cache_dir: on-disk location (one ``<sha256>.json`` per entry);
            defaults to ``$KARMA_PLAN_CACHE_DIR`` or
            ``~/.cache/karma-repro/plans``.
        capacity: bound on the in-memory entry count only; the disk
            layer keeps everything until :meth:`clear`.
        persist: ``False`` makes the cache purely in-process (tests,
            throwaway sweeps).
        stats: hit/miss/store counters, exposed for reporting.
    """

    cache_dir: Optional[Path] = None
    capacity: int = 128
    persist: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.cache_dir = Path(self.cache_dir) if self.cache_dir is not None \
            else default_cache_dir()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._flushed = CacheStats()   # counters already merged to disk
        # one instance may be shared across the planner daemon's worker
        # threads; the LRU and the stats counters mutate under this lock
        # (disk I/O stays outside it — os.replace keeps that atomic)
        self._lock = threading.Lock()

    # -- keys and paths ----------------------------------------------------

    def path_for(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def stats_path(self) -> Path:
        """The cumulative session-counter sidecar next to the entries."""
        assert self.cache_dir is not None
        return self.cache_dir / STATS_FILENAME

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (self.persist
                                       and self.path_for(key).is_file())

    def keys(self) -> Iterator[str]:
        """All keys reachable from this cache (memory + disk), deduped."""
        with self._lock:
            seen = set(self._memory)
        yield from sorted(seen)
        if self.persist and self.cache_dir is not None \
                and self.cache_dir.is_dir():
            for p in sorted(self.cache_dir.glob("*.json")):
                if p.name != STATS_FILENAME and p.stem not in seen:
                    yield p.stem

    # -- core protocol -----------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None on miss.

        Disk hits are promoted into the LRU; entries recorded under a
        different solver/format version are dropped and reported as
        misses.
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                METRICS.counter("plan_cache.hits").inc()
                return self._memory[key]
        if self.persist:
            payload = self._load(key)
            if payload is not None:
                with self._lock:
                    self._insert(key, payload)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                METRICS.counter("plan_cache.hits").inc()
                return payload
        with self._lock:
            self.stats.misses += 1
        METRICS.counter("plan_cache.misses").inc()
        return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (memory now, disk if enabled)."""
        with self._lock:
            self._insert(key, payload)
            self.stats.stores += 1
        METRICS.counter("plan_cache.stores").inc()
        if self.persist:
            self._store(key, payload)

    def clear(self, *, disk: bool = True) -> int:
        """Drop every entry (and the cumulative session counters);
        returns how many entries were removed."""
        with self._lock:
            removed = len(self._memory)
            self._memory.clear()
        if disk and self.persist and self.cache_dir is not None \
                and self.cache_dir.is_dir():
            for p in self.cache_dir.glob("*.json"):
                if p.name == STATS_FILENAME:
                    p.unlink(missing_ok=True)   # counters restart at clear
                    continue
                p.unlink(missing_ok=True)
                removed += 1
        return removed

    # -- cumulative session counters ---------------------------------------

    def flush_session_stats(self) -> None:
        """Merge this instance's counters into the on-disk sidecar.

        Each :class:`PlanCache` lives for one process (often one CLI
        invocation), so its :attr:`stats` alone cannot answer "how
        effective has the cache been *over a session*".  This folds the
        deltas since the last flush into ``<cache_dir>/_stats.json``
        (atomic replace; best-effort under concurrent writers — the
        parallel manifest path may drop a few counts in a race, never
        corrupt the file).  ``python -m repro cache info`` reports the
        cumulative totals; :meth:`clear` resets them.
        """
        if not self.persist or self.cache_dir is None:
            return
        with self._lock:
            # the whole read-modify-write runs under the instance lock so
            # concurrent daemon threads cannot double-count a delta; the
            # rare disk I/O inside is the price of exact session totals
            delta = {f: getattr(self.stats, f) - getattr(self._flushed, f)
                     for f in _STAT_FIELDS}
            if not any(delta.values()):
                return
            cumulative = self.cumulative_stats()
            for f in _STAT_FIELDS:
                cumulative[f] = cumulative.get(f, 0) + delta[f]
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=self.cache_dir,
                                           prefix=".stats.", suffix=".tmp")
                with os.fdopen(fd, "w") as fh:
                    fh.write(json.dumps(cumulative, indent=2,
                                        sort_keys=True) + "\n")
                os.replace(tmp, self.stats_path())
            except OSError:
                return   # observability must never sink a planning run
            for f in _STAT_FIELDS:
                setattr(self._flushed, f, getattr(self.stats, f))

    def cumulative_stats(self) -> Dict[str, int]:
        """The sidecar's cumulative counters (zeros when absent).

        The sidecar is written via atomic replace, but a reader racing a
        *non-atomic* writer (an interrupted flush on a filesystem without
        atomic rename, an NFS mount) can observe a torn document — so a
        JSON decode error is retried once after a short pause before
        giving up and reporting zeros.  A long-lived daemon flushing
        deltas must never be able to crash a concurrent
        ``cache info`` CLI invocation.
        """
        empty = {f: 0 for f in _STAT_FIELDS}
        if not self.persist or self.cache_dir is None:
            return empty
        record: Any = None
        for attempt in (0, 1):
            try:
                record = json.loads(self.stats_path().read_text())
                break
            except OSError:
                return empty
            except json.JSONDecodeError:
                if attempt:
                    return empty   # torn twice: treat as absent, not fatal
                time.sleep(0.01)   # one concurrent-writer retry
        if not isinstance(record, dict):
            return empty
        out = dict(empty)
        for f in _STAT_FIELDS:
            v = record.get(f)
            if isinstance(v, int) and v >= 0:
                out[f] = v
        return out

    # -- internals ---------------------------------------------------------

    def _insert(self, key: str, payload: Dict[str, Any]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _entry_versions(self) -> Dict[str, Any]:
        from ..core.solver import SOLVER_VERSION

        return {"format_version": CACHE_FORMAT_VERSION,
                "solver_version": SOLVER_VERSION}

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        expected = self._entry_versions()
        if not isinstance(record, dict) \
                or record.get("key") != key \
                or any(record.get(k) != v for k, v in expected.items()):
            # stale or foreign entry: invalidate rather than serve
            path.unlink(missing_ok=True)
            with self._lock:
                self.stats.invalidated += 1
            return None
        payload = record.get("payload")
        return payload if isinstance(payload, dict) else None

    def _store(self, key: str, payload: Dict[str, Any]) -> None:
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        record = dict(self._entry_versions())
        record["key"] = key
        record["payload"] = payload
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        # atomic publish: concurrent planner processes may race on the same
        # key; os.replace guarantees readers see old-or-new, never torn
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir,
                                   prefix=f".{key[:16]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, self.path_for(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def describe(self) -> str:
        where = str(self.cache_dir) if self.persist else "<memory only>"
        disk = sum(1 for _ in self.keys())
        s = self.stats
        return (f"PlanCache at {where}: {len(self._memory)} in memory, "
                f"{disk} total; {s.hits} hit(s) ({s.memory_hits} mem / "
                f"{s.disk_hits} disk), {s.misses} miss(es), "
                f"{s.invalidated} invalidated")
