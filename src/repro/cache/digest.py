"""Stable content digests for planning inputs.

The plan cache is *content-addressed*: a cache key is the SHA-256 of a
canonical JSON rendering of everything the planner's decision depends on —
the model graph, the hardware (device, transfer model, memory hierarchy,
capacity), the search knobs, and the solver version.  Canonical JSON means
``sort_keys=True`` with compact separators over JSON-native scalar types
only, so the same inputs digest to the same key in any process on any
platform (the digest-stability test asserts this across a fresh
interpreter).

Bumping :data:`repro.core.solver.SOLVER_VERSION` or
:data:`CACHE_FORMAT_VERSION` changes every key, which is the versioned
invalidation story: stale entries are simply never addressed again (and
the on-disk loader refuses entries whose recorded versions mismatch, so
even a hand-copied file cannot resurrect a stale plan).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import DeviceSpec, canonical_spec
from ..hardware.tiering import MemoryHierarchy

#: Version of the cache's key/payload schema.  Bump on any change to what
#: gets digested or what gets stored — old entries become unreachable.
CACHE_FORMAT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical JSON (sorted keys, compact).

    Raises ``TypeError`` for non-JSON-native values: silent coercion
    (e.g. ``default=str``) would make digests depend on ``repr`` details.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def plan_digest(graph: LayerGraph, batch_size: int, *,
                device: DeviceSpec,
                transfer: TransferModel,
                capacity: float,
                hierarchy: Optional[MemoryHierarchy],
                knobs: Mapping[str, Any]) -> str:
    """The content address of one planning problem.

    ``knobs`` carries the search parameters (method, max_span, recompute,
    placement policy, cost-model scaling) — anything that can change the
    plan must be included or two different problems would collide.
    """
    from ..core.solver import SOLVER_VERSION

    payload = {
        "format_version": CACHE_FORMAT_VERSION,
        "solver_version": SOLVER_VERSION,
        "graph": graph.canonical_dict(),
        "batch_size": int(batch_size),
        "device": canonical_spec(device),
        "transfer": transfer.canonical_dict(),
        "capacity": float(capacity),
        "hierarchy": (hierarchy.canonical_dict()
                      if hierarchy is not None else None),
        "knobs": {str(k): knobs[k] for k in sorted(knobs)},
    }
    return stable_digest(payload)
