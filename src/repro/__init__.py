"""KARMA: out-of-core distributed deep learning beyond device memory capacity.

A full reproduction of Wahib et al., "Scaling Distributed Deep Learning
Workloads beyond the Memory Capacity with KARMA" (SC 2020).

Public entry points:

* :func:`repro.core.planner.plan` — derive a KARMA execution plan for a
  model graph on a device (blocking + recompute interleave).
* :mod:`repro.sim` — discrete-event simulation of plans at paper scale.
* :mod:`repro.runtime` — numeric out-of-core execution (correctness).
* :mod:`repro.distributed` — data-parallel KARMA (5-stage pipeline).
* :mod:`repro.baselines` — vDNN++, SuperNeurons, Checkmate, checkpointing.
* :mod:`repro.models` — the Table III model zoo.
* :mod:`repro.tiering` — stash placement across HBM -> DRAM -> NVMe
  hierarchies (ZeRO-Infinity-style tiered offload).
* :mod:`repro.cache` — the content-addressed plan cache backing the
  ``python -m repro plan`` planning service (:mod:`repro.cli`).
"""

__version__ = "1.0.0"

from . import baselines, cache, core, costs, data, distributed, eval, graph, hardware, models, nn, runtime, sim, tiering

__all__ = ["baselines", "cache", "core", "costs", "data", "distributed",
           "eval", "graph", "hardware", "models", "nn", "runtime", "sim",
           "tiering", "__version__"]
