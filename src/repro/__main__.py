"""``python -m repro`` dispatches to the planning-service CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
