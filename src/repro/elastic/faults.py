"""Deterministic fault injection: preemption / join / slowdown traces.

Spot fleets (the CARMA / Varuna setting) lose and gain nodes on the
provider's schedule, not the job's.  To test recovery *deterministically*
we model the fleet as a **fault trace**: an ordered list of events, each
pinned to the training step before which it fires.  Traces come from two
sources — :func:`synthetic_trace` (seeded pseudo-random churn with
guaranteed well-formedness) or a recorded JSON file (the format
round-trips via :meth:`FaultTrace.to_json` / :meth:`FaultTrace.from_json`)
— and drive both the real trainer and the modeled timeline through the
same :class:`FaultInjector`, so sim and runtime see identical churn.

Event semantics:

* ``preempt`` — ``nodes`` workers are lost before step ``step``.  A
  *clean* preemption arrives between steps (replica state on survivors
  is intact); a ``dirty`` one kills mid-iteration, so in-memory state is
  unusable and recovery must restart from the last checkpoint.
* ``join`` — ``nodes`` workers join before step ``step``.
* ``slowdown`` — the interconnect (or a straggler) degrades by
  ``factor`` for ``duration`` steps; no world-size change.

:class:`ChaosMonkey` is the service-side counterpart: a seeded coin the
planner daemon flips per request to decide whether a worker "crashes"
(see ``docs/service.md``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["FaultKind", "FaultEvent", "FaultTrace", "FaultInjector",
           "ChaosMonkey", "synthetic_trace"]


class FaultKind(Enum):
    """The three churn event classes a spot trace produces."""

    PREEMPT = "preempt"
    JOIN = "join"
    SLOWDOWN = "slowdown"


@dataclass(frozen=True)
class FaultEvent:
    """One churn event, pinned to the step before which it fires.

    Args:
        step: the event fires before training step ``step`` (0-based).
        kind: preempt / join / slowdown.
        nodes: workers lost (preempt) or gained (join); ignored for
            slowdowns.
        dirty: preempt only — the kill arrived mid-iteration, so the
            survivors' in-memory state is torn and recovery must restart
            from the last checkpoint (the §II-B relaunch path).
        factor: slowdown only — link/straggler degradation multiplier
            (>= 1; 2.0 means half speed).
        duration: slowdown only — steps the degradation lasts.
    """

    step: int
    kind: FaultKind
    nodes: int = 1
    dirty: bool = False
    factor: float = 1.0
    duration: int = 1

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("event step must be >= 0")
        if self.kind is not FaultKind.SLOWDOWN and self.nodes < 1:
            raise ValueError("preempt/join events need nodes >= 1")
        if self.kind is FaultKind.SLOWDOWN and self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")
        if self.kind is FaultKind.SLOWDOWN and self.duration < 1:
            raise ValueError("slowdown duration must be >= 1 step")
        if self.dirty and self.kind is not FaultKind.PREEMPT:
            raise ValueError("only preemptions can be dirty")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (the recorded-trace wire format)."""
        out: Dict[str, object] = {"step": self.step,
                                  "kind": self.kind.value}
        if self.kind is FaultKind.SLOWDOWN:
            out["factor"] = self.factor
            out["duration"] = self.duration
        else:
            out["nodes"] = self.nodes
            if self.dirty:
                out["dirty"] = True
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        kind = FaultKind(str(data["kind"]))
        return cls(step=int(data["step"]), kind=kind,  # type: ignore[arg-type]
                   nodes=int(data.get("nodes", 1)),  # type: ignore[arg-type]
                   dirty=bool(data.get("dirty", False)),
                   factor=float(data.get("factor", 1.0)),  # type: ignore[arg-type]
                   duration=int(data.get("duration", 1)))  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultTrace:
    """An ordered, validated sequence of fault events.

    ``validate(world)`` walks the events against a starting world size
    and rejects traces that drop the fleet below one worker — recovery
    can shrink and grow, but cannot run on zero nodes.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=lambda e: (e.step,
                                                     e.kind.value))))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def preemptions(self) -> int:
        """Number of preemption events in the trace."""
        return sum(1 for e in self.events if e.kind is FaultKind.PREEMPT)

    @property
    def joins(self) -> int:
        """Number of join events in the trace."""
        return sum(1 for e in self.events if e.kind is FaultKind.JOIN)

    def world_after(self, world: int,
                    upto_step: Optional[int] = None) -> int:
        """World size after applying events (optionally only those with
        ``step < upto_step``) to a starting ``world``."""
        for e in self.events:
            if upto_step is not None and e.step >= upto_step:
                break
            if e.kind is FaultKind.PREEMPT:
                world -= e.nodes
            elif e.kind is FaultKind.JOIN:
                world += e.nodes
        return world

    def validate(self, world: int) -> None:
        """Reject traces that ever leave fewer than one worker."""
        if world < 1:
            raise ValueError("starting world size must be >= 1")
        for e in self.events:
            if e.kind is FaultKind.PREEMPT:
                world -= e.nodes
            elif e.kind is FaultKind.JOIN:
                world += e.nodes
            if world < 1:
                raise ValueError(
                    f"trace drops the fleet to {world} worker(s) at step "
                    f"{e.step}; at least one survivor is required")

    def to_json(self, path: Union[str, Path]) -> Path:
        """Record the trace as a JSON file; returns the path."""
        out = Path(path)
        out.write_text(json.dumps(
            {"events": [e.to_dict() for e in self.events]},
            indent=2, sort_keys=True) + "\n")
        return out

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "FaultTrace":
        """Load a recorded trace (the :meth:`to_json` format)."""
        data = json.loads(Path(path).read_text())
        if isinstance(data, dict):
            data = data.get("events", [])
        if not isinstance(data, list):
            raise ValueError(f"trace file {path} must hold a JSON list of "
                             "events (or {'events': [...]})")
        return cls(events=tuple(FaultEvent.from_dict(e) for e in data))

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultTrace":
        """Build a trace from an iterable of events (sorted by step)."""
        return cls(events=tuple(events))


def synthetic_trace(seed: int, *, steps: int, world: int,
                    preemptions: int = 2, joins: int = 1,
                    slowdowns: int = 0, dirty_rate: float = 0.0,
                    allowed_worlds: Optional[Sequence[int]] = None
                    ) -> FaultTrace:
    """Generate a seeded, well-formed churn trace.

    Deterministic for a given argument tuple: the same seed replays the
    same fleet in the simulator, the trainer, and CI.  Preemptions and
    joins are single-node events spread over ``steps``; the generator
    retries placements until the fleet never drops below one worker (and,
    when ``allowed_worlds`` is given, only visits those world sizes —
    the scenario uses it to keep the global batch divisible).

    Args:
        seed: RNG seed.
        steps: trace horizon; events land on steps ``1..steps-1``.
        world: starting world size.
        preemptions: preempt events to place.
        joins: join events to place.
        slowdowns: slowdown events to place.
        dirty_rate: probability a preemption is dirty (mid-iteration).
        allowed_worlds: optional whitelist of world sizes the trace may
            visit (including after every event).
    """
    if steps < 2:
        raise ValueError("need steps >= 2 to place events")
    if world < 1:
        raise ValueError("world must be >= 1")
    rng = random.Random(seed)
    ok_world = set(allowed_worlds) if allowed_worlds is not None else None
    for _ in range(1000):
        kinds = ([FaultKind.PREEMPT] * preemptions
                 + [FaultKind.JOIN] * joins)
        rng.shuffle(kinds)
        fleet = world
        events: List[FaultEvent] = []
        used_steps: set = set()
        feasible = True
        for kind in kinds:
            fleet += 1 if kind is FaultKind.JOIN else -1
            if fleet < 1 or (ok_world is not None
                             and fleet not in ok_world):
                feasible = False
                break
            free = [s for s in range(1, steps) if s not in used_steps]
            if not free:
                feasible = False
                break
            step = rng.choice(free)
            used_steps.add(step)
            dirty = (kind is FaultKind.PREEMPT
                     and rng.random() < dirty_rate)
            events.append(FaultEvent(step=step, kind=kind, nodes=1,
                                     dirty=dirty))
        if not feasible:
            continue
        for _ in range(slowdowns):
            free = [s for s in range(1, steps) if s not in used_steps]
            if not free:
                break
            step = rng.choice(free)
            used_steps.add(step)
            events.append(FaultEvent(
                step=step, kind=FaultKind.SLOWDOWN,
                factor=round(rng.uniform(1.5, 4.0), 2),
                duration=rng.randint(1, max(1, steps // 4))))
        # events were placed in causal (shuffled-kind) order but at random
        # steps; replay them sorted to confirm the fleet stays legal
        trace = FaultTrace(events=tuple(events))
        try:
            trace.validate(world)
        except ValueError:
            continue
        if ok_world is not None:
            fleet, legal = world, True
            for e in trace:
                if e.kind is FaultKind.PREEMPT:
                    fleet -= e.nodes
                elif e.kind is FaultKind.JOIN:
                    fleet += e.nodes
                if e.kind is not FaultKind.SLOWDOWN \
                        and fleet not in ok_world:
                    legal = False
                    break
            if not legal:
                continue
        return trace
    raise ValueError(
        f"could not place {preemptions} preemption(s) + {joins} join(s) "
        f"legally in {steps} steps starting from world {world}")


class FaultInjector:
    """Feed a trace's events into a step loop, exactly once each.

    The training loop polls :meth:`poll` at the top of every step; the
    injector returns the events pinned to that step (or any earlier step
    not yet delivered — a loop that skips steps after a restart still
    sees every event).  ``clock`` timestamps each delivery so recovery
    latency can be measured from the moment of injection.
    """

    def __init__(self, trace: FaultTrace, *, clock=None) -> None:
        import time as _time

        self.trace = trace
        self._clock = clock or _time.perf_counter
        self._cursor = 0
        self.injected_at: Dict[int, float] = {}

    def poll(self, step: int) -> List[FaultEvent]:
        """Events firing before ``step`` that have not fired yet."""
        fired: List[FaultEvent] = []
        while (self._cursor < len(self.trace.events)
               and self.trace.events[self._cursor].step <= step):
            event = self.trace.events[self._cursor]
            self.injected_at[self._cursor] = self._clock()
            self._cursor += 1
            fired.append(event)
        return fired

    @property
    def exhausted(self) -> bool:
        """True when every event has been delivered."""
        return self._cursor >= len(self.trace.events)


class ChaosMonkey:
    """A seeded coin for service-side worker-crash injection.

    The planner daemon calls the monkey once per dequeued request; True
    means the worker thread "crashes" mid-plan (the daemon resolves the
    request with a retryable ``worker_crashed`` rejection and respawns
    the worker).  ``crash_first`` forces the first N calls to crash —
    deterministic tests and the CI chaos smoke use it instead of a rate.
    """

    def __init__(self, crash_rate: float = 0.0, *, seed: int = 0,
                 crash_first: int = 0) -> None:
        if not (0.0 <= crash_rate <= 1.0):
            raise ValueError("crash_rate must be in [0, 1]")
        self.crash_rate = crash_rate
        self.crash_first = crash_first
        self._rng = random.Random(seed)
        self.calls = 0
        self.crashes = 0

    def __call__(self) -> bool:
        """Flip the coin: True = crash this request's worker."""
        self.calls += 1
        crash = (self.calls <= self.crash_first
                 or self._rng.random() < self.crash_rate)
        if crash:
            self.crashes += 1
        return crash
