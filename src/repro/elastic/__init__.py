"""Elastic fault-tolerant training: survive a changing fleet.

KARMA's fault-tolerance story (§II-B) is that out-of-core data
parallelism adapts to node loss by relaunching from a checkpoint onto a
smaller worker pool.  This package turns that sentence into a runtime:

* :mod:`repro.elastic.faults` — deterministic, seedable preemption /
  join / slowdown event traces (synthetic or recorded) and the injector
  that drives them into a training loop, plus the chaos hook the planner
  daemon uses for worker-crash injection;
* :mod:`repro.elastic.controller` — the recovery controller that, on
  every world-size change, chooses between *fast replan* (re-invoke the
  planner on the new world size — warm plan-cache replays make this
  nearly free), *degrade* (keep the old plan, demote overflow stashes a
  tier), or *restart from checkpoint*, with retry / exponential-backoff
  semantics and typed failure states;
* :mod:`repro.elastic.scenario` — the end-to-end churn scenario: a real
  :class:`~repro.distributed.dp_trainer.DataParallelKarmaTrainer` under
  a fault trace with asynchronous checkpointing, and the modeled
  counterpart (:func:`~repro.elastic.scenario.simulate_churn`) that
  prices the same trace against simulator iteration times.

``python -m repro elastic`` runs a trace-driven scenario end to end;
``docs/elastic.md`` documents the event model, the policy decision
table, and the ``elastic.*`` metrics.
"""

from .controller import (
    DegradeFailed,
    RecoveryController,
    RecoveryError,
    RecoveryImpossible,
    RecoveryPolicy,
    RecoveryReport,
    ReplanFailed,
    RestartFailed,
    demote_plan,
)
from .faults import (
    ChaosMonkey,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultTrace,
    synthetic_trace,
)
from .scenario import (
    ChurnScenario,
    ChurnTimeline,
    ScenarioConfig,
    ScenarioResult,
    simulate_churn,
)

__all__ = [
    "FaultKind", "FaultEvent", "FaultTrace", "FaultInjector",
    "ChaosMonkey", "synthetic_trace",
    "RecoveryPolicy", "RecoveryController", "RecoveryReport",
    "RecoveryError", "ReplanFailed", "DegradeFailed", "RestartFailed",
    "RecoveryImpossible", "demote_plan",
    "ScenarioConfig", "ScenarioResult", "ChurnScenario",
    "ChurnTimeline", "simulate_churn",
]
