"""Recovery control: replan, degrade, or restart on every fleet change.

The controller is the policy brain between the fault injector and the
trainer.  On each event it must answer *how* to keep training:

* **fast replan** — re-invoke the planner for the new per-worker shard;
  with a warm :class:`~repro.cache.plan_cache.PlanCache` a previously
  seen world size replays in milliseconds, so replanning is the default
  whenever it is estimated to be cheap;
* **degrade** — keep the old plan (zero planning cost) and, when a
  memory hierarchy is present, demote the coldest overflow stashes one
  tier down via the existing capacity-pressure placement
  (:func:`demote_plan`) — the ZeRO-Infinity-style always-offload
  fallback that trades bandwidth for survival;
* **restart from checkpoint** — the §II-B relaunch: tear down, reload
  the last digest-verified archive, and replay the steps since.  Chosen
  when in-memory state is torn (a *dirty* preemption) and as the last
  fallback when replan and degrade both fail.

Every step of every action runs under retry with exponential backoff +
jitter; when the whole cascade is exhausted the controller raises a
typed :class:`RecoveryImpossible` instead of leaving the job wedged.
Latency lands in ``elastic.*`` metrics (time-to-detect, time-to-replan,
time-to-recover, lost steps) and ``elastic.recover`` spans — the
decision table is documented in ``docs/elastic.md``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.schedule import ExecutionPlan
from ..core.stages import make_plan
from ..costs.profiler import CostModel
from ..hardware.tiering import MemoryHierarchy
from ..obs.flight import FLIGHT
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..tiering.placement import (
    capacity_pressure_placement,
    swapped_stash_bytes,
)
from .faults import FaultEvent, FaultKind

__all__ = [
    "RecoveryError", "ReplanFailed", "DegradeFailed", "RestartFailed",
    "RecoveryImpossible", "RecoveryPolicy", "RecoveryReport",
    "RecoveryController", "demote_plan",
]


class RecoveryError(RuntimeError):
    """Base of the typed recovery failure states.

    ``code`` is a stable identifier mirroring the service-layer
    convention, so scenario results and logs can name the failure class
    without string matching.
    """

    code = "recovery_failed"


class ReplanFailed(RecoveryError):
    """Every replan attempt raised (planner bug or infeasible config)."""

    code = "replan_failed"


class DegradeFailed(RecoveryError):
    """The degraded placement is infeasible on the surviving hierarchy."""

    code = "degrade_failed"


class RestartFailed(RecoveryError):
    """Restart-from-checkpoint failed (no archive, or all corrupt)."""

    code = "restart_failed"


class RecoveryImpossible(RecoveryError):
    """The whole cascade (replan -> degrade -> restart) is exhausted."""

    code = "recovery_impossible"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables for the replan-vs-degrade-vs-restart decision.

    Args:
        mode: ``"auto"`` applies the decision table; ``"replan"`` /
            ``"degrade"`` force that action for every clean event.
        min_world: below this many survivors a clean preemption is
            treated like a dirty one (restart on a future fleet).
        max_attempts: retry budget per action (replan, degrade, restart
            each get this many attempts).
        backoff_base_s: first retry delay.
        backoff_factor: multiplier between consecutive delays.
        backoff_max_s: delay ceiling.
        backoff_jitter: +/- fraction of uniform jitter on each delay.
        replan_budget_s: estimated replan cost above which *auto* mode
            degrades instead (the estimate is an EMA of measured replan
            walls; unknown cost is optimistically treated as cheap,
            because a warm plan cache makes repeat world sizes ~free).
        slowdown_degrade_factor: slowdowns at or above this factor
            trigger a degrade; milder ones are ignored.
    """

    mode: str = "auto"
    min_world: int = 1
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.25
    replan_budget_s: float = 30.0
    slowdown_degrade_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "replan", "degrade"):
            raise ValueError(f"unknown policy mode {self.mode!r}")
        if self.min_world < 1:
            raise ValueError("min_world must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not (0.0 <= self.backoff_jitter < 1.0):
            raise ValueError("backoff_jitter must be in [0, 1)")

    def decide(self, event: FaultEvent, *, survivors: int,
               est_replan_s: Optional[float],
               have_checkpoint: bool) -> str:
        """The decision table: one of replan / degrade / restart / ignore.

        Args:
            event: the churn event being handled.
            survivors: world size after applying the event.
            est_replan_s: EMA of measured replan walls (None = no
                measurement yet).
            have_checkpoint: whether a restartable archive exists.
        """
        if event.kind is FaultKind.SLOWDOWN:
            return ("degrade"
                    if event.factor >= self.slowdown_degrade_factor
                    else "ignore")
        if event.kind is FaultKind.PREEMPT and event.dirty:
            return "restart"
        if event.kind is FaultKind.PREEMPT and survivors < self.min_world:
            return "restart"
        if self.mode in ("replan", "degrade"):
            return self.mode
        if (est_replan_s is not None
                and est_replan_s > self.replan_budget_s):
            return "degrade"
        return "replan"


@dataclass
class RecoveryReport:
    """What one recovery did, and how long each stage took."""

    event: FaultEvent
    decision: str                     # the action that finally succeeded
    tried: List[str] = field(default_factory=list)
    attempts: int = 0                 # total action attempts (incl. retries)
    world_before: int = 0
    world_after: int = 0
    time_to_detect_s: float = 0.0
    time_to_replan_s: float = 0.0     # 0 when no replan ran
    time_to_recover_s: float = 0.0
    lost_steps: int = 0               # steps replayed after a restart
    resumed_step: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the CLI / bench artifacts."""
        return {
            "event": self.event.to_dict(),
            "decision": self.decision,
            "tried": list(self.tried),
            "attempts": self.attempts,
            "world_before": self.world_before,
            "world_after": self.world_after,
            "time_to_detect_s": round(self.time_to_detect_s, 6),
            "time_to_replan_s": round(self.time_to_replan_s, 6),
            "time_to_recover_s": round(self.time_to_recover_s, 6),
            "lost_steps": self.lost_steps,
            "resumed_step": self.resumed_step,
        }


def demote_plan(plan: ExecutionPlan, cost: CostModel,
                hierarchy: MemoryHierarchy, *,
                pressure: float = 0.5,
                prefetch: str = "eager") -> ExecutionPlan:
    """Degraded-mode plan: same blocks, overflow stashes demoted a tier.

    Re-runs the existing capacity-pressure placement fallback over the
    plan's swapped stashes: everything starts in DRAM and the coldest
    blocks demote to deeper tiers until DRAM pressure relaxes.  The
    block structure, policies, and stage schedule shape are unchanged —
    only the tier qualifiers (and therefore which link each swap
    occupies) move, which is what makes degrade effectively free to
    apply compared to a full replan.

    Raises :class:`DegradeFailed` when even the demoted placement cannot
    fit the hierarchy.
    """
    from ..tiering.placement import PlacementError

    stash = swapped_stash_bytes(list(plan.blocks), list(plan.policies),
                                cost)
    if not stash:
        return plan
    try:
        placed = capacity_pressure_placement(stash, hierarchy,
                                             pressure=pressure)
    except PlacementError as exc:
        raise DegradeFailed(
            f"degraded placement infeasible: {exc}") from exc
    return make_plan(plan.model_name, plan.batch_size, list(plan.blocks),
                     list(plan.policies), prefetch=prefetch,
                     placements=placed.placements)


#: replan(world) -> plan-like; applied by the caller's closure itself.
ReplanFn = Callable[[int], Any]
#: degrade(world) -> plan-like (or None to keep the old plan verbatim).
DegradeFn = Callable[[int], Any]
#: restart(world) -> step the checkpoint resumed at.
RestartFn = Callable[[int], int]


class RecoveryController:
    """Drive one recovery per fault event, with retries and fallbacks.

    The controller is deliberately decoupled from the trainer: it works
    through four callables (resize / replan / degrade / restart) so the
    same policy machinery drives the numeric churn scenario, the modeled
    timeline, and unit tests with stub actions.

    Args:
        policy: the decision table + retry/backoff tunables.
        resize: apply a world-size change (shrink/grow the trainer);
            called before replan/degrade for clean events.
        replan: produce and apply a plan for the new world size.
        degrade: apply the degraded plan for the new world size.
        restart: rebuild from the last checkpoint on the new world size;
            returns the step training resumed at.
        have_checkpoint: probe for a restartable archive (defaults to
            "yes", making restart always eligible).
        sleep: injected for tests (defaults to ``time.sleep``).
        clock: injected for tests (defaults to ``time.perf_counter``).
        seed: jitter RNG seed (deterministic backoff in tests).
    """

    def __init__(self, policy: RecoveryPolicy, *,
                 resize: Callable[[int], None],
                 replan: ReplanFn,
                 degrade: DegradeFn,
                 restart: RestartFn,
                 have_checkpoint: Callable[[], bool] = lambda: True,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.perf_counter,
                 seed: int = 0) -> None:
        self.policy = policy
        self._resize = resize
        self._replan = replan
        self._degrade = degrade
        self._restart = restart
        self._have_checkpoint = have_checkpoint
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)
        self.est_replan_s: Optional[float] = None
        self.reports: List[RecoveryReport] = []

    # -- public ------------------------------------------------------------

    def recover(self, event: FaultEvent, *, world: int, step: int,
                injected_at: Optional[float] = None) -> RecoveryReport:
        """Handle one event; returns the report (also kept in
        :attr:`reports`).

        Args:
            event: the fault to recover from.
            world: world size *before* the event.
            step: the training step about to run.
            injected_at: the injector's delivery timestamp (measures
                time-to-detect); None means detection was immediate.

        Raises:
            RecoveryImpossible: every action in the cascade failed.
        """
        t0 = self._clock()
        new_world = self._world_after(event, world)
        report = RecoveryReport(
            event=event, decision="pending", world_before=world,
            world_after=new_world,
            time_to_detect_s=(t0 - injected_at) if injected_at else 0.0)
        METRICS.counter(f"elastic.events.{event.kind.value}").inc()
        METRICS.histogram("elastic.time_to_detect_s").observe(
            report.time_to_detect_s)
        with TRACER.span("elastic.recover", "elastic",
                         kind=event.kind.value, step=step):
            decision = self.policy.decide(
                event, survivors=new_world,
                est_replan_s=self.est_replan_s,
                have_checkpoint=self._have_checkpoint())
            if decision == "ignore":
                report.decision = "ignore"
                self._finish(report, t0)
                return report
            if decision == "restart":
                self._run_restart(report, new_world, step, t0)
                return report
            # clean world change: resize first, then replan or degrade
            if new_world != world:
                self._resize(new_world)
            try:
                if decision == "replan":
                    self._run_replan(report, new_world)
                else:
                    self._run_degrade(report, new_world)
            except (ReplanFailed, DegradeFailed):
                # cascade: the other cheap action, then restart
                other = "degrade" if decision == "replan" else "replan"
                try:
                    if other == "replan":
                        self._run_replan(report, new_world)
                    else:
                        self._run_degrade(report, new_world)
                except (ReplanFailed, DegradeFailed):
                    self._run_restart(report, new_world, step, t0)
                    return report
            self._finish(report, t0)
            return report

    # -- actions -----------------------------------------------------------

    def _run_replan(self, report: RecoveryReport, world: int) -> None:
        report.tried.append("replan")
        t0 = self._clock()
        with TRACER.span("elastic.replan", "elastic", world=world):
            self._retry("replan", ReplanFailed, report,
                        lambda: self._replan(world))
        wall = self._clock() - t0
        report.time_to_replan_s = wall
        report.decision = "replan"
        METRICS.histogram("elastic.time_to_replan_s").observe(wall)
        # EMA of measured replan cost feeds the next decision
        self.est_replan_s = (wall if self.est_replan_s is None
                             else 0.5 * self.est_replan_s + 0.5 * wall)

    def _run_degrade(self, report: RecoveryReport, world: int) -> None:
        report.tried.append("degrade")
        with TRACER.span("elastic.degrade", "elastic", world=world):
            self._retry("degrade", DegradeFailed, report,
                        lambda: self._degrade(world))
        report.decision = "degrade"
        METRICS.counter("elastic.degrades").inc()

    def _run_restart(self, report: RecoveryReport, world: int, step: int,
                     t0: float) -> None:
        report.tried.append("restart")
        if not self._have_checkpoint():
            METRICS.counter("elastic.recovery_impossible").inc()
            FLIGHT.dump("recovery_impossible",
                        detail={"world": world, "cause": "no_checkpoint",
                                "tried": list(report.tried)})
            raise RecoveryImpossible(
                f"cannot restart on {world} worker(s): no checkpoint was "
                "ever written (enable periodic checkpointing)")
        with TRACER.span("elastic.restart", "elastic", world=world):
            try:
                resumed = self._retry("restart", RestartFailed, report,
                                      lambda: self._restart(world))
            except RestartFailed as exc:
                METRICS.counter("elastic.recovery_impossible").inc()
                FLIGHT.dump("recovery_impossible",
                            detail={"world": world,
                                    "cause": "restart_failed",
                                    "error": str(exc),
                                    "tried": list(report.tried)})
                raise RecoveryImpossible(
                    f"restart failed after {self.policy.max_attempts} "
                    f"attempt(s): {exc}") from exc
        report.decision = "restart"
        report.resumed_step = int(resumed)
        report.lost_steps = max(0, step - int(resumed))
        METRICS.counter("elastic.restarts").inc()
        METRICS.counter("elastic.lost_steps").inc(report.lost_steps)
        self._finish(report, t0)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _world_after(event: FaultEvent, world: int) -> int:
        if event.kind is FaultKind.PREEMPT:
            return world - event.nodes
        if event.kind is FaultKind.JOIN:
            return world + event.nodes
        return world

    def _finish(self, report: RecoveryReport, t0: float) -> None:
        report.time_to_recover_s = self._clock() - t0
        METRICS.histogram("elastic.time_to_recover_s").observe(
            report.time_to_recover_s)
        METRICS.counter("elastic.recoveries").inc()
        METRICS.counter(f"elastic.decision.{report.decision}").inc()
        self.reports.append(report)

    def _delays(self) -> List[float]:
        delays: List[float] = []
        delay = self.policy.backoff_base_s
        for _ in range(self.policy.max_attempts - 1):
            jitter = 1.0 + self._rng.uniform(-self.policy.backoff_jitter,
                                             self.policy.backoff_jitter)
            delays.append(min(self.policy.backoff_max_s, delay) * jitter)
            delay *= self.policy.backoff_factor
        return delays

    def _retry(self, label: str, failure: type, report: RecoveryReport,
               action: Callable[[], Any]) -> Any:
        """Run ``action`` under the policy's retry/backoff budget.

        Raises ``failure`` (a :class:`RecoveryError` subclass) carrying
        the last underlying error once the budget is exhausted.
        """
        delays = self._delays()
        last: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            report.attempts += 1
            try:
                return action()
            except Exception as exc:  # noqa: BLE001 - typed re-raise below
                last = exc
                METRICS.counter("elastic.retries").inc()
                if attempt < len(delays):
                    self._sleep(delays[attempt])
        raise failure(f"{label} failed after {self.policy.max_attempts} "
                      f"attempt(s): {type(last).__name__}: {last}")
