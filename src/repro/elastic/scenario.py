"""Trace-driven churn scenarios: the real trainer and the modeled twin.

Two consumers of the same :class:`~repro.elastic.faults.FaultTrace`:

* :class:`ChurnScenario` runs an actual
  :class:`~repro.distributed.dp_trainer.DataParallelKarmaTrainer` (tiny
  CNN, float64) through the trace with periodic asynchronous
  checkpointing and the
  :class:`~repro.elastic.controller.RecoveryController` reacting to every
  event — clean preemptions shrink in place, joins clone survivor 0,
  dirty preemptions rebuild from the last digest-verified archive and
  replay the lost steps.  Replica bit-identity is asserted after every
  world-size change, and the *same batches* are replayed after a restart
  (the dataset is pre-generated from the seed), so recovery is exact, not
  merely plausible.
* :func:`simulate_churn` prices the trace against a deterministic
  iteration-time model (no wall clock, no RNG) — throughput under churn
  vs. the no-churn ceiling, modeled time-to-recover, lost steps.  Being
  bit-deterministic, its outputs are the ones the elastic benchmark gates
  in ``key_metrics.json``.

``python -m repro elastic`` wraps :class:`ChurnScenario`;
``benchmarks/bench_elastic.py`` wraps both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cache.plan_cache import PlanCache
from ..core.planner import plan as karma_plan
from ..core.schedule import ExecutionPlan
from ..distributed.cpu_update import HostSGD
from ..distributed.dp_trainer import DataParallelKarmaTrainer
from ..models.builder import GraphBuilder
from ..obs.metrics import METRICS
from ..runtime.checkpoint import CheckpointManager
from .controller import RecoveryController, RecoveryPolicy, RecoveryReport
from .faults import FaultInjector, FaultKind, FaultTrace, synthetic_trace

__all__ = ["ScenarioConfig", "ScenarioResult", "ChurnScenario",
           "ChurnTimeline", "simulate_churn", "divisor_worlds"]

GiB = float(1 << 30)


def divisor_worlds(global_batch: int) -> Tuple[int, ...]:
    """World sizes that divide ``global_batch`` evenly (legal fleet
    sizes for a fixed-global-batch data-parallel run)."""
    return tuple(w for w in range(1, global_batch + 1)
                 if global_batch % w == 0)


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs for the end-to-end churn scenario.

    The defaults (12 steps, world 4, global batch 12) keep every divisor
    world size {1, 2, 3, 4, 6, 12} legal, so any single-node churn trace
    stays divisible.

    Args:
        steps: training steps to run.
        world: starting world size.
        global_batch: fixed global batch (must divide by every world
            size the trace visits).
        seed: seeds the model init, the dataset, and the backoff jitter.
        lr / momentum: host-SGD hyperparameters.
        checkpoint_interval: periodic checkpoint cadence in steps.
        keep: checkpoint archives retained on disk.
        policy: recovery policy (defaults to fast backoff suitable for
            tests and the CLI; production would use larger delays).
        preemptions / joins / slowdowns / dirty_rate: synthetic-trace
            shape when no recorded trace is supplied.
        near_capacity / far_capacity: per-worker memory-space bounds.
    """

    steps: int = 12
    world: int = 4
    global_batch: int = 12
    seed: int = 0
    lr: float = 0.05
    momentum: float = 0.9
    checkpoint_interval: int = 3
    keep: int = 3
    policy: RecoveryPolicy = field(default_factory=lambda: RecoveryPolicy(
        backoff_base_s=0.001, backoff_max_s=0.01))
    preemptions: int = 2
    joins: int = 1
    slowdowns: int = 0
    dirty_rate: float = 0.0
    near_capacity: float = 2 * GiB
    far_capacity: float = 32 * GiB

    def __post_init__(self) -> None:
        if self.steps < 2:
            raise ValueError("steps must be >= 2")
        if self.world < 1:
            raise ValueError("world must be >= 1")
        if self.global_batch % self.world:
            raise ValueError(f"global_batch {self.global_batch} not "
                             f"divisible by world {self.world}")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")


@dataclass
class ScenarioResult:
    """What a churn run did: losses, recoveries, and fleet history."""

    losses: List[float]               # loss per step index (final value)
    reports: List[RecoveryReport]
    world_trajectory: List[Tuple[int, int]]   # (step, world) changes
    final_world: int
    steps_run: int                    # train_step calls incl. replays
    lost_steps: int                   # steps replayed after restarts
    checkpoints_written: int
    trace: FaultTrace

    @property
    def replayed_steps(self) -> int:
        """Extra iterations paid to churn (replays beyond the horizon)."""
        return self.steps_run - len(self.losses)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the CLI / CI artifact."""
        return {
            "steps": len(self.losses),
            "steps_run": self.steps_run,
            "lost_steps": self.lost_steps,
            "replayed_steps": self.replayed_steps,
            "final_world": self.final_world,
            "final_loss": self.losses[-1] if self.losses else None,
            "checkpoints_written": self.checkpoints_written,
            "world_trajectory": [list(t) for t in self.world_trajectory],
            "recoveries": [r.to_dict() for r in self.reports],
            "trace": [e.to_dict() for e in self.trace],
        }


def _scenario_graph(name: str = "elastic_cnn"):
    """The scenario's model: a small CNN (no BN, so data-parallel runs
    are bit-exact at any world size)."""
    b = GraphBuilder(name)
    b.input((3, 8, 8))
    b.conv(4, 3)
    b.relu()
    b.conv(8, 3)
    b.relu()
    b.pool(2, 2)
    b.global_avg_pool()
    b.flatten()
    b.linear(4)
    b.softmax()
    b.loss()
    return b.finish()


class ChurnScenario:
    """Run a real data-parallel trainer through a fault trace.

    Args:
        config: scenario knobs.
        checkpoint_dir: directory for the periodic archives (required —
            restart-from-checkpoint is the scenario's whole point).
        trace: a recorded trace; omitted, a synthetic one is generated
            from ``config`` (seeded, divisibility-safe).
    """

    def __init__(self, config: ScenarioConfig, checkpoint_dir: str,
                 trace: Optional[FaultTrace] = None) -> None:
        self.config = config
        self.checkpoint_dir = checkpoint_dir
        self.graph = _scenario_graph()
        self.trace = trace if trace is not None else synthetic_trace(
            config.seed, steps=config.steps, world=config.world,
            preemptions=config.preemptions, joins=config.joins,
            slowdowns=config.slowdowns, dirty_rate=config.dirty_rate,
            allowed_worlds=divisor_worlds(config.global_batch))
        self.trace.validate(config.world)
        for w in self._worlds_visited():
            if config.global_batch % w:
                raise ValueError(
                    f"trace visits world {w}, which does not divide the "
                    f"global batch {config.global_batch}")
        # one warm cache across the whole run: a replan at a previously
        # seen world size replays the cached Opt-1/Opt-2 decisions
        self._cache = PlanCache(persist=False)
        self._plans: Dict[int, ExecutionPlan] = {}

    def _worlds_visited(self) -> List[int]:
        worlds, w = [self.config.world], self.config.world
        for e in self.trace:
            if e.kind is FaultKind.PREEMPT:
                w -= e.nodes
            elif e.kind is FaultKind.JOIN:
                w += e.nodes
            worlds.append(w)
        return worlds

    def plan_for(self, world: int) -> ExecutionPlan:
        """The (cached) KARMA plan for this model at ``world`` workers."""
        if world not in self._plans:
            kp = karma_plan(self.graph,
                            self.config.global_batch // world,
                            method="dp", cache=self._cache)
            self._plans[world] = kp.plan
        return self._plans[world]

    def _make_trainer(self, world: int) -> DataParallelKarmaTrainer:
        cfg = self.config
        return DataParallelKarmaTrainer(
            self.graph, self.plan_for(world), world,
            cfg.near_capacity, cfg.far_capacity,
            optimizer=HostSGD(lr=cfg.lr, momentum=cfg.momentum),
            dtype=np.float64, seed=cfg.seed)

    def run(self) -> ScenarioResult:
        """Train through the trace end to end; returns the result.

        Raises :class:`~repro.elastic.controller.RecoveryImpossible` if
        the cascade is ever exhausted (it should not be, with
        checkpointing enabled).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        # the whole dataset up front: a restart replays *these* batches
        xs = rng.standard_normal(
            (cfg.steps, cfg.global_batch, 3, 8, 8))
        ys = rng.integers(0, 4, (cfg.steps, cfg.global_batch))
        state = {"trainer": self._make_trainer(cfg.world)}
        manager = CheckpointManager(self.checkpoint_dir,
                                    interval=cfg.checkpoint_interval,
                                    keep=cfg.keep)
        injector = FaultInjector(self.trace)

        def resize(world: int) -> None:
            t = state["trainer"]
            if world < t.world_size:
                t.shrink_world(world)
            else:
                t.grow_world(world)

        def replan(world: int) -> None:
            state["trainer"].apply_plan(self.plan_for(world))

        def degrade(world: int) -> None:
            # keep the old plan verbatim: zero planning cost.  The
            # numeric MemorySpace has no deeper tier to demote into —
            # tiered plans degrade via controller.demote_plan instead.
            return None

        def have_checkpoint() -> bool:
            manager.wait()
            return manager.last_good is not None

        def restart(world: int) -> int:
            # §II-B relaunch: fresh trainer at one worker, restore the
            # newest good archive (params + optimizer slots), then grow
            # to the survivor count by cloning worker 0
            manager.wait()
            rebuilt = self._make_trainer(1)
            step, extras = manager.restore_latest(rebuilt.models[0])
            rebuilt.optimizer.load_state_dict(extras)
            rebuilt.grow_world(world)
            rebuilt.step_count = step
            state["trainer"] = rebuilt
            return step

        controller = RecoveryController(
            cfg.policy, resize=resize, replan=replan, degrade=degrade,
            restart=restart, have_checkpoint=have_checkpoint,
            seed=cfg.seed)
        losses: Dict[int, float] = {}
        trajectory = [(0, cfg.world)]
        steps_run = 0
        checkpoints = 0
        try:
            # launch archive: a dirty preemption before the first
            # periodic checkpoint must still be survivable
            manager.save(state["trainer"].models[0], 0,
                         extra=state["trainer"].optimizer.state_dict())
            checkpoints += 1
            step = 0
            while step < cfg.steps:
                for event in injector.poll(step):
                    world = state["trainer"].world_size
                    report = controller.recover(event, world=world,
                                                step=step)
                    if report.decision == "restart":
                        assert report.resumed_step is not None
                        step = report.resumed_step
                    if state["trainer"].world_size != world:
                        trajectory.append(
                            (step, state["trainer"].world_size))
                trainer = state["trainer"]
                losses[step] = trainer.train_step(xs[step], ys[step])
                steps_run += 1
                step += 1
                if manager.maybe_save(
                        trainer.models[0], step,
                        extra=trainer.optimizer.state_dict()) is not None:
                    checkpoints += 1
        finally:
            manager.close()
        trainer = state["trainer"]
        trainer.assert_replicas_identical()
        lost = sum(r.lost_steps for r in controller.reports)
        METRICS.gauge("elastic.final_world").set(trainer.world_size)
        return ScenarioResult(
            losses=[losses[s] for s in range(cfg.steps)],
            reports=list(controller.reports),
            world_trajectory=trajectory,
            final_world=trainer.world_size,
            steps_run=steps_run,
            lost_steps=lost,
            checkpoints_written=checkpoints,
            trace=self.trace)


# -- modeled twin -----------------------------------------------------------


@dataclass
class ChurnTimeline:
    """Deterministic modeled cost of a trace (the benchmarked object)."""

    steps: int
    world0: int
    events: List[Dict[str, Any]]
    total_s: float
    no_churn_s: float
    throughput_ratio: float           # churn throughput / no-churn ceiling
    mean_time_to_recover_s: float
    max_time_to_recover_s: float
    total_lost_steps: int
    world_trajectory: List[Tuple[int, int]]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the bench artifact."""
        return {
            "steps": self.steps,
            "world0": self.world0,
            "events": self.events,
            "total_s": round(self.total_s, 6),
            "no_churn_s": round(self.no_churn_s, 6),
            "throughput_ratio": round(self.throughput_ratio, 6),
            "mean_time_to_recover_s": round(self.mean_time_to_recover_s,
                                            6),
            "max_time_to_recover_s": round(self.max_time_to_recover_s, 6),
            "total_lost_steps": self.total_lost_steps,
            "world_trajectory": [list(t) for t in self.world_trajectory],
        }


def simulate_churn(trace: FaultTrace, *, steps: int, world: int,
                   global_batch: int,
                   t_iter: Optional[Callable[[int], float]] = None,
                   compute_s_per_sample: float = 0.05,
                   comm_base_s: float = 0.01,
                   comm_per_worker_s: float = 0.004,
                   replan_cold_s: float = 0.8,
                   replan_warm_s: float = 0.02,
                   restart_s: float = 5.0,
                   degrade_overhead: float = 1.15,
                   checkpoint_interval: int = 3,
                   policy: Optional[RecoveryPolicy] = None
                   ) -> ChurnTimeline:
    """Price a churn trace against a modeled iteration time.

    Fully deterministic (no clock, no RNG): the same trace and knobs
    always produce the same timeline, which is why the elastic benchmark
    gates these numbers.  Decisions come from the *same*
    :meth:`RecoveryPolicy.decide` table the real controller uses, with
    the estimated replan cost set to ``replan_cold_s`` for a never-seen
    world size and ``replan_warm_s`` for a cache-warm repeat.

    Args:
        trace: the churn trace to price.
        steps: training horizon.
        world: starting world size.
        global_batch: fixed global batch.
        t_iter: iteration time at a given world size; defaults to the
            analytic ``shard * compute + ring-allreduce`` model built
            from the three constants below (pass a simulator-derived
            callable to price a real model's schedule).
        compute_s_per_sample: per-sample fwd+bwd+update time.
        comm_base_s / comm_per_worker_s: allreduce latency model
            (``base + per_worker * (w - 1)`` for ``w > 1``).
        replan_cold_s / replan_warm_s: planner cost, cache-cold vs warm.
        restart_s: relaunch + checkpoint-load cost of a dirty restart.
        degrade_overhead: iteration-time multiplier while degraded.
        checkpoint_interval: periodic checkpoint cadence (bounds the
            replay after a dirty restart).
        policy: decision table (defaults to :class:`RecoveryPolicy`).
    """
    if global_batch % world:
        raise ValueError(f"global_batch {global_batch} not divisible by "
                         f"world {world}")
    trace.validate(world)
    policy = policy or RecoveryPolicy()

    def default_t_iter(w: int) -> float:
        shard = global_batch / w
        comm = (comm_base_s + comm_per_worker_s * (w - 1)) if w > 1 \
            else 0.0
        return shard * compute_s_per_sample + comm

    titer = t_iter or default_t_iter
    by_step: Dict[int, List] = {}
    for e in trace:
        by_step.setdefault(e.step, []).append(e)
    w_now = world
    seen_worlds = {world}
    degrade_until = -1           # step index the degradation lasts to
    degrade_mult = 1.0
    total = 0.0
    last_ckpt = 0
    lost_total = 0
    events_out: List[Dict[str, Any]] = []
    trajectory = [(0, world)]
    recover_times: List[float] = []
    for step in range(steps):
        for event in by_step.get(step, []):
            if event.kind is FaultKind.PREEMPT:
                w_next = w_now - event.nodes
            elif event.kind is FaultKind.JOIN:
                w_next = w_now + event.nodes
            else:
                w_next = w_now
            est = (replan_warm_s if w_next in seen_worlds
                   else replan_cold_s)
            decision = policy.decide(event, survivors=w_next,
                                     est_replan_s=est,
                                     have_checkpoint=True)
            cost = 0.0
            lost = 0
            if decision == "replan":
                cost = est
            elif decision == "degrade":
                if event.kind is FaultKind.SLOWDOWN:
                    degrade_mult = max(degrade_mult, event.factor)
                    degrade_until = max(degrade_until,
                                        step + event.duration)
                else:
                    degrade_mult = max(degrade_mult, degrade_overhead)
                    degrade_until = steps   # sticks until the horizon
            elif decision == "restart":
                lost = step - last_ckpt
                cost = restart_s + est + lost * titer(w_next)
                lost_total += lost
            if decision != "ignore":
                recover_times.append(cost)
            seen_worlds.add(w_next)
            if w_next != w_now:
                trajectory.append((step, w_next))
            w_now = w_next
            total += cost
            events_out.append({**event.to_dict(),
                               "decision": decision,
                               "recover_s": round(cost, 6),
                               "lost_steps": lost,
                               "world_after": w_now})
        mult = degrade_mult if step < degrade_until else 1.0
        total += titer(w_now) * mult
        if checkpoint_interval and (step + 1) % checkpoint_interval == 0:
            last_ckpt = step + 1
    no_churn = steps * titer(world)
    return ChurnTimeline(
        steps=steps, world0=world, events=events_out, total_s=total,
        no_churn_s=no_churn,
        throughput_ratio=no_churn / total if total > 0 else 1.0,
        mean_time_to_recover_s=(sum(recover_times) / len(recover_times)
                                if recover_times else 0.0),
        max_time_to_recover_s=(max(recover_times) if recover_times
                               else 0.0),
        total_lost_steps=lost_total,
        world_trajectory=trajectory)
