"""Process-wide counters, gauges and histograms with a JSON snapshot.

Complements the span recorder (:mod:`repro.obs.trace`): spans answer
*when* something happened, metrics answer *how much* accumulated over a
run — plan-cache hits, candidates evaluated, bytes moved per link,
admission backpressure seconds, prefetch force-issues.

Metric instruments are created on first use and live for the process
(:data:`METRICS` is the shared registry).  Cheap always-on counters (a
dict hit + float add) instrument cold paths like the plan cache and the
runtime's reap loop unconditionally; hot paths (the event engine) only
publish when the tracer is enabled.  Updates are expected from the thread
that owns the instrumented state — the repo's instrumented sites all
update from the issuing/main thread — so individual ``inc``/``observe``
calls take no lock; registry mutation (first use, snapshot, reset) does.

``snapshot()`` returns a plain JSON-ready dict; the CLI ``--metrics``
flag dumps it, and ``docs/observability.md`` tables the metric names.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing value (counts or accumulated seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, worker count, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (queue depths, active leases).

        Useful when the instrumented quantity is maintained as a running
        level by increments and decrements rather than re-read whole.
        """
        self.value += float(delta)


class Histogram:
    """Streaming summary of observed values: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        v = float(value)
        if self.count == 0:
            self.min = self.max = v
        else:
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
        self.count += 1
        self.total += v

    @property
    def mean(self) -> float:
        """Average of the observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary of the distribution so far."""
        return {"count": float(self.count), "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Name-addressed store of metric instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump of every registered instrument."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented module updates.
METRICS = MetricsRegistry()
