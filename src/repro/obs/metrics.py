"""Process-wide counters, gauges and histograms with a JSON snapshot.

Complements the span recorder (:mod:`repro.obs.trace`): spans answer
*when* something happened, metrics answer *how much* accumulated over a
run — plan-cache hits, candidates evaluated, bytes moved per link,
admission backpressure seconds, prefetch force-issues.

Metric instruments are created on first use and live for the process
(:data:`METRICS` is the shared registry).  Cheap always-on counters (a
dict hit + float add) instrument cold paths like the plan cache and the
runtime's reap loop unconditionally; hot paths (the event engine) only
publish when the tracer is enabled.  ``Counter.inc`` / ``Gauge.set`` stay
lock-free (a single float write is safe enough for monitoring data);
histograms carry multi-field state plus a quantile reservoir, so
``Histogram.observe``/``summary`` take a per-instrument lock and
``snapshot()`` reads every instrument under the registry lock — a
snapshot taken concurrently with observations is internally consistent
per histogram, never torn mid-update.

``snapshot()`` returns a plain JSON-ready dict stamped with a wall-clock
``ts`` and a ``schema`` version; the CLI ``--metrics`` flag dumps it,
the ``telemetry`` protocol op streams it, and ``docs/observability.md``
tables the metric names.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List

#: Version of the ``snapshot()`` payload shape (bump on breaking changes).
SNAPSHOT_SCHEMA = 2

#: Observations kept per histogram for quantile estimation (Algorithm R).
RESERVOIR_SIZE = 512

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing value (counts or accumulated seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, worker count, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (queue depths, active leases).

        Useful when the instrumented quantity is maintained as a running
        level by increments and decrements rather than re-read whole.
        """
        self.value += float(delta)


class Histogram:
    """Streaming summary with quantiles: count/sum/min/max + p50/p95/p99.

    Quantiles come from a bounded reservoir (Vitter's Algorithm R,
    :data:`RESERVOIR_SIZE` samples) so memory stays constant however many
    values stream through.  The replacement RNG is seeded per instrument,
    making summaries deterministic for a fixed observation sequence.
    Multi-field updates happen under a per-instrument lock so a
    concurrent ``summary()`` never sees torn state (count bumped, total
    not yet).
    """

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng",
                 "_lock")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0
        self._reservoir: List[float] = []
        self._rng = random.Random(0)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation into the summary and the reservoir."""
        v = float(value)
        with self._lock:
            if self.count == 0:
                self.min = self.max = v
            else:
                if v < self.min:
                    self.min = v
                if v > self.max:
                    self.max = v
            self.count += 1
            self.total += v
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(v)
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = v

    @property
    def mean(self) -> float:
        """Average of the observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        """Nearest-rank quantile of an already-sorted sample."""
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary of the distribution so far.

        Includes ``p50``/``p95``/``p99`` estimated from the reservoir —
        exact while fewer than :data:`RESERVOIR_SIZE` values have been
        observed, sampled (deterministically) beyond that.
        """
        with self._lock:
            ordered = sorted(self._reservoir)
            return {"count": float(self.count), "sum": self.total,
                    "min": self.min, "max": self.max, "mean": self.mean,
                    "p50": self._quantile(ordered, 0.50),
                    "p95": self._quantile(ordered, 0.95),
                    "p99": self._quantile(ordered, 0.99)}


class MetricsRegistry:
    """Name-addressed store of metric instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump of every registered instrument.

        Taken under the registry lock (each histogram additionally under
        its own lock), so concurrent ``inc``/``observe`` calls cannot
        leave torn multi-field state in the payload.  Stamped with
        ``ts`` (wall clock) and ``schema`` (:data:`SNAPSHOT_SCHEMA`).
        """
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "ts": time.time(),
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented module updates.
METRICS = MetricsRegistry()
