"""Chrome-trace / Perfetto JSON export of predicted and measured timelines.

Renders three kinds of timeline into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that both ``chrome://tracing`` and https://ui.perfetto.dev load:

* recorded :class:`~repro.obs.trace.Span` lists (planner phases, engine
  calls, fences) — one track per recording thread/track name;
* a predicted :class:`~repro.sim.engine.SimResult` — one track per
  simulated resource (``gpu``, ``h2d``, ``d2h``, ``d2s``, ``s2d``, ...);
* a measured :class:`~repro.runtime.async_executor.RuntimeTrace` — one
  track per stream direction plus the GPU thread.

Each timeline becomes its own *process* (``pid``) with named-metadata
events, so a predicted and a measured rendering of the same plan sit side
by side in the viewer with per-resource rows aligned.  All events are
``ph: "X"`` complete events with microsecond ``ts``/``dur``; every
timeline is shifted to start at ``ts = 0``.

The module is duck-typed over its inputs (``SimResult`` needs
``timings``/``resource_timings``; ``RuntimeTrace`` needs ``records`` and
``wall_start``) so importing it never drags in the simulator or runtime.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..runtime.async_executor import RuntimeTrace
    from ..sim.engine import SimResult
    from .trace import Span

__all__ = [
    "chrome_trace",
    "runtime_track_events",
    "sim_track_events",
    "span_track_events",
    "stitched_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Seconds -> Chrome-trace microseconds.
_US = 1e6

#: Canonical row order inside a process: compute first, then the link
#: directions in issue-priority order, then everything else.
_RESOURCE_ORDER = ("gpu", "h2d", "d2h", "d2s", "s2d", "cpu", "net",
                   "memory", "other")


def _resource_rank(name: str) -> int:
    base = name.removeprefix("stream-")
    try:
        return _RESOURCE_ORDER.index(base)
    except ValueError:
        return len(_RESOURCE_ORDER)


def _assign_tids(tracks: Iterable[str]) -> Dict[str, int]:
    ordered = sorted(set(tracks), key=lambda t: (_resource_rank(t), t))
    return {name: tid for tid, name in enumerate(ordered, start=1)}


def _metadata(pid: int, process_name: str,
              tids: Dict[str, int]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name}}]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    return events


def _complete(name: str, cat: str, start_s: float, end_s: float,
              pid: int, tid: int,
              args: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name, "cat": cat or "default", "ph": "X",
        "ts": round(start_s * _US, 3),
        "dur": round(max(0.0, end_s - start_s) * _US, 3),
        "pid": pid, "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def _json_safe(value: Any) -> Any:
    """Clamp non-finite floats — strict JSON has no Infinity/NaN."""
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return None
    return value


# ---------------------------------------------------------------------------
# Track renderers
# ---------------------------------------------------------------------------

def span_track_events(spans: "Sequence[Span]", *, pid: int,
                      process_name: str = "planner") -> List[Dict[str, Any]]:
    """Render recorded spans; one track per ``Span.track`` name.

    Timestamps are shifted so the earliest span starts at 0.
    """
    if not spans:
        return []
    tids = _assign_tids(s.track for s in spans)
    t0 = min(s.start for s in spans)
    events = _metadata(pid, process_name, tids)
    for s in spans:
        args = {k: _json_safe(v) for k, v in s.args.items()}
        events.append(_complete(s.name, s.category, s.start - t0,
                                s.end - t0, pid, tids[s.track], args))
    return events


def stitched_trace_events(spans: "Sequence[Span]", *,
                          client_proc: str = "client"
                          ) -> List[Dict[str, Any]]:
    """Stitch spans from several processes into one aligned timeline.

    Input is the union of locally recorded client spans and
    wire-shipped daemon/worker spans (``Span.proc`` names the origin
    process; empty means the local ``client_proc``).  Unlike
    :func:`span_track_events`, every process shares ONE global ``t0`` —
    span timestamps are ``time.perf_counter`` readings, which on Linux
    is the system-wide ``CLOCK_MONOTONIC``, so client, daemon and
    forked pool-worker clocks are directly comparable and the rendered
    rows line up in true wall-clock order.

    Each origin process becomes its own ``pid`` row (client first, then
    the daemon, then workers), with per-process tracks as threads.
    Span ``trace_id``s are surfaced in event args, and single-flight
    merges — waiter spans carrying a ``merged_into`` arg — are rendered
    as Chrome-trace flow events (``ph: "s"``/``"f"``) from the leader's
    ``service.plan`` span to each waiter's span.
    """
    if not spans:
        return []

    by_proc: Dict[str, List["Span"]] = {}
    for s in spans:
        by_proc.setdefault(s.proc or client_proc, []).append(s)

    def _proc_rank(name: str) -> tuple:
        if name == client_proc:
            return (0, name)
        if name == "daemon":
            return (1, name)
        return (2, name)

    t0 = min(s.start for s in spans)
    events: List[Dict[str, Any]] = []
    # (pid, tid, end) per span, for flow-event anchoring below.
    placed: List[tuple] = []
    span_at: Dict[int, "Span"] = {}
    for pid, proc in enumerate(sorted(by_proc, key=_proc_rank), start=1):
        proc_spans = by_proc[proc]
        tids = _assign_tids(s.track for s in proc_spans)
        events.extend(_metadata(pid, proc, tids))
        for s in proc_spans:
            args = {k: _json_safe(v) for k, v in s.args.items()}
            if s.trace_id:
                args["trace_id"] = s.trace_id
            span_at[len(placed)] = s
            placed.append((pid, tids[s.track], s.end - t0))
            events.append(_complete(s.name, s.category, s.start - t0,
                                    s.end - t0, pid, tids[s.track], args))
    events.extend(_flow_events(placed, span_at, t0))
    return events


def _flow_events(placed: List[tuple], span_at: Dict[int, "Span"],
                 t0: float) -> List[Dict[str, Any]]:
    """Flow arrows for single-flight merges (leader plan -> waiter)."""
    leaders: Dict[str, tuple] = {}
    for i, (pid, tid, end) in enumerate(placed):
        s = span_at[i]
        if s.name == "service.plan" and s.trace_id:
            leaders[s.trace_id] = (pid, tid, end)
    flows: List[Dict[str, Any]] = []
    flow_id = 0
    for i, (pid, tid, end) in enumerate(placed):
        s = span_at[i]
        merged_into = s.args.get("merged_into")
        if not merged_into:
            continue
        leader = leaders.get(str(merged_into))
        if leader is None:
            continue
        flow_id += 1
        lpid, ltid, lend = leader
        flows.append({"ph": "s", "id": flow_id, "name": "singleflight",
                      "cat": "service", "pid": lpid, "tid": ltid,
                      "ts": round(lend * _US, 3)})
        flows.append({"ph": "f", "bp": "e", "id": flow_id,
                      "name": "singleflight", "cat": "service",
                      "pid": pid, "tid": tid, "ts": round(end * _US, 3)})
    return flows


def sim_track_events(sim: "SimResult", *, pid: int,
                     process_name: str = "predicted (sim)"
                     ) -> List[Dict[str, Any]]:
    """Render a simulated schedule; one track per resource.

    The simulator's modeled seconds map directly to trace microseconds
    (the timeline already starts at 0).
    """
    timings = list(sim.timings.values())
    if not timings:
        return []
    tids = _assign_tids(t.op.resource for t in timings)
    events = _metadata(pid, process_name, tids)
    for t in sorted(timings, key=lambda t: (t.start, t.finish)):
        op = t.op
        args: Dict[str, Any] = {"op_id": op.op_id}
        if t.stall > 0:
            args["stall_s"] = round(t.stall, 9)
        if op.mem_acquire:
            args["mem_acquire"] = op.mem_acquire
        if op.mem_release:
            args["mem_release"] = op.mem_release
        events.append(_complete(op.label or f"op{op.op_id}", "sim",
                                t.start, t.finish, pid,
                                tids[op.resource], args))
    return events


def runtime_track_events(trace: "RuntimeTrace", *, pid: int,
                         process_name: str = "measured (runtime)"
                         ) -> List[Dict[str, Any]]:
    """Render a measured iteration; one track per stream direction plus
    the GPU thread.  Timestamps are relative to the iteration's
    ``wall_start``.
    """
    records = list(trace.records)
    if not records:
        return []
    tids = _assign_tids(r.resource for r in records)
    t0 = trace.wall_start or min(r.start for r in records)
    events = _metadata(pid, process_name, tids)
    for r in sorted(records, key=lambda r: (r.start, r.finish)):
        args: Dict[str, Any] = {"block": r.block}
        if r.stall > 0:
            args["stall_s"] = round(r.stall, 9)
        events.append(_complete(r.label, "runtime", r.start - t0,
                                r.finish - t0, pid, tids[r.resource],
                                args))
    return events


# ---------------------------------------------------------------------------
# Document assembly + schema checks
# ---------------------------------------------------------------------------

def chrome_trace(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap rendered events into a Chrome-trace JSON document."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_chrome_trace(path: "Path | str",
                       document: Dict[str, Any]) -> Path:
    """Serialize a trace document to ``path`` (strict JSON) and return it."""
    problems = validate_chrome_trace(document)
    if problems:
        raise ValueError("refusing to write malformed trace: "
                         + "; ".join(problems[:5]))
    out = Path(path)
    out.write_text(json.dumps(document, sort_keys=True,
                              allow_nan=False) + "\n")
    return out


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema-check a trace document; returns a list of problems (empty =
    valid).  Checks the fields the viewers actually require: every event
    has ``ph``/``pid``/``tid``/``name``, and every ``X`` event has a
    non-negative numeric ``ts`` and ``dur``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"event {i} ({ev.get('name', '?')}): "
                                f"missing {key}")
        if ev.get("ph") == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0 or v != v:
                    problems.append(
                        f"event {i} ({ev.get('name', '?')}): bad {key}={v!r}")
    return problems
