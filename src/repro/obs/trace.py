"""Thread-safe span recorder with a near-zero-overhead disabled path.

Design constraints, in order:

1. **Disabled cost ~ zero.**  The simulator is the objective function of
   the blocking search (tens of thousands of calls per plan), so every
   instrumented call site pays at most one attribute read + branch when
   tracing is off: :meth:`Tracer.span` returns a shared no-op handle, and
   hot loops guard on :attr:`Tracer.enabled` directly.  The
   ``bench_obs_overhead`` benchmark holds this to < 3% on the 64-block
   engine sweep.
2. **Thread safety without hot-path locks.**  Stream workers and the main
   thread record concurrently; each thread appends to its own buffer
   (``threading.local``), registered once under a lock, and
   :meth:`Tracer.drain` merges all buffers into one start-sorted list.
3. **Monotonic clocks.**  Spans are stamped with ``time.perf_counter``
   (monotonic, sub-microsecond), never wall time, so durations are exact
   and exportable straight into Chrome-trace microseconds.

Usage::

    from repro.obs.trace import TRACER

    TRACER.enable()
    with TRACER.span("plan.opt1_blocking", "planner", method="dp") as sp:
        result = solve(...)
        sp.set(evaluated=result.evaluated)
    spans = TRACER.drain()          # merged, start-sorted, buffers cleared

Post-hoc recording (for already-timestamped work, e.g. reaped transfer
requests) goes through :meth:`Tracer.record`.

Spans recorded while another thread is mid-append are only guaranteed to
be visible to :meth:`Tracer.drain` once that thread's instrumented work
has quiesced — callers drain after joining/draining their workers, which
every instrumented call site in this repo already does.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "TRACER"]


@dataclass(slots=True)
class Span:
    """One recorded interval: ``[start, end]`` seconds on a named track."""

    name: str
    category: str
    start: float
    end: float
    track: str
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (never negative for recorded spans)."""
        return self.end - self.start


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: Any) -> "_NullSpan":
        """No-op twin of :meth:`_SpanHandle.set`."""
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that records one :class:`Span` on exit.

    Created only while the tracer is enabled; the span is recorded even
    if tracing is disabled before exit (it was sampled, so it completes).
    """

    __slots__ = ("_tracer", "_name", "_category", "_track", "_args",
                 "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: Optional[str], args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._track = track
        self._args = args
        self._start = 0.0

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach/override span arguments from inside the ``with`` body."""
        self._args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        end = tracer.clock()
        track = self._track or threading.current_thread().name
        tracer._buffer().append(Span(
            name=self._name, category=self._category, start=self._start,
            end=end, track=track, args=self._args))
        return None


class Tracer:
    """Process-wide span recorder (see module docstring for the contract).

    Args:
        clock: monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffers: List[List[Span]] = []

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start sampling spans (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop sampling spans; already-recorded spans stay buffered."""
        self.enabled = False

    # -- recording ---------------------------------------------------------

    def span(self, name: str, category: str = "", *,
             track: Optional[str] = None, **args: Any):
        """A context manager timing one interval.

        When tracing is disabled this returns a shared no-op handle — the
        only cost at a disabled call site is this attribute check.  The
        default ``track`` is the current thread's name.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, category, track, dict(args))

    def record(self, name: str, category: str = "", *, start: float,
               end: float, track: Optional[str] = None,
               **args: Any) -> None:
        """Record an already-timestamped span (e.g. a reaped transfer)."""
        if not self.enabled:
            return
        self._buffer().append(Span(
            name=name, category=category, start=start,
            end=max(start, end),
            track=track or threading.current_thread().name,
            args=dict(args)))

    # -- harvesting --------------------------------------------------------

    def drain(self) -> List[Span]:
        """Merge every thread's buffer into one start-sorted list.

        Buffers are cleared; call after instrumented workers have
        quiesced (joined or drained) so no span is split across drains.
        """
        with self._lock:
            spans: List[Span] = []
            for buf in self._buffers:
                spans.extend(buf)
                del buf[:]
        spans.sort(key=lambda s: (s.start, s.end, s.name))
        return spans

    def clear(self) -> None:
        """Discard every buffered span without returning them."""
        with self._lock:
            for buf in self._buffers:
                del buf[:]

    def __len__(self) -> int:
        """Number of currently buffered spans across all threads."""
        with self._lock:
            return sum(len(buf) for buf in self._buffers)

    # -- internals ---------------------------------------------------------

    def _buffer(self) -> List[Span]:
        buf: Optional[List[Span]] = getattr(self._local, "buf", None)
        if buf is None:
            buf = []
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf


#: The process-wide tracer every instrumented module records against.
TRACER = Tracer()
