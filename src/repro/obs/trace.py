"""Thread-safe span recorder with a near-zero-overhead disabled path.

Design constraints, in order:

1. **Disabled cost ~ zero.**  The simulator is the objective function of
   the blocking search (tens of thousands of calls per plan), so every
   instrumented call site pays at most one attribute read + branch when
   tracing is off: :meth:`Tracer.span` returns a shared no-op handle, and
   hot loops guard on :attr:`Tracer.enabled` directly.  The
   ``bench_obs_overhead`` benchmark holds this to < 3% on the 64-block
   engine sweep.
2. **Thread safety without hot-path locks.**  Stream workers and the main
   thread record concurrently; each thread appends to its own buffer
   (``threading.local``), registered once under a lock, and
   :meth:`Tracer.drain` merges all buffers into one start-sorted list.
3. **Monotonic clocks.**  Spans are stamped with ``time.perf_counter``
   (monotonic, sub-microsecond), never wall time, so durations are exact
   and exportable straight into Chrome-trace microseconds.

Usage::

    from repro.obs.trace import TRACER

    TRACER.enable()
    with TRACER.span("plan.opt1_blocking", "planner", method="dp") as sp:
        result = solve(...)
        sp.set(evaluated=result.evaluated)
    spans = TRACER.drain()          # merged, start-sorted, buffers cleared

Post-hoc recording (for already-timestamped work, e.g. reaped transfer
requests) goes through :meth:`Tracer.record`.

Spans recorded while another thread is mid-append are only guaranteed to
be visible to :meth:`Tracer.drain` once that thread's instrumented work
has quiesced — callers drain after joining/draining their workers, which
every instrumented call site in this repo already does.

**Distributed tracing.**  A :class:`TraceContext` (a trace id plus the
requesting span's id) can be *activated* on a thread
(:meth:`Tracer.activate`); while a context is active, spans are sampled
on that thread even when the tracer is globally disabled, and each span
is stamped with the context's ``trace_id``.  Per-trace *collectors*
(:meth:`Tracer.collect`) gather every span of one trace id regardless of
which thread recorded it — the planner daemon registers one per traced
request and ships the collected spans back over the wire
(:func:`span_to_dict` / :func:`span_from_dict` are the wire format;
:meth:`Tracer.adopt` re-emits spans received from another process).
Timestamps are comparable across local processes because
``time.perf_counter`` reads the system-wide ``CLOCK_MONOTONIC``.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "span_from_dict",
    "span_to_dict",
]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one distributed request: trace id + requesting span.

    ``trace_id`` names the whole end-to-end request (client -> daemon ->
    pool workers); ``parent_id`` names the span that minted or forwarded
    the context (informational — spans link to their trace, not to each
    other).  Contexts cross the newline-JSON wire as plain dicts.
    """

    trace_id: str
    parent_id: str = ""

    @classmethod
    def new(cls, parent_id: str = "") -> "TraceContext":
        """Mint a fresh 16-hex-digit trace id (process-unique)."""
        return cls(trace_id=uuid.uuid4().hex[:16], parent_id=parent_id)

    def to_dict(self) -> Dict[str, str]:
        """Wire rendering (the ``trace`` field of a ``plan`` request)."""
        return {"trace_id": self.trace_id, "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        """Rebuild a context received over the wire (ignores extras)."""
        return cls(trace_id=str(data.get("trace_id", "")),
                   parent_id=str(data.get("parent_id", "")))


@dataclass(slots=True)
class Span:
    """One recorded interval: ``[start, end]`` seconds on a named track.

    ``trace_id`` is the distributed request the span belongs to (empty
    for spans recorded outside any activated context); ``proc`` is the
    logical process that recorded it (empty = this process) — the
    stitched exporter groups spans into Chrome-trace processes by it.
    """

    name: str
    category: str
    start: float
    end: float
    track: str
    args: Dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""
    proc: str = ""

    @property
    def duration(self) -> float:
        """Span length in seconds (never negative for recorded spans)."""
        return self.end - self.start


def span_to_dict(span: Span) -> Dict[str, Any]:
    """Wire rendering of one span (the ``spans`` field of a plan reply)."""
    return {"name": span.name, "cat": span.category,
            "start": span.start, "end": span.end, "track": span.track,
            "trace_id": span.trace_id, "proc": span.proc,
            "args": dict(span.args)}


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a span shipped from another process (wire inverse)."""
    return Span(name=str(data.get("name", "?")),
                category=str(data.get("cat", "")),
                start=float(data.get("start", 0.0)),
                end=float(data.get("end", 0.0)),
                track=str(data.get("track", "")) or "remote",
                args=dict(data.get("args") or {}),
                trace_id=str(data.get("trace_id", "")),
                proc=str(data.get("proc", "")))


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: Any) -> "_NullSpan":
        """No-op twin of :meth:`_SpanHandle.set`."""
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that records one :class:`Span` on exit.

    Created only while the tracer is enabled; the span is recorded even
    if tracing is disabled before exit (it was sampled, so it completes).
    """

    __slots__ = ("_tracer", "_name", "_category", "_track", "_args",
                 "_start", "_trace_id")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: Optional[str], args: Dict[str, Any],
                 trace_id: str = ""):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._track = track
        self._args = args
        self._trace_id = trace_id
        self._start = 0.0

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach/override span arguments from inside the ``with`` body."""
        self._args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        end = tracer.clock()
        track = self._track or threading.current_thread().name
        tracer._emit(Span(
            name=self._name, category=self._category, start=self._start,
            end=end, track=track, args=self._args,
            trace_id=self._trace_id))
        return None


class Tracer:
    """Process-wide span recorder (see module docstring for the contract).

    Args:
        clock: monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffers: List[List[Span]] = []
        self._collectors: Dict[str, List[Span]] = {}
        #: Optional always-on span sink (the flight recorder registers
        #: itself here); called for every emitted span.
        self.sink: Optional[Callable[[Span], None]] = None

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start sampling spans (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop sampling spans; already-recorded spans stay buffered."""
        self.enabled = False

    # -- trace contexts ----------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """The trace context active on this thread (None when outside)."""
        return getattr(self._local, "ctx", None)

    @contextmanager
    def activate(self,
                 ctx: Optional[TraceContext]) -> Iterator[
                     Optional[TraceContext]]:
        """Make ``ctx`` the thread's active trace context for the body.

        While a context is active, spans recorded on this thread are
        sampled *even when the tracer is globally disabled* and are
        stamped with the context's trace id — this is how the planner
        daemon traces one request without tracing the world.  Passing
        ``None`` is a no-op (callers can activate unconditionally).
        """
        if ctx is None:
            yield None
            return
        prev = getattr(self._local, "ctx", None)
        self._local.ctx = ctx
        try:
            yield ctx
        finally:
            self._local.ctx = prev

    def adopt_context(self, ctx: Optional[TraceContext]) -> None:
        """Permanently activate ``ctx`` on this thread (pool workers)."""
        self._local.ctx = ctx

    @contextmanager
    def collect(self, trace_id: str) -> Iterator[List[Span]]:
        """Gather every span of ``trace_id``, from any thread, into a list.

        The yielded list fills live as spans complete; on exit the
        collector is unregistered and the list holds the trace's spans
        (recorded by threads that emitted while it was registered).
        """
        sink: List[Span] = []
        with self._lock:
            self._collectors[trace_id] = sink
        try:
            yield sink
        finally:
            with self._lock:
                self._collectors.pop(trace_id, None)

    def attach_collector(self, trace_id: str) -> List[Span]:
        """Register (and return) a collector list for ``trace_id``.

        Non-context variant of :meth:`collect` for process-long
        registrations (the portfolio pool workers); pair with
        :meth:`detach_collector` when a scope exists.
        """
        sink: List[Span] = []
        with self._lock:
            self._collectors[trace_id] = sink
        return sink

    def detach_collector(self, trace_id: str) -> None:
        """Unregister a collector installed by :meth:`attach_collector`."""
        with self._lock:
            self._collectors.pop(trace_id, None)

    def peek_collected(self, trace_id: str) -> List[Span]:
        """Snapshot a live collector's spans (empty when unregistered)."""
        sink = self._collectors.get(trace_id)
        return list(sink) if sink is not None else []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, category: str = "", *,
             track: Optional[str] = None, **args: Any):
        """A context manager timing one interval.

        When tracing is disabled and no trace context is active on this
        thread, this returns a shared no-op handle — the only cost at a
        disabled call site is an attribute check plus one thread-local
        read.  The default ``track`` is the current thread's name.
        """
        ctx = getattr(self._local, "ctx", None)
        if not self.enabled and ctx is None:
            return _NULL_SPAN
        return _SpanHandle(self, name, category, track, dict(args),
                           trace_id=ctx.trace_id if ctx else "")

    def record(self, name: str, category: str = "", *, start: float,
               end: float, track: Optional[str] = None,
               **args: Any) -> None:
        """Record an already-timestamped span (e.g. a reaped transfer)."""
        ctx = getattr(self._local, "ctx", None)
        if not self.enabled and ctx is None:
            return
        self._emit(Span(
            name=name, category=category, start=start,
            end=max(start, end),
            track=track or threading.current_thread().name,
            args=dict(args), trace_id=ctx.trace_id if ctx else ""))

    def adopt(self, payload: List[Dict[str, Any]],
              proc: Optional[str] = None) -> List[Span]:
        """Re-emit spans shipped from another process (wire dicts).

        The spans keep their original timestamps, trace ids and ``proc``
        labels (``proc`` overrides when given); they flow to this
        process's buffers/collectors/sink exactly like locally recorded
        spans.  Returns the adopted :class:`Span` objects.
        """
        spans = []
        for data in payload:
            span = span_from_dict(data)
            if proc is not None:
                span.proc = proc
            self._emit(span)
            spans.append(span)
        return spans

    # -- harvesting --------------------------------------------------------

    def drain(self) -> List[Span]:
        """Merge every thread's buffer into one start-sorted list.

        Buffers are cleared; call after instrumented workers have
        quiesced (joined or drained) so no span is split across drains.
        """
        with self._lock:
            spans: List[Span] = []
            for buf in self._buffers:
                spans.extend(buf)
                del buf[:]
        spans.sort(key=lambda s: (s.start, s.end, s.name))
        return spans

    def clear(self) -> None:
        """Discard every buffered span without returning them."""
        with self._lock:
            for buf in self._buffers:
                del buf[:]

    def __len__(self) -> int:
        """Number of currently buffered spans across all threads."""
        with self._lock:
            return sum(len(buf) for buf in self._buffers)

    # -- internals ---------------------------------------------------------

    def _emit(self, span: Span) -> None:
        """Route one finished span: buffer, per-trace collector, sink.

        The thread buffer only fills while the tracer is globally
        enabled (a context-activated span on a disabled tracer goes to
        its collector and the sink only, so a long-lived daemon serving
        traced requests never accumulates undrained buffers).
        """
        if self.enabled:
            self._buffer().append(span)
        if self._collectors and span.trace_id:
            sink = self._collectors.get(span.trace_id)
            if sink is not None:
                sink.append(span)
        hook = self.sink
        if hook is not None:
            hook(span)

    def _buffer(self) -> List[Span]:
        buf: Optional[List[Span]] = getattr(self._local, "buf", None)
        if buf is None:
            buf = []
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf


#: The process-wide tracer every instrumented module records against.
TRACER = Tracer()
