"""Crash flight recorder: a bounded always-on ring of recent telemetry.

When the planner daemon's worker crashes mid-plan, or the elastic
controller exhausts its recovery cascade, the spans and counters that
explain *why* normally die with the process — ``--metrics`` only dumps
on a clean stop.  :data:`FLIGHT` keeps a bounded ring buffer of the most
recent spans and structured events, costs ~nothing while nothing is
wrong (one deque append per entry; no I/O, no locks on the hot path
beyond a single mutex shared with dumps), and writes one atomic JSON
postmortem artifact the moment something *is* wrong:

* the planner daemon dumps on a chaos/worker crash
  (:class:`~repro.service.errors.WorkerCrashed`) and on an unexpected
  server-loop death;
* the elastic controller dumps on
  :class:`~repro.elastic.controller.RecoveryImpossible`;
* checkpoint restore dumps when every archive is corrupt
  (:class:`~repro.runtime.checkpoint.CheckpointCorruptError`);
* the ``dump`` protocol op (``PlannerClient.dump``) snapshots on
  demand.

Dump artifacts land in ``$KARMA_FLIGHT_DIR`` (default
``~/.cache/karma-repro/flight``), rotate oldest-first past
:attr:`FlightRecorder.keep` files, and carry a schema version so CI
assertions and humans parse the same shape.  Traffic is counted in the
``flight.*`` metrics (tabled in ``docs/observability.md``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from .metrics import METRICS
from .trace import Span, TRACER

__all__ = ["FlightRecorder", "FLIGHT"]

#: Schema version of the dump artifact (bump on breaking shape changes).
DUMP_SCHEMA = 1


class FlightRecorder:
    """Bounded ring of recent spans + structured events, dumpable as JSON.

    Args:
        capacity: entries retained (oldest evicted first).
        keep: dump files retained per directory (oldest deleted first).
        clock: wall-clock source (injectable for deterministic tests).
    """

    def __init__(self, capacity: int = 512, keep: int = 16,
                 clock: Any = time.time) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self.keep = int(keep)
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._dumps = 0

    # -- recording ---------------------------------------------------------

    def note(self, event: str, **fields: Any) -> None:
        """Record one structured event (always on, one deque append)."""
        entry = {"kind": "event", "ts": self.clock(), "event": event,
                 **fields}
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(entry)
        METRICS.counter("flight.events").inc()

    def record_span(self, span: Span) -> None:
        """Ring-buffer one finished span (the tracer's sink hook)."""
        entry = {"kind": "span", "name": span.name, "cat": span.category,
                 "start": span.start, "end": span.end,
                 "track": span.track, "trace_id": span.trace_id,
                 "proc": span.proc}
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(entry)
        METRICS.counter("flight.spans").inc()

    def clear(self) -> None:
        """Drop every buffered entry (tests; a fresh observation window)."""
        with self._lock:
            self._entries.clear()
            self._dropped = 0

    def __len__(self) -> int:
        """Entries currently buffered."""
        with self._lock:
            return len(self._entries)

    # -- harvesting --------------------------------------------------------

    def snapshot(self, reason: str = "on_demand",
                 detail: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """JSON-ready postmortem: ring entries + a full metrics snapshot.

        ``reason`` labels what triggered the capture (``worker_crashed``,
        ``recovery_impossible``, ...); ``detail`` carries trigger
        specifics (the crashed worker's name, the corrupt archive path).
        """
        with self._lock:
            entries = list(self._entries)
            dropped = self._dropped
        return {
            "schema": DUMP_SCHEMA,
            "reason": reason,
            "detail": dict(detail or {}),
            "ts": self.clock(),
            "pid": os.getpid(),
            "dropped": dropped,
            "entries": entries,
            "metrics": METRICS.snapshot(),
        }

    def dump(self, reason: str = "on_demand", *,
             detail: Optional[Dict[str, Any]] = None,
             directory: Optional[str] = None) -> Path:
        """Write one atomic postmortem artifact; returns its path.

        The file lands in ``directory`` (default ``$KARMA_FLIGHT_DIR``,
        else ``~/.cache/karma-repro/flight``) as
        ``flight_<reason>_<pid>_<n>.json`` via tmp-file + ``os.replace``
        so a crash mid-dump never leaves a truncated artifact.  Old
        dumps rotate out past :attr:`keep` files per directory.
        """
        out_dir = Path(directory or os.environ.get("KARMA_FLIGHT_DIR")
                       or Path.home() / ".cache" / "karma-repro" / "flight")
        out_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._dumps += 1
            seq = self._dumps
        path = out_dir / f"flight_{reason}_{os.getpid()}_{seq}.json"
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.snapshot(reason, detail),
                                  indent=2, sort_keys=True,
                                  default=str) + "\n")
        os.replace(tmp, path)
        METRICS.counter("flight.dumps").inc()
        self._rotate(out_dir)
        return path

    # -- internals ---------------------------------------------------------

    def _rotate(self, out_dir: Path) -> None:
        dumps: List[Path] = sorted(out_dir.glob("flight_*.json"),
                                   key=lambda p: p.stat().st_mtime)
        for stale in dumps[:-self.keep] if self.keep > 0 else []:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent rotation
                pass


#: The process-wide flight recorder (registered as the tracer's sink).
FLIGHT = FlightRecorder()
TRACER.sink = FLIGHT.record_span
