"""Structured observability for the planner / simulator / runtime triangle.

The rest of the repo only exposed end-of-run aggregates (a
:class:`~repro.sim.stall.StallProfile`, a bench JSON); this package makes
the *inside* of a planning or validation run inspectable:

* :mod:`repro.obs.trace` — a thread-safe span recorder with a
  context-manager API and a near-zero-overhead disabled fast path.  The
  planner phases, the portfolio sweep, the event-heap simulator, the plan
  cache, and the asynchronous runtime are all instrumented against the
  process-wide :data:`~repro.obs.trace.TRACER`.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (plan-cache hits, candidates evaluated, bytes moved per
  link, admission backpressure time, ...) with a JSON snapshot export.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON rendering of
  recorded spans, a predicted :class:`~repro.sim.engine.SimResult`
  timeline, and a measured
  :class:`~repro.runtime.async_executor.RuntimeTrace` timeline, so
  predicted-vs-measured schedules can be eyeballed side by side.
* :mod:`repro.obs.flight` — an always-on bounded flight recorder of
  recent spans and structured events, dumped atomically to a JSON
  postmortem artifact on daemon/worker crashes, unrecoverable elastic
  failures, and on demand via the ``dump`` protocol op.

Distributed tracing rides on :class:`~repro.obs.trace.TraceContext`:
``plan --server`` requests mint one per call, the wire protocol carries
it daemon-side, and pool workers ship their spans back so
:func:`~repro.obs.export.stitched_trace_events` can render one
client/daemon/worker timeline.

``python -m repro trace <config> -o out.json`` (and the ``--trace`` /
``--metrics`` flags on ``plan`` and ``validate``) are the CLI front ends;
see ``docs/observability.md``.
"""

from .metrics import METRICS, MetricsRegistry
from .trace import TRACER, Span, TraceContext, Tracer

# Importing .flight registers FLIGHT as the tracer's span sink, so any
# ``repro.obs`` import is enough to arm the crash recorder.
from .flight import FLIGHT, FlightRecorder

__all__ = [
    "FLIGHT",
    "FlightRecorder",
    "METRICS",
    "MetricsRegistry",
    "TRACER",
    "Span",
    "TraceContext",
    "Tracer",
]
