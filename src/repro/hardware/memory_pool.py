"""Capacity-enforced memory pools with a caching allocator.

PyTorch's caching allocator is the reason naive profiler readings mislead
(§III-D): freed blocks stay cached and are re-used by later allocations of a
compatible size.  We reproduce that behaviour so that (a) the numeric
executor is subject to a hard near-memory capacity exactly like a 16 GiB
V100, and (b) the offline profiler measures *allocator-level* footprints,
not raw tensor sums.

Two pools exist per worker: the **near** pool (device HBM) and the **far**
pool (host DRAM).  Swapping a tensor moves its accounting (and, in the
numeric engine, its backing array) between the pools.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, Optional


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation cannot be satisfied within pool capacity."""

    def __init__(self, pool: "MemoryPool", requested: int):
        self.pool_name = pool.name
        self.requested = requested
        self.in_use = pool.bytes_in_use
        self.capacity = pool.capacity
        super().__init__(
            f"{pool.name}: out of memory allocating {requested} B "
            f"(in use {self.in_use} B of {self.capacity} B, "
            f"cached {pool.bytes_cached} B)"
        )


class Location(Enum):
    """Which memory a tensor currently resides in."""

    NEAR = "near"   # device (GPU HBM)
    FAR = "far"     # host DRAM
    FREED = "freed"


@dataclass
class Allocation:
    """A live allocation; identity object handed back to callers."""

    alloc_id: int
    nbytes: int
    tag: str = ""
    freed: bool = False


@dataclass
class _CacheBin:
    """Cached (freed but retained) segments of one rounded size."""

    nbytes: int
    count: int = 0


def _round_size(nbytes: int, granularity: int = 512) -> int:
    """Round to allocator granularity (CUDA caching allocator uses 512 B)."""
    if nbytes <= 0:
        return granularity
    return ((nbytes + granularity - 1) // granularity) * granularity


class MemoryPool:
    """A fixed-capacity pool with caching-allocator semantics.

    * ``allocate`` first tries to reuse a cached segment of the rounded
      size; otherwise it reserves fresh capacity.
    * ``free`` returns the segment to the cache (capacity stays reserved)
      unless ``caching=False``.
    * ``empty_cache`` releases cached segments back to free capacity, like
      ``torch.cuda.empty_cache()``.
    * high-water marks are tracked for the profiler.
    """

    def __init__(self, name: str, capacity: float, *, caching: bool = True,
                 granularity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = int(capacity)
        self.caching = caching
        self.granularity = granularity
        self._ids = itertools.count(1)
        self._live: Dict[int, Allocation] = {}
        self._cache: Dict[int, _CacheBin] = {}
        self.bytes_in_use = 0          # live allocations
        self.bytes_cached = 0          # freed-but-retained segments
        self.peak_in_use = 0
        self.peak_reserved = 0
        self.alloc_count = 0
        self.cache_hits = 0
        self.oom_count = 0

    # -- accounting ------------------------------------------------------

    @property
    def bytes_reserved(self) -> int:
        """Capacity currently claimed from the device (live + cached)."""
        return self.bytes_in_use + self.bytes_cached

    @property
    def bytes_free(self) -> int:
        return self.capacity - self.bytes_reserved

    def would_fit(self, nbytes: int) -> bool:
        """True if ``allocate(nbytes)`` would succeed right now."""
        size = _round_size(int(nbytes), self.granularity)
        if self.caching and self._cache.get(size, _CacheBin(size)).count > 0:
            return True
        if size <= self.bytes_free:
            return True
        # an empty_cache would reclaim bytes_cached
        return size <= self.bytes_free + self.bytes_cached

    # -- allocate / free -------------------------------------------------

    def allocate(self, nbytes: int, tag: str = "") -> Allocation:
        """Claim ``nbytes`` (rounded to granularity) or raise OOM."""
        size = _round_size(int(nbytes), self.granularity)
        self.alloc_count += 1
        bin_ = self._cache.get(size)
        if self.caching and bin_ is not None and bin_.count > 0:
            bin_.count -= 1
            self.bytes_cached -= size
            self.cache_hits += 1
        else:
            if size > self.capacity - self.bytes_reserved:
                # mimic the CUDA allocator: flush the cache and retry once
                self.empty_cache()
                if size > self.capacity - self.bytes_reserved:
                    self.oom_count += 1
                    raise OutOfMemoryError(self, size)
        alloc = Allocation(alloc_id=next(self._ids), nbytes=size, tag=tag)
        self._live[alloc.alloc_id] = alloc
        self.bytes_in_use += size
        self.peak_in_use = max(self.peak_in_use, self.bytes_in_use)
        self.peak_reserved = max(self.peak_reserved, self.bytes_reserved)
        return alloc

    def free(self, alloc: Allocation, *, cache: Optional[bool] = None) -> None:
        """Release an allocation back to the cache (or to free capacity).

        ``cache`` overrides the pool's caching policy for this one free:
        ``False`` returns the bytes straight to free capacity (used for
        transient staging buffers that must leave no reserved residue),
        ``True`` forces retention, ``None`` keeps the pool default.
        """
        if alloc.freed:
            raise ValueError(f"double free of allocation {alloc.alloc_id}")
        stored = self._live.pop(alloc.alloc_id, None)
        if stored is None:
            raise ValueError(f"allocation {alloc.alloc_id} not from pool {self.name}")
        alloc.freed = True
        self.bytes_in_use -= alloc.nbytes
        if self.caching if cache is None else cache:
            bin_ = self._cache.setdefault(alloc.nbytes, _CacheBin(alloc.nbytes))
            bin_.count += 1
            self.bytes_cached += alloc.nbytes
        self.peak_reserved = max(self.peak_reserved, self.bytes_reserved)

    def empty_cache(self) -> int:
        """Drop all cached segments; returns the number of bytes released."""
        released = self.bytes_cached
        self._cache.clear()
        self.bytes_cached = 0
        return released

    def reset_peaks(self) -> None:
        self.peak_in_use = self.bytes_in_use
        self.peak_reserved = self.bytes_reserved

    def live_allocations(self) -> Iterator[Allocation]:
        return iter(self._live.values())

    def memory_stats(self) -> Dict[str, int]:
        """Snapshot in the spirit of ``torch.cuda.memory_stats()`` (§III-D)."""
        return {
            "allocated_bytes.current": self.bytes_in_use,
            "allocated_bytes.peak": self.peak_in_use,
            "reserved_bytes.current": self.bytes_reserved,
            "reserved_bytes.peak": self.peak_reserved,
            "cached_bytes.current": self.bytes_cached,
            "allocation.count": self.alloc_count,
            "allocation.cache_hits": self.cache_hits,
            "oom.count": self.oom_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryPool({self.name!r}, in_use={self.bytes_in_use}, "
                f"cached={self.bytes_cached}, capacity={self.capacity})")


class MemorySpace:
    """The near/far pool pair of one worker, with swap accounting."""

    def __init__(self, near_capacity: float, far_capacity: float, *,
                 caching: bool = True):
        self.near = MemoryPool("near", near_capacity, caching=caching)
        self.far = MemoryPool("far", far_capacity, caching=caching)
        self.swap_out_bytes = 0
        self.swap_in_bytes = 0
        self.swap_out_count = 0
        self.swap_in_count = 0

    def pool(self, location: Location) -> MemoryPool:
        if location is Location.NEAR:
            return self.near
        if location is Location.FAR:
            return self.far
        raise ValueError(f"no pool for location {location}")

    # -- tier protocol ----------------------------------------------------
    # The two-pool space is the depth-2 degenerate case of
    # :class:`repro.hardware.tiering.TieredMemorySpace`; exposing the same
    # tier-indexed interface lets the executor run either space unchanged.

    @property
    def num_tiers(self) -> int:
        return 2

    def tier_pool(self, tier) -> MemoryPool:
        """Tier-indexed pool access: 0 = near (device), 1 = far (host)."""
        if isinstance(tier, Location):
            return self.pool(tier)
        if tier == 0:
            return self.near
        if tier == 1:
            return self.far
        raise ValueError(
            f"two-tier space has no tier {tier}; use a TieredMemorySpace "
            "for hierarchies with storage tiers")

    def record_tier_swap(self, nbytes: int, src: int, dst: int) -> None:
        """Tier-indexed swap accounting (maps onto the near/far counters)."""
        if src == dst:
            return
        if dst == 0:
            self.record_swap(nbytes, Location.NEAR)
        elif src == 0:
            self.record_swap(nbytes, Location.FAR)

    def record_swap(self, nbytes: int, direction: Location) -> None:
        """Account a swap that *landed in* ``direction``."""
        if direction is Location.FAR:
            self.swap_out_bytes += nbytes
            self.swap_out_count += 1
        elif direction is Location.NEAR:
            self.swap_in_bytes += nbytes
            self.swap_in_count += 1
        else:
            raise ValueError("swap direction must be NEAR or FAR")

    def stats(self) -> Dict[str, int]:
        out = {f"near.{k}": v for k, v in self.near.memory_stats().items()}
        out.update({f"far.{k}": v for k, v in self.far.memory_stats().items()})
        out.update({
            "swap.out_bytes": self.swap_out_bytes,
            "swap.in_bytes": self.swap_in_bytes,
            "swap.out_count": self.swap_out_count,
            "swap.in_count": self.swap_in_count,
        })
        return out
