"""Hardware specifications for the simulated training platform.

The paper evaluates KARMA on the ABCI supercomputer (Table II): nodes with
4x NVIDIA V100 SMX2 (16 GiB HBM2), dual Xeon Gold 6148 hosts (192 GiB DRAM),
PCIe Gen3 x16 between host and device, NVLink between devices, and dual EDR
InfiniBand between nodes.  All KARMA decisions depend on the *ratios* between
compute throughput, link bandwidth, and memory capacity, so a faithful
parameterization of those published numbers is sufficient to reproduce the
scheduling behaviour.

Conventions used throughout the package:

* sizes are in **bytes**
* times are in **seconds**
* compute rates are in **FLOP/s**
* bandwidths are in **bytes/s**
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Dict, Optional

GiB = 1024**3
MiB = 1024**2
KiB = 1024


def canonical_spec(obj: Any) -> Dict[str, Any]:
    """A deterministic, JSON-ready dict for any frozen hardware spec.

    Field order is sorted (not declaration order) and the concrete type is
    recorded, so the output is stable across processes, platforms, and
    field reorderings — the plan cache digests it.  Nested specs (a
    :class:`NodeSpec`'s device/host/links) recurse.
    """
    if not is_dataclass(obj):
        raise TypeError(f"not a spec dataclass: {type(obj).__name__}")

    def convert(value: Any) -> Any:
        if is_dataclass(value) and not isinstance(value, type):
            return canonical_spec(value)
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return value

    out: Dict[str, Any] = {"spec": type(obj).__name__}
    for f in sorted(fields(obj), key=lambda f: f.name):
        out[f.name] = convert(getattr(obj, f.name))
    return out


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect (PCIe, NVLink, or network fabric).

    ``bandwidth`` is the sustained unidirectional bandwidth.  ``latency`` is
    the fixed per-transfer setup cost.  ``duplex`` marks links that can carry
    a swap-in and a swap-out simultaneously at full rate (the paper relies on
    bidirectional PCIe/NVLink to overlap D2H swap-out with H2D prefetch).
    """

    name: str
    bandwidth: float
    latency: float = 5e-6
    duplex: bool = True

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across the link (latency + serialization)."""
        if nbytes <= 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name!r}: latency must be non-negative")


@dataclass(frozen=True)
class DeviceSpec:
    """An accelerator with dedicated ("near") memory.

    ``flops`` is the peak sustained throughput for dense math;
    ``efficiency`` derates it to an achievable fraction (cuDNN-style kernels
    rarely exceed ~50-60% of peak on real layer shapes).  ``mem_bandwidth``
    is the device (HBM) bandwidth, which bounds bandwidth-limited layers
    such as ReLU, batch-norm, and element-wise ops.
    """

    name: str
    memory: float
    flops: float
    mem_bandwidth: float
    efficiency: float = 0.55
    reserved_memory: float = 600 * MiB  # CUDA context + framework reserve

    @property
    def usable_memory(self) -> float:
        """Memory available to tensors after runtime/context reservations."""
        return max(0.0, self.memory - self.reserved_memory)

    @property
    def effective_flops(self) -> float:
        return self.flops * self.efficiency

    def compute_time(self, flop_count: float, bytes_touched: float = 0.0) -> float:
        """Roofline estimate: max of compute-bound and memory-bound time."""
        t_compute = flop_count / self.effective_flops if flop_count > 0 else 0.0
        t_memory = bytes_touched / self.mem_bandwidth if bytes_touched > 0 else 0.0
        return max(t_compute, t_memory)

    def __post_init__(self) -> None:
        if self.memory <= 0 or self.flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"device {self.name!r}: sizes/rates must be positive")
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError(f"device {self.name!r}: efficiency must be in (0, 1]")


@dataclass(frozen=True)
class HostSpec:
    """The CPU host providing "far" memory and CPU-side weight updates.

    ``update_flops`` is the throughput available to the standalone CPU
    optimizer kernel KARMA uses for the heterogeneous weight update (§III-G).
    It is far below GPU throughput, which is exactly why the update must be
    pipelined behind the phased gradient exchange.
    """

    name: str
    memory: float
    mem_bandwidth: float
    update_flops: float

    def update_time(self, flop_count: float, bytes_touched: float = 0.0) -> float:
        t_c = flop_count / self.update_flops if flop_count > 0 else 0.0
        t_m = bytes_touched / self.mem_bandwidth if bytes_touched > 0 else 0.0
        return max(t_c, t_m)

    def __post_init__(self) -> None:
        if self.memory <= 0 or self.mem_bandwidth <= 0 or self.update_flops <= 0:
            raise ValueError(f"host {self.name!r}: sizes/rates must be positive")


@dataclass(frozen=True)
class StorageSpec:
    """Node-local block storage (NVMe SSD) forming the third memory tier.

    Reads and writes are asymmetric on flash (ABCI's Intel DC P4600 reads
    ~3.2 GB/s but writes ~1.9 GB/s), so the two directions carry separate
    bandwidths.  ``latency`` is the per-I/O submission + flash access cost,
    orders of magnitude above a DMA doorbell — it is what makes small-block
    staging to NVMe expensive even when bandwidth would suffice.
    """

    name: str
    capacity: float
    read_bandwidth: float
    write_bandwidth: float
    latency: float = 80e-6

    def read_link(self) -> LinkSpec:
        """The storage->DRAM direction (stash promotion / swap-in path)."""
        return LinkSpec(name=f"{self.name}-read", bandwidth=self.read_bandwidth,
                        latency=self.latency, duplex=False)

    def write_link(self) -> LinkSpec:
        """The DRAM->storage direction (stash demotion / swap-out path)."""
        return LinkSpec(name=f"{self.name}-write",
                        bandwidth=self.write_bandwidth,
                        latency=self.latency, duplex=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.read_bandwidth <= 0 \
                or self.write_bandwidth <= 0:
            raise ValueError(f"storage {self.name!r}: sizes/rates must be "
                             "positive")
        if self.latency < 0:
            raise ValueError(f"storage {self.name!r}: latency must be "
                             "non-negative")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: devices + host + the links that join them.

    ``storage`` is the optional node-local NVMe tier below host DRAM;
    ``None`` models a diskless node (the classic two-tier hierarchy).
    """

    name: str
    device: DeviceSpec
    host: HostSpec
    devices_per_node: int
    h2d: LinkSpec
    d2h: LinkSpec
    intra_node: LinkSpec  # device<->device (NVLink)
    storage: Optional[StorageSpec] = None

    def __post_init__(self) -> None:
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    name: str
    node: NodeSpec
    num_nodes: int
    network: LinkSpec  # inter-node fabric, per-node injection bandwidth
    allreduce_latency: float = 10e-6  # per-hop software latency (Fig. 1 metadata)

    @property
    def total_devices(self) -> int:
        return self.num_nodes * self.node.devices_per_node

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """A copy of this cluster scaled to ``num_nodes`` nodes."""
        return replace(self, num_nodes=num_nodes)

    def with_devices(self, total_devices: int) -> "ClusterSpec":
        """A copy scaled so that ``total_devices`` accelerators are available."""
        per = self.node.devices_per_node
        if total_devices % per:
            raise ValueError(
                f"{total_devices} devices not divisible by {per} devices/node"
            )
        return replace(self, num_nodes=total_devices // per)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")


# --------------------------------------------------------------------------
# Presets
# --------------------------------------------------------------------------

def v100_sxm2_16gb(reserved: float = 600 * MiB) -> DeviceSpec:
    """NVIDIA Tesla V100 SXM2 16 GiB as used on ABCI (Table II)."""
    return DeviceSpec(
        name="V100-SXM2-16GB",
        memory=16 * GiB,
        flops=15.7e12,  # FP32 peak
        mem_bandwidth=900e9,
        efficiency=0.55,
        reserved_memory=reserved,
    )


def abci_host() -> HostSpec:
    """Dual Xeon Gold 6148 host: 192 GiB DRAM (32 GiB x 6 in Table II)."""
    return HostSpec(
        name="Xeon-Gold-6148x2",
        memory=192 * GiB,
        mem_bandwidth=110e9,
        update_flops=1.5e12,  # AVX-512 dual-socket sustained for SGD updates
    )


def pcie_gen3_x16() -> LinkSpec:
    """PCIe Gen3 x16: 16 GB/s per direction (Table II)."""
    return LinkSpec(name="PCIe3-x16", bandwidth=16e9, latency=10e-6, duplex=True)


def nvlink2() -> LinkSpec:
    """NVLink 2.0: 50 GB/s per direction (Table II)."""
    return LinkSpec(name="NVLink2", bandwidth=50e9, latency=5e-6, duplex=True)


def karma_swap_link() -> LinkSpec:
    """The calibrated host<->device swap path used by the KARMA planner.

    **Substitution note** (see DESIGN.md): the paper's measured Fig. 5
    curves imply a compute-to-transfer ratio in which KARMA's swap traffic
    mostly hides behind layer compute at 2-6x beyond device capacity.
    Reproducing that ratio against our roofline compute model requires an
    NVLink2-aggregate-class swap path (~100 GB/s); raw PCIe Gen3 (16 GB/s)
    makes every out-of-core method link-bound and collapses the relative
    differences the paper reports.  ``bench_ablation_link.py`` sweeps the
    16 / 50 / 100 GB/s regimes explicitly.
    """
    return LinkSpec(name="calibrated-swap-path", bandwidth=100e9,
                    latency=5e-6, duplex=True)


def infiniband_edr_x2() -> LinkSpec:
    """Dual-rail 100 Gbps EDR InfiniBand: 12.5 GB/s x 2 per node (Table II)."""
    return LinkSpec(name="2xEDR-IB", bandwidth=25e9, latency=1.5e-6, duplex=True)


def abci_nvme() -> StorageSpec:
    """ABCI's node-local NVMe SSD (Intel DC P4600, 1.6 TB, Table II).

    Published sustained rates: ~3.2 GB/s sequential read, ~1.9 GB/s
    sequential write, ~80 us access latency — one to two orders of
    magnitude below the DRAM tier, which is exactly the regime where
    bandwidth-aware placement starts to matter.
    """
    return StorageSpec(
        name="Intel-DC-P4600",
        capacity=1.6e12,
        read_bandwidth=3.2e9,
        write_bandwidth=1.9e9,
        latency=80e-6,
    )


def abci_node() -> NodeSpec:
    """One ABCI compute node: 4x V100 SXM2 + PCIe Gen3 + NVLink + NVMe."""
    pcie = pcie_gen3_x16()
    return NodeSpec(
        name="ABCI-node",
        device=v100_sxm2_16gb(),
        host=abci_host(),
        devices_per_node=4,
        h2d=pcie,
        d2h=pcie,
        intra_node=nvlink2(),
        storage=abci_nvme(),
    )


def abci_cluster(num_nodes: int = 512) -> ClusterSpec:
    """The ABCI supercomputer scaled to ``num_nodes`` nodes (1,088 max)."""
    return ClusterSpec(
        name="ABCI",
        node=abci_node(),
        num_nodes=num_nodes,
        network=infiniband_edr_x2(),
    )


def single_v100() -> ClusterSpec:
    """A single-device platform for the single-GPU experiments (Fig. 5-7)."""
    node = replace(abci_node(), devices_per_node=1)
    return ClusterSpec(name="single-V100", node=node, num_nodes=1,
                       network=infiniband_edr_x2())


def tiny_test_device(memory: float = 64 * MiB, flops: float = 1e12,
                     bandwidth: float = 1e9) -> DeviceSpec:
    """A deliberately small device used by tests to force out-of-core paths."""
    return DeviceSpec(
        name="tiny-test",
        memory=memory,
        flops=flops,
        mem_bandwidth=10 * bandwidth,
        efficiency=1.0,
        reserved_memory=0.0,
    )
