"""Transfer-time models for host<->device and device<->device movement.

The paper's occupancy model needs the *block-adjusted swap throughput*
``T_swap-in = min{T_FM, T_NM, T_IC}`` (Eq. 4): a transfer is bounded by
whichever of far-memory bandwidth, near-memory bandwidth, or interconnect
bandwidth is slowest.  :class:`TransferModel` encapsulates that plus
pinned/pageable derating and chunked-transfer latency amortization.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import DeviceSpec, HostSpec, LinkSpec


@dataclass(frozen=True)
class TransferModel:
    """Swap-time estimator between far (host) and near (device) memory.

    ``pinned`` host staging buffers reach full PCIe bandwidth; pageable
    memory is derated (cudaMemcpy from pageable memory stages through an
    internal pinned bounce buffer at roughly 60% efficiency).
    """

    link: LinkSpec
    device: DeviceSpec
    host: HostSpec
    pinned: bool = True
    pageable_derate: float = 0.6
    chunk_bytes: int = 4 * 1024 * 1024  # prefetcher granularity

    def canonical_dict(self) -> dict:
        """Deterministic JSON-ready form (plan-cache digest input)."""
        from .spec import canonical_spec

        return canonical_spec(self)

    @property
    def effective_bandwidth(self) -> float:
        """Eq. 4: min of far-memory, near-memory and interconnect rates."""
        link_bw = self.link.bandwidth
        if not self.pinned:
            link_bw *= self.pageable_derate
        return min(self.host.mem_bandwidth, self.device.mem_bandwidth, link_bw)

    def swap_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` one way (either swap-in or swap-out)."""
        if nbytes <= 0:
            return 0.0
        chunks = max(1, int((nbytes + self.chunk_bytes - 1) // self.chunk_bytes))
        return chunks * self.link.latency + nbytes / self.effective_bandwidth

    def swap_throughput(self) -> float:
        """Sustained bytes/s for large transfers (latency amortized away)."""
        return self.effective_bandwidth

    def concurrent_swap_time(self, in_bytes: float, out_bytes: float) -> float:
        """Time when a swap-in and a swap-out share the link.

        On a duplex link (PCIe/NVLink) the two directions proceed at full
        rate simultaneously; on a half-duplex link they serialize.
        """
        t_in = self.swap_time(in_bytes)
        t_out = self.swap_time(out_bytes)
        if self.link.duplex:
            return max(t_in, t_out)
        return t_in + t_out


def pcie_transfer_model(device: DeviceSpec, host: HostSpec,
                        link: LinkSpec) -> TransferModel:
    """Convenience constructor with pinned staging (KARMA's prefetcher)."""
    return TransferModel(link=link, device=device, host=host, pinned=True)
