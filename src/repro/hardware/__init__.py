"""Hardware substrate: device/host/link specs, memory pools and tiered
hierarchies, transfer models."""

from .interconnect import TransferModel, pcie_transfer_model
from .memory_pool import (
    Allocation,
    Location,
    MemoryPool,
    MemorySpace,
    OutOfMemoryError,
)
from .spec import (
    GiB,
    KiB,
    MiB,
    ClusterSpec,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NodeSpec,
    StorageSpec,
    abci_cluster,
    abci_host,
    abci_node,
    abci_nvme,
    infiniband_edr_x2,
    karma_swap_link,
    nvlink2,
    pcie_gen3_x16,
    single_v100,
    tiny_test_device,
    v100_sxm2_16gb,
)
from .tiering import (
    DEVICE_TIER,
    DRAM_TIER,
    STORAGE_TIER,
    MemoryHierarchy,
    TieredMemorySpace,
    TierSpec,
    abci_hierarchy,
    hierarchy_from_node,
    three_tier_hierarchy,
    tiny_test_hierarchy,
    two_tier_hierarchy,
)

__all__ = [
    "GiB", "MiB", "KiB",
    "DeviceSpec", "HostSpec", "LinkSpec", "NodeSpec", "ClusterSpec",
    "StorageSpec",
    "v100_sxm2_16gb", "abci_host", "abci_node", "abci_cluster", "abci_nvme",
    "pcie_gen3_x16", "nvlink2", "infiniband_edr_x2", "karma_swap_link",
    "single_v100",
    "tiny_test_device",
    "MemoryPool", "MemorySpace", "Allocation", "Location", "OutOfMemoryError",
    "TransferModel", "pcie_transfer_model",
    "TierSpec", "MemoryHierarchy", "TieredMemorySpace",
    "DEVICE_TIER", "DRAM_TIER", "STORAGE_TIER",
    "two_tier_hierarchy", "three_tier_hierarchy", "hierarchy_from_node",
    "abci_hierarchy", "tiny_test_hierarchy",
]
