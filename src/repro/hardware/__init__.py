"""Hardware substrate: device/host/link specs, memory pools, transfer models."""

from .interconnect import TransferModel, pcie_transfer_model
from .memory_pool import (
    Allocation,
    Location,
    MemoryPool,
    MemorySpace,
    OutOfMemoryError,
)
from .spec import (
    GiB,
    KiB,
    MiB,
    ClusterSpec,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NodeSpec,
    abci_cluster,
    abci_host,
    abci_node,
    infiniband_edr_x2,
    karma_swap_link,
    nvlink2,
    pcie_gen3_x16,
    single_v100,
    tiny_test_device,
    v100_sxm2_16gb,
)

__all__ = [
    "GiB", "MiB", "KiB",
    "DeviceSpec", "HostSpec", "LinkSpec", "NodeSpec", "ClusterSpec",
    "v100_sxm2_16gb", "abci_host", "abci_node", "abci_cluster",
    "pcie_gen3_x16", "nvlink2", "infiniband_edr_x2", "karma_swap_link",
    "single_v100",
    "tiny_test_device",
    "MemoryPool", "MemorySpace", "Allocation", "Location", "OutOfMemoryError",
    "TransferModel", "pcie_transfer_model",
]
